"""Quickstart: share the cost of a wireless multicast among selfish receivers.

Builds a small planar wireless network, then runs the two classical
universal-tree mechanisms of the paper's section 2.1 side by side:

* the Shapley value mechanism — budget balanced + group strategyproof;
* the marginal-cost (VCG) mechanism — efficient + strategyproof, but it
  can run a deficit.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core import UniversalTreeMCMechanism, UniversalTreeShapleyMechanism
from repro.geometry import uniform_points
from repro.wireless import EuclideanCostGraph, UniversalTree


def main() -> None:
    rng = np.random.default_rng(7)

    # A 9-station network in a 5x5 km area; power falls as 1/d^2.
    points = uniform_points(9, dim=2, side=5.0, rng=rng)
    network = EuclideanCostGraph(points, alpha=2.0)
    source = 0

    # Every other station is a selfish agent with a private utility.
    agents = [i for i in range(network.n) if i != source]
    utilities = {i: float(rng.uniform(0.0, 25.0)) for i in agents}

    # Fix a universal spanning tree (shortest-path tree from the source).
    tree = UniversalTree.from_shortest_paths(network, source)

    shapley = UniversalTreeShapleyMechanism(tree).run(utilities)
    mc = UniversalTreeMCMechanism(tree).run(utilities)

    rows = []
    for i in agents:
        rows.append({
            "agent": i,
            "utility": utilities[i],
            "shapley: served": i in shapley.receivers,
            "shapley: pays": shapley.share(i),
            "mc: served": i in mc.receivers,
            "mc: pays": mc.share(i),
        })
    print(format_table(rows, title="Per-agent outcome (same utilities, two mechanisms)"))
    print()
    print(f"Shapley: charged {shapley.total_charged():.3f} "
          f"for a tree of cost {shapley.cost:.3f}  (budget balanced)")
    print(f"MC:      charged {mc.total_charged():.3f} "
          f"for a tree of cost {mc.cost:.3f}  "
          f"(efficient; deficit = {mc.cost - mc.total_charged():.3f})")
    print(f"MC net worth (max achievable welfare): {mc.extra['net_worth']:.3f}")


if __name__ == "__main__":
    main()
