"""Quickstart: share the cost of a wireless multicast among selfish receivers.

Describes a small planar wireless network as a declarative, JSON-ready
:class:`repro.api.ScenarioSpec`, binds a caching
:class:`repro.api.MulticastSession` to it, and prices one utility profile
under the two classical universal-tree mechanisms of the paper's
section 2.1 side by side:

* ``tree-shapley`` — budget balanced + group strategyproof;
* ``tree-mc`` — efficient + strategyproof (VCG), but it can run a deficit.

The same spec + profiles drive the command line:

    python -m repro run --scenario spec.json --mechanism tree-shapley \\
        --profiles profiles.json --json

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.api import MulticastSession, ScenarioSpec


def main() -> None:
    # Utilities draw from their own stream — independent of the seed the
    # scenario uses for its point layout.
    rng = np.random.default_rng(42)

    # A 9-station network in a 5x5 km area; power falls as 1/d^2.  The
    # spec is frozen and JSON-round-trippable — it IS the wire request.
    spec = ScenarioSpec.from_random(n=9, dim=2, alpha=2.0, seed=7, side=5.0)
    session = MulticastSession(spec)

    # Every other station is a selfish agent with a private utility.
    utilities = {i: float(rng.uniform(0.0, 25.0)) for i in spec.agents()}

    # The session builds the network and the universal tree once and
    # memoises the Shapley cost shares across any further profiles.
    shapley = session.run("tree-shapley", utilities)
    mc = session.run("tree-mc", utilities)

    rows = []
    for i in spec.agents():
        rows.append({
            "agent": i,
            "utility": utilities[i],
            "shapley: served": i in shapley.receivers,
            "shapley: pays": shapley.share(i),
            "mc: served": i in mc.receivers,
            "mc: pays": mc.share(i),
        })
    print(format_table(rows, title="Per-agent outcome (same utilities, two mechanisms)"))
    print()
    print(f"Shapley: charged {shapley.total_charged():.3f} "
          f"for a tree of cost {shapley.cost:.3f}  (budget balanced)")
    print(f"MC:      charged {mc.total_charged():.3f} "
          f"for a tree of cost {mc.cost:.3f}  "
          f"(efficient; deficit = {mc.cost - mc.total_charged():.3f})")
    print(f"MC net worth (max achievable welfare): {mc.extra['net_worth']:.3f}")
    print()
    print(f"Scenario wire form: {spec.to_json()}")


if __name__ == "__main__":
    main()
