"""Wired overlay multicast: the NWST mechanism outside the wireless model.

The paper's section 2.2 mechanism is stated for the node-weighted Steiner
tree problem in its own right — the natural model for an ISP overlay where
activating a relay site (a node) has a fixed cost and customers at leaf
sites subscribe selfishly.  This example builds a two-tier overlay (core
ring + regional relays + customer sites), runs the 1.5 ln k-BB mechanism,
and shows the restart dynamics when some customers cannot afford their
share.

Run:  python examples/isp_overlay.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core import NWSTMechanism
from repro.graphs.adjacency import Graph
from repro.graphs.nwst import exact_node_weighted_steiner


def build_overlay(rng):
    """Core ring of 4 routers, 6 regional relays, 8 customer sites."""
    g = Graph()
    weights = {}
    cores = [("core", i) for i in range(4)]
    for i, c in enumerate(cores):
        weights[c] = float(rng.uniform(2.0, 4.0))
        g.add_edge(c, cores[(i + 1) % 4], 1.0)
    relays = [("relay", i) for i in range(6)]
    for i, r in enumerate(relays):
        weights[r] = float(rng.uniform(1.0, 3.0))
        g.add_edge(r, cores[i % 4], 1.0)
        g.add_edge(r, cores[(i + 1) % 4], 1.0)
    customers = [("cust", i) for i in range(8)]
    for i, s in enumerate(customers):
        weights[s] = 0.0  # terminals are free (the paper's normalisation)
        g.add_edge(s, relays[i % 6], 1.0)
        if i % 3 == 0:
            g.add_edge(s, relays[(i + 2) % 6], 1.0)
    return g, weights, customers


def main() -> None:
    rng = np.random.default_rng(11)
    graph, weights, customers = build_overlay(rng)
    utilities = {c: float(rng.uniform(0.5, 6.0)) for c in customers}

    mech = NWSTMechanism(graph, weights, customers)
    result = mech.run(utilities)

    rows = [{
        "customer": f"{c[1]}",
        "utility": utilities[c],
        "served": c in result.receivers,
        "pays": result.share(c),
    } for c in customers]
    print(format_table(rows, title="NWST mechanism on a wired overlay"))
    print()
    print(f"served:            {sorted(c[1] for c in result.receivers)}")
    print(f"restarts:          {result.extra['n_restarts']} "
          "(unaffordable customers dropped, computation restarted)")
    print(f"charged total:     {result.total_charged():.3f}")
    print(f"tree (node) cost:  {result.cost:.3f}")
    if result.receivers:
        opt = exact_node_weighted_steiner(graph, weights, sorted(result.receivers))
        k = len(result.receivers)
        bound = max(1.0, 1.5 * np.log(k))
        print(f"exact optimum:     {opt:.3f}  "
              f"-> BB ratio {result.total_charged() / opt:.2f} "
              f"(Thm 2.2 bound: {bound:.2f})")


if __name__ == "__main__":
    main()
