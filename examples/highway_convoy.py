"""Vehicles on a highway (d = 1): optimally budget-balanced mechanisms.

A roadside unit multicasts traffic alerts to vehicles strung out along a
highway — the one-dimensional Euclidean case, where the paper's Lemma 3.1
makes the *optimal* multicast cost polynomial and submodular.  Theorem 3.2
then gives two optimal mechanisms, both computed here in polynomial time:

* Shapley over C*: 1-BB (receivers pay exactly the optimal cost) and
  group strategyproof;
* marginal cost over C*: efficient (maximises total welfare).

The example also shows the paper-vs-implementation subtlety this
reproduction uncovered: the chain construction sketched in Lemma 3.1 is an
upper bound that an optimal assignment can beat by using a transmitter's
backward coverage (see EXPERIMENTS.md EXP-T4).

Run:  python examples/highway_convoy.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core import EuclideanMCMechanism, EuclideanShapleyMechanism
from repro.core.euclidean_optimal import euclidean_optimal_cost_function
from repro.geometry import PointSet
from repro.wireless import EuclideanCostGraph
from repro.wireless.line import chain_line_multicast, optimal_line_multicast


def main() -> None:
    rng = np.random.default_rng(5)

    # Vehicle positions (km) along the highway; the roadside unit at km 4.7.
    positions = np.sort(np.concatenate([[4.7], rng.uniform(0.0, 10.0, size=9)]))
    source = int(np.flatnonzero(positions == 4.7)[0])
    network = EuclideanCostGraph(PointSet(positions), alpha=2.0)
    agents = [i for i in range(network.n) if i != source]
    utilities = {i: float(rng.uniform(0.0, 15.0)) for i in agents}

    shapley = EuclideanShapleyMechanism(network, source).run(utilities)
    mc = EuclideanMCMechanism(network, source).run(utilities)

    rows = [{
        "vehicle@km": f"{positions[i]:.2f}",
        "utility": utilities[i],
        "shapley pays": shapley.share(i),
        "mc pays": mc.share(i),
    } for i in agents]
    print(format_table(rows, title="d = 1: optimal mechanisms (Theorem 3.2)"))

    cf = euclidean_optimal_cost_function(network, source)
    print()
    print(f"Shapley: charged {shapley.total_charged():.4f} "
          f"== C*(R) = {cf(shapley.receivers):.4f}  (1-BB)")
    print(f"MC:      net worth {mc.extra['net_worth']:.4f} (efficient), "
          f"charged {mc.total_charged():.4f} of cost {mc.cost:.4f}")

    # Lemma 3.1's construction vs the true optimum on the served set.
    if shapley.receivers:
        R = sorted(shapley.receivers)
        exact, _ = optimal_line_multicast(positions, 2.0, source, R)
        chain, _ = chain_line_multicast(positions, 2.0, source, R)
        print(f"\nLemma 3.1 chain construction: {chain:.4f}; "
              f"true optimum: {exact:.4f} "
              f"(gap {100 * (chain / exact - 1):.2f}% on this instance)")


if __name__ == "__main__":
    main()
