"""The sharded fleet end-to-end: router, workers, skew, drain.

The horizontal story of `repro.service.fleet` in one script:

1. boot a 3-worker fleet — each worker is the full single-process
   service (`python -m repro serve`) in its own OS process with its own
   LRU session store and metrics registry — behind a consistent-hash
   router that speaks the identical wire protocol;
2. drive it with the deterministic Zipf-skewed keyed workload
   (`loadgen --keys/--zipf`): distinct scenario keys spread over shards
   by the hash ring, the popular head keys stay warm in their owners'
   LRUs, and the `X-Repro-Shard` response header attributes every
   request;
3. print the per-shard picture: request counts, client-side p95, and
   each shard's server-side hit rate from the aggregated `/v1/stats`;
4. resize live: add a fourth shard over `POST /v1/fleet/add` (only the
   ring ranges adjacent to its virtual nodes move), then gracefully
   drain one over `POST /v1/fleet/drain` — in-flight requests finish,
   new ones reroute, nothing fails.

Run with ``PYTHONPATH=src python examples/fleet_demo.py``.
"""

import json
import urllib.request

from repro.service import BackgroundServer, Fleet
from repro.service.loadgen import run_loadgen


def admin(port: int, method: str, path: str, payload: dict | None = None) -> dict:
    data = None if payload is None else json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method,
        headers={"Content-Type": "application/json"})
    with urllib.request.urlopen(request, timeout=120) as response:
        return json.loads(response.read())


def burst(port: int, requests: int = 60):
    return run_loadgen(
        host="127.0.0.1", port=port, requests=requests, concurrency=6,
        n=14, alpha=2.0, side=10.0, seeds=[0], layouts=["uniform"],
        mechanisms=["tree-shapley", "jv"], profile_count=2,
        keys=10, zipf=1.1)


def main() -> None:
    print("== booting a 3-worker fleet (w0, w1, w2) ==")
    fleet = Fleet(workers=3, cache_size=16, batch_window=0.005)
    router = fleet.start()
    server = BackgroundServer(router)
    port = server.start()
    try:
        topology = admin(port, "GET", "/v1/fleet")
        print(f"router on :{port}, ring: {topology['ring']['shards']} "
              f"({topology['ring']['points']} virtual nodes)")

        print("\n== Zipf-skewed burst: 60 requests over 10 keys ==")
        report = burst(port)
        assert report.statuses == {200: 60}, report.statuses
        for line in report.lines():
            print(line)
        failures = report.check(expect_shards=3)
        assert not failures, failures
        print("check ok: 3 shards answered, every shard served warm lookups")

        print("\n== resize up: POST /v1/fleet/add ==")
        print(admin(port, "POST", "/v1/fleet/add"))

        print("\n== graceful drain: POST /v1/fleet/drain w1 ==")
        print(admin(port, "POST", "/v1/fleet/drain", {"shard": "w1"}))
        report = burst(port)
        assert report.statuses == {200: 60}, report.statuses
        print("post-drain burst: all 200, shards "
              f"{list(report.observed_shards())}")
    finally:
        server.stop()
        fleet.shutdown()
    print("\nfleet demo done.")


if __name__ == "__main__":
    main()
