"""Dynamic sessions: churn spec -> incremental replay -> audit -> rollup.

The whole `repro.dynamic` loop in one script:

1. declare a DynamicScenarioSpec — a scenario plus a ChurnSpec whose
   join/leave/move history is derived from the churn seed;
2. replay its epochs incrementally through a DynamicSession, auditing
   the paper's axioms (NPT / VP / cost recovery) at every epoch;
3. verify the incremental rows are bit-identical to cold per-epoch
   recomputation, and show what the carried caches saved;
4. run the same churn model as a sweep axis (one JSONL row per
   (item, epoch)) and roll the sink up into per-epoch trajectories.

Run with ``PYTHONPATH=src python examples/churn_demo.py``.

This file is kept ``ruff format``-clean (CI checks it).
"""

import pathlib
import tempfile

from repro.analysis.tables import format_table
from repro.dynamic import (
    ChurnSpec,
    DynamicScenarioSpec,
    DynamicSession,
    replay_dynamic,
    trajectory_row,
)
from repro.runner import ProfileSpec, SweepSpec, run_sweep, summarize_jsonl


def main() -> None:
    churn = ChurnSpec(
        epochs=6, seed=2, join_rate=0.25, leave_rate=0.25, move_rate=0.05, move_scale=0.4
    )
    spec = DynamicScenarioSpec(
        kind="random", n=14, alpha=2.0, seed=5, side=6.0, layout="cluster", churn=churn
    )
    profiles = ProfileSpec(generator="uniform", count=3)

    # -- 2. incremental replay + per-epoch audit ----------------------------
    dyn = DynamicSession(spec)
    rows = replay_dynamic(dyn, "jv", profiles, audit=True)
    table = [
        {**trajectory_row(row), "violations": len(row["audit"]["violations"])}
        for row in rows
    ]
    print(format_table(table, title="jv under churn: per-epoch trajectory"))
    assert all(row["audit"]["violations"] == [] for row in rows), "axioms must hold"

    # -- 3. incremental == cold --------------------------------------------
    cold = replay_dynamic(spec, "jv", profiles, incremental=False, audit=True)
    assert rows == cold, "incremental replay must reproduce cold recomputation"
    counters = dyn.counters
    print(
        f"incremental == cold; sessions built {counters['sessions_built']}, "
        f"carried {counters['sessions_carried']} "
        f"(trees {counters['trees_carried']}, xi entries {counters['xi_entries_carried']})"
    )

    # -- 4. churn as a sweep axis -------------------------------------------
    sweep = SweepSpec(
        ns=(10,),
        alphas=(2.0,),
        seeds=(0, 1),
        layouts=("uniform", "ring"),
        mechanisms=("tree-shapley", "jv"),
        profiles=ProfileSpec(count=2),
        side=6.0,
        churn=ChurnSpec(epochs=4, seed=3, join_rate=0.3, leave_rate=0.3),
    )
    sink = pathlib.Path(tempfile.mkdtemp(prefix="churn_demo_")) / "rows.jsonl"
    swept = run_sweep(sweep, workers=2, out=sink, audit=True)
    print(f"\nswept {sweep.n_items()} items x {sweep.n_epochs()} epochs = {len(swept)} rows")
    print(
        format_table(
            summarize_jsonl(sink, by=("mechanism", "epoch")),
            title="per-epoch trajectories across the whole grid",
        )
    )


if __name__ == "__main__":
    main()
