"""Reproduce the paper's Fig. 1: the NWST mechanism is not group
strategyproof.

Walks the exact published counterexample: four terminals with utilities
(3, 3, 3, 3/2); truthfully the mechanism picks the ratio-1 spider {1,5,7}
then the 1-4-6 path, welfares (3/2, 3/2, 3/2, 0).  When agent 7 shades its
report below 3/2, it gets dropped, the restart picks the ratio-4/3 spider
{1,5,6}, and the coalition's welfares become (5/3, 5/3, 5/3, 0): nobody
lost, three agents strictly gained — a group-strategyproofness violation,
even though (Theorem 2.3) no *single* agent can ever profit from lying.

Run:  python examples/collusion_audit.py
"""

from repro.analysis.instances import fig1_collusion_instance
from repro.analysis.tables import format_table
from repro.core import NWSTMechanism
from repro.mechanism.properties import find_unilateral_deviation


def main() -> None:
    inst = fig1_collusion_instance()
    mech = NWSTMechanism(inst.graph, inst.weights, inst.terminals)

    truthful = mech.run(inst.utilities)
    w_true = truthful.welfare(inst.utilities)

    epsilon = 0.25
    deviated = dict(inst.utilities)
    deviated[inst.colluder] = inst.utilities[inst.colluder] - epsilon
    collusive = mech.run(deviated)
    w_coll = collusive.welfare(inst.utilities)

    rows = [{
        "agent": i,
        "true utility": inst.utilities[i],
        "welfare (truthful)": w_true[i],
        "welfare (collusion)": w_coll[i],
        "gained": w_coll[i] > w_true[i] + 1e-9,
    } for i in inst.terminals]
    print(format_table(rows, title=f"Fig. 1 walk-through (agent 7 reports 3/2 - {epsilon})"))

    print()
    print(f"truthful receivers:  {sorted(truthful.receivers)} "
          f"(charged {truthful.total_charged():.3f})")
    print(f"collusive receivers: {sorted(collusive.receivers)} "
          f"(charged {collusive.total_charged():.3f}, "
          f"{collusive.extra['n_restarts']} restart)")

    print("\nChecking Theorem 2.3 on the same instance: sweeping unilateral")
    print("misreports for every agent...")
    deviation = find_unilateral_deviation(mech, inst.utilities)
    print("  profitable unilateral deviation found:", deviation is not None)
    assert deviation is None, "Thm 2.3 says this must not happen"
    print("  -> strategyproof for individuals, yet manipulable by the group.")


if __name__ == "__main__":
    main()
