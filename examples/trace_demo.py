"""Multi-group traces: generate -> replay on one substrate -> serve.

The whole `repro.traces` loop in one script:

1. generate a deterministic IGMP-like trace — N groups joining/leaving
   over a field of access points, with RSSI handovers that move a
   station for *every* group at once;
2. replay all groups through one MultiGroupSession and show the
   shared-artifact counters: the network/closure/xi substrate is built
   once per distinct geometry, not once per group;
3. verify the shared replay is bit-identical to fully independent cold
   per-group sessions (the acceptance property of the layer);
4. price the same (group, epoch) cells through the HTTP service wire
   protocol and check the echoes match the direct rows.

Run with ``PYTHONPATH=src python examples/trace_demo.py``.

This file is kept ``ruff format``-clean (CI checks it).
"""

import asyncio
import json

from repro.analysis.tables import format_table
from repro.dynamic import trajectory_row
from repro.service import CostSharingService, ServiceClient
from repro.traces import MultiGroupSession, check_trace_replay, generate_trace


def main() -> None:
    # -- 1. a deterministic handover trace ----------------------------------
    trace = generate_trace(
        n=16, groups=3, epochs=4, seed=7, aps=4, member_rate=0.7, handover_rate=0.15
    )
    counts = trace.event_counts()
    print(
        f"trace: {len(trace.groups)} groups x {trace.epochs} epochs over "
        f"n=16; {counts['join']} joins, {counts['leave']} leaves, "
        f"{counts['move']} handovers"
    )

    # -- 2. shared-substrate replay -----------------------------------------
    session = MultiGroupSession(trace)
    rows = session.replay("tree-shapley")
    table = [
        {"group": group, **trajectory_row(row)}
        for group in sorted(rows)
        for row in rows[group]
    ]
    print(format_table(table, title="tree-shapley over the trace"))
    counters = session.counters()
    print(
        f"substrates built {counters['substrate_sessions_built']}, "
        f"shared {counters['substrate_sessions_shared']} across "
        f"{len(trace.groups)} groups"
    )
    assert counters["substrate_sessions_built"] < len(trace.groups) * trace.epochs

    # -- 3. shared == cold per-group ----------------------------------------
    outcome = check_trace_replay(trace, "tree-shapley")
    assert outcome["identical"], outcome["mismatches"]
    cells = sum(len(group_rows) for group_rows in outcome["rows"].values())
    print(f"shared-substrate replay == cold per-group replay over {cells} cells")

    # -- 4. the same cells through the service wire protocol ----------------
    spec = trace.to_spec()
    profiles = [{str(a): float(a % 3 + 1) for a in spec.agents()}]

    async def serve_all():
        client = ServiceClient(CostSharingService(batch_window=0.005))
        out = {}
        for epoch in range(spec.n_epochs):
            for group in spec.group_ids:
                status, payload = await client.run(
                    spec, "tree-shapley", profiles, epoch=epoch, group=group
                )
                assert status == 200, payload
                out[(group, epoch)] = payload
        await client.service.drain()
        return out, client.service.store.stats()

    payloads, stats = asyncio.run(serve_all())
    for (group, epoch), payload in payloads.items():
        assert (payload["group"], payload["epoch"]) == (group, epoch)
        direct = session.run_epoch(group, epoch, "tree-shapley", [
            {int(a): v for a, v in profiles[0].items()}
        ])
        from repro.api import result_to_dict

        assert json.dumps(payload["results"], sort_keys=True) == json.dumps(
            [result_to_dict(r) for r in direct], sort_keys=True
        )
    print(
        f"service: {len(payloads)} (group, epoch) cells priced over "
        f"{stats['size']} store entry/entries, {stats['hits']} warm hits"
    )


if __name__ == "__main__":
    main()
