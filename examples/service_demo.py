"""The serving layer end-to-end, in process: store -> batch -> verify.

The whole `repro.service` loop without opening a socket:

1. stand up a CostSharingService (LRU session store, micro-batcher,
   admission control) and drive it through the in-process ServiceClient
   — the exact dispatch the HTTP endpoint calls;
2. fire a burst of concurrent requests over a handful of scenarios and
   mechanisms, letting requests share flush windows and warm sessions;
3. verify every response is bit-identical to a direct cold
   MulticastSession run (the serving machinery may only change speed);
4. show the observability surface: store hits/misses/evictions/
   coalescing, batcher windows, per-status HTTP counters, and the
   Prometheus-style metrics snapshot the registry accumulated
   (per-stage latency means, flush occupancy) — the same families
   ``GET /metrics`` serves over the wire.

Run with ``PYTHONPATH=src python examples/service_demo.py``.
"""

import asyncio
import json

import numpy as np

from repro.analysis.tables import format_table
from repro.api import MulticastSession, ScenarioSpec, result_to_dict
from repro.observability import parse_exposition, sample_total
from repro.service import CostSharingService, ServiceClient

MECHANISMS = ["tree-shapley", "tree-mc", "jv"]


def build_workload() -> list[tuple[ScenarioSpec, str, list[dict]]]:
    rng = np.random.default_rng(42)
    scenarios = [
        ScenarioSpec.from_random(n=12, alpha=2.0, seed=seed, side=6.0, layout=layout)
        for layout, seed in [("uniform", 0), ("cluster", 1), ("ring", 2)]
    ]
    workload = []
    for index in range(18):
        scenario = scenarios[index % len(scenarios)]
        mechanism = MECHANISMS[(index // len(scenarios)) % len(MECHANISMS)]
        profiles = [
            {a: float(rng.uniform(0.0, 12.0)) for a in scenario.agents()} for _ in range(2)
        ]
        workload.append((scenario, mechanism, profiles))
    return workload


async def drive(workload) -> tuple[list[dict], dict]:
    service = CostSharingService(cache_size=8, batch_window=0.01, max_batch=16)
    client = ServiceClient(service)

    health_status, health = await client.healthz()
    assert health_status == 200, health
    print(f"service up: {health}")

    # One concurrent burst: requests arriving inside the same flush
    # window ride one batch; repeated scenarios hit the warm LRU.
    responses = await asyncio.gather(
        *(client.run(scenario, mechanism, profiles) for scenario, mechanism, profiles in workload)
    )
    for status, payload in responses:
        assert status == 200, payload

    _, stats = await client.stats()
    _, metrics_text = await client.metrics()
    await service.drain()
    return [payload for _, payload in responses], stats, metrics_text


def main() -> None:
    workload = build_workload()
    payloads, stats, metrics_text = asyncio.run(drive(workload))

    # The serving contract: bit-identical to direct cold construction.
    mismatches = 0
    rows = []
    for (scenario, mechanism, profiles), payload in zip(workload, payloads):
        direct = [result_to_dict(r) for r in MulticastSession(scenario).run_batch(mechanism, profiles)]
        identical = json.dumps(payload["results"], sort_keys=True) == json.dumps(
            direct, sort_keys=True
        )
        mismatches += 0 if identical else 1
        rows.append(
            {
                "layout": scenario.layout,
                "mechanism": mechanism,
                "receivers": payload["summary"]["mean_receivers"],
                "charged": round(payload["summary"]["mean_charged"], 3),
                "bb": payload["summary"]["mean_bb"],
                "identical": identical,
            }
        )
    print(format_table(rows, title="service responses vs direct cold sessions"))
    assert mismatches == 0, f"{mismatches} responses diverged from direct runs"

    store, batcher = stats["store"], stats["batcher"]
    print(
        f"store: {store['hits']} hits, {store['misses']} misses, "
        f"{store['coalesced']} coalesced, {store['evictions']} evictions "
        f"(capacity {store['capacity']})"
    )
    print(
        f"batcher: {batcher['requests']} requests in {batcher['batches']} "
        f"flushes, largest batch {batcher['max_batch_size']}"
    )
    print(f"http: {stats['http']['responses']}")
    assert batcher["max_batch_size"] >= 2, "burst should have shared a flush window"

    # The metrics snapshot — the same exposition `GET /metrics` serves.
    parsed = parse_exposition(metrics_text)
    stage_means = []
    for stage in ("parse", "queue", "build", "execute", "serialize"):
        count = sample_total(parsed, "repro_stage_seconds_count", {"stage": stage})
        total = sample_total(parsed, "repro_stage_seconds_sum", {"stage": stage})
        stage_means.append(f"{stage} {total / count * 1e3:.2f}ms" if count else f"{stage} -")
    flushes = sample_total(parsed, "repro_batch_occupancy_count")
    solo = sample_total(parsed, "repro_batch_occupancy_bucket", {"le": "1"})
    print(f"metrics: {len(parsed['types'])} families; stage means " + " | ".join(stage_means))
    print(
        f"metrics: {int(flushes - solo)}/{int(flushes)} flushes held more than "
        f"one request; xi cache hits "
        f"{int(sample_total(parsed, 'repro_xi_cache_total', {'result': 'hit'}))}"
    )
    assert "metrics" in stats, "stats payload should embed the registry snapshot"
    print("every response bit-identical to direct construction — serving adds speed, not drift")


if __name__ == "__main__":
    main()
