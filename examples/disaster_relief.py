"""Disaster-relief ad hoc network: the 12-BB mechanism of Theorem 3.7.

Scenario (the paper's motivating application): an ad hoc wireless network
is deployed over a disaster area — a command post (the source) must
multicast a situation feed to field teams, each of which values the feed
differently and reports that value selfishly.  Power is the scarce
resource; the network is Euclidean (d = 2, alpha = 2), where computing an
optimal multicast assignment is NP-hard and the core can be empty, so the
paper prescribes the Jain-Vazirani mechanism: group strategyproof and
12-approximately budget balanced.

Run:  python examples/disaster_relief.py
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.core import EuclideanJVMechanism
from repro.core.euclidean_bb import jv_bb_bound
from repro.geometry import clustered_points
from repro.wireless import EuclideanCostGraph, optimal_multicast_cost


def main() -> None:
    rng = np.random.default_rng(2024)

    # Field teams cluster around three sites; the command post is station 0.
    points = clustered_points(n_clusters=3, per_cluster=3, side=6.0, spread=0.4, rng=rng)
    network = EuclideanCostGraph(points, alpha=2.0)
    source = 0
    agents = [i for i in range(network.n) if i != source]

    utilities = {i: float(rng.uniform(0.0, 40.0)) for i in agents}
    mech = EuclideanJVMechanism(network, source)
    result = mech.run(utilities)

    rows = [{
        "team": i,
        "reported utility": utilities[i],
        "served": i in result.receivers,
        "cost share": result.share(i),
        "welfare": (utilities[i] - result.share(i)) if i in result.receivers else 0.0,
    } for i in agents]
    print(format_table(rows, title="Jain-Vazirani mechanism outcome"))

    charged = result.total_charged()
    print()
    print(f"served teams:        {sorted(result.receivers)}")
    print(f"total charged:       {charged:.3f}")
    print(f"built assignment:    {result.cost:.3f} (cost recovered: {charged >= result.cost})")
    if result.receivers and network.n <= 16:
        cstar = optimal_multicast_cost(network, source, result.receivers)
        print(f"optimal C*(R):       {cstar:.3f}")
        print(f"budget-balance ratio {charged / cstar:.2f} "
              f"(Theorem 3.7 guarantees <= {jv_bb_bound(2):.0f})")
    # The same network, but teams collude: group strategyproofness means no
    # coalition can jointly misreport so that nobody loses and someone gains.
    print("\nThe mechanism is group strategyproof: its shares are cross-")
    print("monotonic, so no coalition of teams benefits from misreporting.")


if __name__ == "__main__":
    main()
