"""Sweeps at scale: grid -> parallel run -> JSONL sink -> resume -> rollup.

The whole `repro.runner` loop in one script:

1. declare a SweepSpec grid (layout families x sizes x mechanisms);
2. run it across worker processes into a JSONL sink;
3. simulate a crash (truncate the sink mid-line) and resume — only the
   missing items are re-priced;
4. verify the resumed payload matches a fresh serial run byte-for-byte;
5. roll the sink up into the summary table.

Run with ``PYTHONPATH=src python examples/sweep_demo.py``.

This file is kept ``ruff format``-clean (CI checks it).
"""

import pathlib
import tempfile

from repro.analysis.tables import format_table
from repro.runner import ProfileSpec, SweepSpec, run_sweep, summarize_jsonl


def main() -> None:
    spec = SweepSpec(
        ns=(8, 12),
        alphas=(2.0,),
        seeds=(0, 1),
        layouts=("uniform", "cluster", "grid", "ring", "radial"),
        mechanisms=("tree-shapley", "tree-mc", "jv"),
        profiles=ProfileSpec(generator="uniform", count=3, scale=1.0),
        side=6.0,
    )
    print(
        f"grid: {len(spec.scenarios())} scenarios x {len(spec.mechanisms)} mechanisms "
        f"= {spec.n_items()} work items"
    )

    workdir = pathlib.Path(tempfile.mkdtemp(prefix="sweep_demo_"))
    sink = workdir / "results.jsonl"

    # -- 2. parallel run ----------------------------------------------------
    rows = run_sweep(spec, workers=4, out=sink)
    print(f"ran {len(rows)} items with 4 workers -> {sink}")

    # -- 3. crash + resume --------------------------------------------------
    lines = sink.read_text().splitlines(keepends=True)
    kept = len(lines) // 2
    sink.write_text("".join(lines[:kept]) + lines[kept][:30])  # partial tail
    reran: list[str] = []
    resumed = run_sweep(
        spec,
        workers=4,
        out=sink,
        resume=True,
        progress=lambda row: reran.append(row["item"]),
    )
    print(f"resume after truncation re-priced {len(reran)} of {len(rows)} items")

    # -- 4. determinism check ----------------------------------------------
    serial = run_sweep(spec, workers=1)
    assert resumed == serial == rows, "sweep outputs must be schedule-independent"
    print("resumed == parallel == serial: byte-identical payloads")

    # -- 5. rollup ----------------------------------------------------------
    print()
    print(
        format_table(
            summarize_jsonl(sink, by=("layout", "mechanism")),
            title="per-layout mechanism summary (rolled up from the sink)",
        )
    )


if __name__ == "__main__":
    main()
