"""Reproduce the paper's Fig. 2: an instance whose cost game has an empty
core (Lemma 3.3).

The construction: five external stations on a radius-m pentagon around the
source, five internal stations on the rotated radius-m/2 pentagon, and
unit-spaced relay stations along every dotted line.  For alpha > 1 serving
two adjacent externals through their shared internal station is cheaper
than two separate spokes — which makes every "fair" allocation blockable
by some pair, so no budget-balanced cross-monotonic cost sharing exists
and beta-approximate mechanisms (Theorems 3.6/3.7) are the best possible
route.

Run:  python examples/pentagon_core.py
"""

from repro.analysis.instances import pentagon_instance
from repro.analysis.tables import format_table
from repro.mechanism.core import core_allocation, least_core_value


def main() -> None:
    rows = []
    for m in (6.0, 8.0, 10.0):
        inst = pentagon_instance(m=m, alpha=2.0)
        agents = list(inst.external)
        grand = inst.cost_fn(frozenset(agents))
        single = inst.cost_fn(frozenset(agents[:1]))
        pair = inst.cost_fn(frozenset(agents[:2]))
        allocation = core_allocation(agents, inst.cost_fn)
        eps, _ = least_core_value(agents, inst.cost_fn)
        rows.append({
            "m": m,
            "stations": inst.points.n,
            "C(all 5)": grand,
            "C(one)": single,
            "C(adjacent pair)": pair,
            "core empty": allocation is None,
            "least-core eps": eps,
        })
    print(format_table(rows, title="Fig. 2 pentagon: the core is empty (alpha = 2, d = 2)"))

    print("""
Why: by symmetry a core allocation would charge each external C(all)/5;
the adjacent pair then pays 2C/5 > C(pair) and secedes.  The paper's
conclusion: for alpha > 1, d > 1 no budget-balanced group-strategyproof
mechanism based on cross-monotonic shares exists — approximate budget
balance (the Jain-Vazirani mechanism, see disaster_relief.py) is the way.
""")

    # Contrast: with alpha = 1 the optimal cost is a max game (submodular),
    # and a core allocation exists.
    inst = pentagon_instance(m=6.0, alpha=2.0)

    def alpha1_cost(R):
        return max((inst.points.distance(inst.source, i) for i in R), default=0.0)

    allocation = core_allocation(list(inst.external), alpha1_cost)
    print("alpha = 1 control: core allocation exists ->", allocation is not None)


if __name__ == "__main__":
    main()
