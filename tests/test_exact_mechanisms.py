"""Tests for repro.core.exact_mechanisms (small-instance exact regime)."""

import numpy as np
import pytest

from repro.core.exact_mechanisms import ExactMCMechanism, ExactShapleyMechanism
from repro.geometry.points import uniform_points
from repro.graphs.random_graphs import random_cost_matrix
from repro.mechanism.properties import (
    check_npt,
    check_vp,
    find_unilateral_deviation,
)
from repro.mechanism.vcg import brute_force_efficient_set
from repro.wireless.cost_graph import CostGraph, EuclideanCostGraph
from repro.wireless.memt import optimal_multicast_cost


def case(seed, n=5, alpha=2.0, scale=2.5):
    net = EuclideanCostGraph(uniform_points(n, 2, rng=seed, side=4.0), alpha)
    rng = np.random.default_rng(seed + 11)
    typical = float(np.median(net.matrix[net.matrix > 0]))
    profile = {i: float(rng.uniform(0, scale * typical)) for i in range(1, n)}
    return net, profile


class TestExactShapley:
    @pytest.mark.parametrize("seed", range(4))
    def test_exactly_budget_balanced(self, seed):
        net, profile = case(seed)
        mech = ExactShapleyMechanism(net, 0)
        result = mech.run(profile)
        if result.receivers:
            cstar = optimal_multicast_cost(net, 0, result.receivers)
            assert result.total_charged() == pytest.approx(cstar)  # 1-BB
            assert result.cost == pytest.approx(cstar)  # CO: builds the optimum
            assert result.power.reaches(net, 0, result.receivers)
        assert check_npt(result) and check_vp(result, profile)

    def test_general_symmetric_network(self):
        net = CostGraph(random_cost_matrix(5, rng=3))
        rng = np.random.default_rng(3)
        profile = {i: float(rng.uniform(0, 20)) for i in range(1, 5)}
        result = ExactShapleyMechanism(net, 0).run(profile)
        assert check_npt(result) and check_vp(result, profile)

    def test_oracle_memoised(self):
        net, profile = case(0)
        mech = ExactShapleyMechanism(net, 0)
        mech.run(profile)
        n_cached = len(mech.oracle._cache)
        mech.run(profile)
        assert len(mech.oracle._cache) == n_cached  # second run hits the cache


class TestExactMC:
    @pytest.mark.parametrize("seed", range(3))
    def test_efficient_against_brute_force(self, seed):
        net, profile = case(seed)
        mech = ExactMCMechanism(net, 0)
        result = mech.run(profile)
        agents = [i for i in range(net.n) if i != 0]
        nw_bf, set_bf = brute_force_efficient_set(agents, mech.oracle.cost)(profile)
        assert result.extra["net_worth"] == pytest.approx(nw_bf)
        assert result.receivers == set_bf
        if result.receivers:
            assert result.power.reaches(net, 0, result.receivers)

    @pytest.mark.parametrize("seed", range(2))
    def test_strategyproof(self, seed):
        net, profile = case(seed, n=4)
        mech = ExactMCMechanism(net, 0)
        assert find_unilateral_deviation(mech, profile) is None

    def test_cost_optimal_and_no_surplus(self):
        net, profile = case(1)
        result = ExactMCMechanism(net, 0).run(profile)
        if result.receivers:
            assert result.cost == pytest.approx(
                optimal_multicast_cost(net, 0, result.receivers)
            )
        assert result.total_charged() <= result.cost + 1e-9
