"""Tests for the ``python -m repro run`` scenario-pricing subcommand."""

import json

import pytest

from repro.__main__ import main
from repro.api import MulticastSession, ScenarioSpec, result_from_dict


@pytest.fixture
def wired(tmp_path):
    spec = ScenarioSpec.from_random(n=6, dim=2, alpha=2.0, seed=5, side=5.0)
    (tmp_path / "spec.json").write_text(spec.to_json())
    profiles = [{str(i): 4.0 + i for i in spec.agents()},
                {str(i): 0.1 for i in spec.agents()}]
    (tmp_path / "profiles.json").write_text(json.dumps(profiles))
    return tmp_path, spec, profiles


class TestRunSubcommand:
    def test_json_round_trip(self, wired, capsys):
        tmp_path, spec, profiles = wired
        assert main(["run", "--scenario", str(tmp_path / "spec.json"),
                     "--mechanism", "jv",
                     "--profiles", str(tmp_path / "profiles.json"),
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert ScenarioSpec.from_dict(payload["scenario"]) == spec
        assert payload["mechanism"] == {"name": "jv", "params": {}}
        assert len(payload["results"]) == 2

        # The wire results re-hydrate to the session's own outcomes.
        session = MulticastSession(spec)
        for raw, profile in zip(payload["results"], profiles):
            wire = result_from_dict(raw)
            local = session.run("jv", {int(a): v for a, v in profile.items()})
            assert wire.receivers == local.receivers
            assert wire.shares == local.shares
            assert wire.cost == local.cost

    def test_out_file_and_table(self, wired, capsys):
        tmp_path, spec, _ = wired
        out = tmp_path / "result.json"
        assert main(["run", "--scenario", str(tmp_path / "spec.json"),
                     "--mechanism", "tree-shapley",
                     "--profiles", str(tmp_path / "profiles.json"),
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "tree-shapley" in printed and "charged" in printed  # table mode
        payload = json.loads(out.read_text())
        assert payload["schema"] == 1 and len(payload["results"]) == 2

    def test_single_profile_object_accepted(self, wired, capsys):
        tmp_path, spec, _ = wired
        (tmp_path / "one.json").write_text(json.dumps({"1": 9.0, "2": 9.0, "3": 9.0,
                                                       "4": 9.0, "5": 9.0}))
        assert main(["run", "--scenario", str(tmp_path / "spec.json"),
                     "--mechanism", "wireless",
                     "--profiles", str(tmp_path / "one.json"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["results"]) == 1

    def test_params_file(self, wired, capsys):
        tmp_path, spec, _ = wired
        (tmp_path / "params.json").write_text(json.dumps({"tree": "mst"}))
        assert main(["run", "--scenario", str(tmp_path / "spec.json"),
                     "--mechanism", "tree-shapley",
                     "--profiles", str(tmp_path / "profiles.json"),
                     "--params", str(tmp_path / "params.json"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["mechanism"]["params"] == {"tree": "mst"}

    def test_unknown_mechanism_exits_2(self, wired, capsys):
        # Regression: an unknown name must never escape as a traceback —
        # exit 2 with the full available_mechanisms() catalogue on stderr.
        from repro.api import available_mechanisms

        tmp_path, _, _ = wired
        assert main(["run", "--scenario", str(tmp_path / "spec.json"),
                     "--mechanism", "nope",
                     "--profiles", str(tmp_path / "profiles.json")]) == 2
        captured = capsys.readouterr()
        assert "unknown mechanism" in captured.err  # stdout stays payload-only
        for name in available_mechanisms():
            assert name in captured.err
        assert captured.out == ""

    def test_bad_inputs_exit_2_without_traceback(self, wired, capsys, tmp_path):
        base, _, _ = wired
        # Missing scenario file.
        assert main(["run", "--scenario", str(tmp_path / "absent.json"),
                     "--mechanism", "jv",
                     "--profiles", str(base / "profiles.json")]) == 2
        # Profile naming the source station (stray agent).
        (base / "bad.json").write_text(json.dumps(
            {str(i): 1.0 for i in range(6)}))
        assert main(["run", "--scenario", str(base / "spec.json"),
                     "--mechanism", "jv",
                     "--profiles", str(base / "bad.json")]) == 2
        # Malformed JSON.
        (base / "broken.json").write_text("{not json")
        assert main(["run", "--scenario", str(base / "broken.json"),
                     "--mechanism", "jv",
                     "--profiles", str(base / "profiles.json")]) == 2
        # Profiles that parse but are not objects (list of scalars).
        (base / "scalars.json").write_text("[1, 2, 3]")
        assert main(["run", "--scenario", str(base / "spec.json"),
                     "--mechanism", "jv",
                     "--profiles", str(base / "scalars.json")]) == 2
        # Unwritable output path.
        assert main(["run", "--scenario", str(base / "spec.json"),
                     "--mechanism", "jv",
                     "--profiles", str(base / "profiles.json"),
                     "--out", str(tmp_path / "absent-dir" / "out.json")]) == 2
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err.count("error:") == 5

    def test_experiment_mode_still_works(self, capsys):
        assert main(["A3"]) == 0
        assert "EXP-A3" in capsys.readouterr().out
