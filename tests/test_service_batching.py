"""MicroBatcher: window collection, per-scenario grouping, early flush,
per-request failure isolation — and results always equal direct runs.

No pytest-asyncio in this environment: each test drives its own loop via
``asyncio.run``.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.api import MulticastSession, ScenarioSpec, result_to_dict
from repro.service import MicroBatcher, SessionStore, parse_run_request


def _spec(seed: int, n: int = 6) -> ScenarioSpec:
    return ScenarioSpec.from_random(n=n, alpha=2.0, seed=seed, side=5.0)


def _request(spec: ScenarioSpec, mechanism: str, utility: float = 4.0):
    return parse_run_request({
        "scenario": spec.to_dict(),
        "mechanism": mechanism,
        "profiles": [{str(a): utility for a in spec.agents()}],
    })


def _wire(results) -> list[dict]:
    return [result_to_dict(r) for r in results]


def test_window_collects_one_batch_and_results_match_direct():
    spec = _spec(0)
    requests = [_request(spec, m, u)
                for m in ("tree-shapley", "tree-mc", "jv") for u in (2.0, 6.0)]

    async def go():
        batcher = MicroBatcher(SessionStore(capacity=4), window=0.05)
        outs = await asyncio.gather(*(batcher.submit(r) for r in requests))
        return batcher, outs

    batcher, outs = asyncio.run(go())
    session = MulticastSession(spec)
    for request, results in zip(requests, outs):
        assert _wire(results) == _wire(
            session.run_batch(request.mechanism, list(request.profiles)))
    stats = batcher.stats()
    assert stats["batches"] == 1  # all six rode one flush window
    assert stats["max_batch_size"] == len(requests)
    assert stats["batched_requests"] == len(requests)
    assert batcher.store.stats()["misses"] == 1  # one session for the group


def test_distinct_scenarios_split_into_groups_but_share_the_flush():
    specs = [_spec(1), _spec(2), _spec(3)]
    requests = [_request(s, "tree-shapley") for s in specs]

    async def go():
        batcher = MicroBatcher(SessionStore(capacity=4), window=0.05)
        outs = await asyncio.gather(*(batcher.submit(r) for r in requests))
        return batcher, outs

    batcher, outs = asyncio.run(go())
    for spec, request, results in zip(specs, requests, outs):
        direct = MulticastSession(spec).run_batch(
            request.mechanism, list(request.profiles))
        assert _wire(results) == _wire(direct)
    assert batcher.stats()["batches"] == 1
    assert batcher.store.stats()["misses"] == len(specs)  # one build each


def test_max_batch_flushes_early():
    spec = _spec(4)

    async def go():
        batcher = MicroBatcher(SessionStore(capacity=4), window=30.0, max_batch=2)
        # A 30s window would hang the test unless max_batch forces the
        # flush the moment the second request arrives.
        outs = await asyncio.wait_for(asyncio.gather(
            batcher.submit(_request(spec, "tree-shapley")),
            batcher.submit(_request(spec, "tree-mc"))), timeout=10.0)
        return batcher, outs

    batcher, outs = asyncio.run(go())
    assert len(outs) == 2 and all(outs)
    assert batcher.stats()["batches"] == 1
    assert batcher.stats()["max_batch_size"] == 2


def test_zero_window_executes_each_request_immediately():
    spec = _spec(5)

    async def go():
        batcher = MicroBatcher(SessionStore(capacity=4), window=0.0)
        first = await batcher.submit(_request(spec, "tree-shapley"))
        second = await batcher.submit(_request(spec, "tree-shapley"))
        return batcher, first, second

    batcher, first, second = asyncio.run(go())
    assert _wire(first) == _wire(second)
    stats = batcher.stats()
    assert stats["batches"] == 2 and stats["batched_requests"] == 0
    # Warm store: the second immediate flush still reuses the session.
    assert batcher.store.stats()["hits"] == 1


def test_per_request_failure_does_not_poison_the_batch():
    spec = _spec(6)
    good = _request(spec, "tree-shapley")
    bad = parse_run_request({
        "scenario": spec.to_dict(), "mechanism": "tree-shapley",
        # Wire-valid but semantically wrong: agent 999 does not exist in
        # the scenario, which only the mechanism's own validation sees.
        "profiles": [{str(a): 1.0 for a in spec.agents()} | {"999": 1.0}],
    })

    async def go():
        batcher = MicroBatcher(SessionStore(capacity=4), window=0.05)
        outs = await asyncio.gather(batcher.submit(good), batcher.submit(bad),
                                    batcher.submit(good),
                                    return_exceptions=True)
        return outs

    first, failure, third = asyncio.run(go())
    assert isinstance(failure, ValueError) and "999" in str(failure)
    assert _wire(first) == _wire(third)
    direct = MulticastSession(spec).run_batch(good.mechanism, list(good.profiles))
    assert _wire(first) == _wire(direct)


def test_drain_flushes_pending_work():
    spec = _spec(7)

    async def go():
        batcher = MicroBatcher(SessionStore(capacity=4), window=5.0)
        task = asyncio.ensure_future(batcher.submit(_request(spec, "jv")))
        await asyncio.sleep(0)  # let the submit enqueue
        assert batcher.pending() == 1
        await batcher.drain()   # don't wait out the 5s window
        return await asyncio.wait_for(task, timeout=1.0)

    results = asyncio.run(go())
    assert len(results) == 1


def test_invalid_max_batch_rejected():
    with pytest.raises(ValueError):
        MicroBatcher(SessionStore(capacity=1), max_batch=0)
