"""Tests for repro.graphs.mehlhorn (Voronoi-partition 2-approx Steiner).

The paper-level guarantee under test: the tree spans the terminals and
its cost is at most ``2 (1 - 1/k)`` times the optimum, checked against
the exact Dreyfus-Wagner oracle on small instances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.dense import CSRGraph, DenseGraph
from repro.graphs.adjacency import Graph
from repro.graphs.mehlhorn import mehlhorn_aux_metric, mehlhorn_steiner_tree
from repro.graphs.random_graphs import random_cost_matrix
from repro.graphs.steiner import dreyfus_wagner
from repro.wireless.cost_graph import CostGraph


def random_net(seed, n=9):
    return CostGraph(random_cost_matrix(n, rng=seed))


def path_graph(n):
    g = Graph()
    g.add_nodes(range(n))
    for i in range(n - 1):
        g.add_edge(i, i + 1, 1.0)
    return g


class TestAuxiliaryMetric:
    def test_aux_mst_totals_match_across_backends(self):
        net = random_net(0)
        terminals = [0, 2, 5, 7]
        dense = mehlhorn_aux_metric(net.as_dense(), terminals)
        csr = mehlhorn_aux_metric(
            CSRGraph.from_graph(net.as_graph()), terminals)
        assert np.array_equal(dense.dist, csr.dist)
        assert dense.spanning_mst()[1] == pytest.approx(csr.spanning_mst()[1])

    def test_disconnected_terminals_raise(self):
        g = Graph()
        g.add_nodes(range(4))
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 3, 1.0)
        aux = mehlhorn_aux_metric(g, [0, 3])
        with pytest.raises(ValueError, match="disconnected"):
            aux.spanning_mst()

    def test_arbitrary_labels_rejected(self):
        g = Graph()
        g.add_nodes(["a", "b"])
        g.add_edge("a", "b", 1.0)
        with pytest.raises(ValueError, match="integer station labels"):
            mehlhorn_aux_metric(g, ["a", "b"])

    def test_duplicate_terminals_collapse(self):
        net = random_net(1)
        aux = mehlhorn_aux_metric(net.as_dense(), [0, 3, 3, 0])
        assert aux.terminals == (0, 3)


class TestMehlhornSteinerTree:
    def test_trivial_cases(self):
        net = random_net(2)
        assert mehlhorn_steiner_tree(net.as_dense(), []).cost == 0.0
        single = mehlhorn_steiner_tree(net.as_dense(), [3])
        assert single.cost == 0.0
        assert single.nodes == frozenset([3])

    def test_path_graph_exact(self):
        g = path_graph(6)
        tree = mehlhorn_steiner_tree(g, [0, 5])
        assert tree.cost == pytest.approx(5.0)
        assert tree.nodes == frozenset(range(6))

    def test_tree_is_valid(self):
        net = random_net(3)
        terminals = [0, 2, 4, 6, 8]
        tree = mehlhorn_steiner_tree(net.as_dense(), terminals)
        assert set(terminals) <= set(tree.nodes)
        assert len(tree.edges) == len(tree.nodes) - 1
        g = tree.as_graph()
        from repro.graphs.traversal import is_connected

        assert is_connected(g)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), data=st.data())
    def test_property_within_2x_of_optimal(self, seed, data):
        n = data.draw(st.integers(5, 9))
        k = data.draw(st.integers(2, min(5, n)))
        net = random_net(seed, n=n)
        terminals = [0, *data.draw(
            st.lists(st.integers(1, n - 1), min_size=k - 1, max_size=k - 1,
                     unique=True))]
        tree = mehlhorn_steiner_tree(net.as_dense(), terminals)
        opt = dreyfus_wagner(net.as_graph(), terminals)
        k_eff = len(set(terminals))
        bound = 2.0 * (1.0 - 1.0 / k_eff) * opt
        assert tree.cost <= bound + 1e-9
        # the auxiliary MST weight backs the same bound and dominates
        # the built (pruned) tree
        aux = mehlhorn_aux_metric(net.as_dense(), terminals)
        _, aux_total = aux.spanning_mst()
        assert aux_total <= bound + 1e-9
        assert tree.cost <= aux_total + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_backends_agree(self, seed):
        net = random_net(seed, n=10)
        terminals = [0, 3, 6, 9]
        t_dense = mehlhorn_steiner_tree(net.as_dense(), terminals)
        t_csr = mehlhorn_steiner_tree(
            CSRGraph.from_graph(net.as_graph()), terminals)
        assert t_dense.cost == pytest.approx(t_csr.cost)

    def test_backend_forced(self):
        g = path_graph(8)
        t_dense = mehlhorn_steiner_tree(g, [0, 7], backend="dense")
        t_csr = mehlhorn_steiner_tree(g, [0, 7], backend="csr")
        assert t_dense.cost == t_csr.cost == pytest.approx(7.0)

    def test_dense_graph_passthrough(self):
        net = random_net(4)
        dense = DenseGraph.from_cost_graph(net)
        tree = mehlhorn_steiner_tree(dense, [0, 1, 2])
        assert tree.cost > 0.0
