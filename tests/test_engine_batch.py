"""Tests for repro.engine.batch: memoised batched mechanism evaluation."""

import numpy as np
import pytest

import repro.engine as engine
from repro.analysis.instances import random_utilities
from repro.core import EuclideanJVMechanism, UniversalTreeShapleyMechanism
from repro.engine.batch import (
    JVBatch,
    MethodCache,
    UniversalTreeBatch,
    run_profiles,
    sweep_instances,
)
from repro.geometry import uniform_points
from repro.wireless import EuclideanCostGraph, UniversalTree


def small_network(n=7, seed=0):
    return EuclideanCostGraph(uniform_points(n, 2, rng=seed, side=5.0), alpha=2.0)


def profile_stream(network, k, seed=0, scale=2.0):
    rng = np.random.default_rng(seed)
    return [random_utilities(network, 0, rng, scale=scale) for _ in range(k)]


class TestMethodCache:
    def test_memoises_and_counts(self):
        calls = []

        def method(R):
            calls.append(R)
            return {i: 1.0 for i in R}

        cache = MethodCache(method)
        R = frozenset({1, 2})
        assert cache(R) == {1: 1.0, 2: 1.0}
        assert cache(R) == {1: 1.0, 2: 1.0}
        assert len(calls) == 1
        assert cache.hits == 1 and cache.misses == 1
        assert cache.hit_rate == 0.5

    def test_returns_fresh_copies(self):
        cache = MethodCache(lambda R: {i: 1.0 for i in R})
        first = cache(frozenset({1}))
        first[1] = 99.0
        assert cache(frozenset({1})) == {1: 1.0}

    def test_clear(self):
        cache = MethodCache(lambda R: {})
        cache(frozenset())
        cache.clear()
        assert cache.hits == 0 and cache.misses == 0 and cache.hit_rate == 0.0


class TestRunProfiles:
    def test_matches_naive_loop(self):
        network = small_network()
        tree = UniversalTree.from_shortest_paths(network, 0)
        mech = UniversalTreeShapleyMechanism(tree)
        profiles = profile_stream(network, 6)

        from repro.core.universal_tree_mechanisms import universal_tree_shapley_shares

        batched = run_profiles(
            tree.agents(), lambda R: universal_tree_shapley_shares(tree, R),
            profiles,
        )
        naive = [mech.run(p) for p in profiles]
        for a, b in zip(batched, naive):
            assert a.receivers == b.receivers
            assert a.shares == b.shares

    def test_cache_false_calls_method_directly(self):
        calls = []

        def method(R):
            calls.append(1)
            return {i: 0.0 for i in R}

        run_profiles([1, 2], method, [{1: 5.0, 2: 5.0}] * 3, cache=False)
        assert len(calls) == 3  # no memoisation across profiles

    def test_cache_false_unwraps_an_existing_method_cache(self):
        calls = []

        def method(R):
            calls.append(1)
            return {i: 0.0 for i in R}

        wrapped = MethodCache(method)
        run_profiles([1, 2], wrapped, [{1: 5.0, 2: 5.0}] * 3, cache=False)
        assert len(calls) == 3  # the wrapper was bypassed, as documented
        assert wrapped.hits == wrapped.misses == 0


class TestUniversalTreeBatch:
    def test_identical_to_per_profile_runs(self):
        network = small_network(8, seed=3)
        profiles = profile_stream(network, 8, seed=1)
        batch = UniversalTreeBatch(network, 0, kind="spt")
        batched = batch.shapley(profiles)
        tree = UniversalTree.from_shortest_paths(network, 0)
        for result, profile in zip(batched, profiles):
            solo = UniversalTreeShapleyMechanism(tree).run(profile)
            assert result.receivers == solo.receivers
            assert result.shares == solo.shares
            assert result.cost == solo.cost
        assert batch.shapley_method.hits > 0  # the stream actually shared work

    def test_marginal_cost_stream(self):
        network = small_network(6, seed=5)
        profiles = profile_stream(network, 3, seed=2)
        results = UniversalTreeBatch(network, 0).marginal_cost(profiles)
        assert len(results) == 3
        for r in results:
            assert r.total_charged() <= r.cost + 1e-9  # MC may run a deficit

    def test_tree_kinds_and_validation(self):
        network = small_network(5)
        assert UniversalTreeBatch(network, 0, kind="mst").tree.parents[0] is None
        assert UniversalTreeBatch(network, 0, kind="star").tree.parents[3] == 0
        with pytest.raises(ValueError):
            UniversalTreeBatch(network, 0, kind="bogus")


class TestJVBatch:
    def test_identical_to_per_profile_runs(self):
        network = small_network(7, seed=9)
        profiles = profile_stream(network, 5, seed=4)
        batched = JVBatch(network, 0).run(profiles)
        mech = EuclideanJVMechanism(network, 0)
        for result, profile in zip(batched, profiles):
            solo = mech.run(profile)
            assert result.receivers == solo.receivers
            assert result.shares == solo.shares
            assert result.extra["closure_mst_weight"] == \
                solo.extra["closure_mst_weight"]


class TestSweepInstances:
    def test_rows_tagged_with_instance_index(self):
        rows = sweep_instances([10, 20], lambda x: {"value": x * 2})
        assert rows == [{"value": 20, "instance": 0}, {"value": 40, "instance": 1}]

    def test_explicit_instance_key_kept(self):
        rows = sweep_instances(["a"], lambda x: {"instance": "custom"})
        assert rows[0]["instance"] == "custom"


class TestLazyPackageExports:
    def test_batch_names_resolve_through_package(self):
        assert engine.MethodCache is MethodCache
        assert engine.UniversalTreeBatch is UniversalTreeBatch
        with pytest.raises(AttributeError):
            engine.does_not_exist
