"""Tests for repro.wireless.line: exact interval Dijkstra, the paper's
chain construction, and the all-intervals table."""

import numpy as np
import pytest

from repro.geometry.points import PointSet, uniform_points
from repro.wireless.cost_graph import EuclideanCostGraph
from repro.wireless.line import (
    chain_line_multicast,
    line_all_interval_costs,
    optimal_line_multicast,
)
from repro.wireless.memt import optimal_multicast_cost


class TestExactLineSolver:
    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("alpha", [1.0, 2.0, 3.0])
    def test_matches_generic_exact_oracle(self, seed, alpha):
        rng = np.random.default_rng(seed)
        pts = uniform_points(6, 1, rng=rng, side=5.0)
        net = EuclideanCostGraph(pts, alpha)
        xs = pts.coords.ravel()
        src = int(rng.integers(0, 6))
        others = [i for i in range(6) if i != src]
        R = sorted(int(x) for x in rng.choice(others, size=3, replace=False))
        cost, pa = optimal_line_multicast(xs, alpha, src, R)
        assert cost == pytest.approx(optimal_multicast_cost(net, src, R))
        assert pa.reaches(net, src, R)

    def test_unsorted_coords_handled(self):
        xs = [5.0, 1.0, 3.0, 0.0]
        cost, pa = optimal_line_multicast(xs, 2.0, 3, [0])
        net = EuclideanCostGraph(PointSet(xs), 2.0)
        assert pa.reaches(net, 3, [0])
        assert cost == pytest.approx(optimal_multicast_cost(net, 3, [0]))

    def test_empty_receivers(self):
        cost, pa = optimal_line_multicast([0.0, 1.0], 2.0, 0, [])
        assert cost == 0.0 and pa.cost() == 0.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            optimal_line_multicast([0.0, 1.0], 0.5, 0, [1])

    def test_backward_coverage_counterexample(self):
        """The instance where a rightward transmission covers a receiver
        behind the transmitter — the paper's chain construction misses it."""
        xs = [2.559, 4.752, 0.721, 4.743, 1.559, 2.117]
        exact, _ = optimal_line_multicast(xs, 2.0, 4, [0, 1, 2, 3, 5])
        chain, _ = chain_line_multicast(xs, 2.0, 4, [0, 1, 2, 3, 5])
        assert exact == pytest.approx(5.2767, abs=1e-3)
        assert chain > exact + 0.3  # strictly suboptimal here


class TestChainConstruction:
    @pytest.mark.parametrize("seed", range(8))
    def test_upper_bound_and_feasible(self, seed):
        rng = np.random.default_rng(seed)
        pts = uniform_points(7, 1, rng=rng, side=5.0)
        net = EuclideanCostGraph(pts, 2.0)
        xs = pts.coords.ravel()
        R = sorted(int(x) for x in rng.choice(range(1, 7), size=3, replace=False))
        chain_cost, pa = chain_line_multicast(xs, 2.0, 0, R)
        exact_cost, _ = optimal_line_multicast(xs, 2.0, 0, R)
        assert chain_cost >= exact_cost - 1e-9
        assert pa.reaches(net, 0, R)

    def test_single_receiver_adjacent(self):
        cost, _ = chain_line_multicast([0.0, 2.0], 2.0, 0, [1])
        assert cost == pytest.approx(4.0)


class TestAllIntervalCosts:
    @pytest.mark.parametrize("seed", range(5))
    def test_table_matches_direct_solves(self, seed):
        rng = np.random.default_rng(seed)
        pts = uniform_points(6, 1, rng=rng, side=4.0)
        xs = pts.coords.ravel()
        src = int(rng.integers(0, 6))
        table = line_all_interval_costs(xs, 2.0, src)
        for f in range(6):
            for l in range(6):
                if xs[f] > xs[l]:
                    continue
                key = tuple(sorted((f, l), key=lambda i: (xs[i], i)))
                direct, _ = optimal_line_multicast(xs, 2.0, src, {f, l} - {src})
                assert table[key] == pytest.approx(direct), (f, l)

    def test_covers_all_pairs(self):
        xs = [0.0, 1.0, 2.0]
        table = line_all_interval_costs(xs, 2.0, 1)
        assert (0, 2) in table and (1, 1) in table
        assert table[(1, 1)] == 0.0
