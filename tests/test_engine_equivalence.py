"""Property-based dense-vs-dict backend equivalence (ISSUE 1 acceptance).

On random Euclidean and random symmetric instances the dense backend must
reproduce the dict backend *exactly*: same Dijkstra distances, same MST
tree costs, same metric closures — and, one level up, bit-identical
mechanism outputs (cost shares, service sets) since the mechanisms consume
only those quantities.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.instances import random_utilities
from repro.core import UniversalTreeMCMechanism, UniversalTreeShapleyMechanism
from repro.core.jv_steiner import JVSteinerShares
from repro.engine.backend import as_array_backend
from repro.geometry import uniform_points
from repro.graphs.mst import kruskal_complete, mst_weight, prim_mst
from repro.graphs.random_graphs import random_connected_graph, random_cost_matrix
from repro.graphs.shortest_paths import dijkstra
from repro.graphs.steiner import metric_closure
from repro.wireless import CostGraph, EuclideanCostGraph, UniversalTree

seeds = st.integers(min_value=0, max_value=10_000)
sizes = st.integers(min_value=2, max_value=12)

MAX_EXAMPLES = 25


def euclidean_network(seed: int, n: int) -> EuclideanCostGraph:
    return EuclideanCostGraph(uniform_points(n, 2, rng=seed, side=5.0), alpha=2.0)


def symmetric_network(seed: int, n: int) -> CostGraph:
    return CostGraph(random_cost_matrix(n, rng=seed))


@st.composite
def networks(draw):
    seed = draw(seeds)
    n = draw(sizes)
    if draw(st.booleans()):
        return euclidean_network(seed, n)
    return symmetric_network(seed, n)


class TestKernelEquivalence:
    @given(networks())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_dijkstra_distances_identical(self, network):
        dist_dict, _ = dijkstra(network.as_graph(), 0)
        dist_dense, _ = dijkstra(network.as_dense(), 0)
        assert dist_dense == dist_dict  # exact float equality, same keys

    @given(networks())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_prim_tree_cost_identical(self, network):
        tree_dict = prim_mst(network.as_graph(), root=0)
        tree_dense = prim_mst(network.as_dense(), root=0)
        assert len(tree_dense) == len(tree_dict) == network.n - 1
        assert mst_weight(tree_dense) == mst_weight(tree_dict)

    @given(networks())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_metric_closure_distances_identical(self, network):
        terminals = list(range(0, network.n, 2))
        c_dict = metric_closure(network.as_graph(), terminals)
        c_dense = metric_closure(network.as_dense(), terminals)
        assert c_dense.distance == c_dict.distance
        for (a, b), path in c_dense.path.items():
            assert path[0] == a and path[-1] == b
            total = sum(network.cost(u, v) for u, v in zip(path, path[1:]))
            assert total == pytest.approx(c_dense.dist(a, b))

    @given(seeds, st.integers(min_value=3, max_value=14))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_sparse_csr_matches_dict(self, seed, n):
        g = random_connected_graph(n, rng=seed)
        csr = as_array_backend(g, prefer="csr")
        dist_dict, _ = dijkstra(g, 0)
        dist_csr, _ = dijkstra(csr, 0)
        assert dist_csr == dist_dict
        assert mst_weight(prim_mst(csr, root=0)) == mst_weight(prim_mst(g, root=0))


class TestMechanismEquivalence:
    """Bit-identical mechanism outputs across backends (random instances —
    no exact distance ties — so the universal trees coincide too)."""

    @given(seeds, st.integers(min_value=3, max_value=10), st.booleans())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_universal_tree_mechanisms_identical(self, seed, n, euclidean):
        network = euclidean_network(seed, n) if euclidean else symmetric_network(seed, n)
        tree_dense = UniversalTree.from_shortest_paths(network, 0)
        tree_dict = UniversalTree.from_shortest_paths(network, 0, backend="dict")
        assert tree_dense.parents == tree_dict.parents

        profile = random_utilities(network, 0, np.random.default_rng(seed))
        res_dense = UniversalTreeShapleyMechanism(tree_dense).run(profile)
        res_dict = UniversalTreeShapleyMechanism(tree_dict).run(profile)
        assert res_dense.receivers == res_dict.receivers
        assert res_dense.shares == res_dict.shares  # bit-identical
        assert res_dense.cost == res_dict.cost

        mc_dense = UniversalTreeMCMechanism(tree_dense).run(profile)
        mc_dict = UniversalTreeMCMechanism(tree_dict).run(profile)
        assert mc_dense.receivers == mc_dict.receivers
        assert mc_dense.shares == mc_dict.shares

    @given(seeds, st.integers(min_value=3, max_value=10))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_mst_universal_tree_identical(self, seed, n):
        network = euclidean_network(seed, n)
        t_dense = UniversalTree.from_mst(network, 0)
        t_dict = UniversalTree.from_mst(network, 0, backend="dict")
        assert t_dense.parents == t_dict.parents

    @given(seeds, st.integers(min_value=3, max_value=9))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_jv_moat_matches_kruskal_trace_reference(self, seed, n):
        """The index-array moat kernel reproduces the dict Kruskal-trace
        formulation of the JV shares share-for-share."""
        network = euclidean_network(seed, n)
        jv = JVSteinerShares(network, 0)
        agents = list(range(1, n))
        rng = np.random.default_rng(seed)
        size = int(rng.integers(1, len(agents) + 1)) if agents else 0
        R = frozenset(int(x) for x in rng.choice(agents, size=size, replace=False))

        got = jv.shares(R)
        expected = _reference_moat_shares(jv, R)
        assert got == expected  # identical merge schedule => identical floats
        assert sum(got.values()) == pytest.approx(jv.closure_mst_weight(R))

    @given(seeds, st.integers(min_value=3, max_value=9))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_jv_weighted_moat_matches_reference(self, seed, n):
        """The weighted family (per-user mappings f_i) also reproduces the
        Kruskal-trace formulation, with component weight totals accumulated
        in the kernel's documented sorted-station order."""
        network = euclidean_network(seed, n)
        rng = np.random.default_rng(seed)
        agent_weights = {i: float(rng.uniform(0.5, 3.0)) for i in range(1, n)}
        jv = JVSteinerShares(network, 0, agent_weights)
        R = frozenset(range(1, n))

        got = jv.shares(R)
        expected = _reference_moat_shares(jv, R)
        assert got == expected
        assert sum(got.values()) == pytest.approx(jv.closure_mst_weight(R))


class TestChurnEquivalence:
    """ISSUE 4 differential oracles: incremental epoch replay vs cold
    per-epoch recomputation, and dict vs dense backends under churn."""

    @st.composite
    def dynamic_specs(draw):
        from repro.dynamic import ChurnSpec, DynamicScenarioSpec

        return DynamicScenarioSpec(
            kind="random",
            n=draw(st.integers(min_value=3, max_value=9)),
            alpha=2.0,
            seed=draw(seeds),
            side=5.0,
            churn=ChurnSpec(
                epochs=draw(st.integers(min_value=1, max_value=4)),
                seed=draw(seeds),
                join_rate=draw(st.floats(min_value=0.0, max_value=0.6)),
                leave_rate=draw(st.floats(min_value=0.0, max_value=0.6)),
                move_rate=draw(st.floats(min_value=0.0, max_value=0.5)),
            ),
        )

    @given(dynamic_specs(), st.sampled_from(["tree-shapley", "tree-mc", "jv"]))
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_incremental_replay_matches_cold_session(self, spec, mechanism):
        from repro.api import MulticastSession, result_to_dict
        from repro.dynamic import DynamicSession
        from repro.runner import ProfileSpec

        dyn = DynamicSession(spec)
        profile_spec = ProfileSpec(count=2)
        for epoch in range(spec.n_epochs):
            profiles = dyn.epoch_profiles(epoch, profile_spec)
            incremental = dyn.run_epoch(epoch, mechanism, profiles)
            cold = MulticastSession(spec.materialize(epoch)).run_batch(
                mechanism, profiles)
            assert ([result_to_dict(r) for r in incremental]
                    == [result_to_dict(r) for r in cold])

    @given(dynamic_specs())
    @settings(max_examples=MAX_EXAMPLES, deadline=None)
    def test_dict_and_dense_backends_agree_under_churn(self, spec):
        from repro.dynamic import DynamicSession
        from repro.runner import ProfileSpec

        dyn = DynamicSession(spec)
        for epoch in range(spec.n_epochs):
            network = spec.materialize(epoch).build_network()
            t_dense = UniversalTree.from_shortest_paths(network, 0)
            t_dict = UniversalTree.from_shortest_paths(network, 0, backend="dict")
            assert t_dense.parents == t_dict.parents
            for profile in dyn.epoch_profiles(epoch, ProfileSpec(count=2)):
                res_dense = UniversalTreeShapleyMechanism(t_dense).run(profile)
                res_dict = UniversalTreeShapleyMechanism(t_dict).run(profile)
                assert res_dense.receivers == res_dict.receivers
                assert res_dense.shares == res_dict.shares  # bit-identical
                assert res_dense.cost == res_dict.cost


def _reference_moat_shares(jv: JVSteinerShares, R: frozenset) -> dict:
    """The seed's dict-graph Kruskal-trace moat (kept here as the oracle).

    Weight totals are summed over sorted members — the deterministic order
    the kernel documents (the retired implementation summed in frozenset
    hash order, which is not reproducible as an oracle).
    """
    members = sorted(set(R) - {jv.source})
    if not members:
        return {}
    pts = [jv.source, *members]
    _, events = kruskal_complete(pts, lambda u, v: float(jv.closure[u, v]), trace=True)
    shares = {i: 0.0 for i in members}
    birth = {frozenset([p]): 0.0 for p in pts}
    for ev in events:
        for side in (ev.component_u, ev.component_v):
            if jv.source in side:
                continue
            t0 = birth.pop(side)
            span = ev.weight - t0
            if span <= 0:
                continue
            if jv.agent_weights is None:
                for i in side:
                    shares[i] += span * 1.0 / len(side)
            else:
                total_w = sum(jv._weight(i) for i in sorted(side))
                for i in side:
                    shares[i] += span * jv._weight(i) / total_w
        birth[ev.component_u | ev.component_v] = ev.weight
    return shares
