"""Tests for repro.wireless.power."""

import numpy as np
import pytest

from repro.wireless.cost_graph import CostGraph
from repro.wireless.power import PowerAssignment


@pytest.fixture()
def net():
    # 0 -1- 1 -2- 2 ; 0 -4- 2
    return CostGraph(np.array([
        [0.0, 1.0, 4.0],
        [1.0, 0.0, 2.0],
        [4.0, 2.0, 0.0],
    ]))


class TestPowerAssignment:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerAssignment([-1.0])
        with pytest.raises(ValueError):
            PowerAssignment(np.zeros((2, 2)))

    def test_cost(self):
        pa = PowerAssignment([1.0, 2.0, 0.0])
        assert pa.cost() == 3.0
        assert pa[1] == 2.0 and pa.n == 3

    def test_zeros(self):
        pa = PowerAssignment.zeros(4)
        assert pa.cost() == 0.0 and pa.n == 4

    def test_implements(self, net):
        pa = PowerAssignment([1.0, 0.0, 0.0])
        assert pa.implements(net, 0, 1)
        assert not pa.implements(net, 0, 2)
        assert not pa.implements(net, 0, 0)

    def test_transmission_digraph(self, net):
        pa = PowerAssignment([1.0, 2.0, 0.0])
        g = pa.transmission_digraph(net)
        assert g.has_edge(0, 1) and not g.has_edge(0, 2)
        assert g.has_edge(1, 0) and g.has_edge(1, 2)
        assert g.out_degree(2) == 0

    def test_reaches_multihop(self, net):
        pa = PowerAssignment([1.0, 2.0, 0.0])
        assert pa.reaches(net, 0, [2])  # via 1
        assert pa.reaches(net, 0, [1, 2])
        assert not PowerAssignment([1.0, 0.0, 0.0]).reaches(net, 0, [2])

    def test_reaches_trivial(self, net):
        pa = PowerAssignment.zeros(3)
        assert pa.reaches(net, 0, [])
        assert pa.reaches(net, 0, [0])  # source itself

    def test_raised(self, net):
        pa = PowerAssignment([1.0, 0.0, 0.0])
        up = pa.raised(0, 4.0)
        assert up[0] == 4.0 and pa[0] == 1.0  # original untouched
        assert up.raised(0, 2.0)[0] == 4.0  # never lowers

    def test_size_mismatch(self, net):
        with pytest.raises(ValueError):
            PowerAssignment([1.0]).transmission_digraph(net)

    def test_read_only(self):
        pa = PowerAssignment([1.0])
        with pytest.raises(ValueError):
            pa.powers[0] = 5.0
