"""The serving acceptance property: every path answers bit-identically.

For random scenario/mechanism/profile triples, the service's cold path
(fresh store), warm path (LRU hit), and micro-batched path (requests
sharing a flush window) must produce responses *bit-identical* — compared
as sorted-key JSON bytes — to a direct cold
:class:`~repro.api.MulticastSession` run.  The store and batcher may only
change when work happens, never what it computes.
"""

from __future__ import annotations

import asyncio
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import MulticastSession, ScenarioSpec, result_to_dict
from repro.dynamic import ChurnSpec, DynamicScenarioSpec
from repro.geometry.layouts import LAYOUT_FAMILIES
from repro.service import CostSharingService, ServiceClient

MECHANISMS = ("tree-shapley", "tree-mc", "jv", "nwst", "wireless")

scenario_st = st.builds(
    ScenarioSpec.from_random,
    n=st.integers(min_value=4, max_value=9),
    alpha=st.sampled_from([1.0, 2.0, 3.0]),
    seed=st.integers(min_value=0, max_value=50),
    layout=st.sampled_from(LAYOUT_FAMILIES),
    tree=st.sampled_from(["spt", "mst"]),
)

utility_st = st.floats(min_value=0.0, max_value=25.0,
                       allow_nan=False, allow_infinity=False)


def _canon(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def _direct_wire(spec: ScenarioSpec, mechanism: str, profiles) -> list[dict]:
    return [result_to_dict(r)
            for r in MulticastSession(spec).run_batch(mechanism, profiles)]


@settings(max_examples=20, deadline=None)
@given(scenario=scenario_st, mechanism=st.sampled_from(MECHANISMS),
       data=st.data())
def test_cold_warm_and_batched_paths_are_bit_identical(scenario, mechanism, data):
    profiles = data.draw(st.lists(
        st.fixed_dictionaries({a: utility_st for a in scenario.agents()}),
        min_size=1, max_size=3))
    direct = _direct_wire(scenario, mechanism, profiles)

    async def go():
        service = CostSharingService(cache_size=4, batch_window=0.01)
        client = ServiceClient(service)
        cold_status, cold = await client.run(scenario, mechanism, profiles)
        warm_status, warm = await client.run(scenario, mechanism, profiles)
        # Batched: several concurrent requests share one flush window
        # (and, for the repeated one, the same scenario group).
        batched = await asyncio.gather(
            client.run(scenario, mechanism, profiles),
            client.run(scenario, mechanism, profiles[:1]),
            client.run(scenario, mechanism, profiles))
        await service.drain()
        return (cold_status, cold), (warm_status, warm), batched, service

    (cold_status, cold), (warm_status, warm), batched, service = asyncio.run(go())
    assert cold_status == warm_status == 200
    assert _canon(cold["results"]) == _canon(direct)
    assert _canon(cold) == _canon(warm)
    for status, payload in (batched[0], batched[2]):
        assert status == 200
        assert _canon(payload) == _canon(cold)
    assert batched[1][0] == 200
    assert _canon(batched[1][1]["results"]) == _canon(direct[:1])
    # The warm path actually exercised the cache (not a silent rebuild).
    assert service.store.stats()["hits"] >= 1


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=30),
       epoch=st.integers(min_value=0, max_value=2),
       mechanism=st.sampled_from(["tree-shapley", "jv"]),
       data=st.data())
def test_dynamic_epochs_match_cold_materialized_sessions(seed, epoch, mechanism, data):
    spec = DynamicScenarioSpec(
        kind="random", n=7, alpha=2.0, seed=seed,
        churn=ChurnSpec(epochs=3, seed=seed + 1,
                        join_rate=0.4, leave_rate=0.3))
    profiles = data.draw(st.lists(
        st.fixed_dictionaries({a: utility_st for a in spec.agents()}),
        min_size=1, max_size=2))
    direct = _direct_wire(spec.materialize(epoch), mechanism, profiles)

    async def go():
        client = ServiceClient(CostSharingService(batch_window=0.005))
        status, payload = await client.run(spec, mechanism, profiles, epoch=epoch)
        repeat_status, repeat = await client.run(spec, mechanism, profiles,
                                                 epoch=epoch)
        await client.service.drain()
        return status, payload, repeat_status, repeat

    status, payload, repeat_status, repeat = asyncio.run(go())
    assert status == repeat_status == 200
    assert _canon(payload["results"]) == _canon(direct)
    assert _canon(repeat["results"]) == _canon(direct)
