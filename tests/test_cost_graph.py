"""Tests for repro.wireless.cost_graph."""

import numpy as np
import pytest

from repro.geometry.points import PointSet, uniform_points
from repro.wireless.cost_graph import CostGraph, EuclideanCostGraph


class TestCostGraph:
    def test_valid_construction(self):
        m = np.array([[0.0, 2.0], [2.0, 0.0]])
        net = CostGraph(m)
        assert net.n == 2 and net.cost(0, 1) == 2.0

    def test_rejects_nonzero_diagonal(self):
        with pytest.raises(ValueError):
            CostGraph([[1.0, 2.0], [2.0, 0.0]])

    def test_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            CostGraph([[0.0, 1.0], [2.0, 0.0]])

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CostGraph([[0.0, -1.0], [-1.0, 0.0]])

    def test_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            CostGraph(np.zeros((2, 3)))

    def test_power_levels_distinct_sorted(self):
        m = np.array([
            [0.0, 3.0, 1.0, 3.0],
            [3.0, 0.0, 2.0, 5.0],
            [1.0, 2.0, 0.0, 4.0],
            [3.0, 5.0, 4.0, 0.0],
        ])
        net = CostGraph(m)
        assert list(net.power_levels(0)) == [1.0, 3.0]  # duplicates collapsed
        assert list(net.power_levels(1)) == [2.0, 3.0, 5.0]

    def test_reachable_within(self):
        m = np.array([
            [0.0, 1.0, 4.0],
            [1.0, 0.0, 2.0],
            [4.0, 2.0, 0.0],
        ])
        net = CostGraph(m)
        assert list(net.reachable_within(0, 1.0)) == [1]
        assert list(net.reachable_within(0, 4.0)) == [1, 2]
        assert list(net.reachable_within(0, 0.5)) == []

    def test_as_graph_complete(self):
        net = CostGraph(np.array([[0, 1, 2], [1, 0, 3], [2, 3, 0]], dtype=float))
        g = net.as_graph()
        assert g.number_of_edges() == 3
        assert g.weight(1, 2) == 3.0

    def test_matrix_read_only(self):
        net = CostGraph(np.array([[0.0, 1.0], [1.0, 0.0]]))
        with pytest.raises(ValueError):
            net.matrix[0, 1] = 5.0


class TestEuclideanCostGraph:
    def test_costs_are_powered_distances(self):
        ps = PointSet([[0.0, 0.0], [3.0, 4.0]])
        net = EuclideanCostGraph(ps, alpha=2.0)
        assert net.cost(0, 1) == pytest.approx(25.0)
        assert net.distance(0, 1) == pytest.approx(5.0)
        assert net.dim == 2 and net.alpha == 2.0

    def test_alpha_one_is_distance(self):
        ps = uniform_points(5, 2, rng=0)
        net = EuclideanCostGraph(ps, alpha=1.0)
        for i in range(5):
            for j in range(5):
                if i != j:
                    assert net.cost(i, j) == pytest.approx(ps.distance(i, j))

    def test_alpha_below_one_rejected(self):
        with pytest.raises(ValueError):
            EuclideanCostGraph(uniform_points(3, 2, rng=0), alpha=0.9)

    def test_repr(self):
        net = EuclideanCostGraph(uniform_points(3, 2, rng=0), alpha=2.0)
        assert "EuclideanCostGraph" in repr(net)
