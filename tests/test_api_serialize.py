"""Tests for repro.api.serialize — the MechanismResult wire format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import (
    MulticastSession,
    ScenarioSpec,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.api.serialize import sanitize_extra
from repro.mechanism.base import MechanismResult
from repro.wireless import PowerAssignment

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
json_scalars = st.one_of(st.none(), st.booleans(), st.integers(), finite,
                         st.text(max_size=10))
json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=3),
        st.dictionaries(st.text(max_size=6), children, max_size=3),
    ),
    max_leaves=8,
)


def assert_results_equal(a: MechanismResult, b: MechanismResult) -> None:
    assert a.receivers == b.receivers
    assert a.shares == b.shares  # dict equality: exact floats
    assert a.cost == b.cost
    assert a.extra == b.extra
    if a.power is None:
        assert b.power is None
    else:
        assert np.array_equal(a.power.powers, b.power.powers)


@st.composite
def wire_results(draw):
    receivers = frozenset(draw(st.sets(st.integers(0, 9), max_size=6)))
    paying = draw(st.sets(st.sampled_from(sorted(receivers)), max_size=len(receivers))
                  ) if receivers else set()
    shares = {i: draw(st.floats(min_value=0, max_value=1e9, width=64)) for i in paying}
    cost = draw(finite)
    power = None
    if draw(st.booleans()):
        n = draw(st.integers(1, 8))
        power = PowerAssignment([draw(st.floats(min_value=0, max_value=1e9, width=64))
                                 for _ in range(n)])
    extra = draw(st.dictionaries(st.text(max_size=6), json_values, max_size=4))
    return MechanismResult(receivers=receivers, shares=shares, cost=cost,
                           power=power, extra=extra)


class TestResultRoundTrip:
    @settings(max_examples=80, deadline=None)
    @given(result=wire_results())
    def test_json_round_trip_exact(self, result):
        assert_results_equal(result_from_json(result_to_json(result)), result)

    @settings(max_examples=40, deadline=None)
    @given(result=wire_results())
    def test_dict_round_trip_exact(self, result):
        assert_results_equal(result_from_dict(result_to_dict(result)), result)

    def test_mechanism_output_round_trips(self):
        spec = ScenarioSpec.from_random(n=6, alpha=2.0, seed=4, side=5.0)
        session = MulticastSession(spec)
        profile = {i: 20.0 for i in spec.agents()}
        for name in ("tree-shapley", "jv", "wireless"):
            result = session.run(name, profile)
            back = result_from_json(result_to_json(result))
            assert back.receivers == result.receivers
            assert back.shares == result.shares
            assert back.cost == result.cost
            if result.power is not None:
                assert np.array_equal(back.power.powers, result.power.powers)


class TestWireSafety:
    def test_non_int_agents_rejected(self):
        r = MechanismResult(receivers=frozenset({("in", 1)}),
                            shares={("in", 1): 1.0}, cost=1.0)
        with pytest.raises(TypeError, match="station id"):
            result_to_dict(r)

    def test_unknown_schema_rejected(self):
        with pytest.raises(ValueError, match="schema"):
            result_from_dict({"schema": 99, "receivers": [], "shares": {}, "cost": 0.0})

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown result fields"):
            result_from_dict({"receivers": [], "shares": {}, "cost": 0.0, "bonus": 1})

    def test_extra_sets_become_sorted_lists(self):
        out = sanitize_extra({"bought": frozenset({("out", 2, 0), ("in", 1)})})
        assert out == {"bought": [["in", 1], ["out", 2, 0]]}

    def test_unserializable_extra_dropped(self):
        class Opaque:
            pass

        out = sanitize_extra({"keep": 1.5, "drop": Opaque(),
                              "nested": {"drop": Opaque(), "keep": "x"}})
        assert out == {"keep": 1.5, "nested": {"keep": "x"}}

    def test_numpy_values_survive(self):
        out = sanitize_extra({"a": np.float64(2.5), "b": np.arange(3)})
        assert out == {"a": 2.5, "b": [0, 1, 2]}
