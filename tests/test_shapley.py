"""Tests for repro.mechanism.shapley: axioms, closed forms, sampling."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mechanism.shapley import shapley_sample, shapley_shares


class TestShapleyAxioms:
    def test_efficiency_sums_to_grand_cost(self):
        cost = lambda R: float(len(R) ** 1.5)
        shares = shapley_shares([1, 2, 3, 4], cost)
        assert sum(shares.values()) == pytest.approx(cost(frozenset({1, 2, 3, 4})))

    def test_symmetry(self):
        cost = lambda R: float(bool(R))  # all agents identical
        shares = shapley_shares([1, 2, 3], cost)
        assert shares[1] == pytest.approx(shares[2]) == pytest.approx(shares[3])
        assert shares[1] == pytest.approx(1 / 3)

    def test_dummy_agent_pays_zero(self):
        # Agent 9 never changes the cost.
        cost = lambda R: 5.0 if (R - {9}) else 0.0
        shares = shapley_shares([1, 2, 9], cost)
        assert shares[9] == pytest.approx(0.0)

    def test_additivity(self):
        c1 = lambda R: float(len(R))
        c2 = lambda R: max((i for i in R), default=0.0)
        both = lambda R: c1(R) + c2(R)
        s1 = shapley_shares([1, 2, 3], c1)
        s2 = shapley_shares([1, 2, 3], c2)
        s12 = shapley_shares([1, 2, 3], both)
        for i in (1, 2, 3):
            assert s12[i] == pytest.approx(s1[i] + s2[i])

    def test_airport_game_closed_form(self):
        # Max game with a_1 <= a_2 <= a_3: classic airport-game shares.
        a = {1: 3.0, 2: 6.0, 3: 12.0}
        shares = shapley_shares([1, 2, 3], lambda R: max((a[i] for i in R), default=0.0))
        assert shares[1] == pytest.approx(1.0)  # 3/3
        assert shares[2] == pytest.approx(1.0 + 1.5)  # 3/3 + 3/2
        assert shares[3] == pytest.approx(1.0 + 1.5 + 6.0)

    def test_empty(self):
        assert shapley_shares([], lambda R: 0.0) == {}


class TestSampling:
    def test_converges_to_exact(self):
        a = {1: 2.0, 2: 5.0, 3: 9.0, 4: 1.0}
        cost = lambda R: max((a[i] for i in R), default=0.0)
        exact = shapley_shares(list(a), cost)
        approx = shapley_sample(list(a), cost, n_permutations=4000, rng=0)
        for i in a:
            assert approx[i] == pytest.approx(exact[i], rel=0.1)

    def test_sampling_is_budget_balanced_per_permutation(self):
        cost = lambda R: float(len(R) ** 2)
        approx = shapley_sample([1, 2, 3], cost, n_permutations=10, rng=1)
        assert sum(approx.values()) == pytest.approx(cost(frozenset({1, 2, 3})))


class TestMarginalVectorMethod:
    def test_budget_balanced_by_telescoping(self):
        from repro.mechanism.shapley import marginal_vector_method

        cost = lambda R: float(len(R) ** 1.5)
        method = marginal_vector_method([3, 1, 2], cost)
        shares = method(frozenset({1, 2, 3}))
        assert sum(shares.values()) == pytest.approx(cost(frozenset({1, 2, 3})))
        sub = method(frozenset({1, 2}))
        assert sum(sub.values()) == pytest.approx(cost(frozenset({1, 2})))

    def test_cross_monotonic_for_submodular(self):
        from repro.mechanism.moulin_shenker import check_cross_monotonicity
        from repro.mechanism.shapley import marginal_vector_method

        a = {1: 1.0, 2: 3.0, 3: 6.0, 4: 2.0}
        cost = lambda R: max((a[i] for i in R), default=0.0)
        method = marginal_vector_method([1, 2, 3, 4], cost)
        assert check_cross_monotonicity([1, 2, 3, 4], method) == []

    def test_order_dependence(self):
        from repro.mechanism.shapley import marginal_vector_method

        a = {1: 2.0, 2: 2.0}
        cost = lambda R: max((a[i] for i in R), default=0.0)
        first = marginal_vector_method([1, 2], cost)(frozenset({1, 2}))
        second = marginal_vector_method([2, 1], cost)(frozenset({1, 2}))
        assert first[1] == pytest.approx(2.0) and first[2] == pytest.approx(0.0)
        assert second[2] == pytest.approx(2.0) and second[1] == pytest.approx(0.0)

    def test_average_over_all_orders_is_shapley(self):
        import itertools

        from repro.mechanism.shapley import marginal_vector_method

        cost = lambda R: float(sum(R)) ** 0.8 if R else 0.0
        agents = [1, 2, 3]
        exact = shapley_shares(agents, cost)
        acc = {i: 0.0 for i in agents}
        orders = list(itertools.permutations(agents))
        for order in orders:
            shares = marginal_vector_method(order, cost)(frozenset(agents))
            for i in agents:
                acc[i] += shares[i] / len(orders)
        for i in agents:
            assert acc[i] == pytest.approx(exact[i])


@settings(max_examples=30, deadline=None)
@given(values=st.lists(st.floats(0.1, 50), min_size=1, max_size=6))
def test_max_game_shapley_is_cross_monotonic_in_the_small(values):
    """For submodular (max) games, removing an agent never lowers others'
    shares (Shapley cross-monotonicity — the Moulin-Shenker prerequisite)."""
    agents = list(range(len(values)))
    a = dict(zip(agents, values))
    cost = lambda R: max((a[i] for i in R), default=0.0)
    full = shapley_shares(agents, cost)
    if len(agents) < 2:
        return
    sub = shapley_shares(agents[:-1], cost)
    for i in agents[:-1]:
        assert sub[i] >= full[i] - 1e-9
