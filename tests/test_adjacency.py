"""Unit tests for repro.graphs.adjacency."""

import pytest

from repro.graphs.adjacency import DiGraph, Graph


class TestGraph:
    def test_add_nodes_idempotent(self):
        g = Graph()
        g.add_node("a")
        g.add_node("a")
        assert len(g) == 1 and "a" in g

    def test_add_edge_creates_nodes(self):
        g = Graph()
        g.add_edge(1, 2, 3.0)
        assert set(g.nodes()) == {1, 2}
        assert g.weight(1, 2) == g.weight(2, 1) == 3.0

    def test_parallel_edges_keep_minimum(self):
        g = Graph()
        g.add_edge(1, 2, 5.0)
        g.add_edge(1, 2, 3.0)
        g.add_edge(2, 1, 7.0)
        assert g.weight(1, 2) == 3.0

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(1, 1)

    def test_remove_node_clears_incident_edges(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 3, 1.0)
        g.remove_node(2)
        assert 2 not in g
        assert not g.has_edge(1, 2)
        assert g.degree(1) == 0 and g.degree(3) == 0

    def test_remove_edge(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2) and not g.has_edge(2, 1)
        assert len(g) == 2

    def test_edges_yielded_once(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 3, 2.0)
        edges = list(g.edges())
        assert len(edges) == 2
        assert g.number_of_edges() == 2
        assert g.total_weight() == 3.0

    def test_neighbors_and_degree(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(1, 3, 2.0)
        assert dict(g.neighbors(1)) == {2: 1.0, 3: 2.0}
        assert g.degree(1) == 2 and g.degree(2) == 1

    def test_copy_is_independent(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        h = g.copy()
        h.add_edge(2, 3, 1.0)
        assert 3 not in g and 3 in h

    def test_subgraph_induced(self):
        g = Graph()
        for u, v in [(1, 2), (2, 3), (3, 4), (1, 4)]:
            g.add_edge(u, v, 1.0)
        sub = g.subgraph([1, 2, 4])
        assert set(sub.nodes()) == {1, 2, 4}
        assert sub.has_edge(1, 2) and sub.has_edge(1, 4)
        assert not sub.has_edge(2, 3)

    def test_subgraph_of_missing_nodes(self):
        g = Graph()
        g.add_edge(1, 2, 1.0)
        sub = g.subgraph([1, 99])
        assert set(sub.nodes()) == {1}

    def test_hashable_node_types(self):
        g = Graph()
        g.add_edge(("in", 1), ("out", 1, 0), 1.0)
        assert g.has_edge(("out", 1, 0), ("in", 1))


class TestDiGraph:
    def test_directed_edge_one_way(self):
        g = DiGraph()
        g.add_edge(1, 2, 3.0)
        assert g.has_edge(1, 2) and not g.has_edge(2, 1)
        assert g.out_degree(1) == 1 and g.in_degree(2) == 1

    def test_parallel_arcs_keep_minimum(self):
        g = DiGraph()
        g.add_edge(1, 2, 5.0)
        g.add_edge(1, 2, 2.0)
        assert g.weight(1, 2) == 2.0

    def test_predecessors_successors(self):
        g = DiGraph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(3, 2, 2.0)
        assert dict(g.predecessors(2)) == {1: 1.0, 3: 2.0}
        assert dict(g.successors(1)) == {2: 1.0}

    def test_remove_node(self):
        g = DiGraph()
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 3, 1.0)
        g.remove_node(2)
        assert g.number_of_edges() == 0 and len(g) == 2

    def test_remove_edge(self):
        g = DiGraph()
        g.add_edge(1, 2, 1.0)
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)

    def test_to_undirected(self):
        g = DiGraph()
        g.add_edge(1, 2, 3.0)
        g.add_edge(2, 1, 5.0)
        u = g.to_undirected()
        assert u.weight(1, 2) == 3.0  # min of both arcs

    def test_self_loop_rejected(self):
        g = DiGraph()
        with pytest.raises(ValueError):
            g.add_edge("x", "x")

    def test_copy_is_independent(self):
        g = DiGraph()
        g.add_edge(1, 2, 1.0)
        h = g.copy()
        h.add_edge(2, 3, 1.0)
        assert g.number_of_edges() == 1 and h.number_of_edges() == 2
