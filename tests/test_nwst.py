"""Tests for repro.graphs.nwst: exact oracle, spiders, state machine, greedy."""

import itertools
import math

import pytest

from repro.graphs.adjacency import Graph
from repro.graphs.nwst import (
    GreedySpiderSolver,
    NWSTState,
    Spider,
    exact_node_weighted_steiner,
    find_min_ratio_spider,
)
from repro.graphs.random_graphs import random_node_weighted_instance
from repro.graphs.traversal import is_connected


def brute_force_nwst(graph: Graph, weights, terminals):
    """Minimum node-weight connected subgraph containing all terminals, by
    enumerating node subsets (tiny instances only)."""
    nodes = [v for v in graph.nodes() if v not in terminals]
    best = float("inf")
    base = set(terminals)
    for r in range(len(nodes) + 1):
        for extra in itertools.combinations(nodes, r):
            chosen = base | set(extra)
            if is_connected(graph.subgraph(chosen)):
                cost = sum(weights.get(x, 0.0) for x in chosen)
                best = min(best, cost)
    return best


class TestExactOracle:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, seed):
        graph, weights, terminals = random_node_weighted_instance(9, 3, rng=seed)
        exact = exact_node_weighted_steiner(graph, weights, terminals)
        brute = brute_force_nwst(graph, weights, terminals)
        assert exact == pytest.approx(brute)

    def test_single_terminal(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        assert exact_node_weighted_steiner(g, {"a": 2.0}, ["a"]) == 2.0
        assert exact_node_weighted_steiner(g, {}, []) == 0.0

    def test_two_terminals_is_cheapest_path(self):
        g = Graph()
        for u, v in [("s", "m1"), ("m1", "t"), ("s", "m2"), ("m2", "t")]:
            g.add_edge(u, v, 1.0)
        w = {"m1": 5.0, "m2": 2.0, "s": 0.0, "t": 0.0}
        assert exact_node_weighted_steiner(g, w, ["s", "t"]) == pytest.approx(2.0)

    def test_disconnected_raises(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_node(9)
        with pytest.raises(ValueError):
            exact_node_weighted_steiner(g, {}, [0, 9])

    def test_counts_terminal_weights(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        assert exact_node_weighted_steiner(g, {"a": 1.5, "b": 2.5}, ["a", "b"]) == 4.0


class TestSpiderFinder:
    def build_star(self):
        """Hub of weight 3 adjacent to 4 terminals; decoy of weight 10."""
        g = Graph()
        w = {"hub": 3.0, "decoy": 10.0}
        for t in range(4):
            g.add_edge("hub", ("t", t), 1.0)
            g.add_edge("decoy", ("t", t), 1.0)
            w[("t", t)] = 0.0
        return g, w, [("t", i) for i in range(4)]

    def test_picks_cheapest_center_and_all_terminals(self):
        g, w, terms = self.build_star()
        spider = find_min_ratio_spider(g, w, terms)
        assert spider is not None
        assert spider.terminals == frozenset(terms)
        assert spider.ratio == pytest.approx(3.0 / 4.0)
        assert "decoy" not in spider.nodes

    def test_min_terminals_respected(self):
        g, w, terms = self.build_star()
        assert find_min_ratio_spider(g, w, terms[:2]) is None  # fewer than 3
        sp = find_min_ratio_spider(g, w, terms[:3], min_terminals=3)
        assert sp is not None and len(sp.terminals) == 3

    def test_counts_exclude_protected_from_ratio(self):
        g, w, terms = self.build_star()
        counts = {terms[0]: 0}
        spider = find_min_ratio_spider(g, w, terms, counts=counts)
        assert spider is not None
        # Still covers everything; ratio divides only by countable terminals.
        assert spider.n_countable == len(spider.terminals & set(terms[1:]))
        assert spider.ratio == pytest.approx(spider.cost / spider.n_countable)

    def test_branch_mode_beats_classic_on_junction_instance(self):
        # Terminals pair up behind a shared junction; a branch leg pays the
        # junction once where classic legs pay it twice.
        g = Graph()
        w = {"c": 1.0, "j1": 4.0, "j2": 4.0}
        for i, j in [(0, "j1"), (1, "j1"), (2, "j2"), (3, "j2")]:
            g.add_edge(("t", i), j, 1.0)
            w[("t", i)] = 0.0
        g.add_edge("c", "j1", 1.0)
        g.add_edge("c", "j2", 1.0)
        classic = find_min_ratio_spider(g, w, [("t", i) for i in range(4)], mode="classic")
        branch = find_min_ratio_spider(g, w, [("t", i) for i in range(4)], mode="branch")
        assert branch is not None and classic is not None
        assert branch.ratio <= classic.ratio

    def test_invalid_mode(self):
        g, w, terms = self.build_star()
        with pytest.raises(ValueError):
            find_min_ratio_spider(g, w, terms, mode="bogus")

    def test_prefix_fallback_for_many_terminals(self):
        g = Graph()
        w = {"hub": 2.0}
        terms = []
        for t in range(6):
            node = ("t", t)
            g.add_edge("hub", node, 1.0)
            w[node] = 0.0
            terms.append(node)
        spider = find_min_ratio_spider(g, w, terms, max_dp_terminals=3)
        assert spider is not None
        assert spider.terminals == frozenset(terms)
        assert spider.ratio == pytest.approx(2.0 / 6.0)


class TestNWSTState:
    def test_contract_merges_members_and_buys_nodes(self):
        g = Graph()
        w = {"hub": 3.0, "x": 1.0}
        terms = []
        for t in range(3):
            node = ("t", t)
            g.add_edge("hub", node, 1.0)
            w[node] = 0.0
            terms.append(node)
        g.add_edge("hub", "x", 1.0)
        state = NWSTState(g, w, terms)
        spider = state.min_ratio_spider()
        meta = state.contract_spider(spider)
        assert state.terminals == {meta}
        assert state.member_terminals(meta) == frozenset(terms)
        assert "hub" in state.bought
        assert state.bought_weight() == pytest.approx(3.0)
        assert "x" in state.graph and state.graph.has_edge(meta, "x")

    def test_pass_through_terminal_absorbed(self):
        # A leg path that runs THROUGH a terminal must absorb it.
        g = Graph()
        w = {"m": 2.0}
        # chain: center hub - t0 - m - t1 ; plus t2 off the hub
        g.add_edge("hub", ("t", 0), 1.0)
        g.add_edge(("t", 0), "m", 1.0)
        g.add_edge("m", ("t", 1), 1.0)
        g.add_edge("hub", ("t", 2), 1.0)
        w["hub"] = 0.5
        for t in range(3):
            w[("t", t)] = 0.0
        terms = [("t", i) for i in range(3)]
        state = NWSTState(g, w, terms)
        spider = state.min_ratio_spider()
        meta = state.contract_spider(spider)
        # Whatever spider was chosen, the state stays consistent:
        assert all(t in state.graph for t in state.terminals)
        members = set().union(*(state.member_terminals(t) for t in state.terminals))
        assert members == set(terms)
        assert meta in state.terminals

    def test_connect_pair(self):
        g = Graph()
        w = {"mid": 2.5, "a": 0.0, "b": 0.0}
        g.add_edge("a", "mid", 1.0)
        g.add_edge("mid", "b", 1.0)
        state = NWSTState(g, w, ["a", "b"])
        meta, cost = state.connect_pair("a", "b")
        assert cost == pytest.approx(2.5)
        assert state.terminals == {meta}
        assert state.solution_is_connected()

    def test_missing_terminal_rejected(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            NWSTState(g, {}, [0, 99])


class TestGreedySolver:
    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("mode", ["branch", "classic"])
    def test_feasible_and_within_bound(self, seed, mode):
        graph, weights, terminals = random_node_weighted_instance(12, 4, rng=seed)
        solution = GreedySpiderSolver(mode=mode).solve(graph, weights, terminals)
        assert set(terminals) <= solution.nodes
        assert is_connected(graph.subgraph(solution.nodes))
        exact = exact_node_weighted_steiner(graph, weights, terminals)
        assert solution.cost >= exact - 1e-9
        assert solution.charged >= solution.cost - 1e-9
        k = len(terminals)
        bound = max(1.0, 1.5 * math.log(k)) if mode == "branch" else max(1.0, 2 * math.log(k))
        if exact > 1e-9:
            assert solution.charged <= bound * exact * (1 + 1e-9) + 1e-9

    def test_two_terminals_optimal(self):
        graph, weights, terminals = random_node_weighted_instance(10, 2, rng=1)
        solution = GreedySpiderSolver().solve(graph, weights, terminals)
        exact = exact_node_weighted_steiner(graph, weights, terminals)
        assert solution.cost == pytest.approx(exact)
