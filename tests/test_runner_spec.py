"""Tests for repro.runner.spec — SweepSpec / ProfileSpec wire format and
deterministic expansion."""

import pytest

from repro.api.spec import MechanismSpec, ScenarioSpec
from repro.runner import ProfileSpec, SweepSpec


def small_spec(**overrides) -> SweepSpec:
    base = dict(ns=(5, 6), alphas=(2.0,), seeds=(0, 1),
                layouts=("uniform", "cluster"),
                mechanisms=("tree-shapley", "jv"),
                profiles=ProfileSpec(count=2), side=5.0)
    base.update(overrides)
    return SweepSpec(**base)


class TestSweepSpecValidation:
    def test_axes_must_be_non_empty(self):
        with pytest.raises(ValueError, match="ns"):
            small_spec(ns=())
        with pytest.raises(ValueError, match="alphas"):
            small_spec(alphas=())
        with pytest.raises(ValueError, match="seeds"):
            small_spec(seeds=())
        with pytest.raises(ValueError, match="layouts"):
            small_spec(layouts=())
        with pytest.raises(ValueError, match="mechanisms"):
            small_spec(mechanisms=())

    def test_unknown_layout_family_rejected(self):
        with pytest.raises(ValueError, match="layout families"):
            small_spec(layouts=("uniform", "hexes"))

    def test_bad_scalar_axes_fail_at_build(self):
        with pytest.raises(ValueError, match="alpha"):
            small_spec(alphas=(2.0, 0.5))
        with pytest.raises(ValueError, match="source"):
            small_spec(source=5)
        with pytest.raises(ValueError, match="tree"):
            small_spec(tree="bfs")

    def test_mechanism_coercion(self):
        spec = small_spec(mechanisms=("jv", {"name": "tree-shapley",
                                             "params": {"tree": "mst"}}))
        assert spec.mechanisms == (
            MechanismSpec("jv"), MechanismSpec("tree-shapley", {"tree": "mst"}))

    def test_duplicate_mechanism_entries_rejected_at_expand(self):
        spec = small_spec(mechanisms=("jv", "jv"))
        with pytest.raises(ValueError, match="duplicate work item"):
            spec.expand()

    def test_profile_spec_validation(self):
        with pytest.raises(ValueError, match="generator"):
            ProfileSpec(generator="poisson")
        with pytest.raises(ValueError, match="count"):
            ProfileSpec(count=0)
        with pytest.raises(ValueError, match="scale"):
            ProfileSpec(scale=0.0)

    def test_frozen_and_hashable(self):
        assert small_spec() == small_spec()
        assert hash(small_spec()) == hash(small_spec())


class TestSweepSpecWireFormat:
    def test_json_round_trip(self):
        spec = small_spec(mechanisms=("jv", {"name": "tree-shapley",
                                             "params": {"tree": "mst"}}),
                          profiles=ProfileSpec("constant", count=1, scale=2.5))
        again = SweepSpec.from_json(spec.to_json())
        assert again == spec
        assert [i.item_id for i in again.expand()] == [i.item_id for i in spec.expand()]

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown SweepSpec fields"):
            SweepSpec.from_dict({"ns": [5], "alphas": [2.0], "seeds": [0],
                                 "chunk_size": 4})
        with pytest.raises(ValueError, match="unknown ProfileSpec fields"):
            ProfileSpec.from_dict({"count": 2, "burst": True})


class TestExpansion:
    def test_expansion_is_deterministic_and_scenario_major(self):
        spec = small_spec()
        items = spec.expand()
        assert [i.item_id for i in items] == [i.item_id for i in spec.expand()]
        assert len(items) == spec.n_items() == 2 * 2 * 1 * 2 * 2
        # Mechanisms innermost: items sharing a scenario are adjacent.
        for a, b in zip(items[::2], items[1::2]):
            assert a.scenario == b.scenario
            assert a.mechanism != b.mechanism

    def test_item_ids_unique_and_stable(self):
        items = small_spec().expand()
        ids = [i.item_id for i in items]
        assert len(set(ids)) == len(ids)
        assert ids[0] == "uniform-n5-a2-s0::tree-shapley"
        assert ids[-1] == "cluster-n6-a2-s1::jv"

    def test_parameterized_mechanisms_get_distinct_ids(self):
        spec = small_spec(mechanisms=(
            {"name": "tree-shapley"},
            {"name": "tree-shapley", "params": {"tree": "mst"}},
            {"name": "tree-shapley", "params": {"tree": "star"}},
        ))
        ids = [i.item_id for i in spec.expand()]
        assert len(set(ids)) == len(ids)

    def test_scenarios_carry_the_shared_scalars(self):
        spec = small_spec(dim=3, tree="mst")
        for scenario in spec.scenarios():
            assert isinstance(scenario, ScenarioSpec)
            assert scenario.dim == 3 and scenario.tree == "mst"
            assert scenario.side == 5.0 and scenario.layout in ("uniform", "cluster")


class TestProfileSeeding:
    def test_seed_derived_from_scenario_wire_form(self):
        pspec = ProfileSpec(count=2)
        a = ScenarioSpec.from_random(n=6, alpha=2.0, seed=1, layout="grid")
        b = ScenarioSpec.from_random(n=6, alpha=2.0, seed=1, layout="grid")
        c = ScenarioSpec.from_random(n=6, alpha=2.0, seed=2, layout="grid")
        assert pspec.derive_seed(a) == pspec.derive_seed(b)
        assert pspec.derive_seed(a) != pspec.derive_seed(c)

    def test_profile_base_seed_shifts_the_draw(self):
        scenario = ScenarioSpec.from_random(n=6, alpha=2.0, seed=1)
        assert (ProfileSpec(seed=0).derive_seed(scenario)
                != ProfileSpec(seed=1).derive_seed(scenario))

    def test_profiles_shared_across_mechanisms_of_a_scenario(self):
        # Every item of one scenario must price the *same* profiles, so
        # mechanism columns of a sweep stay paired.
        items = small_spec().expand()
        assert items[0].scenario == items[1].scenario
        assert items[0].profiles.derive_seed(items[0].scenario) == \
            items[1].profiles.derive_seed(items[1].scenario)
