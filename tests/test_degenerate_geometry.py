"""Edge-case geometry: ties, grids, collinear and coincident stations.

Regular grids maximise cost ties (many equal distances), coincident
stations create zero-cost links — both are classic sources of
tie-breaking and division-by-zero bugs in mechanism implementations.
"""

import numpy as np
import pytest

from repro.core import (
    EuclideanJVMechanism,
    UniversalTreeMCMechanism,
    UniversalTreeShapleyMechanism,
    WirelessMulticastMechanism,
)
from repro.geometry.points import PointSet, grid_points
from repro.wireless.cost_graph import EuclideanCostGraph
from repro.wireless.memt import optimal_multicast_cost
from repro.wireless.universal_tree import UniversalTree


@pytest.fixture()
def grid_net():
    return EuclideanCostGraph(grid_points(2, 3, spacing=1.0), alpha=2.0)


@pytest.fixture()
def coincident_net():
    # Stations 1 and 2 share a location; 3 sits apart.
    coords = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 0.0], [2.0, 1.0]])
    return EuclideanCostGraph(PointSet(coords), alpha=2.0)


class TestGridTies:
    def test_universal_tree_mechanisms_run(self, grid_net):
        tree = UniversalTree.from_shortest_paths(grid_net, 0)
        profile = {i: 2.0 for i in tree.agents()}
        shap = UniversalTreeShapleyMechanism(tree).run(profile)
        assert shap.total_charged() == pytest.approx(shap.cost)
        mc = UniversalTreeMCMechanism(tree).run(profile)
        assert mc.total_charged() <= mc.cost + 1e-9

    def test_jv_mechanism_on_ties(self, grid_net):
        result = EuclideanJVMechanism(grid_net, 0).run(
            {i: 5.0 for i in range(1, grid_net.n)}
        )
        assert result.receivers == frozenset(range(1, grid_net.n))
        assert result.power.reaches(grid_net, 0, result.receivers)

    def test_wireless_mechanism_on_ties(self, grid_net):
        result = WirelessMulticastMechanism(grid_net, 0).run(
            {i: 5.0 for i in range(1, grid_net.n)}
        )
        if result.receivers:
            assert result.power.reaches(grid_net, 0, result.receivers)
            assert result.total_charged() >= result.cost - 1e-6

    def test_grid_exact_cost_unit_structure(self, grid_net):
        """Broadcast on a 2x3 unit grid: covering neighbours costs 1 per
        transmission; the optimum uses the diagonal reach (cost 2) or
        several unit hops."""
        cost = optimal_multicast_cost(grid_net, 0, range(1, 6))
        assert 2.0 <= cost <= 5.0


class TestCoincidentStations:
    def test_zero_cost_link(self, coincident_net):
        assert coincident_net.cost(1, 2) == 0.0

    def test_exact_solver_handles_free_links(self, coincident_net):
        c12 = optimal_multicast_cost(coincident_net, 0, [1])
        c_both = optimal_multicast_cost(coincident_net, 0, [1, 2])
        assert c_both == pytest.approx(c12)  # the twin rides for free

    def test_shapley_mechanism_splits_free_riders(self, coincident_net):
        tree = UniversalTree.from_shortest_paths(coincident_net, 0)
        profile = {1: 5.0, 2: 5.0, 3: 5.0}
        result = UniversalTreeShapleyMechanism(tree).run(profile)
        assert result.total_charged() == pytest.approx(result.cost)
        # The coincident pair pays identical shares by symmetry.
        assert result.share(1) == pytest.approx(result.share(2))

    def test_jv_mechanism_free_riders(self, coincident_net):
        result = EuclideanJVMechanism(coincident_net, 0).run({1: 5.0, 2: 5.0, 3: 9.0})
        assert result.receivers == frozenset({1, 2, 3})
        assert result.share(1) == pytest.approx(result.share(2))


class TestCollinearIn2D:
    def test_line_embedded_in_plane(self):
        """Collinear 2-d instances behave like d = 1 for the exact oracle."""
        coords_2d = np.array([[x, 0.0] for x in [0.0, 1.0, 2.5, 4.0]])
        net2 = EuclideanCostGraph(PointSet(coords_2d), alpha=2.0)
        from repro.wireless.line import optimal_line_multicast

        c2 = optimal_multicast_cost(net2, 0, [1, 2, 3])
        c1, _ = optimal_line_multicast([0.0, 1.0, 2.5, 4.0], 2.0, 0, [1, 2, 3])
        assert c1 == pytest.approx(c2)
