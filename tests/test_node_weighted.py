"""Tests for repro.graphs.node_weighted (oracle: edge-weight reduction)."""

import networkx as nx
import pytest

from repro.graphs.adjacency import Graph
from repro.graphs.node_weighted import (
    all_sources_node_weighted,
    node_weighted_dijkstra,
    node_weighted_path_cost,
)
from repro.graphs.random_graphs import as_rng, random_connected_graph


def nw_oracle(g: Graph, weights, source):
    """Node-weighted distances via networkx on the directed reduction
    w'(u -> v) = w(v)."""
    h = nx.DiGraph()
    for u, v, _ in g.edges():
        h.add_edge(u, v, weight=weights.get(v, 0.0))
        h.add_edge(v, u, weight=weights.get(u, 0.0))
    h.add_node(source)
    return nx.single_source_dijkstra_path_length(h, source)


class TestNodeWeightedDijkstra:
    def test_hand_instance(self):
        g = Graph()
        for u, v in [("s", "a"), ("a", "t"), ("s", "b"), ("b", "t")]:
            g.add_edge(u, v, 1.0)
        weights = {"s": 9.0, "a": 5.0, "b": 1.0, "t": 0.0}
        dist, parent = node_weighted_dijkstra(g, weights, "s")
        assert dist["t"] == 1.0  # via b; source weight excluded
        assert dist["a"] == 5.0 and dist["b"] == 1.0 and dist["s"] == 0.0
        assert parent["t"] == "b"

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_reduction_oracle(self, seed):
        rng = as_rng(seed)
        g = random_connected_graph(12, rng)
        weights = {v: float(rng.uniform(0, 5)) for v in g.nodes()}
        dist, _ = node_weighted_dijkstra(g, weights, 0)
        expected = nw_oracle(g, weights, 0)
        assert dist.keys() == expected.keys()
        for v in dist:
            assert dist[v] == pytest.approx(expected[v])

    def test_negative_weight_rejected(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            node_weighted_dijkstra(g, {1: -2.0}, 0)

    def test_missing_weights_default_zero(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        dist, _ = node_weighted_dijkstra(g, {}, 0)
        assert dist[1] == 0.0

    def test_early_exit(self):
        g = Graph()
        for i in range(9):
            g.add_edge(i, i + 1, 1.0)
        weights = {i: 1.0 for i in range(10)}
        dist, _ = node_weighted_dijkstra(g, weights, 0, targets=[1])
        assert 1 in dist and 9 not in dist

    def test_path_cost_helper(self):
        weights = {"a": 1.0, "b": 2.0, "c": 4.0}
        assert node_weighted_path_cost(weights, ["a", "b", "c"]) == 6.0
        assert node_weighted_path_cost(weights, ["a"]) == 0.0

    def test_all_sources(self):
        g = random_connected_graph(8, rng=1)
        weights = {v: 1.0 for v in g.nodes()}
        table = all_sources_node_weighted(g, weights)
        # d(u, v) counts v but not u; with unit weights d(u,v) = hops.
        for u in g.nodes():
            assert table[u][u] == 0.0
            for v, _ in g.neighbors(u):
                assert table[u][v] == 1.0
