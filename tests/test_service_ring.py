"""Property tests for the consistent-hash ring (repro.service.ring).

The ring is the fleet's routing function, so its contract is tested as
properties over large key samples rather than examples: totality (every
key maps to exactly one live shard), minimal disruption (a resize remaps
only the expected fraction), determinism across interpreter processes
(golden values + a subprocess probe), and reasonable balance.
"""

from __future__ import annotations

import json
import subprocess
import sys

import pytest

from repro.service.ring import DEFAULT_REPLICAS, HashRing, ring_hash

KEYS_10K = [f"scenario-key-{index}" for index in range(10_000)]


def test_every_key_maps_to_exactly_one_live_shard():
    ring = HashRing(["w0", "w1", "w2"])
    members = set(ring.shards())
    for key in KEYS_10K:
        assert ring.route(key) in members
        # Routing is a function: the same key, asked again, agrees.
        assert ring.route(key) == ring.route(key)


def test_empty_ring_raises_lookup_error():
    ring = HashRing()
    with pytest.raises(LookupError):
        ring.route("anything")
    ring.add("w0")
    ring.remove("w0")
    with pytest.raises(LookupError):
        ring.route("anything")


def test_single_shard_takes_everything():
    ring = HashRing(["only"])
    assert all(ring.route(key) == "only" for key in KEYS_10K[:1000])


def test_membership_errors_are_loud():
    ring = HashRing(["w0"])
    with pytest.raises(ValueError):
        ring.add("w0")
    with pytest.raises(KeyError):
        ring.remove("w9")
    with pytest.raises(ValueError):
        HashRing(replicas=0)


def test_growing_n_to_n_plus_1_remaps_only_the_new_shards_share():
    """Adding one shard to N moves an expected 1/(N+1) of keys — and
    every moved key moves *to* the new shard, never between old ones."""
    for n in (2, 4):
        ring = HashRing([f"w{i}" for i in range(n)])
        before = ring.table(KEYS_10K)
        ring.add("new")
        after = ring.table(KEYS_10K)
        moved = [key for key in KEYS_10K if before[key] != after[key]]
        assert all(after[key] == "new" for key in moved)
        expected = len(KEYS_10K) / (n + 1)
        # Generous 2x window around the expectation: the property under
        # test is "a constant fraction, not a full reshuffle".
        assert 0.3 * expected <= len(moved) <= 2.0 * expected


def test_shrinking_n_to_n_minus_1_remaps_only_the_lost_shards_keys():
    ring = HashRing(["w0", "w1", "w2", "w3"])
    before = ring.table(KEYS_10K)
    ring.remove("w2")
    after = ring.table(KEYS_10K)
    for key in KEYS_10K:
        if before[key] != "w2":
            assert after[key] == before[key]  # survivors keep their keys
        else:
            assert after[key] != "w2"


def test_add_then_remove_restores_the_original_table():
    ring = HashRing(["w0", "w1", "w2"])
    before = ring.table(KEYS_10K[:2000])
    ring.add("transient")
    ring.remove("transient")
    assert ring.table(KEYS_10K[:2000]) == before


def test_routing_is_insertion_order_independent():
    forward = HashRing(["w0", "w1", "w2", "w3"])
    backward = HashRing(["w3", "w2", "w1", "w0"])
    sample = KEYS_10K[:2000]
    assert forward.table(sample) == backward.table(sample)


def test_balance_is_within_2x_with_default_replicas():
    ring = HashRing(["w0", "w1", "w2", "w3"])
    spread = ring.spread(KEYS_10K)
    assert set(spread) == {"w0", "w1", "w2", "w3"}
    assert sum(spread.values()) == len(KEYS_10K)
    assert max(spread.values()) <= 2.0 * max(1, min(spread.values()))


def test_ring_hash_golden_values_pin_the_hash_function():
    # Changing the hash (or the vnode/key derivation strings) silently
    # reshuffles every deployed fleet; these goldens make that loud.
    assert ring_hash("key|probe") == 0xC9A0B971F97BA668
    assert ring_hash("shard|w0|vnode:0") == 0x5C91D6CC5E6D95E0


def test_golden_routes_are_stable():
    ring = HashRing(["w0", "w1", "w2"])
    golden = {"scenario-key-0": "w2", "scenario-key-1": "w2",
              "scenario-key-2": "w0", "scenario-key-3": "w1",
              "scenario-key-4": "w1"}
    assert {key: ring.route(key) for key in golden} == golden


def test_routing_agrees_across_interpreter_processes():
    """The fleet-critical property: a fresh Python process (fresh hash
    randomization salt) routes an identical table."""
    sample = KEYS_10K[:500]
    script = (
        "import json, sys\n"
        "from repro.service.ring import HashRing\n"
        "ring = HashRing(['w0', 'w1', 'w2'])\n"
        "keys = json.load(sys.stdin)\n"
        "json.dump(ring.table(keys), sys.stdout)\n")
    result = subprocess.run(
        [sys.executable, "-c", script], input=json.dumps(sample),
        capture_output=True, text=True, check=True)
    here = HashRing(["w0", "w1", "w2"]).table(sample)
    assert json.loads(result.stdout) == here


def test_describe_and_repr_report_membership():
    ring = HashRing(["b", "a"], replicas=8)
    assert ring.describe() == {"replicas": 8, "shards": ["a", "b"],
                               "points": 16}
    assert "a" in ring and "missing" not in ring
    assert len(ring) == 2
    assert "replicas=8" in repr(ring)
    assert ring.replicas == 8 and DEFAULT_REPLICAS == 64
