"""Loadgen resilience: 429 backpressure is retried (bounded,
Retry-After honored), and a run where nothing completes still renders a
well-formed report with a failing verdict — never a crash."""

from __future__ import annotations

import math

import pytest

from repro.service.loadgen import (
    RETRY_AFTER_CAP,
    LoadReport,
    ReportStats,
    _retry_delay,
    run_loadgen,
)
from tests.test_service_cli import ServerThread


class TestRetryDelay:
    def test_honors_the_header_within_bounds(self):
        assert _retry_delay("0.2") == 0.2
        assert _retry_delay("0") == 0.0
        assert _retry_delay(str(RETRY_AFTER_CAP * 10)) == RETRY_AFTER_CAP
        assert _retry_delay("-1") == 0.0

    def test_missing_or_garbage_header_falls_back(self):
        assert _retry_delay(None) == 0.05
        assert _retry_delay("soon") == 0.05


class TestReportStatsOnEmpty:
    def test_percentiles_are_nan_not_errors(self):
        stats = ReportStats.over([], 0.5)
        assert math.isnan(stats.percentile(0.5))
        assert math.isnan(stats.percentile(0.95))
        assert math.isnan(stats.max)

    def test_throughput_is_zero_not_a_division_error(self):
        assert ReportStats.over([], 0.5).throughput == 0.0
        assert ReportStats.over([0.1], 0.0).throughput == 0.0
        assert ReportStats.over([0.1, 0.2], 1.0).throughput == 2.0

    def test_empty_report_lines_and_check(self):
        report = LoadReport(requests=4, concurrency=2, elapsed=0.2,
                            latencies=[], statuses={0: 4},
                            errors=["request 0: refused"], stats=None)
        lines = report.lines()
        assert "latency: no samples" in lines
        assert report.throughput == 0.0
        failures = report.check()
        assert any("no requests completed" in f for f in failures)
        assert any("all-200" in f for f in failures)


def test_429_backpressure_is_retried_to_success():
    # queue_limit=1 with concurrent workers forces admission rejections;
    # the bounded retry loop must turn them into eventual 200s.
    with ServerThread(queue_limit=1, retry_after=0.02,
                      batch_window=0.0) as server:
        report = run_loadgen(host="127.0.0.1", port=server.port, requests=12,
                             concurrency=4, n=6, alpha=2.0, side=5.0,
                             seeds=[0], layouts=["uniform"],
                             mechanisms=["tree-shapley"], profile_count=1,
                             timeout=30.0)
    assert report.statuses == {200: 12}
    assert report.retries > 0           # the limit actually bit
    assert report.check() == []
    assert any("retries" in line for line in report.lines())
    assert report.config["retry_limit"] > 0


def test_retry_limit_zero_surfaces_the_429s():
    with ServerThread(queue_limit=1, retry_after=0.02,
                      batch_window=0.0) as server:
        report = run_loadgen(host="127.0.0.1", port=server.port, requests=12,
                             concurrency=4, n=6, alpha=2.0, side=5.0,
                             seeds=[0], layouts=["uniform"],
                             mechanisms=["tree-shapley"], profile_count=1,
                             timeout=30.0, retry_limit=0)
    assert report.retries == 0
    assert report.statuses.get(429, 0) > 0  # terminal now, but recorded
    assert any("429" in f for f in report.check())


def test_unreachable_server_yields_empty_but_wellformed_report(capsys):
    with ServerThread() as server:
        dead_port = server.port
    report = run_loadgen(host="127.0.0.1", port=dead_port, requests=3,
                         concurrency=2, n=5, alpha=2.0, side=5.0, seeds=[0],
                         layouts=["uniform"], mechanisms=["tree-shapley"],
                         profile_count=1, timeout=2.0)
    assert report.completed == 0
    assert report.throughput == 0.0
    assert math.isnan(report.percentile(0.95))
    for line in report.lines():      # rendering must not raise
        assert isinstance(line, str)
    failures = report.check()
    assert any("no requests completed" in f for f in failures)


def test_trace_mode_against_queue_limited_server():
    # The trace schedule rides the same retry loop: every (group, epoch)
    # cell must end 200 even under queue_limit=1 backpressure.
    from repro.traces import generate_trace

    trace = generate_trace(n=6, groups=2, epochs=2, seed=0)
    with ServerThread(queue_limit=1, retry_after=0.02,
                      batch_window=0.0) as server:
        report = run_loadgen(host="127.0.0.1", port=server.port, requests=0,
                             concurrency=3, n=0, alpha=2.0, side=5.0,
                             seeds=[], layouts=[], mechanisms=["jv"],
                             profile_count=1, timeout=30.0, trace=trace,
                             trace_repeats=2)
    assert report.requests == 8  # 2 groups x 2 epochs x 2 repeats
    assert report.statuses == {200: 8}
    assert report.check(expect_groups=2) == []
    assert len(report.group_lines()) == 2


def test_expect_groups_fails_on_unpriced_cells():
    report = LoadReport(
        requests=2, concurrency=1, elapsed=0.1, latencies=[0.01, 0.01],
        statuses={200: 2}, errors=[], stats=None,
        group_rows={"g0": {0: {"count": 2, "cost": 1.0, "charged": 1.0,
                               "receivers": 1.0},
                           1: {"count": 0, "cost": 0.0, "charged": 0.0,
                               "receivers": 0.0}}})
    failures = report.check(expect_groups=2)
    assert any("expected >= 2 groups" in f for f in failures)
    assert any("unpriced epochs [1]" in f for f in failures)
    assert report.check(expect_groups=1) != []  # unpriced epoch still fails


def test_build_trace_requests_validation():
    from repro.service.loadgen import build_trace_requests
    from repro.traces import generate_trace

    trace = generate_trace(n=6, groups=2, epochs=2, seed=0)
    schedule = build_trace_requests(trace, mechanisms=["jv"],
                                    profile_count=1)
    assert len(schedule) == 4
    assert schedule == build_trace_requests(trace, mechanisms=["jv"],
                                            profile_count=1)  # deterministic
    assert {(r["group"], r["epoch"]) for r in schedule} == {
        (g, e) for g in ("g0", "g1") for e in (0, 1)}
    with pytest.raises(ValueError, match="repeats"):
        build_trace_requests(trace, mechanisms=["jv"], profile_count=1,
                             repeats=0)
    with pytest.raises(ValueError, match="mechanism"):
        build_trace_requests(trace, mechanisms=[], profile_count=1)
