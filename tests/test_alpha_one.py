"""Tests for repro.wireless.alpha_one (Lemma 3.1, alpha = 1 case)."""

import numpy as np
import pytest

from repro.geometry.points import uniform_points
from repro.wireless.alpha_one import optimal_alpha_one_cost, optimal_alpha_one_power
from repro.wireless.cost_graph import EuclideanCostGraph
from repro.wireless.memt import optimal_multicast_cost


class TestAlphaOne:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("dim", [1, 2, 3])
    def test_matches_generic_exact_oracle(self, seed, dim):
        rng = np.random.default_rng(seed)
        pts = uniform_points(7, dim, rng=rng, side=5.0)
        net = EuclideanCostGraph(pts, 1.0)
        R = sorted(int(x) for x in rng.choice(range(1, 7), size=3, replace=False))
        cost = optimal_alpha_one_cost(net, 0, R)
        assert cost == pytest.approx(optimal_multicast_cost(net, 0, R))

    def test_formula_is_max_distance(self):
        pts = uniform_points(6, 2, rng=1)
        net = EuclideanCostGraph(pts, 1.0)
        R = [2, 3, 5]
        assert optimal_alpha_one_cost(net, 0, R) == pytest.approx(
            max(net.distance(0, r) for r in R)
        )

    def test_assignment_single_transmission(self):
        pts = uniform_points(6, 2, rng=2)
        net = EuclideanCostGraph(pts, 1.0)
        cost, pa = optimal_alpha_one_power(net, 0, [1, 2])
        assert pa[0] == pytest.approx(cost)
        assert sum(pa.powers > 0) <= 1
        assert pa.reaches(net, 0, [1, 2])

    def test_empty_receivers(self):
        net = EuclideanCostGraph(uniform_points(4, 2, rng=0), 1.0)
        assert optimal_alpha_one_cost(net, 0, []) == 0.0
        assert optimal_alpha_one_cost(net, 0, [0]) == 0.0  # source only

    def test_requires_alpha_one(self):
        net = EuclideanCostGraph(uniform_points(4, 2, rng=0), 2.0)
        with pytest.raises(ValueError):
            optimal_alpha_one_cost(net, 0, [1])
