"""The frozen JSONL trace format: canonical serialization, validation,
and the deterministic synthetic generator."""

from __future__ import annotations

import json

import pytest

from repro.api import ScenarioSpec
from repro.traces import (
    FORMAT_NAME,
    FORMAT_VERSION,
    Trace,
    TraceError,
    TraceEvent,
    generate_trace,
)

POINTS = ((0.0, 0.0), (1.0, 0.0), (2.0, 1.0), (0.5, 2.0), (3.0, 3.0))


def substrate(**overrides) -> ScenarioSpec:
    return ScenarioSpec(kind="points", points=POINTS, alpha=2.0, **overrides)


def small_trace() -> Trace:
    return Trace(
        scenario=substrate(),
        epochs=3,
        groups=("g0", "g1"),
        events=(
            TraceEvent(t=0, op="leave", agent=3, group="g0"),
            TraceEvent(t=1, op="leave", agent=1, group="g1"),
            TraceEvent(t=1, op="join", agent=3, group="g0"),
            TraceEvent(t=2, op="move", agent=2, position=(2.5, 2.5)),
        ),
    )


class TestTraceEvent:
    def test_membership_needs_group_and_no_position(self):
        with pytest.raises(TraceError, match="need a group"):
            TraceEvent(t=0, op="join", agent=1)
        with pytest.raises(TraceError, match="carry no position"):
            TraceEvent(t=0, op="leave", agent=1, group="g0",
                       position=(1.0, 2.0))

    def test_move_is_groupless_positioned_and_never_at_epoch_zero(self):
        with pytest.raises(TraceError, match="carry no"):
            TraceEvent(t=1, op="move", agent=1, group="g0",
                       position=(1.0, 2.0))
        with pytest.raises(TraceError, match="need a position"):
            TraceEvent(t=1, op="move", agent=1)
        with pytest.raises(TraceError, match="base layout"):
            TraceEvent(t=0, op="move", agent=1, position=(1.0, 2.0))

    def test_unknown_op_and_stray_fields_rejected(self):
        with pytest.raises(TraceError, match="unknown op"):
            TraceEvent(t=0, op="rejoin", agent=1, group="g0")
        with pytest.raises(TraceError, match="unknown event fields"):
            TraceEvent.from_dict({"t": 0, "op": "join", "agent": 1,
                                  "group": "g0", "speed": 3})

    def test_wire_round_trip(self):
        event = TraceEvent(t=2, op="move", agent=4, position=(1.5, 2.5))
        assert TraceEvent.from_dict(event.to_dict()) == event
        assert TraceEvent.from_dict(
            json.loads(json.dumps(event.to_dict()))) == event


class TestTrace:
    def test_jsonl_round_trip_is_byte_identical(self):
        trace = small_trace()
        text = trace.to_jsonl()
        again = Trace.from_jsonl(text)
        assert again == trace
        assert again.to_jsonl() == text

    def test_events_sort_canonically_regardless_of_input_order(self):
        trace = small_trace()
        shuffled = Trace(scenario=trace.scenario, epochs=trace.epochs,
                         groups=("g1", "g0"),
                         events=tuple(reversed(trace.events)))
        assert shuffled == trace
        assert shuffled.to_jsonl() == trace.to_jsonl()

    def test_header_names_format_and_version(self):
        header = small_trace().header()
        assert header["format"] == FORMAT_NAME
        assert header["version"] == FORMAT_VERSION
        assert header["groups"] == ["g0", "g1"]

    def test_write_read_round_trip(self, tmp_path):
        trace = small_trace()
        path = trace.write(tmp_path / "t.jsonl")
        assert Trace.read(path) == trace

    def test_rejects_foreign_headers(self):
        with pytest.raises(TraceError, match="not a repro-trace"):
            Trace.from_jsonl('{"format": "pcap", "version": 1}\n')
        with pytest.raises(TraceError, match="unsupported trace version"):
            Trace.from_jsonl(json.dumps(
                {**small_trace().header(), "version": 99}) + "\n")
        with pytest.raises(TraceError, match="missing"):
            Trace.from_jsonl('{"format": "repro-trace", "version": 1}\n')
        with pytest.raises(TraceError, match="empty"):
            Trace.from_jsonl("\n\n")

    def test_rejects_dynamic_substrates(self):
        from repro.dynamic import ChurnSpec, DynamicScenarioSpec

        spec = DynamicScenarioSpec(kind="random", n=5, alpha=2.0, seed=0,
                                   churn=ChurnSpec(epochs=2))
        with pytest.raises(TraceError, match="static ScenarioSpec"):
            Trace(scenario=spec, epochs=2, groups=("g0",), events=())

    def test_rejects_out_of_range_events(self):
        with pytest.raises(TraceError, match="horizon"):
            Trace(scenario=substrate(), epochs=2, groups=("g0",),
                  events=(TraceEvent(t=2, op="join", agent=1, group="g0"),))
        with pytest.raises(TraceError, match="not declared"):
            Trace(scenario=substrate(), epochs=2, groups=("g0",),
                  events=(TraceEvent(t=1, op="leave", agent=1, group="g9"),))

    def test_rejects_inconsistent_membership(self):
        # Agent 1 is active at epoch 0 (base state), so a second join is
        # inconsistent — semantics validate through to_spec().
        with pytest.raises(TraceError, match="already active"):
            Trace(scenario=substrate(), epochs=2, groups=("g0",),
                  events=(TraceEvent(t=1, op="join", agent=1, group="g0"),))

    def test_group_and_move_views(self):
        trace = small_trace()
        g0 = trace.group_events("g0")
        assert [len(epoch) for epoch in g0] == [1, 1, 0]
        moves = trace.move_events()
        assert [len(epoch) for epoch in moves] == [0, 0, 1]
        assert trace.event_counts() == {"join": 1, "leave": 2, "move": 1}

    def test_to_spec_renders_every_group(self):
        spec = small_trace().to_spec()
        assert spec.group_ids == ("g0", "g1")
        assert spec.n_epochs == 3
        # g0's epoch-0 leave carves agent 3 out of the initial members.
        states = spec.group_spec("g0").epoch_states()
        assert 3 not in states[0].active
        assert 3 in states[1].active  # and the epoch-1 join restores it
        # The move reaches both groups' geometry at epoch 2.
        for gid in spec.group_ids:
            points = spec.group_spec(gid).epoch_states()[2].points
            assert points[2] == (2.5, 2.5)


class TestGenerateTrace:
    def test_same_arguments_same_bytes(self):
        first = generate_trace(n=12, groups=2, epochs=3, seed=7)
        second = generate_trace(n=12, groups=2, epochs=3, seed=7)
        assert first.to_jsonl() == second.to_jsonl()

    def test_different_seeds_differ(self):
        assert (generate_trace(n=12, groups=2, epochs=3, seed=0).to_jsonl()
                != generate_trace(n=12, groups=2, epochs=3, seed=1).to_jsonl())

    def test_substrate_is_self_contained_points(self):
        trace = generate_trace(n=10, groups=2, epochs=2, seed=3)
        assert trace.scenario.kind == "points"
        assert len(trace.scenario.points) == 10
        assert trace.groups == ("g0", "g1")

    def test_every_group_keeps_at_least_one_member(self):
        # member_rate=0 would carve everyone out; the generator seeds one.
        trace = generate_trace(n=6, groups=3, epochs=2, seed=0,
                               member_rate=0.0)
        spec = trace.to_spec()
        for gid in spec.group_ids:
            assert spec.group_spec(gid).epoch_states()[0].active

    def test_single_ap_generates_no_handover(self):
        trace = generate_trace(n=8, groups=1, epochs=4, seed=2, aps=1,
                               handover_rate=1.0)
        assert trace.event_counts()["move"] == 0

    def test_rate_and_size_validation(self):
        with pytest.raises(ValueError, match="member_rate"):
            generate_trace(n=8, member_rate=1.5)
        with pytest.raises(ValueError, match="n must be"):
            generate_trace(n=1)
        with pytest.raises(ValueError, match="groups must be"):
            generate_trace(n=8, groups=0)
