"""Tests for repro.geometry.points."""

import numpy as np
import pytest

from repro.geometry.points import (
    PointSet,
    circle_points,
    clustered_points,
    grid_points,
    line_points,
    pentagon_layout,
    uniform_points,
)


class TestPointSet:
    def test_shapes_and_1d_promotion(self):
        ps = PointSet([1.0, 2.0, 4.0])
        assert ps.n == 3 and ps.dim == 1
        assert ps.distance(0, 2) == pytest.approx(3.0)

    def test_distance_matrix_matches_pairwise(self):
        ps = uniform_points(6, 3, rng=0)
        m = ps.distance_matrix()
        for i in range(6):
            for j in range(6):
                assert m[i, j] == pytest.approx(ps.distance(i, j))
        assert np.allclose(np.diag(m), 0.0)

    def test_power_matrix(self):
        ps = PointSet([[0.0, 0.0], [3.0, 4.0]])
        pm = ps.power_matrix(2.0)
        assert pm[0, 1] == pytest.approx(25.0)
        with pytest.raises(ValueError):
            ps.power_matrix(0.5)

    def test_immutability(self):
        ps = PointSet([[0.0, 0.0], [1.0, 1.0]])
        with pytest.raises(ValueError):
            ps.coords[0, 0] = 9.0

    def test_bad_shape(self):
        with pytest.raises(ValueError):
            PointSet(np.zeros((2, 2, 2)))

    def test_translate_concat(self):
        a = PointSet([[0.0, 0.0]])
        b = a.translated([1.0, 2.0])
        c = a.concatenated(b)
        assert c.n == 2 and c.distance(0, 1) == pytest.approx(np.hypot(1, 2))


class TestGenerators:
    def test_uniform_bounds(self):
        ps = uniform_points(50, 2, side=3.0, rng=0)
        assert ps.coords.min() >= 0.0 and ps.coords.max() <= 3.0

    def test_line_sorted(self):
        ps = line_points(10, rng=1)
        xs = ps.coords.ravel()
        assert (np.diff(xs) >= 0).all() and ps.dim == 1

    def test_grid(self):
        ps = grid_points(2, 3, spacing=2.0)
        assert ps.n == 6
        assert ps.distance(0, 1) == pytest.approx(2.0)

    def test_circle_equidistant_from_center(self):
        ps = circle_points(5, radius=4.0, center=(1.0, 1.0))
        for i in range(5):
            assert np.hypot(*(ps[i] - np.array([1.0, 1.0]))) == pytest.approx(4.0)

    def test_clusters_shape(self):
        ps = clustered_points(3, 4, rng=0)
        assert ps.n == 12 and ps.dim == 2


class TestPentagonLayout:
    def test_geometry_of_figure_2(self):
        m = 10.0
        layout = pentagon_layout(m=m)
        pts = layout["points"]
        src = layout["source"]
        # Externals on radius m, internals on m/2.
        for e in layout["external"]:
            assert pts.distance(src, e) == pytest.approx(m)
        for i in layout["internal"]:
            assert pts.distance(src, i) == pytest.approx(m / 2)
        # Each internal equidistant from its two closest externals.
        for i in layout["internal"]:
            dists = sorted(pts.distance(i, e) for e in layout["external"])
            assert dists[0] == pytest.approx(dists[1])

    def test_chains_cover_all_lines(self):
        layout = pentagon_layout(m=6.0)
        # 5 src->ext + 5 src->int + 10 int->ext = 20 chains.
        assert len(layout["chains"]) == 20
        pts = layout["points"]
        for chain in layout["chains"]:
            # Consecutive stations at most ~spacing apart, collinear steps.
            for a, b in zip(chain, chain[1:]):
                assert pts.distance(a, b) <= 1.0 + 1e-6

    def test_chain_endpoints_are_named_stations(self):
        layout = pentagon_layout(m=6.0)
        named = {layout["source"], *layout["external"], *layout["internal"]}
        for chain in layout["chains"]:
            assert chain[0] in named and chain[-1] in named
