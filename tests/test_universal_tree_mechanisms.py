"""Tests for repro.core.universal_tree_mechanisms (paper section 2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.universal_tree_mechanisms import (
    UniversalTreeMCMechanism,
    UniversalTreeShapleyMechanism,
    tree_efficient_set,
    universal_tree_shapley_shares,
)
from repro.graphs.random_graphs import random_cost_matrix
from repro.mechanism.properties import (
    check_cs,
    check_npt,
    check_vp,
    find_group_deviation,
    find_unilateral_deviation,
)
from repro.mechanism.shapley import shapley_shares
from repro.mechanism.vcg import brute_force_efficient_set
from repro.wireless.cost_graph import CostGraph
from repro.wireless.universal_tree import UniversalTree


def make_tree(seed=0, n=7, kind="spt"):
    net = CostGraph(random_cost_matrix(n, rng=seed))
    builder = {"spt": UniversalTree.from_shortest_paths,
               "mst": UniversalTree.from_mst,
               "star": UniversalTree.star}[kind]
    return builder(net, 0)


def profile_for(tree, seed=0, scale=3.0):
    rng = np.random.default_rng(seed)
    typical = float(np.median(tree.network.matrix[tree.network.matrix > 0]))
    return {i: float(rng.uniform(0, scale * typical)) for i in tree.agents()}


class TestWaterFillingShapley:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("kind", ["spt", "mst", "star"])
    def test_equals_eq4_shapley(self, seed, kind):
        tree = make_tree(seed, n=6, kind=kind)
        R = tree.agents()
        fast = universal_tree_shapley_shares(tree, R)
        slow = shapley_shares(R, lambda Q: tree.cost(Q))
        for i in R:
            assert fast[i] == pytest.approx(slow[i])

    def test_budget_balance_on_subsets(self):
        tree = make_tree(1, n=7)
        rng = np.random.default_rng(0)
        for _ in range(8):
            size = int(rng.integers(1, 7))
            R = sorted(int(x) for x in rng.choice(tree.agents(), size=size, replace=False))
            shares = universal_tree_shapley_shares(tree, R)
            assert sum(shares.values()) == pytest.approx(tree.cost(R))
            assert all(s >= -1e-12 for s in shares.values())

    def test_empty(self):
        tree = make_tree(0)
        assert universal_tree_shapley_shares(tree, []) == {}


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 5000), data=st.data())
def test_water_filling_matches_eq4_property(seed, data):
    tree = make_tree(seed % 50, n=6)
    subset = data.draw(st.lists(st.sampled_from(tree.agents()), min_size=1,
                                max_size=5, unique=True))
    fast = universal_tree_shapley_shares(tree, subset)
    slow = shapley_shares(subset, lambda Q: tree.cost(Q))
    for i in subset:
        assert fast[i] == pytest.approx(slow[i])


class TestTreeEfficientSetDP:
    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("kind", ["spt", "mst", "star"])
    def test_matches_brute_force(self, seed, kind):
        tree = make_tree(seed, n=7, kind=kind)
        profile = profile_for(tree, seed)
        nw_dp, set_dp = tree_efficient_set(tree, profile)
        nw_bf, set_bf = brute_force_efficient_set(
            tree.agents(), lambda R: tree.cost(R)
        )(profile)
        assert nw_dp == pytest.approx(nw_bf)
        assert set_dp == set_bf

    def test_zero_utilities_empty_but_welfare_zero(self):
        tree = make_tree(2)
        nw, R = tree_efficient_set(tree, {i: 0.0 for i in tree.agents()})
        assert nw == pytest.approx(0.0)
        # With all-zero utilities the largest efficient set is empty
        # (serving anyone costs > 0 on a generic instance).
        assert R == frozenset()


class TestShapleyMechanism:
    @pytest.mark.parametrize("seed", range(4))
    def test_axioms_and_exact_bb(self, seed):
        tree = make_tree(seed)
        mech = UniversalTreeShapleyMechanism(tree)
        profile = profile_for(tree, seed)
        result = mech.run(profile)
        assert check_npt(result) and check_vp(result, profile)
        assert result.total_charged() == pytest.approx(result.cost)  # exact BB
        if result.receivers:
            assert result.power.reaches(tree.network, 0, result.receivers)

    def test_consumer_sovereignty(self):
        tree = make_tree(1)
        mech = UniversalTreeShapleyMechanism(tree)
        profile = {i: 0.0 for i in tree.agents()}
        assert check_cs(mech, profile, tree.agents()[0])

    @pytest.mark.parametrize("seed", range(2))
    def test_group_strategyproof_search_finds_nothing(self, seed):
        tree = make_tree(seed, n=5)
        mech = UniversalTreeShapleyMechanism(tree)
        profile = profile_for(tree, seed + 10)
        assert find_group_deviation(mech, profile, max_coalition_size=2,
                                    n_samples_per_coalition=30, rng=seed) is None


class TestMCMechanism:
    @pytest.mark.parametrize("seed", range(4))
    def test_efficient_and_strategyproof(self, seed):
        tree = make_tree(seed)
        mech = UniversalTreeMCMechanism(tree)
        profile = profile_for(tree, seed)
        result = mech.run(profile)
        nw_bf, _ = brute_force_efficient_set(tree.agents(), lambda R: tree.cost(R))(profile)
        assert result.extra["net_worth"] == pytest.approx(nw_bf)
        assert check_npt(result) and check_vp(result, profile)
        assert find_unilateral_deviation(mech, profile) is None

    def test_runs_deficit_not_surplus(self):
        # The paper: MC never creates a surplus and often runs a deficit.
        deficits = 0
        for seed in range(5):
            tree = make_tree(seed)
            mech = UniversalTreeMCMechanism(tree)
            result = mech.run(profile_for(tree, seed))
            assert result.total_charged() <= result.cost + 1e-9
            if result.cost > 0 and result.total_charged() < result.cost - 1e-9:
                deficits += 1
        assert deficits >= 1  # deficit observed somewhere

    def test_power_assignment_feasible(self):
        tree = make_tree(3)
        result = UniversalTreeMCMechanism(tree).run(profile_for(tree, 3))
        if result.receivers:
            assert result.power.reaches(tree.network, 0, result.receivers)
