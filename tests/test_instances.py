"""Tests for repro.analysis.instances (Fig. 1 / Fig. 2 reconstructions)."""

import pytest

from repro.analysis.instances import (
    fig1_collusion_instance,
    pentagon_instance,
    random_euclidean_suite,
    random_symmetric_suite,
    random_utilities,
)
from repro.graphs.nwst import find_min_ratio_spider
from repro.graphs.traversal import is_connected


class TestFig1:
    def test_spider_structure_matches_paper(self):
        """The minimum-ratio spider is {1,5,7} at ratio 1 (the paper's Sp2)."""
        inst = fig1_collusion_instance()
        spider = find_min_ratio_spider(inst.graph, inst.weights, inst.terminals)
        assert spider is not None
        assert spider.terminals == frozenset({1, 5, 7})
        assert spider.ratio == pytest.approx(1.0)

    def test_sp1_ratio_after_dropping_7(self):
        """Restricted to {1,5,6} the best spider has ratio 4/3 (Sp1)."""
        inst = fig1_collusion_instance()
        spider = find_min_ratio_spider(inst.graph, inst.weights, [1, 5, 6])
        assert spider is not None
        assert spider.ratio == pytest.approx(4 / 3)

    def test_utilities_as_published(self):
        inst = fig1_collusion_instance()
        assert inst.utilities == {1: 3.0, 5: 3.0, 6: 3.0, 7: 1.5}
        assert inst.colluder == 7

    def test_graph_connected(self):
        inst = fig1_collusion_instance()
        assert is_connected(inst.graph)


class TestPentagon:
    @pytest.fixture(scope="class")
    def inst(self):
        return pentagon_instance(m=6.0, alpha=2.0)

    def test_costs_cover_all_coalitions(self, inst):
        assert len(inst.costs) == 2**5

    def test_lemma33_inequalities(self, inst):
        """The two facts driving the empty-core proof."""
        agents = list(inst.external)
        grand = inst.cost_fn(frozenset(agents))
        for a in agents:
            assert inst.cost_fn(frozenset({a})) > grand / 5
        pair = inst.cost_fn(frozenset(agents[:2]))
        assert pair < 2 * grand / 5

    def test_adjacent_pair_served_through_internal(self, inst):
        """Serving two adjacent externals via the shared internal is
        cheaper than two separate spokes."""
        agents = list(inst.external)
        pair = inst.cost_fn(frozenset(agents[:2]))
        two_spokes = 2 * inst.cost_fn(frozenset({agents[0]}))
        assert pair < two_spokes

    def test_costs_monotone(self, inst):
        for Q, c in inst.costs.items():
            for R, cr in inst.costs.items():
                if Q <= R:
                    assert c <= cr + 1e-9

    def test_chain_graph_connected(self, inst):
        assert is_connected(inst.chain_graph)


class TestRandomSuites:
    def test_symmetric_suite_deterministic(self):
        a = random_symmetric_suite(3, 5, rng=0)
        b = random_symmetric_suite(3, 5, rng=0)
        assert len(a) == 3
        assert (a[0].matrix == b[0].matrix).all()

    def test_euclidean_suite(self):
        nets = random_euclidean_suite(2, 6, 3, 2.0, rng=1)
        assert all(net.dim == 3 and net.alpha == 2.0 for net in nets)

    def test_random_utilities_exclude_source(self):
        net = random_euclidean_suite(1, 6, 2, 2.0, rng=0)[0]
        u = random_utilities(net, 2, rng=0)
        assert 2 not in u and len(u) == 5
        assert all(v >= 0 for v in u.values())
