"""Tests for repro.core.distributed_tree (Penna-Ventre distributed DP)."""

import numpy as np
import pytest

from repro.core.distributed_tree import DistributedTreeNetWorth
from repro.core.universal_tree_mechanisms import tree_efficient_set
from repro.graphs.random_graphs import random_cost_matrix
from repro.wireless.cost_graph import CostGraph
from repro.wireless.universal_tree import UniversalTree


def make_case(seed, n=8, kind="spt"):
    net = CostGraph(random_cost_matrix(n, rng=seed))
    builder = {"spt": UniversalTree.from_shortest_paths,
               "mst": UniversalTree.from_mst,
               "star": UniversalTree.star}[kind]
    tree = builder(net, 0)
    rng = np.random.default_rng(seed + 7)
    typical = float(np.median(net.matrix[net.matrix > 0]))
    profile = {i: float(rng.uniform(0, 3 * typical)) for i in tree.agents()}
    return tree, profile


class TestProtocolCorrectness:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("kind", ["spt", "mst", "star"])
    def test_matches_centralized_dp(self, seed, kind):
        tree, profile = make_case(seed, kind=kind)
        nw_central, set_central = tree_efficient_set(tree, profile)
        nw_dist, set_dist, _ = DistributedTreeNetWorth(tree).run(profile)
        assert nw_dist == pytest.approx(nw_central)
        assert set_dist == set_central

    def test_zero_utilities(self):
        tree, _ = make_case(0)
        nw, members, _ = DistributedTreeNetWorth(tree).run(
            {i: 0.0 for i in tree.agents()}
        )
        assert nw == pytest.approx(0.0)
        assert members == frozenset()


class TestProtocolComplexity:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("kind", ["spt", "star"])
    def test_message_count_is_linear(self, seed, kind):
        """Exactly one summary and at most one activation per tree edge."""
        tree, profile = make_case(seed, n=10, kind=kind)
        n = tree.network.n
        _, _, stats = DistributedTreeNetWorth(tree).run(profile)
        assert n - 1 <= stats.messages <= 2 * (n - 1)

    def test_star_takes_constant_rounds(self):
        tree, profile = make_case(1, n=12, kind="star")
        _, _, stats = DistributedTreeNetWorth(tree).run(profile)
        assert stats.rounds <= 2  # one convergecast + one broadcast wave

    def test_local_work_bounded_by_degree(self):
        tree, profile = make_case(2, n=10)
        _, _, stats = DistributedTreeNetWorth(tree).run(profile)
        for x, work in stats.local_work.items():
            assert work == len(tree.children[x])
