"""Tests for repro.engine.closure (terminal-sourced metric closures).

The load-bearing invariant: the terminal-sourced closure's rows are
*bit-identical* to the corresponding rows of the full all-pairs closure —
every Dijkstra variant in the engine computes the same float path sums,
so restricting the source set changes how much work is done, never a
single bit of the answers.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jv_steiner import JVSteinerShares, metric_closure_matrix
from repro.engine.closure import TerminalClosure, closure_submatrix
from repro.engine.dense import CSRGraph, DenseGraph
from repro.geometry.points import uniform_points
from repro.graphs.random_graphs import random_cost_matrix
from repro.wireless.cost_graph import CostGraph, EuclideanCostGraph


def euclid(seed, n=12, alpha=2.0):
    return EuclideanCostGraph(uniform_points(n, 2, rng=seed, side=4.0), alpha)


class TestTerminalClosure:
    def test_rows_match_full_closure(self):
        net = euclid(0)
        full = net.as_dense().all_pairs_arrays()
        tc = TerminalClosure.from_network(net, [0, 3, 5, 9])
        for row, t in enumerate(tc.terminals):
            assert np.array_equal(tc.rows[row], full[t])

    def test_submatrix_bit_identical(self):
        net = euclid(1)
        full = net.as_dense().all_pairs_arrays()
        pts = [0, 2, 7, 4]
        tc = TerminalClosure.from_network(net, pts)
        assert np.array_equal(tc.submatrix(pts), full[np.ix_(pts, pts)])

    def test_distance_and_covers(self):
        net = euclid(2)
        tc = TerminalClosure.from_network(net, [0, 1, 2])
        assert tc.covers([0, 1])
        assert not tc.covers([0, 5])
        full = net.as_dense().all_pairs_arrays()
        assert tc.distance(1, 2) == full[1, 2]

    def test_non_terminal_raises(self):
        net = euclid(3)
        tc = TerminalClosure.from_network(net, [0, 1])
        with pytest.raises(ValueError, match="not a closure terminal"):
            tc.submatrix([0, 5])

    def test_closure_submatrix_dispatch(self):
        net = euclid(4)
        full = net.as_dense().all_pairs_arrays()
        pts = [0, 3, 6]
        tc = TerminalClosure.from_network(net, pts)
        a = closure_submatrix(tc, pts)
        b = closure_submatrix(full, pts)
        assert np.array_equal(a, b)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), data=st.data())
    def test_property_dense_submatrix(self, seed, data):
        n = data.draw(st.integers(4, 14))
        k = data.draw(st.integers(1, n - 1))
        net = CostGraph(random_cost_matrix(n, rng=seed))
        terminals = [0, *data.draw(
            st.lists(st.integers(1, n - 1), min_size=k, max_size=k,
                     unique=True))]
        tc = TerminalClosure.from_network(net, terminals)
        full = net.as_dense().all_pairs_arrays()
        assert np.array_equal(tc.submatrix(terminals),
                              full[np.ix_(terminals, terminals)])

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_csr_matches_dense(self, seed):
        net = CostGraph(random_cost_matrix(10, rng=seed))
        terminals = [0, 2, 5, 8]
        dense = TerminalClosure.from_graph(
            DenseGraph.from_cost_graph(net), terminals)
        csr = TerminalClosure.from_graph(
            CSRGraph.from_graph(net.as_graph()), terminals)
        assert np.array_equal(dense.rows, csr.rows)

    def test_jv_shares_bit_identical_on_terminal_closure(self):
        net = euclid(5, n=14)
        recv = [1, 3, 5, 7, 9, 11]
        tc = TerminalClosure.from_network(net, [0, *recv])
        full = metric_closure_matrix(net)
        jv_t = JVSteinerShares(net, 0, closure=tc)
        jv_f = JVSteinerShares(net, 0, closure=full)
        rng = np.random.default_rng(0)
        for _ in range(10):
            size = int(rng.integers(1, len(recv) + 1))
            R = frozenset(int(x) for x in rng.choice(recv, size=size,
                                                     replace=False))
            assert jv_t.shares(R) == jv_f.shares(R)

    def test_jv_rejects_incomplete_closure(self):
        net = euclid(6)
        tc = TerminalClosure.from_network(net, [1, 2])  # source missing
        with pytest.raises(ValueError, match="must include the source"):
            JVSteinerShares(net, 0, closure=tc)

    def test_jv_rejects_size_mismatch(self):
        net = euclid(7)
        other = euclid(7, n=9)
        tc = TerminalClosure.from_network(other, [0, 1])
        with pytest.raises(ValueError, match="closure covers"):
            JVSteinerShares(net, 0, closure=tc)
