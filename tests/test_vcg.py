"""Tests for repro.mechanism.vcg (marginal-cost mechanism)."""

import numpy as np
import pytest

from repro.mechanism.properties import find_unilateral_deviation
from repro.mechanism.vcg import MarginalCostMechanism, brute_force_efficient_set


def make_max_game_mechanism(a):
    agents = list(a)
    cost = lambda R: max((a[i] for i in R), default=0.0)
    solver = brute_force_efficient_set(agents, cost)
    return MarginalCostMechanism(agents, solver, cost), cost


class TestBruteForceEfficientSet:
    def test_picks_max_welfare(self):
        a = {1: 2.0, 2: 10.0}
        cost = lambda R: max((a[i] for i in R), default=0.0)
        solver = brute_force_efficient_set([1, 2], cost)
        nw, R = solver({1: 5.0, 2: 1.0})
        assert nw == pytest.approx(3.0) and R == frozenset({1})

    def test_prefers_largest_among_ties(self):
        # Adding agent 1 to {2} costs nothing extra (same max) and adds 0
        # utility: welfare tie, so the largest efficient set includes it.
        a = {1: 1.0, 2: 5.0}
        cost = lambda R: max((a[i] for i in R), default=0.0)
        solver = brute_force_efficient_set([1, 2], cost)
        _, R = solver({1: 0.0, 2: 9.0})
        assert R == frozenset({1, 2})

    def test_empty_when_nothing_worth_serving(self):
        a = {1: 5.0}
        cost = lambda R: max((a[i] for i in R), default=0.0)
        nw, R = brute_force_efficient_set([1], cost)({1: 1.0})
        assert nw == 0.0 and R == frozenset()


class TestMarginalCostMechanism:
    def test_efficient_selection(self):
        mech, cost = make_max_game_mechanism({1: 1.0, 2: 2.0, 3: 6.0})
        profile = {1: 3.0, 2: 3.0, 3: 1.0}
        result = mech.run(profile)
        assert result.receivers == frozenset({1, 2})
        assert result.extra["net_worth"] == pytest.approx(4.0)

    def test_vcg_shares_are_marginal(self):
        mech, _ = make_max_game_mechanism({1: 4.0, 2: 4.0})
        profile = {1: 3.0, 2: 3.0}
        result = mech.run(profile)
        # NW = 2, without either agent NW = 0 -> welfare 2... capped by VP.
        # w_i = NW - NW_{-i} = 2 - 0 = 2 -> c_i = u_i - w_i = 1.
        assert result.receivers == frozenset({1, 2})
        for i in (1, 2):
            assert result.share(i) == pytest.approx(1.0)

    def test_never_runs_surplus(self):
        rng = np.random.default_rng(0)
        for _ in range(15):
            a = {i: float(rng.uniform(1, 10)) for i in range(1, 5)}
            mech, cost = make_max_game_mechanism(a)
            profile = {i: float(rng.uniform(0, 12)) for i in a}
            result = mech.run(profile)
            assert result.total_charged() <= result.cost + 1e-9

    def test_npt_vp(self):
        rng = np.random.default_rng(1)
        for _ in range(15):
            a = {i: float(rng.uniform(1, 10)) for i in range(1, 5)}
            mech, _ = make_max_game_mechanism(a)
            profile = {i: float(rng.uniform(0, 12)) for i in a}
            result = mech.run(profile)
            for i in result.receivers:
                assert -1e-9 <= result.share(i) <= profile[i] + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_strategyproof_on_random_profiles(self, seed):
        rng = np.random.default_rng(seed)
        a = {i: float(rng.uniform(1, 8)) for i in range(1, 5)}
        mech, _ = make_max_game_mechanism(a)
        profile = {i: float(rng.uniform(0, 10)) for i in a}
        assert find_unilateral_deviation(mech, profile) is None

    def test_not_group_strategyproof(self):
        """The paper (§1.1): "MC is not group strategyproof".  Classic VCG
        collusion: two agents who each value the service at 0.6 jointly
        over-report; each agent's VCG payment collapses to 0 because the
        other's inflated report carries the efficient set on its own."""
        from repro.mechanism.base import with_report

        a = {1: 1.0, 2: 1.0}
        mech, _ = make_max_game_mechanism(a)
        truth = {1: 0.6, 2: 0.6}
        honest = mech.run(truth)
        w_honest = honest.welfare(truth)
        assert w_honest[1] == pytest.approx(0.2)  # pays 0.4 of the shared 1.0

        both_lie = with_report(with_report(truth, 1, 10.0), 2, 10.0)
        collusive = mech.run(both_lie)
        w_collusive = {i: truth[i] - collusive.share(i) for i in (1, 2)}
        assert w_collusive[1] == pytest.approx(0.6)  # served for free
        assert w_collusive[2] == pytest.approx(0.6)
        # Nobody worse, both strictly better: group-SP violated.
        assert all(w_collusive[i] > w_honest[i] + 1e-9 for i in (1, 2))

    def test_group_deviation_finder_catches_vcg_collusion(self):
        from repro.mechanism.properties import find_group_deviation

        a = {1: 1.0, 2: 1.0}
        mech, _ = make_max_game_mechanism(a)
        deviation = find_group_deviation(mech, {1: 0.6, 2: 0.6},
                                         max_coalition_size=2, rng=0)
        assert deviation is not None
        assert len(deviation.coalition) == 2
