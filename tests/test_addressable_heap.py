"""Unit + property tests for repro.graphs.addressable_heap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.addressable_heap import AddressableHeap


class TestAddressableHeap:
    def test_push_pop_order(self):
        h = AddressableHeap()
        for key, pri in [("a", 3.0), ("b", 1.0), ("c", 2.0)]:
            h.push(key, pri)
        assert [h.pop() for _ in range(3)] == [("b", 1.0), ("c", 2.0), ("a", 3.0)]

    def test_duplicate_key_rejected(self):
        h = AddressableHeap()
        h.push("a", 1.0)
        with pytest.raises(KeyError):
            h.push("a", 2.0)

    def test_decrease_key(self):
        h = AddressableHeap()
        h.push("a", 5.0)
        h.push("b", 3.0)
        h.decrease("a", 1.0)
        assert h.pop() == ("a", 1.0)

    def test_decrease_cannot_increase(self):
        h = AddressableHeap()
        h.push("a", 1.0)
        with pytest.raises(ValueError):
            h.decrease("a", 2.0)

    def test_push_or_decrease(self):
        h = AddressableHeap()
        assert h.push_or_decrease("a", 5.0)
        assert h.push_or_decrease("a", 2.0)
        assert not h.push_or_decrease("a", 9.0)  # larger: no-op
        assert h.pop() == ("a", 2.0)

    def test_contains_len_bool(self):
        h = AddressableHeap()
        assert not h and len(h) == 0
        h.push(1, 1.0)
        assert h and 1 in h and len(h) == 1
        h.pop()
        assert 1 not in h

    def test_peek_does_not_remove(self):
        h = AddressableHeap()
        h.push("z", 0.5)
        assert h.peek() == ("z", 0.5)
        assert len(h) == 1

    def test_priority_lookup(self):
        h = AddressableHeap()
        h.push("k", 4.0)
        assert h.priority("k") == 4.0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 50), st.floats(0, 100)), min_size=1, max_size=60))
def test_heapsort_matches_sorted(items):
    """Popping everything yields priorities in non-decreasing order and the
    minimum priority per key."""
    h = AddressableHeap()
    best: dict[int, float] = {}
    for key, pri in items:
        if key in best:
            if pri < best[key]:
                h.decrease(key, pri)
                best[key] = pri
        else:
            h.push(key, pri)
            best[key] = pri
    popped = []
    while h:
        popped.append(h.pop())
    assert sorted(p for _, p in popped) == [p for _, p in popped]
    assert {k: p for k, p in popped} == best
