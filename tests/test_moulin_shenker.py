"""Tests for repro.mechanism.moulin_shenker."""

import pytest

from repro.mechanism.moulin_shenker import check_cross_monotonicity, moulin_shenker
from repro.mechanism.shapley import shapley_method


def max_game_method(a):
    """Shapley of the max game — cross-monotonic (submodular game)."""
    return shapley_method(lambda R: max((a[i] for i in R), default=0.0))


class TestMoulinShenker:
    def test_everyone_affordable_stays(self):
        a = {1: 1.0, 2: 2.0, 3: 4.0}
        method = max_game_method(a)
        profile = {1: 10.0, 2: 10.0, 3: 10.0}
        result = moulin_shenker([1, 2, 3], method, profile)
        assert result.receivers == frozenset({1, 2, 3})
        assert result.total_charged() == pytest.approx(4.0)  # BB: C(N)
        assert result.cost == pytest.approx(4.0)

    def test_deficient_agents_dropped(self):
        a = {1: 1.0, 2: 2.0, 3: 9.0}
        method = max_game_method(a)
        # Agent 3's Shapley share of the full game exceeds its utility.
        profile = {1: 10.0, 2: 10.0, 3: 1.0}
        result = moulin_shenker([1, 2, 3], method, profile)
        assert 3 not in result.receivers
        assert result.receivers == frozenset({1, 2})
        assert result.total_charged() == pytest.approx(2.0)

    def test_drop_order_independence_for_cross_monotonic(self):
        a = {1: 3.0, 2: 5.0, 3: 8.0, 4: 2.0}
        method = max_game_method(a)
        profile = {1: 0.4, 2: 1.2, 3: 2.0, 4: 0.1}
        batch = moulin_shenker([1, 2, 3, 4], method, profile)
        single = moulin_shenker([1, 2, 3, 4], method, profile, one_at_a_time=True)
        assert batch.receivers == single.receivers
        assert batch.total_charged() == pytest.approx(single.total_charged())

    def test_vp_and_npt_hold(self):
        a = {1: 2.0, 2: 6.0, 3: 3.0}
        method = max_game_method(a)
        profile = {1: 1.5, 2: 2.5, 3: 0.2}
        result = moulin_shenker([1, 2, 3], method, profile)
        for i in result.receivers:
            assert 0.0 <= result.share(i) <= profile[i] + 1e-9

    def test_empty_result_when_nobody_affords(self):
        a = {1: 5.0, 2: 5.0}
        method = max_game_method(a)
        result = moulin_shenker([1, 2], method, {1: 0.1, 2: 0.1})
        assert result.receivers == frozenset()
        assert result.total_charged() == 0.0

    def test_build_hook_used(self):
        a = {1: 1.0, 2: 2.0}
        method = max_game_method(a)
        built = []

        def build(R):
            built.append(R)
            return 1.23, "artifact"

        result = moulin_shenker([1, 2], method, {1: 9.0, 2: 9.0}, build=build)
        assert result.cost == 1.23 and result.power == "artifact"
        assert built == [frozenset({1, 2})]


class TestFixpointMaximality:
    def test_result_is_the_largest_affordable_set(self):
        """For cross-monotonic methods, M(xi)'s fixpoint is the unique
        maximal set where everyone affords its share — verified exhaustively
        on a small instance."""
        import itertools

        a = {1: 2.0, 2: 4.0, 3: 7.0, 4: 3.0}
        method = max_game_method(a)
        profile = {1: 0.9, 2: 1.1, 3: 3.0, 4: 0.4}
        result = moulin_shenker([1, 2, 3, 4], method, profile)
        R = result.receivers

        def affordable(S):
            shares = method(frozenset(S))
            return all(profile[i] >= shares[i] - 1e-9 for i in S)

        assert affordable(R)
        for r in range(len(R) + 1, 5):
            for S in itertools.combinations([1, 2, 3, 4], r):
                if set(S) > set(R):
                    assert not affordable(S)
        # And every affordable set is contained in R (maximality, not just
        # maximal cardinality).
        for r in range(1, 5):
            for S in itertools.combinations([1, 2, 3, 4], r):
                if affordable(S):
                    assert set(S) <= set(R)


class TestCrossMonotonicityChecker:
    def test_clean_on_shapley_of_submodular(self):
        method = max_game_method({1: 1.0, 2: 3.0, 3: 6.0})
        assert check_cross_monotonicity([1, 2, 3], method) == []

    def test_catches_violation(self):
        # Pathological method: share grows with the set size.
        def bad(R):
            return {i: float(len(R)) for i in R}

        violations = check_cross_monotonicity([1, 2, 3], bad)
        assert violations
        Q, R, i = violations[0]
        assert Q < R and i in Q

    def test_sampled_path_on_large_ground_set(self):
        def bad(R):
            return {i: float(len(R)) for i in R}

        violations = check_cross_monotonicity(
            list(range(15)), bad, exhaustive_limit=5, n_samples=100, rng=0
        )
        assert violations
