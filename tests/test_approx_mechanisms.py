"""Tests for repro.core.approx_mechanisms (the scalable ``*-approx`` family)."""

import dataclasses

import numpy as np
import pytest

from repro.api import ScenarioSpec, available_mechanisms, make_mechanism
from repro.api.registry import registered
from repro.api.session import MulticastSession
from repro.core.approx_mechanisms import BirdApproxMechanism, JVApproxMechanism
from repro.graphs.mehlhorn import mehlhorn_aux_metric
from repro.mechanism.properties import (
    audit_profile_results,
    check_cost_recovery,
    check_npt,
    check_vp,
)


def session(seed=0, n=16, receivers=None):
    spec = ScenarioSpec.from_random(n=n, alpha=2.0, seed=seed)
    if receivers is not None:
        spec = dataclasses.replace(spec, receivers=tuple(receivers))
    return MulticastSession(spec)


def profiles_for(sess, count=5, seed=0, scale=3.0):
    rng = np.random.default_rng(seed)
    return [{i: float(rng.uniform(0.0, scale)) for i in sess.agents()}
            for _ in range(count)]


class TestRegistry:
    def test_registered_with_bb_factor(self):
        for name in ("jv-approx", "bird-approx"):
            assert name in available_mechanisms()
            entry = registered(name)
            assert entry.bb_factor == 2.0
            assert entry.method_of is not None

    def test_make_mechanism(self):
        sess = session()
        assert isinstance(make_mechanism("jv-approx", sess), JVApproxMechanism)
        assert isinstance(make_mechanism("bird-approx", sess),
                          BirdApproxMechanism)


class TestShares:
    @pytest.mark.parametrize("name", ["jv-approx", "bird-approx"])
    def test_shares_total_aux_mst_weight(self, name):
        sess = session(1)
        mech = sess.mechanism(name)
        R = frozenset([1, 4, 7, 10, 13])
        shares = mech.shares(R)
        aux = mehlhorn_aux_metric(sess.network.as_dense(), [0, *sorted(R)])
        _, mst_weight = aux.spanning_mst()
        assert sum(shares.values()) == pytest.approx(mst_weight)
        assert set(shares) == set(R)
        assert all(s >= 0 for s in shares.values())

    def test_empty_coalition(self):
        mech = session(2).mechanism("jv-approx")
        assert mech.shares(frozenset()) == {}


class TestRun:
    @pytest.mark.parametrize("name", ["jv-approx", "bird-approx"])
    def test_axioms_and_power_artifact(self, name):
        sess = session(3)
        mech = sess.mechanism(name)
        for profile in profiles_for(sess, seed=3):
            result = mech.run(profile)
            assert check_npt(result)
            assert check_vp(result, profile)
            assert check_cost_recovery(result)
            assert "power_cost" in result.extra
            if result.receivers:
                assert result.power is not None

    @pytest.mark.parametrize("name", ["jv-approx", "bird-approx"])
    def test_audit_enforces_declared_bb_bound(self, name):
        sess = session(4)
        mech = sess.mechanism(name)
        profiles = profiles_for(sess, seed=4)
        results = [mech.run(p) for p in profiles]
        report = audit_profile_results(
            mech, profiles, results,
            bb_bound=registered(name).bb_factor)
        assert report["violations"] == []
        assert "bb_bound<=2" in report["checked"]
        if report["bb_factor_max"] is not None:
            assert report["bb_factor_max"] <= 2.0 + 1e-7

    def test_bb_bound_violation_is_itemized(self):
        sess = session(5)
        mech = sess.mechanism("jv-approx")
        profiles = profiles_for(sess, seed=5, count=2)
        results = [mech.run(p) for p in profiles]
        # the empirical factor is >= 1 by convention (1.0 for empty
        # outcomes), so a sub-1 bound flags every profile
        fake_bound = 0.5
        report = audit_profile_results(mech, profiles, results,
                                       bb_bound=fake_bound)
        assert len(report["violations"]) == len(results)
        for violation in report["violations"]:
            assert "bb_bound" in violation["failed"]

    def test_receivers_subset_restricts_agents(self):
        recv = (1, 3, 5)
        sess = session(6, receivers=recv)
        mech = sess.mechanism("jv-approx")
        assert mech.agents == sorted(recv)
        profile = {i: 100.0 for i in recv}
        result = mech.run(profile)
        assert result.receivers <= frozenset(recv)

    def test_session_batch_matches_serial(self):
        sess = session(7)
        profiles = profiles_for(sess, seed=7)
        batch = sess.run_batch("bird-approx", profiles)
        serial = [sess.mechanism("bird-approx").run(p) for p in profiles]
        for a, b in zip(batch, serial):
            assert a.receivers == b.receivers
            assert a.shares == b.shares
            assert a.cost == b.cost
