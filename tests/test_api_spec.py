"""Tests for repro.api.spec — ScenarioSpec / MechanismSpec wire format."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.spec import MechanismSpec, ScenarioSpec, freeze_params
from repro.geometry import uniform_points
from repro.wireless import CostGraph, EuclideanCostGraph

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)
coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, width=64)


class TestScenarioSpecValidation:
    def test_points_spec(self):
        spec = ScenarioSpec.from_points([(0.0, 0.0), (1.0, 2.0)], alpha=2.0)
        assert spec.kind == "points" and spec.n_stations == 2 and spec.is_euclidean
        assert spec.agents() == [1]

    def test_points_need_alpha(self):
        with pytest.raises(ValueError, match="alpha"):
            ScenarioSpec(kind="points", points=((0.0,), (1.0,)))

    def test_alpha_below_one_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            ScenarioSpec.from_points([(0.0,), (1.0,)], alpha=0.5)

    def test_matrix_must_be_square(self):
        with pytest.raises(ValueError, match="square"):
            ScenarioSpec.from_matrix([[0.0, 1.0, 2.0], [1.0, 0.0, 1.0]])

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError, match="same length"):
            ScenarioSpec(kind="points", points=((0.0,), (1.0, 2.0)), alpha=2.0)

    def test_random_needs_seed(self):
        with pytest.raises(ValueError, match="seed"):
            ScenarioSpec(kind="random", n=5, alpha=2.0)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ScenarioSpec(kind="mesh")

    def test_unknown_tree(self):
        with pytest.raises(ValueError, match="tree"):
            ScenarioSpec.from_random(n=4, seed=0, tree="bfs")

    def test_source_out_of_range(self):
        with pytest.raises(ValueError, match="source"):
            ScenarioSpec.from_random(n=4, seed=0, source=4)

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown ScenarioSpec fields"):
            ScenarioSpec.from_dict({"kind": "random", "n": 4, "seed": 0,
                                    "alpha": 2.0, "beta": 1.0})

    def test_foreign_layout_fields_rejected(self):
        # Exactly one layout may be populated — contradictory fields must
        # not survive to the wire (or break hashability) unvalidated.
        with pytest.raises(ValueError, match="exactly one layout"):
            ScenarioSpec(kind="points", points=((0.0,), (1.0,)), alpha=2.0,
                         matrix=((0.0, 1.0), (1.0, 0.0)))
        with pytest.raises(ValueError, match="exactly one layout"):
            ScenarioSpec(kind="matrix", matrix=((0.0, 1.0), (1.0, 0.0)), alpha=2.0)
        with pytest.raises(ValueError, match="exactly one layout"):
            ScenarioSpec(kind="random", n=3, seed=0, alpha=2.0,
                         points=((0.0,), (1.0,)))

    def test_points_dim_derived_and_checked(self):
        spec = ScenarioSpec.from_points([(0.0, 0.0), (1.0, 2.0)], alpha=2.0)
        assert spec.dim == 2
        hash(spec)  # fully frozen, no stray mutable fields
        with pytest.raises(ValueError, match="contradicts"):
            ScenarioSpec(kind="points", points=((0.0, 0.0), (1.0, 2.0)),
                         alpha=2.0, dim=3)

    def test_frozen_and_hashable(self):
        spec = ScenarioSpec.from_random(n=4, seed=0)
        with pytest.raises(AttributeError):
            spec.source = 1
        assert spec == ScenarioSpec.from_random(n=4, seed=0)
        assert hash(spec) == hash(ScenarioSpec.from_random(n=4, seed=0))


class TestScenarioSpecBuild:
    def test_points_network_exact(self):
        pts = uniform_points(6, 2, rng=3)
        spec = ScenarioSpec.from_points(pts, alpha=2.0)
        net = spec.build_network()
        assert isinstance(net, EuclideanCostGraph)
        assert np.array_equal(net.matrix, EuclideanCostGraph(pts, 2.0).matrix)

    def test_matrix_network_exact(self):
        base = EuclideanCostGraph(uniform_points(5, 2, rng=1), 2.0)
        spec = ScenarioSpec.from_matrix(base.matrix)
        net = spec.build_network()
        assert type(net) is CostGraph
        assert np.array_equal(net.matrix, base.matrix)

    def test_random_network_deterministic(self):
        spec = ScenarioSpec.from_random(n=7, dim=3, alpha=2.5, seed=11, side=4.0)
        a, b = spec.build_network(), spec.build_network()
        assert isinstance(a, EuclideanCostGraph) and a.dim == 3
        assert np.array_equal(a.matrix, b.matrix)

    def test_from_network_round_trips_euclidean(self):
        base = EuclideanCostGraph(uniform_points(6, 2, rng=5), alpha=3.0)
        spec = ScenarioSpec.from_network(base, source=2, tree="mst")
        assert spec.kind == "points" and spec.alpha == 3.0 and spec.source == 2
        rebuilt = spec.build_network()
        assert isinstance(rebuilt, EuclideanCostGraph)
        assert np.array_equal(rebuilt.matrix, base.matrix)

    def test_from_network_round_trips_general(self):
        m = np.array([[0.0, 2.0, 3.0], [2.0, 0.0, 1.5], [3.0, 1.5, 0.0]])
        spec = ScenarioSpec.from_network(CostGraph(m))
        assert spec.kind == "matrix"
        assert np.array_equal(spec.build_network().matrix, m)


class TestScenarioSpecWireFormat:
    def test_json_round_trip_exact(self):
        pts = uniform_points(5, 2, rng=9)
        spec = ScenarioSpec.from_points(pts, alpha=2.0, source=1, tree="star")
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert np.array_equal(again.build_network().matrix, spec.build_network().matrix)

    def test_none_fields_omitted(self):
        d = ScenarioSpec.from_random(n=4, seed=0).to_dict()
        assert "points" not in d and "matrix" not in d

    @settings(max_examples=30, deadline=None)
    @given(
        rows=st.integers(2, 5), dim=st.integers(1, 3),
        alpha=st.floats(min_value=1.0, max_value=8.0, allow_nan=False, width=64),
        data=st.data(),
    )
    def test_points_spec_round_trip_property(self, rows, dim, alpha, data):
        pts = data.draw(st.lists(
            st.lists(coords, min_size=dim, max_size=dim),
            min_size=rows, max_size=rows,
        ))
        source = data.draw(st.integers(0, rows - 1))
        tree = data.draw(st.sampled_from(["spt", "mst", "star"]))
        spec = ScenarioSpec.from_points(pts, alpha=alpha, source=source, tree=tree)
        assert ScenarioSpec.from_json(spec.to_json()) == spec

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(1, 40), dim=st.integers(1, 4), seed=st.integers(0, 2**31),
           alpha=st.floats(min_value=1.0, max_value=10.0, allow_nan=False, width=64),
           side=st.floats(min_value=1e-3, max_value=1e4, allow_nan=False, width=64))
    def test_random_spec_round_trip_property(self, n, dim, seed, alpha, side):
        spec = ScenarioSpec.from_random(n=n, dim=dim, alpha=alpha, seed=seed, side=side)
        assert ScenarioSpec.from_json(spec.to_json()) == spec


class TestMechanismSpec:
    def test_round_trip(self):
        spec = MechanismSpec("jv", {"agent_weights": {"1": 2.0, "2": 0.5}})
        assert MechanismSpec.from_json(spec.to_json()) == spec

    def test_default_params(self):
        assert MechanismSpec.from_dict({"name": "tree-mc"}) == MechanismSpec("tree-mc")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            MechanismSpec("")

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown MechanismSpec fields"):
            MechanismSpec.from_dict({"name": "jv", "mode": "branch"})

    def test_key_is_hashable_and_order_insensitive(self):
        a = MechanismSpec("jv", {"x": 1, "y": [1, 2]})
        b = MechanismSpec("jv", {"y": [1, 2], "x": 1})
        assert a.key() == b.key()
        assert hash(a.key()) == hash(b.key())

    def test_spec_itself_is_hashable_despite_dict_params(self):
        a = MechanismSpec("jv", {"x": {"nested": [1, 2]}})
        b = MechanismSpec("jv", {"x": {"nested": [1, 2]}})
        assert a == b and hash(a) == hash(b)
        assert len({a, b}) == 1

    @settings(max_examples=50, deadline=None)
    @given(name=st.text(min_size=1, max_size=20),
           params=st.dictionaries(
               st.text(max_size=8),
               st.one_of(st.none(), st.booleans(), st.integers(), finite,
                         st.text(max_size=8), st.lists(finite, max_size=3)),
               max_size=4))
    def test_round_trip_property(self, name, params):
        spec = MechanismSpec(name, params)
        assert MechanismSpec.from_json(spec.to_json()) == spec


def test_freeze_params_nested():
    frozen = freeze_params({"b": [1, {"c": 2}], "a": {3, 1}})
    assert isinstance(frozen, tuple)
    hash(frozen)
