"""MultiGroupSession: shared-substrate replay must be bit-identical to
independent cold per-group sessions — the acceptance property of the
traces layer — while the counters prove artifacts were actually shared."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from repro.api import result_to_dict
from repro.dynamic import DynamicSession
from repro.dynamic.session import epoch_payload
from repro.observability import MetricsRegistry
from repro.runner import ProfileSpec
from repro.traces import (
    MultiGroupSession,
    SubstrateCache,
    check_trace_replay,
    generate_trace,
    group_profile_spec,
    replay_trace,
)


def cold_rows(session: MultiGroupSession, group: str, mechanism: str,
              profiles=None) -> list[dict]:
    """The reference replay: a fresh cold session per group, no cache."""
    cold = DynamicSession(session.spec.group_spec(group), incremental=False)
    spec = group_profile_spec(profiles, group)
    out = []
    for epoch in range(session.n_epochs):
        row = epoch_payload(cold, epoch, mechanism, spec)
        row["group"] = group
        out.append(row)
    return out


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40),
       groups=st.integers(min_value=1, max_value=3),
       epochs=st.integers(min_value=1, max_value=3),
       handover=st.sampled_from([0.0, 0.3]),
       mechanism=st.sampled_from(["tree-shapley", "jv"]))
def test_shared_replay_is_bit_identical_to_cold(seed, groups, epochs,
                                                handover, mechanism):
    trace = generate_trace(n=7, groups=groups, epochs=epochs, seed=seed,
                           handover_rate=handover)
    session = MultiGroupSession(trace)
    shared = session.replay(mechanism)
    for group in session.group_ids:
        assert shared[group] == cold_rows(session, group, mechanism)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(min_value=0, max_value=40), data=st.data())
def test_interleaved_epoch_order_changes_nothing(seed, data):
    trace = generate_trace(n=7, groups=2, epochs=3, seed=seed,
                           handover_rate=0.3)
    lockstep = MultiGroupSession(trace)
    baseline = lockstep.replay("tree-shapley")
    cells = [(group, epoch) for group in lockstep.group_ids
             for epoch in range(lockstep.n_epochs)]
    order = data.draw(st.permutations(cells))
    shuffled = MultiGroupSession(trace)
    assert shuffled.replay("tree-shapley", epoch_order=order) == baseline


def test_substrate_is_built_once_and_shared_across_groups():
    # No handovers: one geometry for the whole trace, so exactly one
    # substrate build no matter how many groups and epochs replay on it.
    trace = generate_trace(n=8, groups=3, epochs=3, seed=1,
                           handover_rate=0.0)
    session = MultiGroupSession(trace)
    session.replay("tree-shapley")
    counters = session.counters()
    assert counters["substrate_sessions_built"] == 1
    # 3 groups x 3 epochs = 9 cells; incremental sessions consult the
    # cache once per (group, epoch-with-new-geometry), everything beyond
    # the first build is a share.
    assert counters["substrate_sessions_shared"] >= 2
    assert counters["substrate_sessions_live"] == 1
    assert set(counters["groups"]) == set(session.group_ids)


def test_handovers_build_one_substrate_per_distinct_geometry():
    trace = generate_trace(n=8, groups=2, epochs=4, seed=3,
                           handover_rate=0.5)
    moves_at = [epoch for epoch, events in enumerate(trace.move_events())
                if events]
    assert moves_at, "seed 3 should produce at least one handover"
    session = MultiGroupSession(trace)
    session.replay("jv")
    built = session.counters()["substrate_sessions_built"]
    assert built == 1 + len(moves_at)


def test_replay_trace_and_check_trace_replay_agree():
    trace = generate_trace(n=7, groups=2, epochs=2, seed=5)
    replayed = replay_trace(trace, "tree-shapley")
    checked = check_trace_replay(trace, "tree-shapley")
    assert checked["identical"] is True
    assert checked["mismatches"] == []
    assert checked["rows"] == replayed["rows"]


def test_group_profiles_are_distinct_per_group_and_stable():
    base = ProfileSpec(count=2, seed=9)
    g0 = group_profile_spec(base, "g0")
    g1 = group_profile_spec(base, "g1")
    assert g0.seed != g1.seed
    assert g0.count == g1.count == 2
    assert group_profile_spec(base, "g0") == g0  # pure function
    assert group_profile_spec(base.to_dict(), "g0") == g0
    assert group_profile_spec(None, "g0").count == ProfileSpec().count


def test_session_accepts_trace_spec_and_wire_mapping():
    trace = generate_trace(n=6, groups=2, epochs=2, seed=0)
    spec = trace.to_spec()
    rows = MultiGroupSession(trace).replay("jv")
    assert MultiGroupSession(spec).replay("jv") == rows
    assert MultiGroupSession(spec.to_dict()).replay("jv") == rows
    with pytest.raises(TypeError, match="MultiGroupScenarioSpec"):
        MultiGroupSession(42)


def test_epoch_order_must_cover_every_cell_exactly_once():
    session = MultiGroupSession(generate_trace(n=6, groups=2, epochs=2,
                                               seed=0))
    with pytest.raises(ValueError, match="exactly once"):
        session.replay("jv", epoch_order=[("g0", 0)])


def test_run_epoch_matches_cold_session_run():
    trace = generate_trace(n=7, groups=2, epochs=2, seed=4)
    session = MultiGroupSession(trace)
    profiles = [{a: float(a % 3 + 1)
                 for a in trace.scenario.agents()}]
    got = session.run_epoch("g1", 1, "tree-shapley", profiles)
    cold = DynamicSession(session.spec.group_spec("g1"), incremental=False)
    reference = cold.run_epoch(1, "tree-shapley", profiles)
    assert ([result_to_dict(r) for r in got]
            == [result_to_dict(r) for r in reference])
    with pytest.raises(KeyError):
        session.run_epoch("nope", 0, "tree-shapley", profiles)


def test_substrate_cache_is_a_bounded_lru():
    from repro.api import ScenarioSpec

    cache = SubstrateCache(capacity=2)
    specs = [ScenarioSpec(kind="random", n=5, alpha=2.0, seed=seed)
             for seed in range(3)]
    first = cache.session(specs[0])
    assert cache.session(specs[0]) is first  # hit
    cache.session(specs[1])
    cache.session(specs[2])  # evicts specs[0]
    assert len(cache) == 2
    assert cache.session(specs[0]) is not first  # rebuilt after eviction
    assert cache.counters["substrate_sessions_built"] == 4
    assert cache.counters["substrate_sessions_shared"] == 1
    with pytest.raises(ValueError, match="capacity"):
        SubstrateCache(capacity=0)


def test_registry_counters_mirror_the_sharing():
    registry = MetricsRegistry()
    trace = generate_trace(n=7, groups=2, epochs=2, seed=2,
                           handover_rate=0.0)
    session = MultiGroupSession(trace, registry=registry)
    session.replay("jv")
    text = registry.render()
    assert "repro_trace_substrate_built_total 1" in text
    assert "repro_trace_substrate_shared_total" in text
    for gid in session.group_ids:
        assert f'repro_trace_group_epochs_total{{group="{gid}"}}' in text
