"""Tests for repro.analysis.experiments — every runner's invariants on
small parameters.  These are the same assertions EXPERIMENTS.md quotes."""


import pytest

from repro.analysis import experiments as E
from repro.analysis.tables import format_table


class TestExpF1:
    def test_reproduces_paper_numbers(self):
        out = E.exp_f1_collusion()
        assert out["gsp_violated"]
        for i, expected in out["expected_truthful"].items():
            assert out["measured_truthful"][i] == pytest.approx(expected)
        for i, expected in out["expected_collusive"].items():
            assert out["measured_collusive"][i] == pytest.approx(expected)


class TestExpF2:
    def test_core_empty_for_alpha2_not_alpha1(self):
        out = E.exp_f2_empty_core(m_values=(6.0,))
        row = out["rows"][0]
        assert row["core_empty"] and not row["core_empty_alpha1"]
        assert row["pair < 2C/5"] and row["single > C/5"]
        assert row["least_core_eps"] > 0


class TestExpT1:
    def test_lemma21_and_mechanism_invariants(self):
        out = E.exp_t1_universal_tree(n_instances=2, n=6, seed=0)
        for row in out["rows"]:
            assert row["submodularity_violations"] == 0
            assert row["monotonicity_violations"] == 0
            assert row["shapley_bb_factor"] == pytest.approx(1.0)
            assert abs(row["mc_efficiency_gap"]) < 1e-9
            assert row["mc_revenue_ratio"] <= 1.0 + 1e-9

    @pytest.mark.parametrize("kind", ["mst", "star"])
    def test_other_trees(self, kind):
        out = E.exp_t1_universal_tree(n_instances=1, n=6, seed=1, tree_kind=kind)
        assert out["rows"][0]["submodularity_violations"] == 0

    @pytest.mark.parametrize("layout", ["cluster", "ring"])
    def test_runner_layout_families(self, layout):
        # T1 rides the sweep runner's scenario grid: the lemma holds on
        # every layout family the fleet serves.
        out = E.exp_t1_universal_tree(n_instances=2, n=6, seed=0, layout=layout)
        for row in out["rows"]:
            assert row["submodularity_violations"] == 0
            assert row["shapley_bb_factor"] == pytest.approx(1.0)


class TestExpT2:
    def test_nwst_bb_and_sp(self):
        out = E.exp_t2_nwst(n_instances=2, n=12, k=4, seed=0, check_sp=True)
        for row in out["rows"]:
            assert row["bb_ratio"] <= row["paper_bound"] + 1e-9
            assert not row["profitable_deviation"]


class TestExpT3:
    def test_wireless_bb(self):
        out = E.exp_t3_wireless(n_instances=2, n=6, seed=0)
        for row in out["rows"]:
            assert row["feasible"]
            assert row["bb_ratio"] <= row["paper_bound"] + 1e-9


class TestExpT4:
    def test_exactness_and_optimal_mechanisms(self):
        out = E.exp_t4_euclidean_optimal(n_instances=2, n=6, seed=0)
        for row in out["rows"]:
            assert row["solver_vs_exact_err"] < 1e-9
            assert row["submodularity_violations"] == 0
            assert row["shapley_bb_factor"] == pytest.approx(1.0)
            assert abs(row["mc_efficiency_gap"]) < 1e-9


class TestExpT5:
    def test_runs_and_counts(self):
        out = E.exp_t5_core_emptiness(n_instances=4, n=5, seed=0)
        for row in out["rows"]:
            assert 0 <= row["fraction_empty"] <= 1
        # alpha = 1 yields a submodular C*: the core is never empty.
        alpha1 = [r for r in out["rows"] if "alpha=1" in r["case"]][0]
        assert alpha1["empty_cores"] == 0


class TestExpT6:
    def test_ratios_below_paper_bounds(self):
        out = E.exp_t6_steiner_bounds(n_instances=3, n=7, seed=0,
                                      alphas=(2.0,), dims=(1, 2))
        for row in out["rows"]:
            assert 1.0 - 1e-9 <= row["worst_steiner_multicast_ratio"]
            assert row["worst_steiner_multicast_ratio"] <= row["paper_bound_3d"] + 1e-9
            assert row["worst_mst_broadcast_ratio"] <= row["paper_bound_3d"] + 1e-9


class TestExpT7:
    def test_jv_bb_and_cross_monotonicity(self):
        out = E.exp_t7_jv(n_instances=2, n=6, seed=0, check_gsp=True)
        for row in out["rows"]:
            assert row["bb_ratio"] <= row["paper_bound"] + 1e-9
            assert row["cross_monotonicity_violations"] == 0
            assert not row["group_deviation_found"]


class TestExpE1:
    def test_nonsubmodularity_split(self):
        out = E.exp_e1_nonsubmodularity(n_instances=6, n=5, seed=0)
        by_case = {row["case"]: row for row in out["rows"]}
        # Lemma 3.1: alpha = 1 is always submodular.
        assert by_case["alpha=1, d=2"]["C*_non_submodular"] == 0
        assert by_case["alpha=1, d=2"]["shapley_not_cross_monotonic"] == 0


class TestExpA4:
    def test_heuristic_comparison(self):
        out = E.exp_a4_multicast_heuristics(n_instances=3, n=7, seed=0)
        names = {row["heuristic"] for row in out["rows"]}
        assert names == {"spt", "mst", "steiner_kmb", "bip"}
        for row in out["rows"]:
            assert row["mean_ratio"] >= 1.0 - 1e-9
            assert 0 <= row["best_on"]


class TestExpE2:
    def test_distributed_matches_and_is_linear(self):
        out = E.exp_e2_distributed(sizes=(6, 12), seed=0)
        for row in out["rows"]:
            assert row["identical_result"]
            assert row["messages"] <= row["message_bound_2(n-1)"]


class TestExpE4:
    def test_shapley_has_lowest_worst_case_loss(self):
        out = E.exp_e4_efficiency_loss(n_instances=2, n=6, n_profiles=20, seed=0)
        by_method = {row["method"]: row for row in out["rows"]}
        shapley = by_method["shapley"]
        for name, row in by_method.items():
            assert row["worst_loss"] >= -1e-9
            if name != "shapley":
                assert shapley["worst_loss"] <= row["worst_loss"] + 1e-9


class TestExpS1:
    def test_fleet_sweep_covers_the_grid(self):
        out = E.exp_s1_sweep_fleet(n=6, seeds=(0,), n_profiles=2, workers=1)
        assert out["work_items"] == 5 * 4  # layouts x mechanisms
        assert out["scenarios"] == 5
        assert out["replayed_item_identical"]
        layouts = {row["layout"] for row in out["rows"]}
        assert layouts == {"uniform", "cluster", "grid", "ring", "radial"}
        for row in out["rows"]:
            if row["mechanism"] == "tree-shapley":
                assert row["mean_bb"] == pytest.approx(1.0)


class TestExpD1:
    def test_churn_trajectories_verify_and_audit(self):
        out = E.exp_d1_churn_trajectories(n=8, epochs=4, seed=0)
        assert out["incremental_equals_cold"]
        assert out["axiom_violations"] == 0
        assert len(out["rows"]) == 4
        assert out["sessions_built"] + out["sessions_carried"] == 4
        for row in out["rows"]:
            assert row["active"] <= 7  # never more than the agent pool
            # tree-shapley is budget balanced on every epoch it serves.
            assert row["bb_factor_max"] in (None, pytest.approx(1.0))


class TestExpS2:
    def test_batched_pipeline_is_exact(self):
        out = E.exp_s2_batch_pipeline(n=10, n_profiles=8, seed=0)
        assert {row["pipeline"] for row in out["rows"]} == {
            "universal-tree Shapley (§2.1)", "Jain-Vazirani Euclidean (§3.2)",
        }
        for row in out["rows"]:
            assert row["identical_results"]  # caching never changes outcomes
            assert 0.0 <= row["cache_hit_rate"] <= 1.0
            assert row["naive_seconds"] > 0 and row["batched_seconds"] > 0


class TestExpE3:
    def test_matrix_shape_and_axioms(self):
        out = E.exp_e3_properties_matrix(seed=1, n=4)
        assert len(out["rows"]) == 7
        for row in out["rows"]:
            assert row["npt"] and row["vp"] and row["cs"]
            assert not row["sp_deviation"]  # all strategyproof
        nwst = [r for r in out["rows"] if "NWST" in r["mechanism"]][0]
        assert nwst["gsp_deviation"]  # the Fig. 1 collusion is found


class TestAblations:
    def test_a1_tree_ablation_ratios_reasonable(self):
        out = E.exp_a1_tree_ablation(n_instances=2, n=6, seed=0)
        kinds = {row["tree"] for row in out["rows"]}
        assert kinds == {"spt", "mst", "star"}
        for row in out["rows"]:
            assert row["mean_cost_ratio"] >= 1.0 - 1e-9

    def test_a2_branch_at_least_as_good(self):
        out = E.exp_a2_spider_ablation(n_instances=2, n=12, k=4, seed=0)
        by_mode = {row["mode"]: row for row in out["rows"]}
        assert by_mode["branch"]["mean_bb_ratio"] <= by_mode["classic"]["mean_bb_ratio"] + 1e-6

    def test_a3_family_total_invariant(self):
        out = E.exp_a3_jv_weights(n=6, seed=0)
        totals = [row["total"] for row in out["rows"]]
        assert totals[0] == pytest.approx(totals[1])
        for row in out["rows"]:
            assert row["cross_monotonicity_violations"] == 0
            assert row["total"] == pytest.approx(row["closure_mst"])


class TestTables:
    def test_format_table(self):
        rows = [{"a": 1.23456, "b": True, "c": "x"}]
        text = format_table(rows, title="demo")
        assert "demo" in text and "1.235" in text and "yes" in text

    def test_empty(self):
        assert format_table([]) == "(no rows)"

    def test_column_selection(self):
        text = format_table([{"a": 1, "b": 2}], columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[0]
