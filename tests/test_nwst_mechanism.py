"""Tests for repro.core.nwst_mechanism (paper section 2.2.2)."""

import math

import numpy as np
import pytest

from repro.analysis.instances import fig1_collusion_instance
from repro.core.nwst_mechanism import NWSTMechanism
from repro.graphs.adjacency import Graph
from repro.graphs.nwst import GreedySpiderSolver, exact_node_weighted_steiner
from repro.graphs.random_graphs import random_node_weighted_instance
from repro.graphs.traversal import is_connected
from repro.mechanism.properties import check_cs, check_npt, check_vp, find_unilateral_deviation


def random_case(seed, n=13, k=4):
    graph, weights, terminals = random_node_weighted_instance(
        n, k, rng=seed, extra_edge_prob=0.2, weight_low=1.0, weight_high=5.0
    )
    rng = np.random.default_rng(seed + 1000)
    profile = {t: float(rng.uniform(0.0, 9.0)) for t in terminals}
    return graph, weights, terminals, profile


class TestFig1:
    """The paper's own worked example, exactly."""

    def test_truthful_run(self):
        inst = fig1_collusion_instance()
        mech = NWSTMechanism(inst.graph, inst.weights, inst.terminals)
        result = mech.run(inst.utilities)
        assert result.receivers == frozenset(inst.terminals)
        assert result.share(1) == pytest.approx(1.5)
        assert result.share(5) == pytest.approx(1.5)
        assert result.share(6) == pytest.approx(1.5)
        assert result.share(7) == pytest.approx(1.5)
        welfare = result.welfare(inst.utilities)
        assert welfare == pytest.approx(inst.expected_truthful_welfare)

    def test_collusive_run_drops_agent7_and_improves_others(self):
        inst = fig1_collusion_instance()
        mech = NWSTMechanism(inst.graph, inst.weights, inst.terminals)
        deviated = dict(inst.utilities)
        deviated[7] = 1.5 - 0.2
        result = mech.run(deviated)
        assert result.receivers == frozenset({1, 5, 6})
        welfare = result.welfare(inst.utilities)
        for i, expected in inst.expected_collusive_welfare.items():
            assert welfare[i] == pytest.approx(expected)
        assert result.extra["n_restarts"] == 1

    def test_not_group_strategyproof(self):
        """No member loses, three strictly gain: the Fig. 1 phenomenon."""
        inst = fig1_collusion_instance()
        mech = NWSTMechanism(inst.graph, inst.weights, inst.terminals)
        w_true = mech.run(inst.utilities).welfare(inst.utilities)
        deviated = dict(inst.utilities)
        deviated[7] = 1.2
        w_coll = mech.run(deviated).welfare(inst.utilities)
        assert all(w_coll[i] >= w_true[i] - 1e-9 for i in inst.terminals)
        assert sum(w_coll[i] > w_true[i] + 1e-9 for i in inst.terminals) == 3

    def test_unilateral_deviations_unprofitable_on_fig1(self):
        """Collusion pays but no single agent can gain (Thm 2.3)."""
        inst = fig1_collusion_instance()
        mech = NWSTMechanism(inst.graph, inst.weights, inst.terminals)
        assert find_unilateral_deviation(mech, inst.utilities) is None


class TestInvariants:
    @pytest.mark.parametrize("seed", range(6))
    def test_cost_recovery_vp_npt(self, seed):
        graph, weights, terminals, profile = random_case(seed)
        mech = NWSTMechanism(graph, weights, terminals)
        result = mech.run(profile)
        assert check_npt(result)
        assert check_vp(result, profile)
        assert result.total_charged() >= result.cost - 1e-9
        if result.receivers:
            nodes = result.extra["bought_nodes"]
            assert set(result.receivers) <= set(nodes)
            assert is_connected(graph.subgraph(nodes))

    @pytest.mark.parametrize("seed", range(6))
    def test_bb_bound_vs_exact(self, seed):
        graph, weights, terminals, profile = random_case(seed)
        result = NWSTMechanism(graph, weights, terminals).run(profile)
        if not result.receivers:
            return
        opt = exact_node_weighted_steiner(graph, weights, sorted(result.receivers))
        k = len(result.receivers)
        bound = max(1.0, 1.5 * math.log(max(k, 2)))
        if opt > 1e-9:
            assert result.total_charged() <= bound * opt + 1e-9

    @pytest.mark.parametrize("seed", range(4))
    def test_theorem_22_mechanism_tree_equals_algorithm(self, seed):
        """The surviving run coincides with the plain greedy on the final
        terminal set (the heart of the Thm 2.2 proof)."""
        graph, weights, terminals, profile = random_case(seed)
        result = NWSTMechanism(graph, weights, terminals).run(profile)
        if not result.receivers:
            return
        algo = GreedySpiderSolver().solve(graph, weights, sorted(result.receivers))
        assert result.cost == pytest.approx(algo.cost)
        assert result.extra["bought_nodes"] == algo.nodes

    @pytest.mark.parametrize("seed", range(3))
    def test_strategyproofness_sweep(self, seed):
        graph, weights, terminals, profile = random_case(seed, n=11, k=3)
        mech = NWSTMechanism(graph, weights, terminals)
        assert find_unilateral_deviation(mech, profile) is None

    def test_consumer_sovereignty(self):
        graph, weights, terminals, _ = random_case(0)
        mech = NWSTMechanism(graph, weights, terminals)
        zero = {t: 0.0 for t in terminals}
        assert check_cs(mech, zero, terminals[0])

    def test_zero_utilities_drop_everyone_when_costly(self):
        graph, weights, terminals, _ = random_case(2)
        mech = NWSTMechanism(graph, weights, terminals)
        result = mech.run({t: 0.0 for t in terminals})
        # Connecting these terminals costs > 0, so nobody can afford it.
        assert result.total_charged() == pytest.approx(0.0)


class TestDeterminism:
    @pytest.mark.parametrize("seed", range(3))
    def test_rerun_identical(self, seed):
        """The mechanism must be a deterministic function of the profile
        (strategyproofness audits re-run it; dict-order effects would
        poison them)."""
        graph, weights, terminals, profile = random_case(seed)
        mech = NWSTMechanism(graph, weights, terminals)
        r1 = mech.run(profile)
        r2 = mech.run(dict(reversed(list(profile.items()))))
        assert r1.receivers == r2.receivers
        assert r1.cost == pytest.approx(r2.cost)
        for i in r1.receivers:
            assert r1.share(i) == pytest.approx(r2.share(i))


class TestProtectedTerminals:
    def test_protected_connected_never_charged(self):
        g = Graph()
        w = {"hub": 3.0}
        terms = []
        for t in range(3):
            node = ("t", t)
            g.add_edge("hub", node, 1.0)
            w[node] = 0.0
            terms.append(node)
        g.add_edge("hub", "src", 1.0)
        w["src"] = 0.0
        mech = NWSTMechanism(g, w, terms, protected=["src"])
        result = mech.run({t: 5.0 for t in terms})
        assert result.receivers == frozenset(terms)
        # The source is connected (hub bought) but pays nothing.
        assert "src" in result.extra["bought_nodes"]
        assert result.total_charged() == pytest.approx(3.0)
        assert result.share(("t", 0)) == pytest.approx(1.0)

    def test_protected_cannot_be_agent(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        with pytest.raises(ValueError):
            NWSTMechanism(g, {}, ["a"], protected=["a"])
