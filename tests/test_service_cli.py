"""The ``serve`` and ``loadgen`` CLI surfaces, end to end.

``loadgen`` runs in-process against a real socket server hosted on a
background thread (covering the HTTP layer, the closed-loop driver and
the report checks); one test additionally boots ``python -m repro serve``
as a subprocess — the exact shape the CI smoke job uses.
"""

from __future__ import annotations

import asyncio
import os
import pathlib
import subprocess
import sys
import threading
import time

import pytest

from repro.__main__ import main
from repro.service import CostSharingService, ServiceServer
from repro.service.loadgen import LoadReport, build_requests, run_loadgen

REPO_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"


class ServerThread:
    """A real ServiceServer on an ephemeral port, on its own loop/thread."""

    def __init__(self, **service_kwargs):
        self.service = CostSharingService(**service_kwargs)
        self.port: int | None = None
        self._loop = asyncio.new_event_loop()
        self._started = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.set_event_loop(self._loop)
        server = ServiceServer(self.service, port=0)
        self._loop.run_until_complete(server.start())
        self.port = server.port
        self._server = server
        self._started.set()
        self._loop.run_forever()
        self._loop.run_until_complete(server.close())
        self._loop.close()

    def __enter__(self) -> "ServerThread":
        self._thread.start()
        assert self._started.wait(timeout=10.0), "server did not start"
        return self

    def __exit__(self, *exc_info) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(timeout=10.0)


def test_build_requests_is_deterministic_and_validates():
    kwargs = dict(requests=8, n=6, alpha=2.0, side=5.0, seeds=[0, 1],
                  layouts=["uniform", "ring"], mechanisms=["jv", "tree-shapley"],
                  profile_count=2)
    first = build_requests(**kwargs)
    second = build_requests(**kwargs)
    assert first == second  # byte-identical schedules
    assert len(first) == 8
    layouts = {request["scenario"]["layout"] for request in first}
    assert layouts == {"uniform", "ring"}
    with pytest.raises(ValueError):
        build_requests(**{**kwargs, "requests": 0})
    with pytest.raises(ValueError):
        build_requests(**{**kwargs, "mechanisms": []})


def test_loadgen_against_real_server_engages_the_warm_paths(capsys):
    with ServerThread(batch_window=0.03, cache_size=8) as server:
        code = main(["loadgen", "--port", str(server.port), "--requests", "16",
                     "--concurrency", "4", "--n", "8",
                     "--mechanisms", "tree-shapley,jv", "--expect-engaged"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "loadgen: 16 requests" in out
    assert "latency: p50" in out
    assert "status: 200:16" in out
    assert "stats: store" in out


def test_loadgen_report_checks():
    good = LoadReport(requests=2, concurrency=1, elapsed=0.1,
                      latencies=[0.01, 0.02], statuses={200: 2}, errors=[],
                      stats={"store": {"hits": 1, "coalesced": 0},
                             "batcher": {"max_batch_size": 2}})
    assert good.check(expect_engaged=True) == []
    assert good.percentile(0.5) in (0.01, 0.02)
    assert good.throughput > 0
    bad = LoadReport(requests=2, concurrency=1, elapsed=0.1,
                     latencies=[0.01], statuses={200: 1, 429: 1}, errors=[],
                     stats={"store": {"hits": 0, "coalesced": 0},
                            "batcher": {"max_batch_size": 1}})
    failures = bad.check(expect_engaged=True)
    assert len(failures) == 3  # non-200s + cold store + no batching
    no_stats = LoadReport(requests=1, concurrency=1, elapsed=0.1,
                          latencies=[0.01], statuses={200: 1}, errors=[],
                          stats=None)
    assert no_stats.check() == []
    assert any("stats" in f for f in no_stats.check(expect_engaged=True))


def test_loadgen_cli_arg_errors(capsys):
    # Unknown mechanisms mirror the run/sweep CLI contract: exit 2 with
    # the registry listed on stderr.
    code = main(["loadgen", "--port", "1", "--mechanisms", "bogus-mech"])
    assert code == 2
    err = capsys.readouterr().err
    assert "unknown mechanisms" in err and "tree-shapley" in err
    code = main(["loadgen", "--port", "1", "--seeds", "zero"])
    assert code == 2
    assert "--seeds" in capsys.readouterr().err


def test_loadgen_unreachable_server_is_a_clean_error():
    with ServerThread() as server:
        dead_port = server.port  # live now, dead after the context exits
    report = run_loadgen(host="127.0.0.1", port=dead_port, requests=2,
                         concurrency=1, n=5, alpha=2.0, side=5.0, seeds=[0],
                         layouts=["uniform"], mechanisms=["tree-shapley"],
                         profile_count=1, timeout=2.0)
    assert report.statuses.get(0, 0) == 2  # transport failures, not a crash
    assert report.check()  # and the verdict is a failure, not silence


def test_serve_cli_rejects_bad_limits(capsys):
    assert main(["serve", "--queue-limit", "0"]) == 2
    assert "queue_limit" in capsys.readouterr().err


def test_run_server_coroutine_serves_and_cancels_cleanly():
    async def go():
        from repro.service import run_server

        bound = {}
        service = CostSharingService(batch_window=0.0)
        task = asyncio.ensure_future(
            run_server(service, "127.0.0.1", 0, ready=lambda s: bound.update(port=s.port)))
        while "port" not in bound:
            await asyncio.sleep(0.01)
        reader, writer = await asyncio.open_connection("127.0.0.1", bound["port"])
        writer.write(b"GET /v1/healthz HTTP/1.1\r\nHost: t\r\n\r\n")
        await writer.drain()
        status_line = await reader.readline()
        assert b"200" in status_line
        writer.close()
        task.cancel()
        await task  # run_server swallows the cancel and closes cleanly

    asyncio.run(go())


def test_serve_subprocess_answers_a_loadgen_burst(tmp_path):
    env = {**os.environ,
           "PYTHONPATH": f"{REPO_SRC}{os.pathsep}" + os.environ.get("PYTHONPATH", "")}
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--batch-window", "0.02"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env)
    try:
        line = process.stdout.readline()
        assert "serving on http://" in line, line
        port = int(line.strip().rsplit(":", 1)[1])
        deadline = time.monotonic() + 10.0
        report = None
        while time.monotonic() < deadline:
            report = run_loadgen(host="127.0.0.1", port=port, requests=10,
                                 concurrency=3, n=6, alpha=2.0, side=5.0,
                                 seeds=[0], layouts=["uniform"],
                                 mechanisms=["tree-shapley"], profile_count=1,
                                 timeout=10.0)
            if report.statuses.get(200, 0) == 10:
                break
        assert report is not None and report.statuses.get(200, 0) == 10
        assert report.check() == []
    finally:
        process.terminate()
        process.wait(timeout=10.0)
