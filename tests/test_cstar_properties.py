"""Structural properties of the exact optimum C* (the object every
beta-BB bound is measured against)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.points import uniform_points
from repro.graphs.random_graphs import random_cost_matrix
from repro.wireless.cost_graph import CostGraph, EuclideanCostGraph
from repro.wireless.memt import optimal_multicast, optimal_multicast_cost
from repro.wireless.power import PowerAssignment


def euclid(seed, n=6, alpha=2.0, dim=2):
    return EuclideanCostGraph(uniform_points(n, dim, rng=seed, side=4.0), alpha)


class TestCStarStructure:
    @pytest.mark.parametrize("seed", range(4))
    def test_monotone_nondecreasing(self, seed):
        """More receivers can only cost more (the feasible set shrinks)."""
        net = euclid(seed)
        rng = np.random.default_rng(seed)
        for _ in range(6):
            size = int(rng.integers(1, net.n - 1))
            R = set(int(x) for x in rng.choice(range(1, net.n), size=size, replace=False))
            extra = int(rng.choice([i for i in range(1, net.n) if i not in R]))
            assert optimal_multicast_cost(net, 0, R) <= (
                optimal_multicast_cost(net, 0, R | {extra}) + 1e-9
            )

    @pytest.mark.parametrize("seed", range(4))
    def test_subadditive(self, seed):
        """C*(Q + R) <= C*(Q) + C*(R): pointwise-max of two feasible
        assignments is feasible for the union at at most the summed cost."""
        net = euclid(seed + 10)
        rng = np.random.default_rng(seed)
        agents = list(range(1, net.n))
        Q = set(int(x) for x in rng.choice(agents, size=2, replace=False))
        R = set(int(x) for x in rng.choice(agents, size=2, replace=False))
        cQ = optimal_multicast_cost(net, 0, Q)
        cR = optimal_multicast_cost(net, 0, R)
        assert optimal_multicast_cost(net, 0, Q | R) <= cQ + cR + 1e-9

    def test_pointwise_max_is_feasible(self):
        """The combination lemma behind subadditivity, directly."""
        net = euclid(3)
        _, pa1 = optimal_multicast(net, 0, [1, 2])
        _, pa2 = optimal_multicast(net, 0, [3, 4])
        combined = PowerAssignment(np.maximum(pa1.powers, pa2.powers))
        assert combined.reaches(net, 0, [1, 2, 3, 4])

    @pytest.mark.parametrize("seed", range(3))
    def test_single_receiver_is_cheapest_path_cost(self, seed):
        """C*({r}) equals the min over paths of summed hop costs (relaying
        through intermediates, each hop paid by its transmitter)."""
        net = CostGraph(random_cost_matrix(6, rng=seed))
        from repro.graphs.shortest_paths import dijkstra

        dist, _ = dijkstra(net.as_graph(), 0)
        for r in range(1, 6):
            assert optimal_multicast_cost(net, 0, [r]) == pytest.approx(dist[r])

    def test_alpha_scaling_monotone(self):
        """On unit-free geometry with distances < 1, raising alpha cheapens
        every link, so C* cannot increase."""
        pts = uniform_points(6, 2, rng=5, side=0.9)
        costs = []
        for alpha in (1.0, 2.0, 3.0):
            net = EuclideanCostGraph(pts, alpha)
            costs.append(optimal_multicast_cost(net, 0, [1, 2, 3]))
        assert costs[0] >= costs[1] >= costs[2]


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 500), data=st.data())
def test_broadcast_dominates_any_multicast(seed, data):
    """C*(R) <= C*(everyone): broadcast is the costliest receiver set."""
    net = euclid(seed % 25, n=6)
    agents = list(range(1, 6))
    R = data.draw(st.lists(st.sampled_from(agents), min_size=1, unique=True))
    assert optimal_multicast_cost(net, 0, R) <= (
        optimal_multicast_cost(net, 0, agents) + 1e-9
    )
