"""Tests for repro.engine.dense: array backends and vectorised kernels."""

import numpy as np
import pytest

from repro.engine.backend import GraphBackend, as_array_backend, is_array_backend
from repro.engine.dense import ArrayGraph, CSRGraph, DenseGraph, batched_dijkstra
from repro.graphs.adjacency import Graph
from repro.graphs.mst import mst_weight, prim_mst
from repro.graphs.random_graphs import random_connected_graph
from repro.graphs.shortest_paths import (
    all_pairs_dijkstra,
    dijkstra,
    reconstruct_path,
    shortest_path,
)

INF = np.inf


def path_graph(n, backend="dense"):
    edges = [(i, i + 1, float(i + 1)) for i in range(n - 1)]
    cls = DenseGraph if backend == "dense" else CSRGraph
    return cls.from_edges(n, edges)


class TestDenseGraphContainer:
    def test_construction_and_queries(self):
        g = DenseGraph.from_edges(4, [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0)])
        assert len(g) == 4
        assert g.nodes() == [0, 1, 2, 3]
        assert list(g) == [0, 1, 2, 3]
        assert 3 in g and 4 not in g and "x" not in g
        assert g.has_edge(0, 1) and g.has_edge(1, 0)
        assert not g.has_edge(0, 3)
        assert g.weight(1, 2) == 3.0
        with pytest.raises(KeyError):
            g.weight(0, 2)
        assert dict(g.neighbors(1)) == {0: 2.0, 2: 3.0}
        assert g.degree(1) == 2
        assert sorted(g.edges()) == [(0, 1, 2.0), (1, 2, 3.0), (2, 3, 1.0)]
        assert g.number_of_edges() == 3
        assert g.total_weight() == 6.0

    def test_satisfies_graph_backend_protocol(self):
        g = DenseGraph.from_edges(3, [(0, 1, 1.0)])
        assert isinstance(g, GraphBackend)
        assert isinstance(Graph(), GraphBackend)
        assert is_array_backend(g) and not is_array_backend(Graph())

    def test_duplicate_edges_keep_minimum(self):
        g = DenseGraph.from_edges(2, [(0, 1, 5.0), (0, 1, 2.0), (1, 0, 7.0)])
        assert g.weight(0, 1) == 2.0

    def test_zero_weight_edge_is_an_edge(self):
        g = DenseGraph.from_edges(3, [(0, 1, 0.0)])
        assert g.has_edge(0, 1) and g.weight(0, 1) == 0.0
        dist, _ = dijkstra(g, 0)
        assert dist == {0: 0.0, 1: 0.0}

    def test_rejects_negative_and_nonsquare(self):
        with pytest.raises(ValueError):
            DenseGraph(np.array([[INF, -1.0], [-1.0, INF]]))
        with pytest.raises(ValueError):
            DenseGraph(np.zeros((2, 3)))

    def test_rejects_asymmetric_undirected(self):
        m = np.full((2, 2), INF)
        m[0, 1] = 1.0
        with pytest.raises(ValueError):
            DenseGraph(m)
        assert DenseGraph(m, directed=True).weight(0, 1) == 1.0

    def test_from_graph_requires_contiguous_int_labels(self):
        g = Graph()
        g.add_edge("a", "b", 1.0)
        with pytest.raises(ValueError):
            DenseGraph.from_graph(g)
        h = Graph()
        h.add_edge(0, 2, 1.0)  # label 2 with n = 2
        with pytest.raises(ValueError):
            DenseGraph.from_graph(h)

    def test_as_array_backend_coercion(self):
        g = random_connected_graph(8, rng=0)
        dense = as_array_backend(g)
        assert isinstance(dense, DenseGraph)
        assert as_array_backend(dense) is dense
        csr = as_array_backend(g, prefer="csr")
        assert isinstance(csr, CSRGraph)
        labelled = Graph()
        labelled.add_edge("a", "b", 1.0)
        assert as_array_backend(labelled) is None
        with pytest.raises(ValueError):
            as_array_backend(g, prefer="bogus")


class TestCSRGraphContainer:
    def test_round_trip_matches_dict_graph(self):
        g = random_connected_graph(12, rng=1)
        csr = CSRGraph.from_graph(g)
        assert len(csr) == len(g)
        assert sorted(csr.edges()) == sorted(g.edges())
        assert csr.number_of_edges() == g.number_of_edges()
        assert csr.total_weight() == pytest.approx(g.total_weight())
        for u in g.nodes():
            assert dict(csr.neighbors(u)) == dict(g.neighbors(u))
            assert csr.degree(u) == g.degree(u)

    def test_weight_and_has_edge(self):
        csr = path_graph(4, backend="csr")
        assert csr.has_edge(2, 3) and csr.weight(2, 3) == 3.0
        assert not csr.has_edge(0, 3)
        with pytest.raises(KeyError):
            csr.weight(0, 3)

    def test_raw_constructor_rejects_duplicate_arcs(self):
        # Fancy-indexed relaxation would let the *last* duplicate win, so
        # duplicates must be rejected at construction (regression).
        with pytest.raises(ValueError, match="duplicate arcs"):
            CSRGraph(2, [0, 2, 2], [1, 1], [3.0, 5.0], directed=True)

    def test_raw_constructor_rejects_self_loops(self):
        with pytest.raises(ValueError, match="self-loops"):
            CSRGraph(2, [0, 1, 1], [0], [1.0], directed=True)

    def test_from_edges_collapses_duplicates_instead(self):
        csr = CSRGraph.from_edges(2, [(0, 1, 5.0), (0, 1, 3.0)])
        assert csr.weight(0, 1) == 3.0
        dist, _ = dijkstra(csr, 0)
        assert dist == {0: 0.0, 1: 3.0}


class TestKernels:
    @pytest.mark.parametrize("backend", ["dense", "csr"])
    def test_dijkstra_matches_dict_backend(self, backend):
        for seed in range(5):
            g = random_connected_graph(15, rng=seed)
            arr = as_array_backend(g, prefer=backend)
            dist_dict, _ = dijkstra(g, 0)
            dist_arr, parent_arr = dijkstra(arr, 0)
            assert dist_arr == dist_dict  # exact float equality
            # Parents witness the distances.
            for v in dist_arr:
                path = reconstruct_path(parent_arr, v)
                total = sum(g.weight(a, b) for a, b in zip(path, path[1:]))
                assert total == pytest.approx(dist_arr[v])

    @pytest.mark.parametrize("backend", ["dense", "csr"])
    def test_dijkstra_early_exit(self, backend):
        g = path_graph(10, backend=backend)
        dist, parent = dijkstra(g, 0, targets=[3])
        assert set(dist) == {0, 1, 2, 3}
        assert set(parent) == set(dist)
        assert reconstruct_path(parent, 3) == [0, 1, 2, 3]

    @pytest.mark.parametrize("backend", ["dense", "csr"])
    def test_dijkstra_disconnected(self, backend):
        cls = DenseGraph if backend == "dense" else CSRGraph
        g = cls.from_edges(4, [(0, 1, 1.0), (2, 3, 1.0)])
        dist, parent = dijkstra(g, 0)
        assert set(dist) == {0, 1} and set(parent) == {0, 1}

    def test_shortest_path_on_dense(self):
        g = DenseGraph.from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 5.0),
                                      (2, 3, 1.0)])
        path, length = shortest_path(g, 0, 3)
        assert path == [0, 1, 2, 3] and length == 3.0

    @pytest.mark.parametrize("backend", ["dense", "csr"])
    def test_prim_matches_dict_backend(self, backend):
        for seed in range(5):
            g = random_connected_graph(14, rng=seed + 10)
            arr = as_array_backend(g, prefer=backend)
            tree_dict = prim_mst(g, root=0)
            tree_arr = prim_mst(arr, root=0)
            assert mst_weight(tree_arr) == mst_weight(tree_dict)  # exact
            assert sorted((min(u, v), max(u, v)) for u, v, _ in tree_arr) == \
                sorted((min(u, v), max(u, v)) for u, v, _ in tree_dict)

    def test_prim_rejects_directed(self):
        g = DenseGraph.from_edges(2, [(0, 1, 1.0)], directed=True)
        with pytest.raises(ValueError):
            g.prim_arrays(0)

    def test_all_pairs_matches_dict_backend(self):
        g = random_connected_graph(12, rng=4)
        dense = as_array_backend(g)
        apsp_dict = all_pairs_dijkstra(g)
        apsp_arr = all_pairs_dijkstra(dense)
        assert set(apsp_arr) == set(apsp_dict)
        for u in apsp_dict:
            assert apsp_arr[u] == apsp_dict[u]

    def test_directed_dense_dijkstra(self):
        g = DenseGraph.from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 10.0)],
                                  directed=True)
        dist, _ = dijkstra(g, 1)
        assert dist == {1: 0.0, 2: 1.0, 0: 11.0}


class TestBatchedDijkstra:
    def test_matches_per_source(self):
        g = random_connected_graph(13, rng=7)
        dense = as_array_backend(g)
        D = batched_dijkstra(dense.matrix)
        for u in range(13):
            dist, _ = dijkstra(g, u)
            for v in range(13):
                assert D[u, v] == dist[v]

    def test_source_subset_and_parents(self):
        g = random_connected_graph(11, rng=8)
        dense = as_array_backend(g)
        D, P = batched_dijkstra(dense.matrix, [3, 5], return_parents=True)
        assert D.shape == (2, 11) and P.shape == (2, 11)
        for row, src in enumerate((3, 5)):
            assert D[row, src] == 0.0 and P[row, src] == -1
            for v in range(11):
                if v == src:
                    continue
                # Walking the parent chain reproduces the distance.
                path = [v]
                while path[-1] != src:
                    path.append(int(P[row, path[-1]]))
                total = sum(g.weight(a, b) for a, b in zip(path, path[1:]))
                assert total == pytest.approx(D[row, v])

    def test_unreachable_stays_inf(self):
        w = np.full((4, 4), INF)
        w[0, 1] = w[1, 0] = 2.0
        D = batched_dijkstra(w)
        assert D[0, 1] == 2.0 and np.isinf(D[0, 2]) and np.isinf(D[2, 1])

    def test_empty_and_degenerate(self):
        assert batched_dijkstra(np.full((3, 3), INF), []).shape == (0, 3)
        with pytest.raises(ValueError):
            batched_dijkstra(np.zeros((2, 3)))

    def test_directed_arc_matrix(self):
        # Node-weighted style arcs: walking into node v costs w[v].
        w = np.full((3, 3), INF)
        w[0, 1] = 4.0  # 0 -> 1
        w[1, 2] = 1.0  # 1 -> 2
        D = batched_dijkstra(w, [0])
        assert D[0].tolist() == [0.0, 4.0, 5.0]


class TestArrayGraphIsAbstract:
    def test_base_class_n_not_implemented(self):
        with pytest.raises(NotImplementedError):
            ArrayGraph().n
