"""Tests for repro.runner.execute + sink — deterministic seeding, the
serial==parallel equivalence, crash-safe resume, and the churn axis
(per-epoch rows with all-or-nothing item resume)."""

import json

import pytest

from repro.api import MulticastSession
from repro.runner import (
    ChurnSpec,
    JSONLSink,
    ProfileSpec,
    SweepSpec,
    make_profiles,
    read_rows,
    run_dynamic_item,
    run_item,
    run_sweep,
    summarize_rows,
)


def small_spec(**overrides) -> SweepSpec:
    base = dict(ns=(6,), alphas=(2.0,), seeds=(0, 1),
                layouts=("uniform", "cluster", "ring"),
                mechanisms=("tree-shapley", "jv"),
                profiles=ProfileSpec(count=2), side=5.0)
    base.update(overrides)
    return SweepSpec(**base)


def churn_spec(**churn_overrides) -> SweepSpec:
    churn = dict(epochs=3, seed=7, join_rate=0.3, leave_rate=0.3,
                 move_rate=0.15, move_scale=0.3)
    churn.update(churn_overrides)
    return small_spec(seeds=(0,), layouts=("uniform", "ring"),
                      churn=ChurnSpec(**churn))


def payload_lines(path) -> list[str]:
    return sorted(path.read_text().splitlines())


class TestDeterministicSeeding:
    def test_expanded_twice_runs_byte_identical(self, tmp_path):
        # The same SweepSpec, expanded and run twice, yields byte-identical
        # JSONL payloads (satellite: deterministic seeding).
        spec = small_spec()
        run_sweep(spec, out=tmp_path / "a.jsonl")
        run_sweep(SweepSpec.from_json(spec.to_json()), out=tmp_path / "b.jsonl")
        assert payload_lines(tmp_path / "a.jsonl") == payload_lines(tmp_path / "b.jsonl")

    def test_serial_vs_four_workers_byte_identical_modulo_order(self, tmp_path):
        spec = small_spec()
        serial = run_sweep(spec, workers=1, out=tmp_path / "serial.jsonl")
        parallel = run_sweep(spec, workers=4, out=tmp_path / "parallel.jsonl")
        # Returned rows are in expansion order either way...
        assert serial == parallel
        # ...and the sink files match byte-for-byte modulo line order.
        assert payload_lines(tmp_path / "serial.jsonl") == \
            payload_lines(tmp_path / "parallel.jsonl")

    def test_run_item_replays_any_row_from_scratch(self):
        spec = small_spec()
        rows = run_sweep(spec, workers=1)
        for idx, item in enumerate(spec.expand()):
            assert run_item(item) == rows[idx]

    def test_profiles_are_a_pure_function_of_the_scenario(self):
        item = small_spec().expand()[0]
        session = MulticastSession(item.scenario)
        a = make_profiles(session.network, session.source, item.scenario,
                          item.profiles)
        b = make_profiles(session.network, session.source, item.scenario,
                          item.profiles)
        assert a == b and len(a) == 2

    def test_constant_generator(self):
        spec = small_spec(profiles=ProfileSpec("constant", count=2, scale=3.5))
        row = run_item(spec.expand()[0])
        assert row["summary"]["profiles"] == 2
        item = spec.expand()[0]
        session = MulticastSession(item.scenario)
        profiles = make_profiles(session.network, session.source,
                                 item.scenario, item.profiles)
        assert profiles == [{i: 3.5 for i in range(1, 6)}] * 2

    def test_rows_carry_replayable_wire_state(self):
        spec = small_spec()
        row = run_sweep(spec, workers=1)[0]
        assert row["schema"] == 1
        assert row["layout"] == "uniform" and row["n"] == 6
        assert row["mechanism"] == {"name": "tree-shapley", "params": {}}
        assert len(row["results"]) == 2
        # The embedded scenario rebuilds the exact instance.
        from repro.api import ScenarioSpec

        rebuilt = ScenarioSpec.from_dict(row["scenario"])
        assert rebuilt == spec.expand()[0].scenario


class TestRunSweep:
    def test_unknown_mechanism_rejected_with_available_list(self):
        spec = small_spec(mechanisms=("tree-shapley", "warp-drive"))
        with pytest.raises(ValueError, match="warp-drive.*available"):
            run_sweep(spec)

    def test_progress_sees_every_fresh_row(self):
        seen = []
        rows = run_sweep(small_spec(), progress=lambda row: seen.append(row["item"]))
        assert sorted(seen) == sorted(row["item"] for row in rows)

    def test_summaries_aggregate_rows(self):
        rows = run_sweep(small_spec(), workers=1)
        summary = summarize_rows(rows, by=("layout", "mechanism"))
        assert len(summary) == 6  # 3 layouts x 2 mechanisms
        for entry in summary:
            assert entry["items"] == 2 and entry["profiles"] == 4
        shapley = [e for e in summary if e["mechanism"] == "tree-shapley"]
        assert all(e["mean_bb"] == pytest.approx(1.0) for e in shapley)


class TestResume:
    def test_resume_completes_exactly_the_missing_items(self, tmp_path):
        spec = small_spec()
        sink = tmp_path / "results.jsonl"
        full = run_sweep(spec, workers=1, out=sink)
        reference = payload_lines(sink)

        # Truncate the sink: keep 4 complete rows plus a partial 5th line.
        lines = sink.read_text().splitlines(keepends=True)
        sink.write_text("".join(lines[:4]) + lines[4][: len(lines[4]) // 2])

        reran = []
        resumed = run_sweep(spec, workers=1, out=sink, resume=True,
                            progress=lambda row: reran.append(row["item"]))
        assert resumed == full
        assert payload_lines(sink) == reference
        # Exactly the missing items ran: all but the 4 intact rows.
        expected = [item.item_id for item in spec.expand()][4:]
        assert sorted(reran) == sorted(expected)

    def test_resume_with_complete_sink_runs_nothing(self, tmp_path):
        spec = small_spec()
        sink = tmp_path / "results.jsonl"
        full = run_sweep(spec, workers=1, out=sink)
        reran = []
        resumed = run_sweep(spec, workers=1, out=sink, resume=True,
                            progress=lambda row: reran.append(row))
        assert resumed == full and reran == []

    def test_fresh_run_truncates_stale_sink(self, tmp_path):
        sink = tmp_path / "results.jsonl"
        sink.write_text('{"item": "stale"}\n')
        rows = run_sweep(small_spec(), workers=1, out=sink)
        assert JSONLSink.completed_ids(sink) == {row["item"] for row in rows}

    def test_resume_ignores_rows_from_other_specs(self, tmp_path):
        spec = small_spec()
        sink = tmp_path / "results.jsonl"
        sink.write_text(json.dumps({"item": "someone-else::jv"}) + "\n")
        rows = run_sweep(spec, workers=1, out=sink, resume=True)
        assert len(rows) == spec.n_items()
        assert all(row["item"] != "someone-else::jv" for row in rows)
        # The foreign row is purged from the final file, not kept beside
        # this spec's rows.
        assert JSONLSink.completed_ids(sink) == {row["item"] for row in rows}

    def test_resume_rejects_id_collisions_from_a_different_spec(self, tmp_path):
        # Item ids embed the varying axes but not the shared scalars, so a
        # sink from a spec differing only in `side` collides on id; resume
        # must recompute, not silently reuse the stale rows.
        sink = tmp_path / "results.jsonl"
        stale_spec = small_spec(side=9.0)
        stale = run_sweep(stale_spec, workers=1, out=sink)
        spec = small_spec()  # side=5.0, identical item ids
        assert [r["item"] for r in stale] == [i.item_id for i in spec.expand()]

        reran = []
        rows = run_sweep(spec, workers=1, out=sink, resume=True,
                         progress=lambda row: reran.append(row["item"]))
        assert len(reran) == spec.n_items()  # nothing was reused
        assert rows == run_sweep(spec, workers=1)
        assert payload_lines(sink) == sorted(
            json.dumps(row, sort_keys=True) for row in rows)

    def test_resume_reuses_matching_rows_despite_extra_stale_ones(self, tmp_path):
        sink = tmp_path / "results.jsonl"
        spec = small_spec()
        full = run_sweep(spec, workers=1, out=sink)
        # Corrupt one row's scenario (as if from another spec) — exactly
        # that item re-runs, the rest are reused.
        lines = [json.loads(line) for line in sink.read_text().splitlines()]
        lines[2]["scenario"] = dict(lines[2]["scenario"], side=9.0)
        sink.write_text("".join(json.dumps(row, sort_keys=True) + "\n"
                                for row in lines))
        reran = []
        resumed = run_sweep(spec, workers=1, out=sink, resume=True,
                            progress=lambda row: reran.append(row["item"]))
        assert reran == [full[2]["item"]]
        assert resumed == full


class TestChurnSweep:
    def test_one_row_per_item_epoch_in_expansion_order(self):
        spec = churn_spec()
        rows = run_sweep(spec)
        assert len(rows) == spec.n_rows() == 12
        expected = [(item.item_id, epoch) for item in spec.expand()
                    for epoch in range(3)]
        assert [(r["item"], r["epoch"]) for r in rows] == expected

    def test_serial_vs_parallel_byte_identical(self, tmp_path):
        spec = churn_spec()
        serial = run_sweep(spec, workers=1, out=tmp_path / "serial.jsonl")
        parallel = run_sweep(spec, workers=3, out=tmp_path / "parallel.jsonl")
        assert serial == parallel
        assert payload_lines(tmp_path / "serial.jsonl") == \
            payload_lines(tmp_path / "parallel.jsonl")

    def test_run_dynamic_item_replays_any_epoch_block(self):
        spec = churn_spec()
        rows = run_sweep(spec)
        for item in spec.expand():
            block = [r for r in rows if r["item"] == item.item_id]
            assert run_dynamic_item(item) == block

    def test_run_item_and_run_dynamic_item_reject_wrong_kinds(self):
        with pytest.raises(ValueError, match="run_dynamic_item"):
            run_item(churn_spec().expand()[0])
        with pytest.raises(ValueError, match="run_item"):
            run_dynamic_item(small_spec().expand()[0])

    def test_rows_reflect_churn_events(self):
        spec = churn_spec()
        rows = run_sweep(spec)
        scenario = spec.expand()[0].scenario
        for row in rows[:3]:
            state = scenario.state(row["epoch"])
            assert row["active"] == list(state.active)
            assert row["event_counts"] == state.event_counts()
            assert row["scenario"]["churn"] == spec.churn.to_dict()

    def test_audit_flags_embed_clean_reports(self):
        rows = run_sweep(churn_spec(), audit=True)
        assert all(row["audit"]["violations"] == [] for row in rows)
        assert all(row["audit"]["profiles"] == 2 for row in rows)


class TestChurnResume:
    def test_truncation_mid_epoch_block_reruns_whole_items(self, tmp_path):
        spec = churn_spec()
        sink = tmp_path / "rows.jsonl"
        full = run_sweep(spec, out=sink)
        reference = payload_lines(sink)

        # Cut the sink mid-way through an item's epoch block (plus a
        # partial tail line): the wounded items replay from epoch 0.
        lines = sink.read_text().splitlines(keepends=True)
        sink.write_text("".join(lines[:5]) + lines[5][:30])

        reran = []
        resumed = run_sweep(spec, out=sink, resume=True,
                            progress=lambda row: reran.append((row["item"], row["epoch"])))
        assert resumed == full
        assert payload_lines(sink) == reference
        # Every item with a missing epoch reran completely (all-or-nothing).
        for item in spec.expand():
            block = [(item.item_id, e) for e in range(3)]
            if all(json.dumps(row, sort_keys=True) + "\n" in lines[:5]
                   for row in full if (row["item"], row["epoch"]) in block):
                continue
            assert set(block) <= set(reran), f"{item.item_id} should have reran"

    def test_complete_sink_runs_nothing(self, tmp_path):
        spec = churn_spec()
        sink = tmp_path / "rows.jsonl"
        full = run_sweep(spec, out=sink)
        reran = []
        resumed = run_sweep(spec, out=sink, resume=True,
                            progress=lambda row: reran.append(row))
        assert resumed == full and reran == []

    def test_churn_seed_change_purges_every_row(self, tmp_path):
        sink = tmp_path / "rows.jsonl"
        run_sweep(churn_spec(seed=7), out=sink)
        spec = churn_spec(seed=8)  # identical item ids, different history
        reran = []
        rows = run_sweep(spec, out=sink, resume=True,
                         progress=lambda row: reran.append(row["item"]))
        assert len(reran) == spec.n_rows()  # nothing was reused
        assert rows == run_sweep(spec)
        assert payload_lines(sink) == sorted(
            json.dumps(row, sort_keys=True) for row in rows)

    def test_interleaved_static_and_epoch_rows(self, tmp_path):
        # A sink holding both a static sweep's rows and a churn sweep's
        # rows: each spec resumes against its own rows and purges the
        # foreign ones.
        static = small_spec(seeds=(0,), layouts=("uniform",))
        churny = churn_spec()
        sink = tmp_path / "rows.jsonl"
        static_rows = run_sweep(static, out=sink)
        churn_rows = run_sweep(churny)
        interleaved = []
        for idx in range(max(len(static_rows), len(churn_rows))):
            for rows in (static_rows, churn_rows):
                if idx < len(rows):
                    interleaved.append(rows[idx])
        sink.write_text("".join(json.dumps(row, sort_keys=True) + "\n"
                                for row in interleaved))

        reran = []
        resumed = run_sweep(churny, out=sink, resume=True,
                            progress=lambda row: reran.append(row["item"]))
        assert resumed == churn_rows and reran == []
        # The static rows are purged: they belong to another spec's sweep.
        kept = read_rows(sink)
        assert all("epoch" in row for row in kept)
        assert len(kept) == len(churn_rows)

    def test_audit_mismatch_is_not_reusable(self, tmp_path):
        spec = churn_spec()
        sink = tmp_path / "rows.jsonl"
        run_sweep(spec, out=sink)  # audit-less rows
        reran = []
        audited = run_sweep(spec, out=sink, resume=True, audit=True,
                            progress=lambda row: reran.append(row["item"]))
        assert len(reran) == spec.n_rows()
        assert all("audit" in row for row in audited)

    def test_epoch_rows_with_garbled_epoch_field_rerun(self, tmp_path):
        spec = churn_spec()
        sink = tmp_path / "rows.jsonl"
        full = run_sweep(spec, out=sink)
        rows = [json.loads(line) for line in sink.read_text().splitlines()]
        rows[0]["epoch"] = 99  # out-of-range epoch: the block is incomplete
        sink.write_text("".join(json.dumps(row, sort_keys=True) + "\n"
                                for row in rows))
        resumed = run_sweep(spec, out=sink, resume=True)
        assert resumed == full
        assert payload_lines(sink) == sorted(
            json.dumps(row, sort_keys=True) for row in full)


class TestSink:
    def test_read_rows_skips_partial_tail(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        path.write_text('{"item": "a"}\n{"item": "b"}\n{"item": "c", "x"')
        assert [row["item"] for row in read_rows(path)] == ["a", "b"]
        assert JSONLSink.completed_ids(path) == {"a", "b"}

    def test_read_rows_tolerates_blank_lines_and_missing_file(self, tmp_path):
        path = tmp_path / "rows.jsonl"
        assert read_rows(path) == []
        path.write_text('{"item": "a"}\n\n{"item": "b"}\n')
        assert [row["item"] for row in read_rows(path)] == ["a", "b"]

    def test_write_requires_start(self, tmp_path):
        sink = JSONLSink(tmp_path / "rows.jsonl")
        with pytest.raises(RuntimeError, match="start"):
            sink.write({"item": "a"})
