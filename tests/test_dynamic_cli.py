"""Tests for the ``python -m repro dynamic`` subcommand and the sweep
CLI's churn + audit flags."""

import json

import pytest

from repro.__main__ import main
from repro.dynamic import ChurnSpec, DynamicScenarioSpec
from repro.runner import ChurnSpec as RunnerChurnSpec
from repro.runner import ProfileSpec, SweepSpec


def dyn_args(*extra):
    return ["dynamic", "--n", "8", "--epochs", "3", "--seed", "1",
            "--join-rate", "0.3", "--leave-rate", "0.2",
            "--move-rate", "0.2", *extra]


class TestDynamicSubcommand:
    def test_prints_per_epoch_trajectory(self, capsys):
        assert main(dyn_args()) == 0
        printed = capsys.readouterr().out
        assert "epoch" in printed and "active" in printed and "carried" in printed
        assert "tree-shapley under churn" in printed

    def test_check_asserts_incremental_equals_cold(self, capsys):
        assert main(dyn_args("--check")) == 0
        assert "check: incremental == cold over 3 epochs" in capsys.readouterr().out

    def test_audit_reports_zero_violations(self, capsys):
        assert main(dyn_args("--audit")) == 0
        assert "0 axiom violations" in capsys.readouterr().out

    def test_json_payload_round_trips(self, tmp_path, capsys):
        out = tmp_path / "dyn.json"
        assert main(dyn_args("--json", "--out", str(out))) == 0
        payload = json.loads(out.read_text())
        assert payload == json.loads(capsys.readouterr().out)
        spec = DynamicScenarioSpec.from_dict(payload["scenario"])
        assert spec.n_epochs == 3 and len(payload["rows"]) == 3
        assert payload["reuse"]["sessions_built"] >= 1

    def test_json_stdout_stays_parseable_with_check_and_audit(self, capsys):
        # --check and --audit diagnostics must not corrupt the --json
        # payload: stdout is reserved for the machine-readable output.
        assert main(dyn_args("--json", "--check", "--audit")) == 0
        captured = capsys.readouterr()
        json.loads(captured.out)  # the whole stream is one JSON document
        assert "incremental == cold" in captured.err
        assert "0 axiom violations" in captured.err

    def test_spec_file_mode(self, tmp_path, capsys):
        spec = DynamicScenarioSpec(
            kind="random", n=7, alpha=2.0, seed=4, side=5.0,
            churn=ChurnSpec(epochs=2, seed=3, leave_rate=0.4))
        path = tmp_path / "dyn_spec.json"
        path.write_text(spec.to_json())
        assert main(["dynamic", "--spec", str(path), "--mechanism", "jv",
                     "--check"]) == 0
        assert "jv under churn (n=7, 2 epochs" in capsys.readouterr().out

    def test_plain_static_spec_file_fabricates_no_churn(self, tmp_path, capsys):
        # A static ScenarioSpec JSON (no churn block) replays as exactly
        # one churn-free epoch — nothing is invented.
        from repro.api import ScenarioSpec

        path = tmp_path / "static.json"
        path.write_text(ScenarioSpec.from_random(n=6, alpha=2.0, seed=1).to_json())
        assert main(["dynamic", "--spec", str(path)]) == 0
        printed = capsys.readouterr().out
        assert "1 epochs" in printed and "epoch" in printed

    def test_unknown_mechanism_exits_2(self, capsys):
        assert main(dyn_args("--mechanism", "warp-drive")) == 2
        err = capsys.readouterr().err
        assert "warp-drive" in err and "available" in err

    def test_missing_spec_file_exits_2(self, capsys):
        assert main(["dynamic", "--spec", "/nonexistent/spec.json"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_inline_rates_exit_2(self, capsys):
        assert main(dyn_args("--join-rate", "1.5")) == 2
        assert "join_rate" in capsys.readouterr().err


class TestSweepChurnCLI:
    def test_churn_sweep_prints_epoch_rows(self, tmp_path, capsys):
        spec = SweepSpec(ns=(6,), alphas=(2.0,), seeds=(0,),
                         layouts=("cluster",), mechanisms=("tree-shapley",),
                         profiles=ProfileSpec(count=2), side=5.0,
                         churn=RunnerChurnSpec(epochs=3, seed=2, leave_rate=0.3))
        path = tmp_path / "sweep.json"
        path.write_text(spec.to_json())
        out = tmp_path / "rows.jsonl"
        assert main(["sweep", "--spec", str(path), "--out", str(out),
                     "--by", "mechanism,epoch"]) == 0
        printed = capsys.readouterr().out
        assert "x 3 epochs = 3 rows" in printed
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert [row["epoch"] for row in rows] == [0, 1, 2]

    def test_sweep_audit_flag_reports_clean(self, tmp_path, capsys):
        spec = SweepSpec(ns=(6,), alphas=(2.0,), seeds=(0,),
                         layouts=("cluster",),
                         mechanisms=("tree-shapley", "tree-mc"),
                         profiles=ProfileSpec(count=2), side=5.0)
        path = tmp_path / "sweep.json"
        path.write_text(spec.to_json())
        assert main(["sweep", "--spec", str(path), "--audit"]) == 0
        assert "0 axiom violations" in capsys.readouterr().out


@pytest.mark.slow
class TestDynamicSmoke:
    """The CI smoke case: a 3-epoch toy spec where incremental must equal
    cold through the public CLI (what the workflow step runs)."""

    def test_ci_smoke_command(self, capsys):
        assert main(["dynamic", "--n", "8", "--epochs", "3", "--seed", "1",
                     "--join-rate", "0.3", "--leave-rate", "0.2",
                     "--move-rate", "0.2", "--mechanism", "tree-shapley",
                     "--check", "--audit"]) == 0
        printed = capsys.readouterr().out
        assert "incremental == cold" in printed
        assert "0 axiom violations" in printed
