"""Tests for repro.core.euclidean_optimal (paper section 3.1)."""

import numpy as np
import pytest

from repro.core.euclidean_optimal import (
    EuclideanMCMechanism,
    EuclideanShapleyMechanism,
    euclidean_optimal_cost_function,
    line_shapley_shares,
    max_game_shapley,
)
from repro.geometry.points import uniform_points
from repro.mechanism.cost_function import CostFunction
from repro.mechanism.properties import (
    check_npt,
    check_vp,
    find_group_deviation,
    find_unilateral_deviation,
)
from repro.mechanism.shapley import shapley_shares
from repro.mechanism.vcg import brute_force_efficient_set
from repro.wireless.cost_graph import EuclideanCostGraph
from repro.wireless.memt import optimal_multicast_cost


def alpha1_net(seed, n=7, dim=2):
    return EuclideanCostGraph(uniform_points(n, dim, rng=seed, side=5.0), 1.0)


def line_net(seed, n=7, alpha=2.0):
    return EuclideanCostGraph(uniform_points(n, 1, rng=seed, side=5.0), alpha)


def profile_for(net, source, seed, scale=2.0):
    rng = np.random.default_rng(seed)
    typical = float(np.median(net.matrix[net.matrix > 0]))
    return {i: float(rng.uniform(0, scale * typical)) for i in range(net.n) if i != source}


class TestCostFunctionDispatch:
    def test_alpha1_is_max_distance(self):
        net = alpha1_net(0)
        cf = euclidean_optimal_cost_function(net, 0)
        R = frozenset({1, 4})
        assert cf(R) == pytest.approx(max(net.distance(0, 1), net.distance(0, 4)))
        assert cf(frozenset()) == 0.0

    @pytest.mark.parametrize("seed", range(3))
    def test_line_matches_exact_oracle(self, seed):
        net = line_net(seed)
        cf = euclidean_optimal_cost_function(net, 0)
        rng = np.random.default_rng(seed)
        for _ in range(6):
            size = int(rng.integers(1, net.n))
            R = frozenset(int(x) for x in rng.choice(range(1, net.n), size=size, replace=False))
            assert cf(R) == pytest.approx(optimal_multicast_cost(net, 0, R))

    def test_hard_case_rejected(self):
        net = EuclideanCostGraph(uniform_points(5, 2, rng=0), 2.0)
        with pytest.raises(ValueError, match="NP-hard"):
            euclidean_optimal_cost_function(net, 0)

    @pytest.mark.parametrize("make", [alpha1_net, line_net])
    def test_submodular_and_monotone(self, make):
        net = make(1, n=6)
        cf = CostFunction(list(range(1, 6)), euclidean_optimal_cost_function(net, 0))
        assert cf.is_nondecreasing() and cf.is_submodular()


class TestClosedFormShapley:
    def test_max_game_vs_enumeration(self):
        values = {1: 2.0, 2: 5.0, 3: 5.0, 4: 9.0}
        fast = max_game_shapley(values)
        slow = shapley_shares(list(values), lambda R: max((values[i] for i in R), default=0.0))
        for i in values:
            assert fast[i] == pytest.approx(slow[i])
        assert sum(fast.values()) == pytest.approx(9.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_line_shapley_vs_enumeration(self, seed):
        net = line_net(seed, n=6)
        cf = euclidean_optimal_cost_function(net, 0)
        rng = np.random.default_rng(seed)
        R = sorted(int(x) for x in rng.choice(range(1, 6), size=4, replace=False))
        fast = line_shapley_shares(net.points.coords.ravel(), net.alpha, 0, R)
        slow = shapley_shares(R, cf)
        for i in R:
            assert fast[i] == pytest.approx(slow[i])

    def test_line_shapley_budget_balance(self):
        net = line_net(7, n=7)
        cf = euclidean_optimal_cost_function(net, 0)
        R = list(range(1, 7))
        shares = line_shapley_shares(net.points.coords.ravel(), net.alpha, 0, R)
        assert sum(shares.values()) == pytest.approx(cf(frozenset(R)))


@pytest.mark.parametrize("make,source", [(alpha1_net, 0), (line_net, 3)])
class TestShapleyMechanism:
    def test_one_bb_and_axioms(self, make, source):
        net = make(2)
        mech = EuclideanShapleyMechanism(net, source)
        profile = profile_for(net, source, 5)
        result = mech.run(profile)
        cf = euclidean_optimal_cost_function(net, source)
        assert result.total_charged() == pytest.approx(cf(result.receivers))  # 1-BB
        assert check_npt(result) and check_vp(result, profile)
        if result.receivers:
            assert result.power.reaches(net, source, result.receivers)
            assert result.cost == pytest.approx(cf(result.receivers))

    def test_group_strategyproof_search(self, make, source):
        net = make(3, n=5)
        mech = EuclideanShapleyMechanism(net, source)
        profile = profile_for(net, source, 9)
        assert find_group_deviation(mech, profile, max_coalition_size=2,
                                    n_samples_per_coalition=25, rng=0) is None


@pytest.mark.parametrize("make,source", [(alpha1_net, 0), (line_net, 2)])
class TestMCMechanism:
    def test_efficiency_vs_brute_force(self, make, source):
        net = make(4)
        mech = EuclideanMCMechanism(net, source)
        profile = profile_for(net, source, 11)
        result = mech.run(profile)
        agents = [i for i in range(net.n) if i != source]
        cf = euclidean_optimal_cost_function(net, source)
        nw_bf, set_bf = brute_force_efficient_set(agents, cf)(profile)
        assert result.extra["net_worth"] == pytest.approx(nw_bf)
        assert result.receivers == set_bf

    def test_strategyproof(self, make, source):
        net = make(5, n=5)
        mech = EuclideanMCMechanism(net, source)
        profile = profile_for(net, source, 13)
        assert find_unilateral_deviation(mech, profile) is None

    def test_axioms_and_feasibility(self, make, source):
        net = make(6)
        mech = EuclideanMCMechanism(net, source)
        profile = profile_for(net, source, 17)
        result = mech.run(profile)
        assert check_npt(result) and check_vp(result, profile)
        assert result.total_charged() <= result.cost + 1e-9  # never a surplus
        if result.receivers:
            assert result.power.reaches(net, source, result.receivers)
