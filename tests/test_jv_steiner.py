"""Tests for repro.core.jv_steiner (Jain-Vazirani cross-monotonic shares)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jv_steiner import JVSteinerShares, metric_closure_matrix
from repro.geometry.points import uniform_points
from repro.graphs.random_graphs import random_cost_matrix
from repro.mechanism.moulin_shenker import check_cross_monotonicity
from repro.wireless.cost_graph import CostGraph, EuclideanCostGraph


def euclid(seed, n=7, alpha=2.0):
    return EuclideanCostGraph(uniform_points(n, 2, rng=seed, side=4.0), alpha)


class TestMetricClosure:
    def test_floyd_warshall_matches_dijkstra(self):
        net = CostGraph(random_cost_matrix(8, rng=0))
        closure = metric_closure_matrix(net)
        from repro.graphs.shortest_paths import dijkstra

        g = net.as_graph()
        for i in range(8):
            dist, _ = dijkstra(g, i)
            for j in range(8):
                assert closure[i, j] == pytest.approx(dist[j])

    def test_triangle_inequality(self):
        net = euclid(1)
        c = metric_closure_matrix(net)
        n = net.n
        for i in range(n):
            for j in range(n):
                for k in range(n):
                    assert c[i, j] <= c[i, k] + c[k, j] + 1e-9


class TestShares:
    @pytest.mark.parametrize("seed", range(5))
    def test_sum_equals_closure_mst(self, seed):
        net = euclid(seed)
        jv = JVSteinerShares(net, 0)
        rng = np.random.default_rng(seed)
        for _ in range(6):
            size = int(rng.integers(1, net.n))
            R = frozenset(int(x) for x in rng.choice(range(1, net.n), size=size, replace=False))
            shares = jv.shares(R)
            assert set(shares) == set(R)
            assert sum(shares.values()) == pytest.approx(jv.closure_mst_weight(R))
            assert all(s >= -1e-12 for s in shares.values())

    def test_empty_and_source_only(self):
        jv = JVSteinerShares(euclid(0), 0)
        assert jv.shares(frozenset()) == {}
        assert jv.shares(frozenset({0})) == {}
        assert jv.closure_mst_weight(frozenset()) == 0.0

    def test_singleton_pays_its_connection(self):
        net = euclid(2)
        jv = JVSteinerShares(net, 0)
        shares = jv.shares(frozenset({3}))
        closure = metric_closure_matrix(net)
        assert shares[3] == pytest.approx(closure[0, 3])

    @pytest.mark.parametrize("seed", range(4))
    def test_cross_monotonic_exhaustive(self, seed):
        net = euclid(seed, n=6)
        jv = JVSteinerShares(net, 0)
        assert check_cross_monotonicity(list(range(1, 6)), jv.shares) == []

    def test_general_symmetric_networks_too(self):
        net = CostGraph(random_cost_matrix(6, rng=5))
        jv = JVSteinerShares(net, 0)
        assert check_cross_monotonicity(list(range(1, 6)), jv.shares) == []


class TestWeightedFamily:
    def test_weights_shift_shares_but_not_total(self):
        net = euclid(3)
        R = frozenset(range(1, net.n))
        equal = JVSteinerShares(net, 0).shares(R)
        heavy = {i: (10.0 if i == 1 else 1.0) for i in range(1, net.n)}
        weighted = JVSteinerShares(net, 0, heavy).shares(R)
        assert sum(equal.values()) == pytest.approx(sum(weighted.values()))
        assert weighted[1] >= equal[1] - 1e-12  # heavier agents pay more

    def test_weighted_still_cross_monotonic(self):
        net = euclid(4, n=6)
        rng = np.random.default_rng(0)
        w = {i: float(rng.uniform(0.5, 3.0)) for i in range(1, 6)}
        jv = JVSteinerShares(net, 0, w)
        assert check_cross_monotonicity(list(range(1, 6)), jv.shares) == []

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            JVSteinerShares(euclid(0), 0, {1: 0.0})


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 1000), data=st.data())
def test_cross_monotonicity_property(seed, data):
    """Random covering pairs on bigger instances: xi(Q, i) >= xi(Q + j, i)."""
    net = euclid(seed % 20, n=8)
    jv = JVSteinerShares(net, 0)
    agents = list(range(1, 8))
    Q = frozenset(data.draw(st.lists(st.sampled_from(agents), min_size=1,
                                     max_size=6, unique=True)))
    outside = [a for a in agents if a not in Q]
    if not outside:
        return
    j = data.draw(st.sampled_from(outside))
    shares_Q = jv.shares(Q)
    shares_R = jv.shares(Q | {j})
    for i in Q:
        assert shares_Q[i] >= shares_R[i] - 1e-9
