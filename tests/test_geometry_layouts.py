"""Tests for repro.geometry.layouts — the named layout families."""

import numpy as np
import pytest

from repro.api import ScenarioSpec
from repro.geometry import LAYOUT_FAMILIES, layout_points, uniform_points
from repro.geometry.layouts import RADIAL_EXPONENT


class TestLayoutGenerators:
    @pytest.mark.parametrize("family", LAYOUT_FAMILIES)
    @pytest.mark.parametrize("n,dim", [(1, 1), (2, 2), (7, 2), (9, 1), (12, 3)])
    def test_shape_and_determinism(self, family, n, dim):
        a = layout_points(family, n, dim, side=8.0, seed=11)
        b = layout_points(family, n, dim, side=8.0, seed=11)
        assert a.coords.shape == (n, dim)
        assert np.array_equal(a.coords, b.coords)

    @pytest.mark.parametrize("family", LAYOUT_FAMILIES)
    def test_seed_changes_layout(self, family):
        a = layout_points(family, 10, 2, side=8.0, seed=0)
        b = layout_points(family, 10, 2, side=8.0, seed=1)
        assert not np.array_equal(a.coords, b.coords)

    def test_uniform_matches_historical_draw(self):
        # kind="random" specs predating the layout field must rebuild the
        # exact same network: uniform == uniform_points, bit for bit.
        a = layout_points("uniform", 14, 3, side=6.0, seed=42)
        b = uniform_points(14, 3, side=6.0, rng=np.random.default_rng(42))
        assert np.array_equal(a.coords, b.coords)

    @pytest.mark.parametrize("family", ["cluster", "ring", "radial"])
    def test_bounded_families_stay_in_box(self, family):
        coords = layout_points(family, 60, 2, side=10.0, seed=3).coords
        assert coords.min() >= 0.0 and coords.max() <= 10.0

    def test_cluster_is_clumpier_than_uniform(self):
        # Mean nearest-neighbour distance under clustering is well below
        # the uniform layout's (the point of the family).
        def mean_nn(points):
            d = points.distance_matrix()
            np.fill_diagonal(d, np.inf)
            return float(d.min(axis=1).mean())

        clustered = layout_points("cluster", 40, 2, side=10.0, seed=5)
        uniform = layout_points("uniform", 40, 2, side=10.0, seed=5)
        assert mean_nn(clustered) < 0.75 * mean_nn(uniform)

    def test_grid_points_sit_near_lattice_cells(self):
        side, n = 9.0, 9  # 3 x 3 lattice, spacing 3
        coords = layout_points("grid", n, 2, side=side, seed=7).coords
        centers = (np.stack(np.meshgrid(np.arange(3), np.arange(3),
                                        indexing="ij"), axis=-1)
                   .reshape(-1, 2) + 0.5) * 3.0
        assert np.all(np.abs(coords - centers) <= 0.75 + 1e-12)  # jitter <= spacing/4

    def test_ring_radii_concentrate(self):
        coords = layout_points("ring", 50, 2, side=10.0, seed=2).coords
        radii = np.linalg.norm(coords - 5.0, axis=1)
        assert np.all(radii >= 0.4 * 10.0 * 0.9 - 1e-9)
        assert np.all(radii <= 0.4 * 10.0 * 1.1 + 1e-9)

    def test_ring_dim1_is_a_corridor(self):
        coords = layout_points("ring", 12, 1, side=12.0, seed=0).coords
        assert coords.shape == (12, 1)
        assert np.all(np.diff(coords[:, 0]) > 0)  # ordered along the corridor

    def test_radial_density_decays_from_center(self):
        coords = layout_points("radial", 400, 2, side=10.0, seed=1).coords
        radii = np.linalg.norm(coords - 5.0, axis=1)
        # r = R * u**g  =>  median radius is R * 0.5**g, far below R/2.
        assert np.median(radii) == pytest.approx(5.0 * 0.5**RADIAL_EXPONENT, rel=0.15)
        assert np.mean(radii < 2.5) > np.mean(radii > 2.5)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="layout family"):
            layout_points("hexes", 5, 2, seed=0)
        with pytest.raises(ValueError, match="n >= 1"):
            layout_points("uniform", 0, 2, seed=0)
        with pytest.raises(ValueError, match="side"):
            layout_points("uniform", 3, 2, side=0.0, seed=0)


class TestScenarioSpecLayouts:
    def test_default_layout_is_uniform(self):
        spec = ScenarioSpec.from_random(n=5, alpha=2.0, seed=3)
        assert spec.layout == "uniform"
        # Old wire dicts (no layout key) load to the same spec.
        old = {"kind": "random", "n": 5, "dim": 2, "side": 10.0,
               "alpha": 2.0, "seed": 3, "source": 0, "tree": "spt"}
        assert ScenarioSpec.from_dict(old) == spec

    @pytest.mark.parametrize("family", LAYOUT_FAMILIES)
    def test_layout_round_trips_and_builds(self, family):
        spec = ScenarioSpec.from_random(n=6, alpha=2.0, seed=9, layout=family)
        assert ScenarioSpec.from_json(spec.to_json()) == spec
        net = spec.build_network()
        assert net.n == 6
        assert np.array_equal(net.matrix, spec.build_network().matrix)

    def test_layout_network_matches_generator(self):
        spec = ScenarioSpec.from_random(n=7, alpha=2.0, seed=4, side=6.0,
                                        layout="cluster")
        direct = layout_points("cluster", 7, 2, side=6.0, seed=4)
        assert np.array_equal(spec.build_network().points.coords, direct.coords)

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError, match="layout family"):
            ScenarioSpec.from_random(n=5, alpha=2.0, seed=0, layout="hexes")

    def test_layout_foreign_on_other_kinds(self):
        with pytest.raises(ValueError, match="does not use fields"):
            ScenarioSpec(kind="points", points=((0.0,), (1.0,)), alpha=2.0,
                         layout="cluster")
        with pytest.raises(ValueError, match="does not use fields"):
            ScenarioSpec(kind="matrix", matrix=((0.0, 1.0), (1.0, 0.0)),
                         layout="uniform")
