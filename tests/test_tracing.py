"""The request-span model, recorder, and report (repro.observability.tracing).

Unit-level contracts: traceparent propagation round-trips and degrades
safely, the span wire format round-trips, the attribute schema is
closed, the recorder's ring/export/drop accounting is exact, and the
forest/report reconstruction is a pure function of the span set.  The
``spans report`` CLI is pinned here too; the fleet-level end-to-end
properties live in ``tests/test_tracing_property.py``.
"""

from __future__ import annotations

import io
import itertools
import json
import random

import pytest

from repro.__main__ import main
from repro.observability import MetricsRegistry
from repro.observability.tracing import (
    NULL_SPAN_RECORDER,
    SPAN_ATTRIBUTE_KEYS,
    NullSpanRecorder,
    Span,
    SpanContext,
    SpanRecorder,
    parse_traceparent,
    read_span_lines,
    render_span_report,
    span_forest,
    span_report,
)


def seq_ids(prefix: int = 0):
    """A deterministic id source: distinct, ordered hex ids, namespaced
    by ``prefix`` so several recorders never collide."""
    counter = itertools.count(1)
    return lambda n_hex: f"{prefix:02x}{next(counter):0{n_hex - 2}x}"


def recorder(stream=None, **kwargs) -> SpanRecorder:
    kwargs.setdefault("ids", seq_ids())
    kwargs.setdefault("clock", lambda: 1000.0)
    return SpanRecorder(stream, **kwargs)


# -- traceparent propagation --------------------------------------------------
def test_traceparent_round_trips():
    context = SpanContext(trace_id="ab" * 16, span_id="cd" * 8)
    header = context.traceparent()
    assert header == "00-" + "ab" * 16 + "-" + "cd" * 8 + "-01"
    assert parse_traceparent(header) == context
    # Surrounding whitespace is forgiven (proxies pad headers).
    assert parse_traceparent(f"  {header}  ") == context


@pytest.mark.parametrize("bad", [
    None, "", "nonsense",
    "01-" + "ab" * 16 + "-" + "cd" * 8 + "-01",     # unknown version
    "00-" + "ab" * 15 + "-" + "cd" * 8 + "-01",     # short trace id
    "00-" + "ab" * 16 + "-" + "cd" * 7 + "-01",     # short span id
    "00-" + "zz" * 16 + "-" + "cd" * 8 + "-01",     # non-hex
    "00-" + "00" * 16 + "-" + "cd" * 8 + "-01",     # all-zero trace id
    "00-" + "ab" * 16 + "-" + "00" * 8 + "-01",     # all-zero span id
    "00-" + "ab" * 16 + "-" + "cd" * 8,             # missing flags
])
def test_malformed_traceparent_degrades_to_none(bad):
    # An unreadable header must start a fresh trace, never error.
    assert parse_traceparent(bad) is None


# -- the span wire format -----------------------------------------------------
def test_span_record_round_trips():
    span = Span(trace_id="ab" * 16, span_id="cd" * 8, parent_id="ef" * 8,
                name="execute", start=1234.5678901, duration=0.025,
                status="ok", attributes={"shard": "w0", "batch_size": 3})
    record = span.to_dict()
    assert record["schema"] == 1
    assert record["duration_ms"] == 25.0
    again = Span.from_dict(json.loads(json.dumps(record)))
    assert again == Span(**{**span.__dict__, "start": record["start"]})


def test_root_span_omits_parent_and_empty_attributes():
    span = Span(trace_id="ab" * 16, span_id="cd" * 8, parent_id=None,
                name="request", start=1.0, duration=0.5)
    record = span.to_dict()
    assert "parent_id" not in record and "attributes" not in record
    assert Span.from_dict(record).parent_id is None


@pytest.mark.parametrize("garbage", [
    [], "text", {"trace_id": "x"}, {"name": "request"},
    {"trace_id": "t", "span_id": "s", "name": "n", "start": "soon",
     "duration_ms": 1.0},
])
def test_malformed_span_record_raises_value_error(garbage):
    with pytest.raises(ValueError):
        Span.from_dict(garbage)


def test_attribute_schema_is_closed():
    rec = recorder()
    with pytest.raises(ValueError, match="unknown span attribute"):
        rec.span("request", attributes={"shardd": "w0"})
    span = rec.span("request")
    with pytest.raises(ValueError, match="unknown span attribute"):
        span.set("surprise", 1)
    with pytest.raises(ValueError, match="JSON scalar"):
        span.set("shard", ["w0"])
    # Every documented key is accepted.
    for key in SPAN_ATTRIBUTE_KEYS:
        span.set(key, "x")


# -- the recorder -------------------------------------------------------------
def test_child_spans_continue_the_parent_trace():
    rec = recorder()
    root = rec.span("request")
    child = rec.span("execute", parent=root.context)
    assert child.context.trace_id == root.context.trace_id
    assert child.parent_id == root.context.span_id
    assert child.context.span_id != root.context.span_id
    child.finish()
    root.finish()
    names = [span.name for span in rec.recent()]
    assert names == ["execute", "request"]  # finish order


def test_observe_backdates_the_start_by_the_duration():
    rec = recorder()
    span = rec.observe("queue", duration=0.25)
    assert span.start == 1000.0 - 0.25
    assert span.duration == 0.25
    # A negative duration (clock skew) clamps to zero, never negative.
    assert rec.observe("queue", duration=-1.0).duration == 0.0


def test_context_manager_marks_errors_and_reraises():
    rec = recorder()
    with pytest.raises(RuntimeError, match="boom"):
        with rec.span("request"):
            raise RuntimeError("boom")
    span, = rec.recent()
    assert span.status == "error"
    assert span.attributes["error"] == "RuntimeError: boom"


def test_finish_is_idempotent():
    rec = recorder()
    span = rec.span("request")
    span.finish()
    span.finish(status="error")
    recorded, = rec.recent()
    assert recorded.status == "ok"
    assert len(rec.recent()) == 1


def test_ring_without_sink_counts_drops():
    registry = MetricsRegistry()
    rec = recorder(limit=2, registry=registry)
    for _ in range(5):
        rec.span("request").finish()
    assert len(rec.recent()) == 2
    payload = rec.stats_payload()
    assert payload["recorded"] == 5
    assert payload["dropped"] == 3
    assert payload["exported"] == 0
    snapshot = registry.snapshot()
    series, = snapshot["repro_spans_dropped_total"]["series"]
    assert series["value"] == 3


def test_sink_exports_every_span_and_never_drops():
    stream = io.StringIO()
    registry = MetricsRegistry()
    rec = recorder(stream, limit=2, registry=registry)
    for _ in range(5):
        rec.span("request").finish()
    payload = rec.stats_payload()
    assert payload == {**payload, "recorded": 5, "exported": 5, "dropped": 0}
    lines = stream.getvalue().splitlines()
    assert len(lines) == 5
    # One compact, key-sorted JSON object per line — the pinned format.
    for line in lines:
        record = json.loads(line)
        assert line == json.dumps(record, sort_keys=True,
                                  separators=(",", ":"))
    spans, malformed = read_span_lines(lines)
    assert malformed == 0 and len(spans) == 5
    series, = registry.snapshot()["repro_spans_exported_total"]["series"]
    assert series["value"] == 5


def test_stats_payload_exemplars_name_request_trace_ids():
    rec = recorder()
    durations = {}
    for index in range(5):
        span = rec.span("request")
        span.finish()
        durations[span.trace_id] = index
    rec.span("flush").finish()  # non-request spans never become exemplars
    exemplars = rec.stats_payload()["exemplars"]
    assert set(exemplars) == {"p50", "p95", "max"}
    assert all(value["trace_id"] in durations for value in exemplars.values())


def test_null_recorder_is_a_complete_no_op():
    assert NULL_SPAN_RECORDER.enabled is False
    assert isinstance(NULL_SPAN_RECORDER, NullSpanRecorder)
    span = NULL_SPAN_RECORDER.span("request", attributes={"shard": "w0"})
    assert span.context is None and span.trace_id is None
    with span:
        span.set("status_code", 200)
    assert NULL_SPAN_RECORDER.recent() == []
    assert NULL_SPAN_RECORDER.observe("queue", duration=1.0) is None
    assert NULL_SPAN_RECORDER.stats_payload() == {"enabled": False}


# -- forest + report ----------------------------------------------------------
def _family(rec: SpanRecorder) -> None:
    root = rec.span("request", attributes={"shard": "w0"})
    rec.observe("parse", duration=0.001, parent=root.context)
    rec.observe("execute", duration=0.004, parent=root.context)
    root.finish()


def test_forest_is_order_independent_and_dedupes():
    rec = recorder()
    _family(rec)
    _family(rec)
    spans = rec.recent()
    baseline = span_forest(spans)
    shapes = {
        trace_id: (sorted(tree.spans),
                   {k: list(v) for k, v in sorted(tree.children.items(),
                                                  key=lambda kv: str(kv[0]))})
        for trace_id, tree in baseline.items()}
    for seed in range(5):
        shuffled = list(spans) + [spans[0]]  # duplicate keeps first
        random.Random(seed).shuffle(shuffled)
        forest = span_forest(shuffled)
        assert {
            trace_id: (sorted(tree.spans),
                       {k: list(v) for k, v in sorted(tree.children.items(),
                                                      key=lambda kv: str(kv[0]))})
            for trace_id, tree in forest.items()} == shapes
    tree = baseline[spans[-1].trace_id]
    assert tree.complete
    root, = tree.roots
    assert root.name == "request"
    assert sorted(s.name for s in tree.child_spans(root.span_id)) == [
        "execute", "parse"]


def test_missing_parents_mark_the_trace_broken():
    orphan = Span(trace_id="ab" * 16, span_id="cd" * 8, parent_id="ef" * 8,
                  name="execute", start=1.0, duration=0.1)
    tree = span_forest([orphan])["ab" * 16]
    assert not tree.complete and tree.missing_parents == {"ef" * 8}
    report = span_report([orphan])
    assert report["broken_traces"] == ["ab" * 16]
    assert any("absent" in problem for problem in report["problems"])
    assert any(line.startswith("PROBLEM:")
               for line in render_span_report(report))


def test_report_counts_flush_sharing_and_dangling_links():
    rec = recorder()
    flush = rec.span("flush", attributes={"requests": 2})
    link = {"flush_trace_id": flush.trace_id,
            "flush_span_id": flush.context.span_id}
    for _ in range(2):
        root = rec.span("request")
        rec.observe("execute", duration=0.001, parent=root.context,
                    attributes={**link, "batch_size": 2})
        root.finish()
    flush.finish()
    report = span_report(rec.recent())
    assert report["flushes"] == {"spans": 1, "linked_requests": 2, "shared": 1}
    assert report["problems"] == []
    # Drop the flush span: the links dangle and the report says so.
    partial = [span for span in rec.recent() if span.name != "flush"]
    report = span_report(partial)
    assert report["flushes"]["linked_requests"] == 0
    assert any("link to flush spans absent" in p for p in report["problems"])


def test_torn_tail_lines_count_as_malformed_not_fatal():
    stream = io.StringIO()
    rec = recorder(stream)
    _family(rec)
    lines = stream.getvalue().splitlines()
    lines[-1] = lines[-1][:20]  # the process died mid-write
    spans, malformed = read_span_lines(lines + ["", "   "])
    assert malformed == 1 and len(spans) == 2


# -- the spans CLI ------------------------------------------------------------
def test_spans_report_cli_over_fleet_shaped_logs(tmp_path, capsys):
    router_log = tmp_path / "router.spans.jsonl"
    worker_log = tmp_path / "w0.spans.jsonl"
    with open(router_log, "w") as router_stream, \
            open(worker_log, "w") as worker_stream:
        router = SpanRecorder(router_stream, ids=seq_ids(1),
                              clock=lambda: 1000.0)
        worker = SpanRecorder(worker_stream, ids=seq_ids(2),
                              clock=lambda: 1000.0)
        root = router.span("request", attributes={"shard": "router"})
        forward = router.span("forward", parent=root.context,
                              attributes={"shard": "w0"})
        handled = worker.span("request", parent=forward.context,
                              attributes={"shard": "w0"})
        worker.observe("execute", duration=0.002, parent=handled.context)
        handled.finish()
        forward.finish()
        root.finish()

    rc = main(["spans", "report", str(router_log), str(worker_log)])
    out = capsys.readouterr().out
    assert rc == 0
    assert "1 traces (1 complete)" in out
    assert "shard w0: 1 request span(s), 1 complete cross-process trace(s)" in out
    assert "well-formed" in out

    rc = main(["spans", "report", "--json", str(router_log), str(worker_log)])
    report = json.loads(capsys.readouterr().out)
    assert rc == 0
    assert report["cross_process_traces"] == {"w0": 1}
    assert report["files"] == 2 and report["spans"] == 4

    # --require-complete gates CI: satisfied here, unsatisfiable at 2.
    assert main(["spans", "report", "--require-complete", "1",
                 str(router_log), str(worker_log)]) == 0
    rc = main(["spans", "report", "--require-complete", "2",
               str(router_log), str(worker_log)])
    assert rc == 1
    assert "FAIL" in capsys.readouterr().err

    # The worker log alone is a broken trace (the forward parent is in
    # the router's log) — the report exits nonzero and says why.
    rc = main(["spans", "report", str(worker_log)])
    captured = capsys.readouterr()
    assert rc == 1 and "PROBLEM" in captured.out


def test_spans_report_cli_missing_file_is_exit_2(tmp_path, capsys):
    assert main(["spans", "report", str(tmp_path / "nope.jsonl")]) == 2
    assert "error" in capsys.readouterr().err
