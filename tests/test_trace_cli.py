"""The ``python -m repro trace`` subcommand and the loadgen CLI's trace
flags, end to end."""

from __future__ import annotations

import json

import pytest

from repro.__main__ import main
from repro.traces import Trace
from tests.test_service_cli import ServerThread


@pytest.fixture()
def trace_file(tmp_path):
    path = tmp_path / "trace.jsonl"
    assert main(["trace", "generate", "--out", str(path), "--n", "10",
                 "--groups", "2", "--epochs", "3", "--seed", "1"]) == 0
    return path


class TestGenerate:
    def test_writes_a_valid_deterministic_file(self, trace_file, tmp_path,
                                               capsys):
        trace = Trace.read(trace_file)
        assert trace.groups == ("g0", "g1") and trace.epochs == 3
        again = tmp_path / "again.jsonl"
        assert main(["trace", "generate", "--out", str(again), "--n", "10",
                     "--groups", "2", "--epochs", "3", "--seed", "1"]) == 0
        assert again.read_bytes() == trace_file.read_bytes()
        assert "2 groups x 3 epochs" in capsys.readouterr().out

    def test_stdout_mode_prints_the_jsonl(self, capsys):
        assert main(["trace", "generate", "--n", "8", "--groups", "1",
                     "--epochs", "2"]) == 0
        out = capsys.readouterr().out
        assert Trace.from_jsonl(out).groups == ("g0",)

    def test_bad_rates_exit_2(self, capsys):
        assert main(["trace", "generate", "--n", "8",
                     "--member-rate", "2.0"]) == 2
        assert "member_rate" in capsys.readouterr().err


class TestValidate:
    def test_valid_file(self, trace_file, capsys):
        assert main(["trace", "validate", str(trace_file)]) == 0
        assert "valid trace: 2 groups" in capsys.readouterr().out

    def test_invalid_stream_exits_1(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format": "repro-trace", "version": 99}\n')
        assert main(["trace", "validate", str(bad)]) == 1
        assert "invalid trace" in capsys.readouterr().err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["trace", "validate", str(tmp_path / "nope.jsonl")]) == 2
        assert "error" in capsys.readouterr().err


class TestReplay:
    def test_prints_per_group_trajectories(self, trace_file, capsys):
        assert main(["trace", "replay", str(trace_file),
                     "--mechanism", "tree-shapley"]) == 0
        out = capsys.readouterr().out
        assert "group" in out and "epoch" in out and "charged" in out
        assert "substrates built" in out

    def test_check_asserts_shared_equals_cold(self, trace_file, capsys):
        assert main(["trace", "replay", str(trace_file), "--check"]) == 0
        out = capsys.readouterr().out
        assert "shared-substrate replay == cold per-group replay" in out
        assert "6 (group, epoch) cells" in out

    def test_audit_reports_zero_violations(self, trace_file, capsys):
        assert main(["trace", "replay", str(trace_file), "--audit"]) == 0
        assert "0 axiom violations" in capsys.readouterr().out

    def test_json_payload_round_trips(self, trace_file, tmp_path, capsys):
        out_path = tmp_path / "replay.json"
        assert main(["trace", "replay", str(trace_file), "--check", "--json",
                     "--out", str(out_path)]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)  # stdout stays machine-parseable
        assert json.loads(out_path.read_text()) == payload
        assert set(payload["rows"]) == {"g0", "g1"}
        assert payload["counters"]["substrate_sessions_built"] >= 1
        assert "cold per-group replay" in captured.err

    def test_unknown_mechanism_exits_2(self, trace_file, capsys):
        assert main(["trace", "replay", str(trace_file),
                     "--mechanism", "bogus"]) == 2
        assert "tree-shapley" in capsys.readouterr().err


class TestLoadgenTraceFlags:
    def test_trace_replay_against_a_live_server(self, trace_file, capsys):
        with ServerThread(batch_window=0.01) as server:
            code = main(["loadgen", "--port", str(server.port),
                         "--trace", str(trace_file),
                         "--mechanisms", "tree-shapley",
                         "--trace-repeats", "2", "--expect-groups", "2"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "loadgen: 12 requests" in out  # 2 groups x 3 epochs x 2
        assert "status: 200:12" in out
        assert "group g0: 3/3 epochs priced" in out
        assert "group g1: 3/3 epochs priced" in out

    def test_missing_trace_file_exits_2(self, tmp_path, capsys):
        code = main(["loadgen", "--port", "1",
                     "--trace", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_trace_file_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"format": "pcap"}\n')
        assert main(["loadgen", "--port", "1", "--trace", str(bad)]) == 2
        assert "invalid trace" in capsys.readouterr().err
