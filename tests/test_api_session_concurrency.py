"""Concurrency regression: one MulticastSession hammered from threads.

The service layer executes requests on a thread pool, so a session's lazy
builds (network, trees, closure, mechanism instances, xi caches) must be
safe when several threads race on a *cold* session.  Every result must be
bit-identical to the serial oracle — a fresh session run single-threaded —
because all the caches memoise pure functions.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.api import MulticastSession, ScenarioSpec, result_to_dict
from repro.engine.batch import MethodCache

MECHANISMS = ["tree-shapley", "tree-mc", "jv", "nwst"]
N_THREADS = 8
N_ROUNDS = 2  # each request is replayed across the pool


def _workload(spec, n_profiles=3):
    rng = np.random.default_rng(1234)
    agents = spec.agents()
    profiles = [
        {a: float(rng.uniform(0.0, 8.0)) for a in agents} for _ in range(n_profiles)
    ]
    return [(MECHANISMS[i % len(MECHANISMS)], profiles[i % len(profiles)])
            for i in range(len(MECHANISMS) * n_profiles)]


@pytest.mark.parametrize("seed", [0])
def test_cold_session_hammered_equals_serial_oracle(seed):
    spec = ScenarioSpec.from_random(n=8, alpha=2.0, seed=seed, side=6.0)
    requests = _workload(spec)

    oracle_session = MulticastSession(spec)
    oracle = [result_to_dict(oracle_session.run(m, p)) for m, p in requests]

    session = MulticastSession(spec)  # cold: threads race on every lazy build
    barrier = threading.Barrier(N_THREADS)

    def worker(worker_id: int):
        barrier.wait()  # maximise contention on the cold builds
        out = []
        for round_no in range(N_ROUNDS):
            # Rotate the start offset so threads collide on different keys.
            for idx in range(len(requests)):
                mech, profile = requests[(idx + worker_id + round_no) % len(requests)]
                out.append(((idx + worker_id + round_no) % len(requests),
                            result_to_dict(session.run(mech, profile))))
        return out

    with ThreadPoolExecutor(N_THREADS) as pool:
        results = [f.result() for f in [pool.submit(worker, i) for i in range(N_THREADS)]]

    for per_thread in results:
        for idx, payload in per_thread:
            assert payload == oracle[idx]

    info = session.cache_info()
    assert info["network_built"] and info["trees"] == ["spt"] and info["closure_built"]


def test_method_cache_concurrent_consistency():
    calls = []
    lock = threading.Lock()

    def xi(R: frozenset) -> dict:
        with lock:
            calls.append(R)
        return {a: float(a) / (len(R) + 1) for a in R}

    cache = MethodCache(xi)
    keys = [frozenset(range(k)) for k in range(1, 6)]
    barrier = threading.Barrier(N_THREADS)

    def worker():
        barrier.wait()
        return [cache(k) for _ in range(50) for k in keys]

    with ThreadPoolExecutor(N_THREADS) as pool:
        outs = [f.result() for f in [pool.submit(worker) for _ in range(N_THREADS)]]

    expected = [xi(k) for k in keys] * 50
    for out in outs:
        assert out == expected
    # Counters stay coherent: every call is either a hit or a miss, and
    # each key was inserted exactly once (misses == distinct keys even if
    # racing threads recomputed a cold key).
    assert cache.hits + cache.misses == N_THREADS * 50 * len(keys)
    assert cache.misses == len(keys)

    # Returned dicts are private copies — mutating one must not poison
    # the cache.
    first = cache(keys[0])
    first[1] = -1.0
    assert cache(keys[0]) == expected[0]
