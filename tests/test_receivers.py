"""Tests for the ``receivers`` scenario axis (terminal-restricted agents).

An explicit ``receivers`` subset is what makes n=10^3..10^4 instances
tractable: sessions build terminal-sourced closures over
``{source} + receivers`` and mechanisms price only the named agents.
These tests pin the threading through spec -> session -> mechanisms,
the rejection paths of full-station mechanisms, and the sweep runner's
profile restriction.
"""

import dataclasses

import numpy as np
import pytest

from repro.api import ScenarioSpec
from repro.api.session import MulticastSession
from repro.dynamic.spec import ChurnSpec, DynamicScenarioSpec
from repro.runner.execute import make_profiles
from repro.runner.spec import ProfileSpec


def spec_with(receivers, n=12, seed=0):
    return dataclasses.replace(
        ScenarioSpec.from_random(n=n, alpha=2.0, seed=seed),
        receivers=receivers)


class TestSpecValidation:
    def test_agents_default_is_all_non_source(self):
        spec = ScenarioSpec.from_random(n=6, alpha=2.0, seed=0)
        assert spec.agents() == [1, 2, 3, 4, 5]

    def test_agents_with_receivers(self):
        spec = spec_with((3, 1, 5))
        assert spec.receivers == (1, 3, 5)  # normalized sorted
        assert spec.agents() == [1, 3, 5]

    def test_source_excluded(self):
        with pytest.raises(ValueError, match="source"):
            spec_with((0, 1))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            spec_with((1, 99))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            spec_with(())

    def test_duplicates_collapse(self):
        spec = spec_with((2, 2, 4))
        assert spec.receivers == (2, 4)

    def test_round_trips_through_json(self):
        spec = spec_with((1, 4))
        again = ScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.receivers == (1, 4)

    def test_none_round_trips(self):
        spec = ScenarioSpec.from_random(n=6, alpha=2.0, seed=0)
        assert ScenarioSpec.from_json(spec.to_json()).receivers is None

    def test_dynamic_spec_rejects_receivers(self):
        with pytest.raises(ValueError, match="churn"):
            DynamicScenarioSpec(
                kind="random", n=8, alpha=2.0, seed=0,
                churn=ChurnSpec(epochs=2, seed=0),
                receivers=(1, 2))


class TestSessionThreading:
    def test_terminal_closure_built_lazily(self):
        sess = MulticastSession(spec_with((1, 3, 5)))
        assert sess.cache_info()["terminal_closure_built"] is False
        tc = sess.terminal_closure()
        assert sess.cache_info()["terminal_closure_built"] is True
        assert tc.covers([0, 1, 3, 5])
        assert sess.terminal_closure() is tc  # cached

    def test_terminal_closure_falls_back_to_full(self):
        sess = MulticastSession(ScenarioSpec.from_random(n=8, alpha=2.0, seed=0))
        closure = sess.terminal_closure()
        assert isinstance(closure, np.ndarray)
        assert closure.shape == (8, 8)

    def test_agents(self):
        sess = MulticastSession(spec_with((2, 6)))
        assert sess.agents() == [2, 6]


class TestMechanismThreading:
    @pytest.mark.parametrize("name", ["tree-shapley", "tree-mc", "jv",
                                      "jv-approx", "bird-approx",
                                      "wireless", "nwst"])
    def test_restricted_mechanisms_price_the_subset(self, name):
        recv = (1, 3, 5, 7)
        sess = MulticastSession(spec_with(recv))
        mech = sess.mechanism(name)
        result = mech.run({i: 1000.0 for i in recv})
        assert result.receivers <= frozenset(recv)
        assert set(result.shares) <= set(recv)

    @pytest.mark.parametrize("name", ["tree-shapley", "jv"])
    def test_matches_unrestricted_on_full_set(self, name):
        base = ScenarioSpec.from_random(n=10, alpha=2.0, seed=3)
        full = dataclasses.replace(base, receivers=tuple(range(1, 10)))
        profile = {i: float(5 + i) for i in range(1, 10)}
        r_base = MulticastSession(base).mechanism(name).run(profile)
        r_full = MulticastSession(full).mechanism(name).run(profile)
        assert r_base.receivers == r_full.receivers
        assert r_base.shares == r_full.shares
        assert r_base.cost == r_full.cost

    @pytest.mark.parametrize("name", ["euclid-shapley", "euclid-mc",
                                      "exact-shapley", "exact-mc"])
    def test_full_station_mechanisms_reject_subset(self, name):
        sess = MulticastSession(spec_with((1, 2), n=6))
        with pytest.raises(ValueError, match="receivers"):
            sess.mechanism(name)


class TestSweepProfiles:
    def test_profiles_restricted_to_receivers(self):
        spec = spec_with((1, 4, 7))
        sess = MulticastSession(spec)
        profiles = make_profiles(sess.network, sess.source, spec,
                                 ProfileSpec(generator="uniform", count=3))
        for profile in profiles:
            assert set(profile) == {1, 4, 7}

    def test_unrestricted_profiles_byte_identical_to_legacy(self):
        spec = ScenarioSpec.from_random(n=9, alpha=2.0, seed=5)
        sess = MulticastSession(spec)
        pspec = ProfileSpec(generator="uniform", count=3)
        profiles = make_profiles(sess.network, sess.source, spec, pspec)
        # the restriction filter must not perturb the rng stream
        from repro.analysis.instances import random_utilities

        rng = np.random.default_rng(pspec.derive_seed(spec))
        legacy = [random_utilities(sess.network, sess.source, rng, scale=pspec.scale)
                  for _ in range(3)]
        assert profiles == legacy

    def test_constant_profiles_restricted(self):
        spec = spec_with((2, 5))
        sess = MulticastSession(spec)
        profiles = make_profiles(sess.network, sess.source, spec,
                                 ProfileSpec(generator="constant", count=2,
                                             scale=4.0))
        assert profiles == [{2: 4.0, 5: 4.0}] * 2
