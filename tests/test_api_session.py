"""Tests for repro.api.session — the caching MulticastSession facade."""

import numpy as np
import pytest

from repro.api import MechanismSpec, MulticastSession, ScenarioSpec
from repro.core import EuclideanJVMechanism, UniversalTreeShapleyMechanism
from repro.geometry import uniform_points
from repro.wireless import EuclideanCostGraph, UniversalTree


def small_spec(seed=2, n=7, alpha=2.0):
    return ScenarioSpec.from_random(n=n, dim=2, alpha=alpha, seed=seed, side=5.0)


def profiles_for(spec, n_profiles=6, seed=0, scale=3.0):
    network = spec.build_network()
    rng = np.random.default_rng(seed)
    typical = float(np.median(network.matrix[network.matrix > 0]))
    return [
        {i: float(rng.uniform(0, scale * typical)) for i in spec.agents()}
        for _ in range(n_profiles)
    ]


class TestConstruction:
    def test_from_spec_is_lazy(self):
        session = MulticastSession(small_spec())
        assert not session.cache_info()["network_built"]
        session.network
        assert session.cache_info()["network_built"]

    def test_from_cost_graph(self):
        network = EuclideanCostGraph(uniform_points(5, 2, rng=1), 2.0)
        session = MulticastSession(network, source=2)
        assert session.network is network  # no rebuild
        assert session.source == 2 and session.scenario.kind == "points"

    def test_from_mapping(self):
        session = MulticastSession({"kind": "random", "n": 4, "seed": 0, "alpha": 2.0})
        assert session.scenario.n_stations == 4

    def test_conflicting_source_rejected(self):
        with pytest.raises(ValueError, match="source"):
            MulticastSession(small_spec(), source=3)

    def test_bad_type_rejected(self):
        with pytest.raises(TypeError):
            MulticastSession(42)


class TestSharedState:
    def test_network_and_trees_built_once(self):
        session = MulticastSession(small_spec())
        assert session.network is session.network
        assert session.universal_tree() is session.universal_tree("spt")
        assert session.universal_tree("mst") is session.universal_tree("mst")
        assert session.cache_info()["trees"] == ["mst", "spt"]

    def test_tree_shared_across_mechanisms(self):
        session = MulticastSession(small_spec())
        shap = session.mechanism("tree-shapley")
        mc = session.mechanism("tree-mc")
        assert shap.tree is mc.tree

    def test_closure_shared_across_jv_parameterizations(self):
        session = MulticastSession(small_spec())
        plain = session.mechanism("jv")
        weighted = session.mechanism("jv", agent_weights={"1": 2.0})
        assert plain is not weighted
        assert plain.jv.closure is weighted.jv.closure
        assert plain.jv.closure is session.metric_closure()

    def test_mechanism_instances_cached_by_params(self):
        session = MulticastSession(small_spec())
        assert session.mechanism("jv") is session.mechanism("jv")
        assert session.mechanism("wireless", mode="branch") is not \
            session.mechanism("wireless", mode="classic")

    def test_equivalent_parameterizations_share_one_cache(self):
        # Omitted param, explicit default, and explicit spec-tree value
        # must all canonicalize to one instance + one xi cache.
        session = MulticastSession(small_spec())  # spec tree is "spt"
        a = session.mechanism("tree-shapley")
        b = session.mechanism("tree-shapley", tree=None)
        c = session.mechanism("tree-shapley", tree="spt")
        assert a is b is c
        d = session.mechanism("wireless")
        e = session.mechanism("wireless", mode="branch")
        assert d is e
        assert session.method_cache("tree-shapley") is \
            session.method_cache("tree-shapley", tree="spt")

    def test_cache_info_separates_parameterizations(self):
        spec = small_spec()
        session = MulticastSession(spec)
        profile = profiles_for(spec, n_profiles=1)[0]
        session.run("tree-shapley", profile)
        assert "tree-shapley" in session.cache_info()["methods"]
        session.run("tree-shapley", profile, tree="mst")
        labels = sorted(session.cache_info()["methods"])
        assert len(labels) == 2 and all(l.startswith("tree-shapley") for l in labels)
        assert any("mst" in l for l in labels) and any("spt" in l for l in labels)

    def test_unknown_tree_kind(self):
        with pytest.raises(ValueError, match="tree kind"):
            MulticastSession(small_spec()).universal_tree("bfs")


class TestRun:
    def test_run_matches_direct_construction(self):
        spec = small_spec()
        session = MulticastSession(spec)
        network = spec.build_network()
        tree = UniversalTree.from_shortest_paths(network, 0)
        direct_shap = UniversalTreeShapleyMechanism(tree)
        direct_jv = EuclideanJVMechanism(network, 0)
        for profile in profiles_for(spec):
            for name, direct in (("tree-shapley", direct_shap), ("jv", direct_jv)):
                a, b = session.run(name, profile), direct.run(profile)
                assert a.receivers == b.receivers
                assert a.shares == b.shares
                assert a.cost == b.cost

    def test_run_batch_equals_per_call_runs(self):
        spec = small_spec()
        batch_session, call_session = MulticastSession(spec), MulticastSession(spec)
        profiles = profiles_for(spec)
        batched = batch_session.run_batch("jv", profiles)
        singly = [call_session.run("jv", p) for p in profiles]
        for a, b in zip(batched, singly):
            assert a.receivers == b.receivers and a.shares == b.shares

    def test_method_cache_accumulates_hits(self):
        spec = small_spec()
        session = MulticastSession(spec)
        profiles = profiles_for(spec, n_profiles=8)
        session.run_batch("tree-shapley", profiles)
        cache = session.method_cache("tree-shapley")
        assert cache.hits > 0
        info = session.cache_info()["methods"]["tree-shapley"]
        assert info["hits"] == cache.hits and 0 < info["hit_rate"] <= 1

    def test_mechanisms_without_method_have_no_cache(self):
        session = MulticastSession(small_spec())
        assert session.method_cache("tree-mc") is None
        assert session.method_cache("wireless") is None

    def test_run_accepts_mechanism_spec_with_overrides(self):
        spec = small_spec()
        session = MulticastSession(spec)
        profile = profiles_for(spec, n_profiles=1)[0]
        mspec = MechanismSpec("wireless", {"mode": "branch"})
        a = session.run(mspec, profile)
        b = session.run("wireless", profile, mode="branch")
        assert a.shares == b.shares
        assert session.mechanism(mspec) is session.mechanism("wireless", mode="branch")

    def test_repr(self):
        assert "random" in repr(MulticastSession(small_spec()))
