"""Request spans through the single-process service.

The serving contract: with a :class:`SpanRecorder` injected the service
narrates every priced request as a span tree (request -> parse/queue/
build/execute/serialize, plus session_build on cold misses), echoes the
trace id in ``X-Repro-Trace-Id``, and continues a trace named by an
incoming ``traceparent`` header — while the response *bodies* stay
bit-identical with tracing on, off, or propagated.
"""

from __future__ import annotations

import asyncio
import itertools
import json

from repro.api import ScenarioSpec
from repro.observability import SpanRecorder
from repro.observability.tracing import parse_traceparent
from repro.service import CostSharingService
from repro.service.protocol import TRACE_ID_HEADER, TRACEPARENT_HEADER


def _spec(seed: int) -> ScenarioSpec:
    return ScenarioSpec.from_random(n=6, alpha=2.0, seed=seed, side=5.0)


def _body(spec, mechanism="jv", **extra) -> bytes:
    return json.dumps({"scenario": spec.to_dict(), "mechanism": mechanism,
                       "profiles": [{str(a): 4.0 for a in spec.agents()}],
                       **extra}, sort_keys=True).encode("utf-8")


def seq_ids(prefix: int = 0):
    counter = itertools.count(1)
    return lambda n_hex: f"{prefix:02x}{next(counter):0{n_hex - 2}x}"


def dispatch(service, *calls):
    async def go():
        out = []
        for call in calls:
            out.append(await service.dispatch(*call[:3], **call[3] if
                                              len(call) > 3 else {}))
        return out
    return asyncio.run(go())


def test_traced_run_emits_the_full_span_family():
    spans = SpanRecorder(ids=seq_ids())
    service = CostSharingService(batch_window=0.0, spans=spans)
    (status, _, headers), = dispatch(
        service, ("POST", "/v1/run", _body(_spec(0))))
    assert status == 200
    by_name = {span.name: span for span in spans.recent()}
    # Cold request: every stage leg plus the store's session build.
    assert set(by_name) == {"request", "parse", "queue", "build", "execute",
                            "serialize", "flush", "session_build"}
    request = by_name["request"]
    assert request.parent_id is None
    assert headers[TRACE_ID_HEADER] == request.trace_id
    assert request.attributes["method"] == "POST"
    assert request.attributes["path"] == "/v1/run"
    assert request.attributes["status_code"] == 200
    assert request.attributes["mechanism"] == "jv"
    assert request.attributes["profiles"] == 1
    assert len(request.attributes["scenario"]) == 12
    # Stage legs are children of the request span, in its trace.
    for name in ("parse", "queue", "execute", "serialize", "build"):
        assert by_name[name].trace_id == request.trace_id, name
        assert by_name[name].parent_id == request.context.span_id, name
    # The cold session build nests under the build leg.
    assert by_name["session_build"].parent_id == by_name["build"].context.span_id
    # The flush span roots its own trace; execute links back to it.
    flush = by_name["flush"]
    assert flush.parent_id is None and flush.trace_id != request.trace_id
    assert flush.attributes["requests"] == 1
    execute = by_name["execute"]
    assert execute.attributes["flush_trace_id"] == flush.trace_id
    assert execute.attributes["flush_span_id"] == flush.span_id
    assert execute.attributes["batch_size"] == 1
    # Warm re-run: no session_build this time.
    dispatch(service, ("POST", "/v1/run", _body(_spec(0))))
    assert len([s for s in spans.recent() if s.name == "session_build"]) == 1


def test_trace_id_header_is_pinned_32_hex():
    service = CostSharingService(batch_window=0.0, spans=SpanRecorder())
    (status, _, headers), = dispatch(
        service, ("POST", "/v1/run", _body(_spec(1))))
    assert status == 200
    trace_id = headers[TRACE_ID_HEADER]
    assert len(trace_id) == 32
    int(trace_id, 16)
    assert trace_id == trace_id.lower()
    assert TRACE_ID_HEADER == "X-Repro-Trace-Id"
    assert TRACEPARENT_HEADER == "traceparent"


def test_incoming_traceparent_continues_the_trace():
    spans = SpanRecorder(ids=seq_ids())
    service = CostSharingService(batch_window=0.0, spans=spans)
    upstream = parse_traceparent("00-" + "ab" * 16 + "-" + "cd" * 8 + "-01")
    (status, _, headers), = dispatch(
        service,
        ("POST", "/v1/run", _body(_spec(2)), {"trace_context": upstream}))
    assert status == 200
    assert headers[TRACE_ID_HEADER] == "ab" * 16
    request, = spans.recent("request")
    assert request.trace_id == "ab" * 16
    assert request.parent_id == "cd" * 8


def test_untraced_service_sends_no_trace_header():
    service = CostSharingService(batch_window=0.0)
    (status, _, headers), = dispatch(
        service, ("POST", "/v1/run", _body(_spec(3))))
    assert status == 200
    assert TRACE_ID_HEADER not in headers


def test_bad_request_still_echoes_a_trace_and_marks_the_status():
    spans = SpanRecorder(ids=seq_ids())
    service = CostSharingService(batch_window=0.0, spans=spans)
    (status, _, headers), = dispatch(
        service, ("POST", "/v1/run", b"{not json"))
    assert status == 400
    request, = spans.recent("request")
    assert headers[TRACE_ID_HEADER] == request.trace_id
    assert request.attributes["status_code"] == 400
    assert request.status == "ok"  # 4xx is the client's error, not ours


def test_batch_requests_share_one_flush_ancestor():
    spans = SpanRecorder(ids=seq_ids())
    # A real window: the batch's submissions collect into one flush.
    service = CostSharingService(batch_window=0.05, max_batch=8, spans=spans)
    spec = _spec(4)
    body = json.dumps(
        {"requests": [json.loads(_body(spec)) for _ in range(3)]},
        sort_keys=True).encode("utf-8")
    (status, payload, headers), = dispatch(
        service, ("POST", "/v1/batch", body))
    assert status == 200 and payload["count"] == 3
    flush, = spans.recent("flush")
    assert flush.attributes["requests"] == 3
    executes = spans.recent("execute")
    assert len(executes) == 3
    assert {s.attributes["flush_span_id"] for s in executes} == {flush.span_id}
    assert all(s.attributes["batch_size"] == 3 for s in executes)
    # All three sub-requests ran under the one batch request span.
    request, = spans.recent("request")
    assert {s.parent_id for s in executes} == {request.context.span_id}
    assert headers[TRACE_ID_HEADER] == request.trace_id


def test_stats_spans_block_counts_and_exemplifies():
    spans = SpanRecorder(ids=seq_ids())
    service = CostSharingService(batch_window=0.0, spans=spans)
    (_, _, headers), (_, stats, _) = dispatch(
        service,
        ("POST", "/v1/run", _body(_spec(5))),
        ("GET", "/v1/stats", b""))
    block = stats["spans"]
    assert block["enabled"] is True
    assert block["recorded"] >= 7 and block["dropped"] == 0
    assert block["exemplars"]["max"]["trace_id"] == headers[TRACE_ID_HEADER]

    untraced = CostSharingService(batch_window=0.0)
    (_, stats, _), = dispatch(untraced, ("GET", "/v1/stats", b""))
    assert stats["spans"] == {"enabled": False}


def test_responses_bit_identical_with_tracing_on_off_and_propagated():
    bodies = [_body(_spec(seed), mechanism)
              for seed in (6, 7) for mechanism in ("jv", "tree-shapley")]
    plain = CostSharingService(batch_window=0.0)
    traced = CostSharingService(batch_window=0.0, spans=SpanRecorder())
    upstream = parse_traceparent("00-" + "ab" * 16 + "-" + "cd" * 8 + "-01")

    async def go():
        for body in bodies:
            expected = await plain.dispatch("POST", "/v1/run", body)
            fresh = await traced.dispatch("POST", "/v1/run", body)
            continued = await traced.dispatch("POST", "/v1/run", body,
                                              trace_context=upstream)
            # Same status, byte-identical payloads; only headers differ.
            for status, payload, _ in (fresh, continued):
                assert status == expected[0] == 200
                assert (json.dumps(payload, sort_keys=True)
                        == json.dumps(expected[1], sort_keys=True))

    asyncio.run(go())
