"""Tests for repro.core.memt_reduction (Caragiannis et al., §2.2.1)."""

import numpy as np
import pytest

from repro.core.memt_reduction import (
    memt_to_nwst,
    nwst_solution_to_power,
    station_of,
)
from repro.geometry.points import uniform_points
from repro.graphs.nwst import exact_node_weighted_steiner
from repro.graphs.random_graphs import random_cost_matrix
from repro.wireless.cost_graph import CostGraph, EuclideanCostGraph
from repro.wireless.memt import optimal_multicast, optimal_multicast_cost


@pytest.fixture()
def net():
    return CostGraph(random_cost_matrix(5, rng=0))


class TestReductionStructure:
    def test_supernode_layout(self, net):
        inst = memt_to_nwst(net, 0, [1, 2])
        for i in range(net.n):
            assert ("in", i) in inst.graph
            assert inst.weights[("in", i)] == 0.0
            levels = net.power_levels(i)
            for m, c in enumerate(levels):
                out = ("out", i, m)
                assert out in inst.graph
                assert inst.weights[out] == pytest.approx(float(c))
                assert inst.graph.has_edge(("in", i), out)

    def test_output_edges_match_coverage(self, net):
        inst = memt_to_nwst(net, 0, [1, 2])
        for i in range(net.n):
            for m, c in enumerate(net.power_levels(i)):
                out = ("out", i, m)
                for j in range(net.n):
                    if j == i:
                        continue
                    expected = net.cost(i, j) <= float(c) + 1e-12
                    assert inst.graph.has_edge(out, ("in", j)) == expected

    def test_terminals_are_receivers(self, net):
        inst = memt_to_nwst(net, 0, [2, 4])
        assert inst.source_terminal == ("in", 0)
        assert set(inst.terminal_of) == {2, 4}

    def test_station_of(self):
        assert station_of(("in", 3)) == 3
        assert station_of(("out", 7, 2)) == 7


class TestCostCorrespondence:
    @pytest.mark.parametrize("seed", range(4))
    def test_nwst_optimum_lower_bounds_memt(self, seed):
        """Any multicast assignment induces an NWST solution of equal cost,
        so the NWST optimum is at most C*."""
        net = CostGraph(random_cost_matrix(5, rng=seed))
        receivers = [1, 3]
        inst = memt_to_nwst(net, 0, receivers)
        terminals = [inst.source_terminal, *(inst.terminal_of[r] for r in receivers)]
        nwst_opt = exact_node_weighted_steiner(inst.graph, inst.weights, terminals)
        cstar = optimal_multicast_cost(net, 0, receivers)
        assert nwst_opt <= cstar + 1e-9


class TestBackMapping:
    def optimal_bought_nodes(self, net, source, receivers):
        """NWST node set corresponding to an optimal power assignment."""
        _, pa = optimal_multicast(net, source, receivers)
        inst = memt_to_nwst(net, source, receivers)
        bought = {("in", i) for i in range(net.n)}
        # Buy the output node matching each transmitting station's level.
        for i in range(net.n):
            if pa[i] > 0:
                levels = inst.levels[i]
                m = int(np.argmin(np.abs(levels - pa[i])))
                bought.add(("out", i, m))
        # Keep only the connected part from the source terminal.
        from repro.graphs.traversal import reachable_set

        sub = inst.graph.subgraph(bought)
        return inst, frozenset(reachable_set(sub, inst.source_terminal))

    @pytest.mark.parametrize("seed", range(4))
    def test_oriented_power_is_feasible(self, seed):
        net = CostGraph(random_cost_matrix(5, rng=seed + 3))
        receivers = [1, 2, 4]
        inst, bought = self.optimal_bought_nodes(net, 0, receivers)
        oriented = nwst_solution_to_power(net, inst, bought, 0, receivers)
        assert oriented.power.reaches(net, 0, receivers)
        # Every transmitter serves at least one receiver downstream.
        for i, served in oriented.downstream.items():
            assert oriented.power[i] > 0
            assert served

    @pytest.mark.parametrize("seed", range(4))
    def test_euclidean_round_trip(self, seed):
        pts = uniform_points(6, 2, rng=seed, side=4.0)
        net = EuclideanCostGraph(pts, 2.0)
        receivers = [1, 2, 3]
        inst, bought = self.optimal_bought_nodes(net, 0, receivers)
        oriented = nwst_solution_to_power(net, inst, bought, 0, receivers)
        assert oriented.power.reaches(net, 0, receivers)
        # The oriented assignment of an optimal solution costs at most
        # twice the NWST weight (reduction's factor-2 argument).
        paid_total = float(oriented.paid.sum())
        assert oriented.power.cost() <= 2 * paid_total + 1e-9

    def test_missing_receiver_raises(self, net):
        inst = memt_to_nwst(net, 0, [1])
        bought = frozenset({("in", 0)})
        with pytest.raises(ValueError):
            nwst_solution_to_power(net, inst, bought, 0, [1])

    def test_missing_source_raises(self, net):
        inst = memt_to_nwst(net, 0, [1])
        bought = frozenset({("in", 1)})
        with pytest.raises(ValueError):
            nwst_solution_to_power(net, inst, bought, 0, [1])
