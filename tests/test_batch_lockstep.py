"""Tests for the sweep-wide vectorized xi path (engine.trees +
engine.batch.run_profiles_lockstep).

Bit-identity is the contract everywhere: the flat-array batch evaluator
must produce the exact floats of the serial water-filling walk, and the
lockstep driver must reproduce a plain ``run`` loop result-for-result
(the final replay runs the real Moulin-Shenker driver over a warmed
cache, so a mispredicted set costs time, never correctness).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ScenarioSpec
from repro.api.session import MulticastSession
from repro.engine.batch import MethodCache, run_profiles_lockstep
from repro.engine.trees import water_filling_shares, water_filling_shares_many
from repro.geometry.points import uniform_points
from repro.wireless.cost_graph import EuclideanCostGraph
from repro.wireless.universal_tree import UniversalTree


def tree_for(seed, n=12, kind="spt"):
    net = EuclideanCostGraph(uniform_points(n, 2, rng=seed, side=6.0), 2.0)
    return UniversalTree.build(net, 0, kind=kind)


class TestWaterFillingMany:
    @pytest.mark.parametrize("kind", ["spt", "mst", "star"])
    def test_bit_identical_to_serial(self, kind):
        tree = tree_for(0, kind=kind)
        index = tree.index()
        rng = np.random.default_rng(0)
        sets = []
        for _ in range(20):
            size = int(rng.integers(0, 12))
            sets.append(frozenset(
                int(x) for x in rng.choice(range(1, 12), size=min(size, 11),
                                           replace=False)))
        batch = water_filling_shares_many(index, sets)
        for R, got in zip(sets, batch):
            assert got == water_filling_shares(index, R)  # exact floats

    def test_empty_batch(self):
        index = tree_for(1).index()
        assert water_filling_shares_many(index, []) == []

    def test_empty_and_full_sets(self):
        index = tree_for(2).index()
        sets = [frozenset(), frozenset(range(1, 12))]
        batch = water_filling_shares_many(index, sets)
        assert batch[0] == {}
        assert batch[1] == water_filling_shares(index, sets[1])

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 10_000), kind=st.sampled_from(["spt", "mst"]))
    def test_property_bit_identical(self, seed, kind):
        tree = tree_for(seed % 50, n=9, kind=kind)
        index = tree.index()
        rng = np.random.default_rng(seed)
        sets = [frozenset(int(x) for x in rng.choice(
            range(1, 9), size=int(rng.integers(1, 9)), replace=False))
            for _ in range(8)]
        batch = water_filling_shares_many(index, sets)
        for R, got in zip(sets, batch):
            assert got == water_filling_shares(index, R)


class TestMethodCachePut:
    def test_put_seeds_and_contains(self):
        calls = []

        def method(R):
            calls.append(R)
            return {i: 1.0 for i in R}

        cache = MethodCache(method)
        R = frozenset([1, 2])
        assert R not in cache
        cache.put(R, {1: 0.5, 2: 0.5})
        assert R in cache
        assert cache(R) == {1: 0.5, 2: 0.5}
        assert calls == []  # the underlying method never ran

    def test_put_is_first_writer_wins(self):
        cache = MethodCache(lambda R: {})
        R = frozenset([3])
        cache.put(R, {3: 1.0})
        cache.put(R, {3: 9.0})
        assert cache(R) == {3: 1.0}


class TestRunProfilesLockstep:
    def test_matches_serial_session_runs(self):
        spec = ScenarioSpec.from_random(n=14, alpha=2.0, seed=4)
        rng = np.random.default_rng(4)
        profiles = [{i: float(rng.uniform(0, 4)) for i in range(1, 14)}
                    for _ in range(10)]
        batch = MulticastSession(spec).run_batch("tree-shapley", profiles)
        serial_sess = MulticastSession(spec)
        serial = [serial_sess.mechanism("tree-shapley").run(p)
                  for p in profiles]
        for a, b in zip(batch, serial):
            assert a.receivers == b.receivers
            assert a.shares == b.shares
            assert a.cost == b.cost
            assert a.extra == b.extra

    def test_lockstep_seeds_cache_with_batch_evals(self):
        tree = tree_for(5)
        index = tree.index()
        serial_calls = []

        def xi(R):
            serial_calls.append(R)
            return water_filling_shares(index, R)

        def many(sets):
            return water_filling_shares_many(index, sets)

        cache = MethodCache(xi)
        agents = list(range(1, 12))
        rng = np.random.default_rng(5)
        profiles = [{i: float(rng.uniform(0, 4)) for i in agents}
                    for _ in range(6)]
        results = run_profiles_lockstep(agents, many, profiles, method=cache)
        assert len(results) == 6
        # every set the drop loop visited was batch-evaluated: the serial
        # method never ran
        assert serial_calls == []

    def test_single_profile(self):
        tree = tree_for(6)
        index = tree.index()
        cache = MethodCache(lambda R: water_filling_shares(index, R))
        agents = list(range(1, 12))
        profile = {i: 2.0 for i in agents}
        from repro.mechanism.moulin_shenker import moulin_shenker

        [got] = run_profiles_lockstep(
            agents, lambda sets: water_filling_shares_many(index, sets),
            [profile], method=cache)
        want = moulin_shenker(
            agents, lambda R: water_filling_shares(index, R), profile)
        assert got.receivers == want.receivers
        assert got.shares == want.shares
