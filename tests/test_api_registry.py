"""Tests for repro.api.registry — names, builders, direct-construction parity."""

import numpy as np
import pytest

from repro.api import (
    MechanismSpec,
    MulticastSession,
    ScenarioSpec,
    available_mechanisms,
    make_mechanism,
    register_mechanism,
    registered,
)
from repro.api.registry import _REGISTRY
from repro.core import (
    BirdApproxMechanism,
    EuclideanJVMechanism,
    EuclideanMCMechanism,
    EuclideanShapleyMechanism,
    ExactMCMechanism,
    ExactShapleyMechanism,
    JVApproxMechanism,
    UniversalTreeMCMechanism,
    UniversalTreeShapleyMechanism,
    WirelessMulticastMechanism,
    WirelessNWSTMechanism,
)
from repro.wireless import UniversalTree

EXPECTED_NAMES = {
    "bird-approx", "euclid-mc", "euclid-shapley", "exact-mc", "exact-shapley",
    "jv", "jv-approx", "nwst", "tree-mc", "tree-shapley", "wireless",
}


def test_every_core_mechanism_is_registered():
    assert set(available_mechanisms()) == EXPECTED_NAMES


def test_entries_have_summaries():
    for name in available_mechanisms():
        assert registered(name).summary


def test_unknown_name_raises_with_listing():
    with pytest.raises(ValueError, match="unknown mechanism 'nope'"):
        make_mechanism("nope", ScenarioSpec.from_random(n=3, seed=0))


def test_make_mechanism_shares_session_cache():
    session = MulticastSession(ScenarioSpec.from_random(n=4, seed=0, alpha=2.0))
    mech = make_mechanism("jv", session)
    assert mech is session.mechanism("jv")  # no second construction


def test_duplicate_registration_rejected():
    with pytest.raises(ValueError, match="already registered"):
        register_mechanism("jv", lambda session: None)
    assert registered("jv").method_of is not None  # original entry intact


def test_decorator_form_and_replace():
    @register_mechanism("test-dummy", summary="dummy")
    def build(session):
        """A dummy."""
        return None

    try:
        assert "test-dummy" in available_mechanisms()
        register_mechanism("test-dummy", lambda session: 1, replace=True)
        assert registered("test-dummy").builder(None) == 1
    finally:
        _REGISTRY.pop("test-dummy", None)


class TestDirectConstructionParity:
    """Every registry name must price bit-identically to hand construction.

    One alpha = 1 Euclidean scenario keeps every mechanism valid
    (including the §3.1 optimal ones) and the exponential exact oracles
    tractable.
    """

    SPEC = ScenarioSpec.from_random(n=5, dim=2, alpha=1.0, seed=13, side=5.0)

    def direct(self, name, network):
        tree = UniversalTree.from_shortest_paths(network, 0)
        return {
            "tree-shapley": lambda: UniversalTreeShapleyMechanism(tree),
            "tree-mc": lambda: UniversalTreeMCMechanism(tree),
            "nwst": lambda: WirelessNWSTMechanism(network, 0),
            "wireless": lambda: WirelessMulticastMechanism(network, 0),
            "jv": lambda: EuclideanJVMechanism(network, 0),
            "jv-approx": lambda: JVApproxMechanism(network, 0),
            "bird-approx": lambda: BirdApproxMechanism(network, 0),
            "euclid-shapley": lambda: EuclideanShapleyMechanism(network, 0),
            "euclid-mc": lambda: EuclideanMCMechanism(network, 0),
            "exact-shapley": lambda: ExactShapleyMechanism(network, 0),
            "exact-mc": lambda: ExactMCMechanism(network, 0),
        }[name]()

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_registry_output_matches_direct(self, name):
        # Build from the JSON wire form, as a service would.
        spec = ScenarioSpec.from_json(self.SPEC.to_json())
        mspec = MechanismSpec.from_json(MechanismSpec(name).to_json())
        session = MulticastSession(spec)

        network = spec.build_network()
        rng = np.random.default_rng(13)
        typical = float(np.median(network.matrix[network.matrix > 0]))
        profiles = [
            {i: float(rng.uniform(0, 3.0 * typical)) for i in spec.agents()}
            for _ in range(3)
        ]

        direct_mech = self.direct(name, network)
        for profile in profiles:
            via_registry = session.run(mspec, profile)
            directly = direct_mech.run(profile)
            assert via_registry.receivers == directly.receivers
            assert via_registry.shares == directly.shares
            assert via_registry.cost == directly.cost

    def test_jv_agent_weights_param(self):
        spec = self.SPEC
        session = MulticastSession(spec)
        weights = {str(i): float(i) for i in spec.agents()}  # wire string keys
        mech = session.mechanism("jv", agent_weights=weights)
        direct = EuclideanJVMechanism(
            spec.build_network(), 0, {i: float(i) for i in spec.agents()}
        )
        profile = {i: 50.0 for i in spec.agents()}
        assert session.run("jv", profile, agent_weights=weights).shares \
            == direct.run(profile).shares
        assert mech.jv.agent_weights == direct.jv.agent_weights

    def test_euclidean_only_mechanisms_reject_matrix_scenarios(self):
        spec = ScenarioSpec.from_matrix([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="Euclidean scenario"):
            make_mechanism("euclid-shapley", spec)
