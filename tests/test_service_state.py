"""SessionStore: LRU bounds, counters, single-flight coalescing."""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.api import MulticastSession, ScenarioSpec, result_to_dict
from repro.dynamic import ChurnSpec, DynamicScenarioSpec, DynamicSession
from repro.service import SessionStore, scenario_key
from repro.service import state as state_module


def _spec(seed: int, n: int = 6) -> ScenarioSpec:
    return ScenarioSpec.from_random(n=n, alpha=2.0, seed=seed, side=5.0)


def test_session_types_match_scenario_kind():
    store = SessionStore(capacity=4)
    static = store.get(_spec(0))
    assert isinstance(static.session, MulticastSession) and not static.is_dynamic
    dynamic_spec = DynamicScenarioSpec(
        kind="random", n=6, alpha=2.0, seed=0,
        churn=ChurnSpec(epochs=2, seed=1, join_rate=0.3, leave_rate=0.2))
    dynamic = store.get(dynamic_spec)
    assert isinstance(dynamic.session, DynamicSession) and dynamic.is_dynamic
    # The static spec and its churn extension are distinct keys.
    assert scenario_key(dynamic_spec) != scenario_key(_spec(0))
    assert len(store) == 2


def test_hit_miss_and_identity():
    store = SessionStore(capacity=4)
    first = store.get(_spec(1))
    again = store.get(_spec(1))
    assert again is first  # same warm object, not a rebuild
    other = store.get(_spec(2))
    assert other is not first
    stats = store.stats()
    assert (stats["hits"], stats["misses"], stats["size"]) == (1, 2, 2)


def test_lru_eviction_order_and_touch_on_hit():
    store = SessionStore(capacity=2)
    a, b = _spec(1), _spec(2)
    store.get(a)
    store.get(b)
    store.get(a)          # touch a: b is now least-recently-used
    store.get(_spec(3))   # evicts b
    assert store.stats()["evictions"] == 1
    assert scenario_key(a) in store
    assert scenario_key(b) not in store
    assert scenario_key(_spec(3)) in store


def test_capacity_zero_disables_retention():
    store = SessionStore(capacity=0)
    first = store.get(_spec(1))
    second = store.get(_spec(1))
    assert first is not second
    stats = store.stats()
    assert stats["size"] == 0 and stats["misses"] == 2 and stats["hits"] == 0
    with pytest.raises(ValueError):
        SessionStore(capacity=-1)


def test_eviction_mid_flight_keeps_handed_out_sessions_valid():
    """Evicting a scenario drops the store's reference only — a session
    already handed to a request keeps answering, bit-identically."""
    store = SessionStore(capacity=1)
    spec = _spec(4)
    profile = {a: 3.0 for a in spec.agents()}
    entry = store.get(spec)
    warm = result_to_dict(entry.session.run("tree-shapley", profile))
    store.get(_spec(5))  # evicts spec mid-flight
    assert scenario_key(spec) not in store
    still = result_to_dict(entry.session.run("tree-shapley", profile))
    cold = result_to_dict(MulticastSession(spec).run("tree-shapley", profile))
    assert still == warm == cold
    # The next request for the evicted scenario rebuilds cold.
    rebuilt = store.get(spec)
    assert rebuilt.session is not entry.session


def test_single_flight_coalesces_concurrent_cold_builds(monkeypatch):
    """N threads racing on one cold key => exactly one build; the rest
    join the in-flight future and share its session object."""
    builds = []
    gate = threading.Event()
    real_build = state_module.build_session

    def slow_build(spec):
        builds.append(scenario_key(spec))
        gate.wait(timeout=5.0)  # hold the build until every waiter queued
        return real_build(spec)

    monkeypatch.setattr(state_module, "build_session", slow_build)
    store = SessionStore(capacity=4)
    spec = _spec(6)
    n_threads = 6
    arrived = threading.Barrier(n_threads)

    def fetch():
        arrived.wait()
        return store.get(spec)

    with ThreadPoolExecutor(n_threads) as pool:
        futures = [pool.submit(fetch) for _ in range(n_threads)]
        # Open the gate once all waiters are parked on the in-flight build.
        while store.stats()["coalesced"] < n_threads - 1:
            if all(f.done() for f in futures):
                break
            time.sleep(0.005)
        gate.set()
        entries = [f.result(timeout=10.0) for f in futures]

    assert len(builds) == 1  # the whole point: one cold build, not six
    assert all(entry is entries[0] for entry in entries)
    stats = store.stats()
    assert stats["misses"] == 1 and stats["coalesced"] == n_threads - 1


def test_failed_build_propagates_and_key_recovers(monkeypatch):
    calls = []
    real_build = state_module.build_session

    def flaky_build(spec):
        calls.append(1)
        if len(calls) == 1:
            raise RuntimeError("backend exploded")
        return real_build(spec)

    monkeypatch.setattr(state_module, "build_session", flaky_build)
    store = SessionStore(capacity=4)
    with pytest.raises(RuntimeError, match="backend exploded"):
        store.get(_spec(7))
    # The key is clean again: the next request retries and succeeds.
    entry = store.get(_spec(7))
    assert isinstance(entry.session, MulticastSession)
    assert len(calls) == 2
