"""Tests for repro.core.euclidean_bb (Theorems 3.6 / 3.7)."""

import numpy as np
import pytest

from repro.core.euclidean_bb import EuclideanJVMechanism, jv_bb_bound
from repro.geometry.points import uniform_points
from repro.mechanism.properties import (
    check_cs,
    check_npt,
    check_vp,
    find_group_deviation,
)
from repro.wireless.cost_graph import EuclideanCostGraph
from repro.wireless.memt import optimal_multicast_cost


def case(seed, n=6, dim=2, alpha=2.0, scale=2.5):
    net = EuclideanCostGraph(uniform_points(n, dim, rng=seed, side=4.0), alpha)
    rng = np.random.default_rng(seed + 31)
    typical = float(np.median(net.matrix[net.matrix > 0]))
    profile = {i: float(rng.uniform(0, scale * typical)) for i in range(1, n)}
    return net, profile


class TestBounds:
    def test_jv_bb_bound_values(self):
        assert jv_bb_bound(1) == 4.0
        assert jv_bb_bound(2) == 12.0
        assert jv_bb_bound(3) == 52.0


class TestMechanism:
    @pytest.mark.parametrize("seed", range(6))
    def test_axioms_and_cost_recovery(self, seed):
        net, profile = case(seed)
        mech = EuclideanJVMechanism(net, 0)
        result = mech.run(profile)
        assert check_npt(result) and check_vp(result, profile)
        assert result.total_charged() >= result.cost - 1e-9
        if result.receivers:
            assert result.power.reaches(net, 0, result.receivers)

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("dim,alpha", [(2, 2.0), (3, 3.0)])
    def test_bb_factor_within_theorem(self, seed, dim, alpha):
        net, profile = case(seed, dim=dim, alpha=alpha)
        result = EuclideanJVMechanism(net, 0).run(profile)
        if not result.receivers:
            return
        cstar = optimal_multicast_cost(net, 0, result.receivers)
        if cstar > 1e-9:
            assert result.total_charged() <= jv_bb_bound(dim) * cstar + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_group_strategyproof_search(self, seed):
        net, profile = case(seed, n=5)
        mech = EuclideanJVMechanism(net, 0)
        assert find_group_deviation(mech, profile, max_coalition_size=2,
                                    n_samples_per_coalition=25, rng=seed) is None

    def test_consumer_sovereignty(self):
        net, _ = case(1, n=5)
        mech = EuclideanJVMechanism(net, 0)
        assert check_cs(mech, {i: 0.0 for i in range(1, 5)}, 3)

    def test_charged_matches_closure_mst(self):
        net, profile = case(2, scale=10.0)  # high utilities: everyone stays
        result = EuclideanJVMechanism(net, 0).run(profile)
        assert result.receivers == frozenset(range(1, net.n))
        assert result.total_charged() == pytest.approx(
            result.extra["closure_mst_weight"]
        )

    def test_empty_profile(self):
        net, _ = case(0)
        result = EuclideanJVMechanism(net, 0).run({i: 0.0 for i in range(1, 6)})
        assert result.receivers == frozenset()
        assert result.cost == 0.0

    def test_agent_weights_forwarded(self):
        net, profile = case(3, scale=10.0)
        heavy = {i: (5.0 if i == 1 else 1.0) for i in range(1, net.n)}
        r_eq = EuclideanJVMechanism(net, 0).run(profile)
        r_w = EuclideanJVMechanism(net, 0, agent_weights=heavy).run(profile)
        assert r_w.total_charged() == pytest.approx(r_eq.total_charged())
        assert r_w.share(1) >= r_eq.share(1) - 1e-12
