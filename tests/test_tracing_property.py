"""Fleet-wide span properties, end to end over real sockets.

A burst of N requests through a traced router + traced workers (real
``CostSharingService`` instances behind ``BackgroundServer`` sockets)
must leave span logs that stitch back into a *well-formed* forest:
every non-root parent resolves, batched requests share a flush
ancestor via their link attributes, and the reconstruction is a pure
function of the span set — shuffled log lines rebuild the identical
forest.  And the tracing must stay invisible on the wire: responses
through a traced fleet are bit-identical to an untraced one.
"""

from __future__ import annotations

import asyncio
import http.client
import io
import itertools
import json
import random
from contextlib import contextmanager

from repro.__main__ import main
from repro.observability import SpanRecorder
from repro.observability.tracing import read_span_lines, span_forest, span_report
from repro.service import BackgroundServer, CostSharingService
from repro.service.fleet import FleetRouter, FleetWorker, WorkerClient
from repro.service.loadgen import build_requests


def seq_ids(prefix: int):
    counter = itertools.count(1)
    return lambda n_hex: f"{prefix:02x}{next(counter):0{n_hex - 2}x}"


@contextmanager
def traced_fleet(n_workers: int = 2, **service_kwargs):
    """A FleetRouter over traced in-process workers behind real sockets;
    yields (router, router stream, {shard: stream})."""
    service_kwargs.setdefault("batch_window", 0.0)
    service_kwargs.setdefault("cache_size", 8)
    router_stream = io.StringIO()
    worker_streams: dict[str, io.StringIO] = {}
    servers = []
    router = FleetRouter(spans=SpanRecorder(router_stream, ids=seq_ids(0)))
    try:
        for index in range(n_workers):
            shard = f"w{index}"
            stream = io.StringIO()
            worker_streams[shard] = stream
            service = CostSharingService(
                shard=shard, spans=SpanRecorder(stream, ids=seq_ids(index + 1)),
                **service_kwargs)
            server = BackgroundServer(service)
            port = server.start()
            servers.append(server)
            router.attach(FleetWorker(shard, WorkerClient("127.0.0.1", port)))
        yield router, router_stream, worker_streams
    finally:
        for server in servers:
            server.stop()


def _bodies(count: int) -> list[bytes]:
    schedule = build_requests(requests=count, n=6, alpha=2.0, side=10.0,
                              seeds=[0, 1, 2], layouts=["uniform"],
                              mechanisms=["jv", "tree-shapley"],
                              profile_count=1)
    return [json.dumps(request, sort_keys=True).encode("utf-8")
            for request in schedule]


def _forest_shape(forest):
    return {
        trace_id: (sorted(tree.spans),
                   {key: list(value)
                    for key, value in sorted(tree.children.items(),
                                             key=lambda kv: str(kv[0]))})
        for trace_id, tree in forest.items()}


def test_fleet_burst_spans_are_well_formed_and_order_independent():
    with traced_fleet(2, batch_window=0.02, max_batch=16) as (
            router, router_stream, worker_streams):

        async def burst():
            # Concurrent same-scenario runs share flush windows on their
            # shard; the mixed tail spreads traffic over both workers.
            same = _bodies(1) * 6
            mixed = _bodies(10)
            results = await asyncio.gather(
                *(router.dispatch("POST", "/v1/run", body)
                  for body in same + mixed))
            for status, payload, headers in results:
                assert status == 200, payload
                assert "X-Repro-Trace-Id" in headers
            await router.drain()
            return [headers["X-Repro-Trace-Id"]
                    for _, _, headers in results]

        trace_ids = asyncio.run(burst())

    lines = router_stream.getvalue().splitlines()
    for stream in worker_streams.values():
        lines.extend(stream.getvalue().splitlines())
    spans, malformed = read_span_lines(lines)
    assert malformed == 0
    forest = span_forest(spans)

    # Every non-root parent exists: all traces complete.
    assert all(tree.complete for tree in forest.values())
    # Every client-visible trace id is a reconstructed trace whose root
    # is the router's request span.
    for trace_id in trace_ids:
        tree = forest[trace_id]
        root, = tree.roots
        assert root.name == "request"
        assert root.attributes["shard"] == "router"

    report = span_report(spans)
    assert report["problems"] == []
    assert report["requests"] == 2 * len(trace_ids)  # router + worker each
    # The same-scenario burst shared at least one flush: >= 2 execute
    # spans carry the same flush link, and the flush span saw them.
    assert report["flushes"]["shared"] >= 1
    flush_links = {}
    for span in spans:
        if span.name == "execute":
            flush_links.setdefault(span.attributes["flush_span_id"],
                                   []).append(span)
    shared = [group for group in flush_links.values() if len(group) >= 2]
    assert shared
    for group in shared:
        # Batched requests belong to different traces — the flush link,
        # not tree ancestry, is what they share.
        flush_span, = [s for s in spans
                       if s.span_id == group[0].attributes["flush_span_id"]]
        assert flush_span.name == "flush"
        assert flush_span.attributes["requests"] >= len(group)
        assert all(s.attributes["flush_trace_id"] == flush_span.trace_id
                   for s in group)

    # Reconstruction is order-independent: shuffled lines, same forest.
    baseline = _forest_shape(forest)
    for seed in range(3):
        shuffled = list(lines)
        random.Random(seed).shuffle(shuffled)
        reparsed, _ = read_span_lines(shuffled)
        assert _forest_shape(span_forest(reparsed)) == baseline


def test_trace_id_round_trips_router_to_worker():
    with traced_fleet(2) as (router, router_stream, worker_streams):

        async def one():
            status, _, headers = await router.dispatch(
                "POST", "/v1/run", _bodies(1)[0])
            assert status == 200
            await router.drain()
            return headers["X-Repro-Trace-Id"]

        trace_id = asyncio.run(one())

    router_spans, _ = read_span_lines(router_stream.getvalue().splitlines())
    assert any(s.name == "request" and s.trace_id == trace_id
               for s in router_spans)
    # Exactly one worker carried the same trace: one request span, one
    # forward hop, same id end to end.
    carrying = []
    for shard, stream in worker_streams.items():
        worker_spans, _ = read_span_lines(stream.getvalue().splitlines())
        if any(s.name == "request" and s.trace_id == trace_id
               for s in worker_spans):
            carrying.append(shard)
    assert len(carrying) == 1
    forward, = [s for s in router_spans if s.name == "forward"]
    assert forward.trace_id == trace_id
    assert forward.attributes["shard"] == carrying[0]


def test_fleet_responses_bit_identical_with_tracing_on_and_off():
    bodies = _bodies(8)

    async def collect(router):
        out = []
        for body in bodies:
            status, payload, _ = await router.dispatch("POST", "/v1/run", body)
            out.append((status, json.dumps(payload, sort_keys=True)))
        return out

    with traced_fleet(2) as (traced, _, _):
        traced_out = asyncio.run(collect(traced))
    # The untraced twin: identical shard topology, no recorders.
    servers, untraced = [], FleetRouter()
    try:
        for index in range(2):
            shard = f"w{index}"
            service = CostSharingService(shard=shard, batch_window=0.0,
                                         cache_size=8)
            server = BackgroundServer(service)
            port = server.start()
            servers.append(server)
            untraced.attach(
                FleetWorker(shard, WorkerClient("127.0.0.1", port)))
        plain_out = asyncio.run(collect(untraced))
    finally:
        for server in servers:
            server.stop()
    assert traced_out == plain_out


def test_router_stats_and_metrics_dump_see_the_fleet(tmp_path, capsys):
    with traced_fleet(2) as (router, _, _):

        async def drive():
            for body in _bodies(4):
                status, _, _ = await router.dispatch("POST", "/v1/run", body)
                assert status == 200
            await router.drain()
            return await router.dispatch("GET", "/v1/stats", b"")

        status, stats, _ = asyncio.run(drive())
        assert status == 200
        assert stats["spans"]["enabled"] is True
        assert stats["spans"]["recorded"] >= 4
        # Satellite: the summed legacy store keys include the substrate
        # counters (zero here — no multi-group traffic — but present).
        assert stats["store"]["substrate_sessions_built"] == 0
        assert stats["store"]["substrate_sessions_shared"] == 0

        # metrics-dump pointed at the router port: the merged fleet
        # exposition, with the per-shard summary block.
        front = BackgroundServer(router)
        port = front.start()
        try:
            rc = main(["metrics-dump", "--port", str(port)])
        finally:
            front.stop()
        assert rc == 0
        snapshot = json.loads(capsys.readouterr().out)
        assert snapshot["fleet"]["workers"] == ["w0", "w1"]
        assert snapshot["fleet"]["shards"] == ["router", "w0", "w1"]
        # The span export counters made it into the merged scrape.
        assert "repro_spans_exported_total" in snapshot["samples"]


def test_metrics_dump_single_service_has_no_fleet_block(capsys):
    service = CostSharingService(batch_window=0.0)
    server = BackgroundServer(service)
    port = server.start()
    try:
        # Warm it so the exposition is non-trivial.
        connection = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
        connection.request("GET", "/v1/healthz")
        connection.getresponse().read()
        connection.close()
        rc = main(["metrics-dump", "--port", str(port)])
    finally:
        server.stop()
    assert rc == 0
    snapshot = json.loads(capsys.readouterr().out)
    assert "fleet" not in snapshot
    assert "samples" in snapshot and "types" in snapshot
