"""Tests for repro.mechanism.cost_function auditors."""

import pytest

from repro.mechanism.cost_function import CostFunction


def max_game(values):
    return lambda R: max((values[i] for i in R), default=0.0)


class TestCostFunction:
    def test_memoisation(self):
        calls = []

        def fn(R):
            calls.append(R)
            return float(len(R))

        cf = CostFunction([1, 2], fn)
        cf({1})
        cf({1})
        assert len(calls) == 1

    def test_unknown_agents_rejected(self):
        cf = CostFunction([1, 2], lambda R: 0.0)
        with pytest.raises(ValueError):
            cf({3})

    def test_max_game_is_monotone_submodular(self):
        cf = CostFunction([1, 2, 3], max_game({1: 1.0, 2: 2.0, 3: 5.0}))
        assert cf.is_nondecreasing()
        assert cf.is_submodular()

    def test_additive_game_is_submodular(self):
        cf = CostFunction([1, 2, 3], lambda R: float(sum(R)))
        assert cf.is_submodular() and cf.is_nondecreasing()

    def test_supermodular_game_caught(self):
        # C(R) = |R|^2 violates diminishing returns.
        cf = CostFunction([1, 2, 3], lambda R: float(len(R) ** 2))
        violations = cf.submodularity_violations()
        assert violations
        A, B, i = violations[0]
        assert A <= B and i not in B

    def test_nonmonotone_caught(self):
        values = {frozenset(): 0.0, frozenset({1}): 2.0, frozenset({2}): 1.0,
                  frozenset({1, 2}): 1.5}
        cf = CostFunction([1, 2], lambda R: values[frozenset(R)])
        assert cf.monotonicity_violations()

    def test_sampled_checker_finds_supermodularity(self):
        cf = CostFunction(list(range(12)), lambda R: float(len(R) ** 2))
        assert cf.sampled_submodularity_violations(n_samples=300, rng=0)

    def test_sampled_checker_clean_on_submodular(self):
        cf = CostFunction(list(range(12)), max_game({i: float(i) for i in range(12)}))
        assert not cf.sampled_submodularity_violations(n_samples=200, rng=0)
