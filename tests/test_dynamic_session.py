"""Tests for repro.dynamic.session — incremental replay bit-identical to
cold recomputation, delta-driven invalidation, and reuse accounting."""

import pytest

from repro.api import MulticastSession, result_to_dict
from repro.dynamic import (
    ChurnSpec,
    DynamicScenarioSpec,
    DynamicSession,
    make_epoch_profiles,
    replay_dynamic,
)
from repro.runner import ProfileSpec

MECHS = ("tree-shapley", "tree-mc", "jv", "wireless")


def dyn_spec(**churn_overrides) -> DynamicScenarioSpec:
    churn = dict(epochs=5, seed=1, join_rate=0.3, leave_rate=0.3,
                 move_rate=0.2, move_scale=0.4)
    churn.update(churn_overrides)
    return DynamicScenarioSpec(kind="random", n=8, alpha=2.0, seed=3,
                               side=5.0, layout="cluster",
                               churn=ChurnSpec(**churn))


class TestIncrementalEqualsCold:
    @pytest.mark.parametrize("mechanism", MECHS)
    def test_replay_rows_bit_identical(self, mechanism):
        spec = dyn_spec()
        inc = replay_dynamic(spec, mechanism)
        cold = replay_dynamic(spec, mechanism, incremental=False)
        assert inc == cold  # the full wire rows, not just the shares

    def test_epoch_results_match_cold_session_from_materialized_spec(self):
        spec = dyn_spec()
        dyn = DynamicSession(spec)
        profile_spec = ProfileSpec(count=2)
        for epoch in range(spec.n_epochs):
            profiles = dyn.epoch_profiles(epoch, profile_spec)
            inc = dyn.run_epoch(epoch, "jv", profiles)
            cold = MulticastSession(spec.materialize(epoch)).run_batch("jv", profiles)
            assert ([result_to_dict(r) for r in inc]
                    == [result_to_dict(r) for r in cold])

    def test_audit_rows_identical_and_clean(self):
        spec = dyn_spec()
        inc = replay_dynamic(spec, "tree-shapley", audit=True)
        cold = replay_dynamic(spec, "tree-shapley", incremental=False, audit=True)
        assert inc == cold
        assert all(row["audit"]["violations"] == [] for row in inc)
        # Shapley on the universal tree is budget balanced: factor == 1.
        assert all(row["audit"]["bb_factor_max"] in (None, pytest.approx(1.0))
                   for row in inc)


class TestInvalidation:
    def test_pure_membership_churn_builds_one_session(self):
        spec = dyn_spec(move_rate=0.0)
        dyn = DynamicSession(spec)
        replay_dynamic(dyn, "tree-shapley")
        assert dyn.counters["sessions_built"] == 1
        assert dyn.counters["sessions_carried"] == spec.n_epochs - 1
        # Distinct artifacts, credited once each: one universal tree, and
        # at least one xi entry survived an epoch boundary.
        assert dyn.counters["trees_carried"] == 1
        assert dyn.counters["xi_entries_carried"] > 0

    def test_carried_counters_credit_distinct_artifacts_once(self):
        # Zero churn: the session's caches never grow after epoch 0, so
        # the carried totals must not scale with the horizon.
        spec = dyn_spec(move_rate=0.0, join_rate=0.0, leave_rate=0.0, epochs=6)
        dyn = DynamicSession(spec)
        replay_dynamic(dyn, "tree-shapley",
                       ProfileSpec(generator="constant", count=1))
        session_entries = sum(
            m["misses"] for m in dyn.reuse_info()["session"]["methods"].values())
        assert dyn.counters["trees_carried"] == 1
        assert dyn.counters["xi_entries_carried"] == session_entries

    def test_moves_rebuild_exactly_the_changed_epochs(self):
        spec = dyn_spec(move_rate=0.3, epochs=6)
        states = spec.epoch_states()
        moved = sum(1 for s in states[1:] if any(e.kind == "move" for e in s.events))
        assert 0 < moved < len(states) - 1  # the seed gives a mixed history
        dyn = DynamicSession(spec)
        replay_dynamic(dyn, "tree-shapley")
        assert dyn.counters["sessions_built"] == 1 + moved
        assert dyn.counters["sessions_carried"] == len(states) - 1 - moved

    def test_moved_epoch_prices_the_new_geometry(self):
        spec = dyn_spec(move_rate=0.3, epochs=6, join_rate=0.0, leave_rate=0.0)
        states = spec.epoch_states()
        epoch = next(s.epoch for s in states[1:]
                     if any(e.kind == "move" for e in s.events))
        dyn = DynamicSession(spec)
        before = dyn.session(epoch - 1).network.matrix.copy()
        after = dyn.session(epoch).network.matrix
        assert (before != after).any()

    def test_cold_mode_builds_every_epoch(self):
        spec = dyn_spec(move_rate=0.0)
        dyn = DynamicSession(spec, incremental=False)
        replay_dynamic(dyn, "tree-shapley")
        assert dyn.counters["sessions_built"] == spec.n_epochs
        assert dyn.counters["sessions_carried"] == 0
        assert dyn.counters["results_reused"] == 0

    def test_constant_workload_reuses_results_on_quiet_epochs(self):
        spec = dyn_spec(move_rate=0.0, join_rate=0.0, leave_rate=0.0, epochs=4)
        dyn = DynamicSession(spec)
        rows = replay_dynamic(dyn, "tree-shapley",
                              ProfileSpec(generator="constant", count=2))
        # Identical profiles on an unchanged network: every run after the
        # first is a memo hit (the constant generator repeats the profile
        # within each epoch too, so 4 epochs x 2 profiles = 1 miss + 7 hits).
        assert dyn.counters["results_reused"] == 4 * 2 - 1
        assert all(row["summary"] == rows[0]["summary"] for row in rows)

    def test_result_memo_is_bounded_to_two_epochs(self):
        # Uniform profiles never repeat (epoch-seeded draws), so the memo
        # must not accumulate the whole horizon — only the repeat window.
        spec = dyn_spec(move_rate=0.0, epochs=5)
        dyn = DynamicSession(spec)
        replay_dynamic(dyn, "tree-shapley", ProfileSpec(count=3))
        assert len(dyn._result_memo) <= 3
        assert len(dyn._result_memo_prev) <= 3

    def test_replay_mode_conflict_raises(self):
        dyn = DynamicSession(dyn_spec())
        with pytest.raises(ValueError, match="cold|incremental"):
            replay_dynamic(dyn, "tree-shapley", incremental=False)
        cold = DynamicSession(dyn_spec(), incremental=False)
        with pytest.raises(ValueError, match="cold|incremental"):
            replay_dynamic(cold, "tree-shapley", incremental=True)
        # Omitting the flag defers to the session's own mode.
        assert replay_dynamic(cold, "tree-shapley") == \
            replay_dynamic(dyn_spec(), "tree-shapley")

    def test_shared_session_multi_mechanism_counters_stay_honest(self):
        # The documented pattern: one DynamicSession, several mechanisms.
        # Replaying earlier epochs again must not re-credit carries or
        # inflate epochs_replayed past the horizon.
        spec = dyn_spec(move_rate=0.0, epochs=4)
        dyn = DynamicSession(spec)
        first = replay_dynamic(dyn, "tree-shapley")
        second = replay_dynamic(dyn, "jv")
        assert dyn.counters["epochs_replayed"] == 4
        assert dyn.counters["sessions_built"] + \
            dyn.counters["sessions_carried"] == 4
        # Both replays remain bit-identical to their cold references.
        assert first == replay_dynamic(spec, "tree-shapley", incremental=False)
        assert second == replay_dynamic(spec, "jv", incremental=False)

    def test_reuse_info_snapshot(self):
        dyn = DynamicSession(dyn_spec(move_rate=0.0))
        replay_dynamic(dyn, "tree-shapley")
        info = dyn.reuse_info()
        assert info["sessions_built"] == 1
        assert info["session"]["network_built"] is True


class TestEpochProfiles:
    def test_inactive_agents_report_zero(self):
        spec = dyn_spec(leave_rate=0.6, join_rate=0.0, move_rate=0.0)
        dyn = DynamicSession(spec)
        for epoch in range(spec.n_epochs):
            active = set(spec.active_agents(epoch))
            for profile in dyn.epoch_profiles(epoch, ProfileSpec(count=2)):
                assert set(profile) == set(spec.agents())
                assert all(v == 0.0 for a, v in profile.items() if a not in active)
                if active:
                    assert any(v > 0.0 for a, v in profile.items() if a in active)

    def test_trajectory_stable_under_other_agents_churn(self):
        # Zeroing is applied after the draws, so an agent's utility stream
        # does not shift when somebody else leaves.
        spec_all = dyn_spec(leave_rate=0.0, join_rate=0.0, move_rate=0.0)
        spec_churn = dyn_spec(leave_rate=0.6, join_rate=0.0, move_rate=0.0)
        a = DynamicSession(spec_all)
        b = DynamicSession(spec_churn)
        pspec = ProfileSpec(count=1)
        for epoch in range(spec_all.n_epochs):
            active = set(spec_churn.active_agents(epoch))
            if spec_churn.state(epoch).points != spec_all.state(epoch).points:
                continue  # geometry diverged; draws may differ
            pa = a.epoch_profiles(epoch, pspec)[0]
            pb = b.epoch_profiles(epoch, pspec)[0]
            assert all(pb[i] == pa[i] for i in active)

    def test_fresh_draws_each_epoch(self):
        spec = dyn_spec(move_rate=0.0, join_rate=0.0, leave_rate=0.0, epochs=3)
        dyn = DynamicSession(spec)
        p0 = dyn.epoch_profiles(0, ProfileSpec(count=1))
        p1 = dyn.epoch_profiles(1, ProfileSpec(count=1))
        assert p0 != p1

    def test_make_epoch_profiles_pure(self):
        spec = dyn_spec()
        session = MulticastSession(spec.materialize(2))
        args = (session.network, session.source, spec.materialize(2),
                spec.active_agents(2), 2, ProfileSpec(count=2))
        assert make_epoch_profiles(*args) == make_epoch_profiles(*args)


class TestSessionAPI:
    def test_accepts_mapping_spec(self):
        spec = dyn_spec()
        dyn = DynamicSession(spec.to_dict())
        assert dyn.spec == spec

    def test_rejects_static_spec(self):
        from repro.api import ScenarioSpec

        with pytest.raises(TypeError, match="DynamicScenarioSpec"):
            DynamicSession(ScenarioSpec.from_random(n=5, alpha=2.0, seed=0))

    def test_repr_mentions_mode(self):
        assert "incremental" in repr(DynamicSession(dyn_spec()))
        assert "cold" in repr(DynamicSession(dyn_spec(), incremental=False))

    def test_replay_accepts_profile_mapping(self):
        rows = replay_dynamic(dyn_spec(), "tree-shapley",
                              {"generator": "constant", "count": 1, "scale": 2.0})
        assert len(rows) == dyn_spec().n_epochs


def test_result_memo_is_bounded_under_serving_style_repricing(monkeypatch):
    """A long-lived server re-prices one epoch forever with fresh bids;
    the per-generation result memo must cap out instead of accumulating
    one MechanismResult per request — with identical outputs either way."""
    from repro.dynamic import session as session_module

    monkeypatch.setattr(session_module, "RESULT_MEMO_LIMIT", 5)
    spec = dyn_spec()
    dyn = DynamicSession(spec)
    oracle = MulticastSession(spec.materialize(0))
    for request in range(20):  # 20 distinct profiles, one epoch
        profile = {a: 1.0 + request + a for a in spec.agents()}
        incremental = dyn.run_epoch(0, "tree-shapley", [profile])
        direct = oracle.run_batch("tree-shapley", [profile])
        assert [result_to_dict(r) for r in incremental] == [
            result_to_dict(r) for r in direct]
        assert len(dyn._result_memo) <= 5
    # Memoised repeats still work below the cap.
    repeat_profile = {a: 1.0 + a for a in spec.agents()}
    before = dyn.counters["results_reused"]
    dyn.run_epoch(0, "tree-shapley", [repeat_profile])
    assert dyn.counters["results_reused"] == before + 1
