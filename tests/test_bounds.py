"""Tests for repro.analysis.bounds (the paper's named constants)."""

import math

import pytest

from repro.analysis.bounds import (
    jv_bound,
    mst_euclidean_bound,
    nwst_bb_bound,
    wireless_bb_bound,
)


class TestBounds:
    def test_nwst_bound(self):
        assert nwst_bb_bound(0) == 1.0
        assert nwst_bb_bound(1) == 1.0
        assert nwst_bb_bound(2) == pytest.approx(max(1.0, 1.5 * math.log(2)))
        assert nwst_bb_bound(10) == pytest.approx(1.5 * math.log(10))

    def test_wireless_bound(self):
        assert wireless_bb_bound(4) == pytest.approx(3 * math.log(5))
        # Always strictly looser than 2x the NWST bound at the same k >= 3
        # (the reduction's factor 2 plus the k+1 shift).
        for k in range(3, 12):
            assert wireless_bb_bound(k) >= 2 * nwst_bb_bound(k)

    def test_mst_bound_table(self):
        assert mst_euclidean_bound(1) == 2.0  # 3^1 - 1
        assert mst_euclidean_bound(2) == 6.0  # Ambuehl's improvement (not 8)
        assert mst_euclidean_bound(3) == 26.0  # 3^3 - 1

    def test_jv_bound_is_twice_mst(self):
        for d in (1, 2, 3, 4):
            assert jv_bound(d) == pytest.approx(2 * mst_euclidean_bound(d))
        assert jv_bound(2) == 12.0  # Theorem 3.7


class TestLargerWireless:
    def test_n8_pipeline(self):
        """The full §2.2.3 pipeline at n = 8 (reduction graph ~ 64 nodes)."""
        import numpy as np

        from repro.core import WirelessMulticastMechanism
        from repro.geometry import uniform_points
        from repro.wireless import EuclideanCostGraph, optimal_multicast_cost

        net = EuclideanCostGraph(uniform_points(8, 2, rng=3, side=4.0), 2.0)
        rng = np.random.default_rng(3)
        profile = {i: float(rng.uniform(0, 15)) for i in range(1, 8)}
        result = WirelessMulticastMechanism(net, 0).run(profile)
        if result.receivers:
            assert result.power.reaches(net, 0, result.receivers)
            cstar = optimal_multicast_cost(net, 0, result.receivers)
            k = len(result.receivers)
            assert result.total_charged() <= 3 * math.log(k + 1) * cstar + 1e-9
