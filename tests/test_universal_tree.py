"""Tests for repro.wireless.universal_tree (Lemma 2.1 structure)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.points import uniform_points
from repro.graphs.random_graphs import random_cost_matrix
from repro.mechanism.cost_function import CostFunction
from repro.wireless.cost_graph import CostGraph, EuclideanCostGraph
from repro.wireless.universal_tree import UniversalTree


@pytest.fixture()
def net():
    return CostGraph(random_cost_matrix(7, rng=0))


class TestConstruction:
    @pytest.mark.parametrize("builder", ["from_shortest_paths", "from_mst", "star"])
    def test_spans_all_stations(self, net, builder):
        tree = getattr(UniversalTree, builder)(net, 0)
        assert set(tree.parents) == set(range(7))
        assert tree.parents[0] is None
        assert sorted(tree.agents()) == list(range(1, 7))

    def test_star_structure(self, net):
        tree = UniversalTree.star(net, 2)
        assert all(tree.parents[i] == 2 for i in range(7) if i != 2)

    def test_spt_paths_are_shortest(self):
        pts = uniform_points(7, 2, rng=1, side=4.0)
        net = EuclideanCostGraph(pts, 2.0)
        tree = UniversalTree.from_shortest_paths(net, 0)
        from repro.graphs.shortest_paths import dijkstra

        dist, _ = dijkstra(net.as_graph(), 0)
        for i in range(1, 7):
            path = tree.path_to_root(i)
            total = sum(net.cost(a, b) for a, b in zip(path, path[1:]))
            assert total == pytest.approx(dist[i])

    def test_cycle_rejected(self, net):
        parents = {0: None, 1: 2, 2: 1, 3: 0, 4: 0, 5: 0, 6: 0}
        with pytest.raises(ValueError):
            UniversalTree(net, 0, parents)

    def test_incomplete_rejected(self, net):
        with pytest.raises(ValueError):
            UniversalTree(net, 0, {0: None, 1: 0})

    def test_source_parent_must_be_none(self, net):
        parents = {i: (i - 1 if i else 6) for i in range(7)}
        with pytest.raises(ValueError):
            UniversalTree(net, 0, parents)


class TestRestriction:
    def test_subtree_is_union_of_paths(self, net):
        tree = UniversalTree.from_mst(net, 0)
        R = [3, 5]
        nodes = tree.subtree_nodes(R)
        expected = set()
        for r in R:
            expected.update(tree.path_to_root(r))
        assert nodes == expected

    def test_power_is_max_child_edge(self, net):
        tree = UniversalTree.star(net, 0)
        R = [2, 4]
        pa = tree.power_assignment(R)
        assert pa[0] == pytest.approx(max(net.cost(0, 2), net.cost(0, 4)))
        assert pa.cost() == pytest.approx(tree.cost(R))
        assert pa.reaches(net, 0, R)

    def test_empty_receivers_zero(self, net):
        tree = UniversalTree.from_mst(net, 0)
        assert tree.cost([]) == 0.0
        assert tree.cost([0]) == 0.0  # source is never a receiver

    @pytest.mark.parametrize("builder", ["from_shortest_paths", "from_mst", "star"])
    def test_multicast_feasibility_for_all_subsets(self, net, builder):
        tree = getattr(UniversalTree, builder)(net, 0)
        rng = np.random.default_rng(0)
        for _ in range(10):
            size = int(rng.integers(1, 7))
            R = sorted(int(x) for x in rng.choice(range(1, 7), size=size, replace=False))
            assert tree.power_assignment(R).reaches(net, 0, R)


class TestLemma21:
    """The induced cost function is non-decreasing and submodular."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("builder", ["from_shortest_paths", "from_mst", "star"])
    def test_exhaustive_on_small_instances(self, seed, builder):
        net = CostGraph(random_cost_matrix(6, rng=seed))
        tree = getattr(UniversalTree, builder)(net, 0)
        cf = CostFunction(tree.agents(), lambda R: tree.cost(R))
        assert cf.is_nondecreasing()
        assert cf.is_submodular()


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), data=st.data())
def test_lemma21_submodularity_property(seed, data):
    """Random covering-pair submodularity checks on bigger instances."""
    net = CostGraph(random_cost_matrix(9, rng=seed))
    tree = UniversalTree.from_shortest_paths(net, 0)
    agents = tree.agents()
    A = set(data.draw(st.lists(st.sampled_from(agents), max_size=6, unique=True)))
    rest = [a for a in agents if a not in A]
    if len(rest) < 2:
        return
    i = data.draw(st.sampled_from(rest))
    j = data.draw(st.sampled_from([a for a in rest if a != i]))
    cA = tree.cost(A)
    cB = tree.cost(A | {j})
    assert tree.cost(A | {i}) - cA >= tree.cost(A | {i, j}) - cB - 1e-9
    # Monotone too.
    assert cB >= cA - 1e-9
