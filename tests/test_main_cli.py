"""Tests for the ``python -m repro`` experiment-report CLI."""

import pytest

from repro.__main__ import RUNNERS, main


class TestCLI:
    def test_single_experiment(self, capsys):
        assert main(["F1"]) == 0
        out = capsys.readouterr().out
        assert "EXP-F1" in out and "truthful" in out
        assert "gsp_violated: True" in out

    def test_lowercase_accepted(self, capsys):
        assert main(["a3"]) == 0
        assert "EXP-A3" in capsys.readouterr().out

    def test_unknown_id_rejected(self, capsys):
        assert main(["ZZ"]) == 2
        assert "unknown" in capsys.readouterr().out

    def test_registry_covers_design_doc(self):
        expected = {"F1", "F2", "T1", "T2", "T3", "T4", "T5", "T6", "T7",
                    "E1", "E2", "E3", "E4", "S1", "S2", "D1", "A1", "A2", "A3", "A4"}
        assert set(RUNNERS) == expected

    @pytest.mark.parametrize("key", ["E2", "A1"])
    def test_fast_runners_execute(self, key, capsys):
        assert main([key]) == 0
        assert f"EXP-{key}" in capsys.readouterr().out
