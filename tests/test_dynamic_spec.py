"""Tests for repro.dynamic.spec — churn validation, deterministic epoch
derivation, wire round-trips, and epoch materialization."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ScenarioSpec
from repro.dynamic import ChurnSpec, DynamicScenarioSpec


def dyn_spec(**overrides) -> DynamicScenarioSpec:
    churn = overrides.pop("churn", None) or ChurnSpec(
        epochs=4, seed=1, join_rate=0.3, leave_rate=0.3,
        move_rate=0.2, move_scale=0.4)
    base = dict(kind="random", n=8, alpha=2.0, seed=3, side=5.0,
                layout="cluster", churn=churn)
    base.update(overrides)
    return DynamicScenarioSpec(**base)


class TestChurnSpec:
    def test_defaults_round_trip(self):
        churn = ChurnSpec()
        assert ChurnSpec.from_dict(churn.to_dict()) == churn

    @pytest.mark.parametrize("field,value", [
        ("epochs", 0), ("join_rate", -0.1), ("join_rate", 1.5),
        ("leave_rate", 2.0), ("move_rate", -1.0),
    ])
    def test_rejects_out_of_range(self, field, value):
        with pytest.raises(ValueError, match=field.split("_")[0]):
            ChurnSpec(**{field: value})

    def test_move_scale_zero_allowed_only_without_moves(self):
        # "move_scale: 0" is a natural way to spell "no mobility"; it is
        # only an error when moves could actually fire.
        assert ChurnSpec(move_rate=0.0, move_scale=0.0).move_scale == 0.0
        with pytest.raises(ValueError, match="move_scale"):
            ChurnSpec(move_rate=0.5, move_scale=0.0)

    def test_rejects_stray_fields(self):
        with pytest.raises(ValueError, match="teleport_rate"):
            ChurnSpec.from_dict({"epochs": 2, "teleport_rate": 1.0})

    def test_identity_excludes_epochs(self):
        # The seed-derivation identity must not change with the horizon.
        a = ChurnSpec(epochs=3, seed=5).identity()
        b = ChurnSpec(epochs=9, seed=5).identity()
        assert a == b
        assert ChurnSpec(epochs=3, seed=6).identity() != a

    def test_identity_ignores_move_scale_when_moves_disabled(self):
        # move_scale is inert at move_rate=0: tweaking it must not
        # rewrite the join/leave history (or invalidate a resume sink).
        a = ChurnSpec(seed=5, join_rate=0.2, move_rate=0.0, move_scale=0.5)
        b = ChurnSpec(seed=5, join_rate=0.2, move_rate=0.0, move_scale=2.0)
        assert a.identity() == b.identity()
        c = ChurnSpec(seed=5, join_rate=0.2, move_rate=0.1, move_scale=0.5)
        d = ChurnSpec(seed=5, join_rate=0.2, move_rate=0.1, move_scale=2.0)
        assert c.identity() != d.identity()


class TestDynamicScenarioSpec:
    def test_wire_round_trip(self):
        spec = dyn_spec()
        again = DynamicScenarioSpec.from_json(spec.to_json())
        assert again == spec
        assert again.epoch_states() == spec.epoch_states()

    def test_churn_accepts_mapping(self):
        spec = DynamicScenarioSpec(kind="random", n=6, alpha=2.0, seed=0,
                                   churn={"epochs": 2, "seed": 9})
        assert spec.churn == ChurnSpec(epochs=2, seed=9)

    def test_default_churn_is_single_epoch_free(self):
        spec = DynamicScenarioSpec(kind="random", n=6, alpha=2.0, seed=0)
        assert spec.churn == ChurnSpec()

    def test_not_equal_to_static_spec(self):
        spec = dyn_spec()
        assert spec != spec.base_scenario()

    def test_base_scenario_drops_churn_only(self):
        spec = dyn_spec()
        base = spec.base_scenario()
        assert isinstance(base, ScenarioSpec)
        wire = spec.to_dict()
        wire.pop("churn")
        assert base.to_dict() == wire

    def test_matrix_kind_rejects_moves(self):
        matrix = [[0.0, 1.0], [1.0, 0.0]]
        with pytest.raises(ValueError, match="move_rate"):
            DynamicScenarioSpec(kind="matrix", matrix=matrix,
                                churn=ChurnSpec(epochs=2, move_rate=0.5))
        # Membership churn alone is fine on general networks.
        spec = DynamicScenarioSpec(kind="matrix", matrix=matrix,
                                   churn=ChurnSpec(epochs=3, leave_rate=1.0))
        assert spec.materialize(2) == ScenarioSpec.from_matrix(matrix)

    def test_unknown_churn_type_rejected(self):
        with pytest.raises(ValueError, match="churn"):
            DynamicScenarioSpec(kind="random", n=6, alpha=2.0, seed=0,
                                churn="heavy")


class TestEpochDerivation:
    def test_epoch0_is_base_state(self):
        spec = dyn_spec()
        state = spec.state(0)
        assert state.active == tuple(spec.agents())
        assert state.events == ()
        assert state.points is not None

    def test_deterministic_across_instances(self):
        assert dyn_spec().epoch_states() == dyn_spec().epoch_states()

    def test_prefix_stable_when_horizon_grows(self):
        short = dyn_spec(churn=ChurnSpec(epochs=3, seed=1, join_rate=0.3,
                                         leave_rate=0.3, move_rate=0.2,
                                         move_scale=0.4))
        long = dyn_spec(churn=ChurnSpec(epochs=8, seed=1, join_rate=0.3,
                                        leave_rate=0.3, move_rate=0.2,
                                        move_scale=0.4))
        assert long.epoch_states()[:3] == short.epoch_states()

    def test_churn_seed_changes_history(self):
        a = dyn_spec(churn=ChurnSpec(epochs=4, seed=1, leave_rate=0.5))
        b = dyn_spec(churn=ChurnSpec(epochs=4, seed=2, leave_rate=0.5))
        assert a.epoch_states() != b.epoch_states()

    def test_zero_rates_freeze_the_session(self):
        spec = dyn_spec(churn=ChurnSpec(epochs=5, seed=1, join_rate=0.0,
                                        leave_rate=0.0, move_rate=0.0))
        states = spec.epoch_states()
        assert all(s.active == states[0].active for s in states)
        assert all(s.points == states[0].points for s in states)
        assert all(s.events == () for s in states)

    def test_leave_rate_one_empties_then_join_rate_one_refills(self):
        spec = dyn_spec(churn=ChurnSpec(epochs=3, seed=1, join_rate=1.0,
                                        leave_rate=1.0))
        states = spec.epoch_states()
        assert states[1].active == ()          # everyone leaves at once
        assert states[2].active == tuple(spec.agents())  # everyone rejoins

    def test_events_respect_active_membership(self):
        spec = dyn_spec()
        for prev, state in zip(spec.epoch_states(), spec.epoch_states()[1:]):
            prev_active = set(prev.active)
            for event in state.events:
                if event.kind == "join":
                    assert event.agent not in prev_active
                elif event.kind == "leave":
                    assert event.agent in prev_active
                assert event.agent != spec.source

    def test_moves_update_points_and_only_points(self):
        spec = dyn_spec(churn=ChurnSpec(epochs=6, seed=3, join_rate=0.0,
                                        leave_rate=0.0, move_rate=0.5,
                                        move_scale=0.7))
        states = spec.epoch_states()
        for prev, state in zip(states, states[1:]):
            moved = {e.agent: e.position for e in state.events if e.kind == "move"}
            for agent in range(spec.n_stations):
                if agent in moved:
                    assert state.points[agent] == moved[agent]
                    assert state.points[agent] != prev.points[agent]
                else:
                    assert state.points[agent] == prev.points[agent]

    def test_epoch_out_of_range(self):
        with pytest.raises(ValueError, match="epoch"):
            dyn_spec().state(99)


class TestMaterialize:
    def test_epoch0_network_bit_identical_to_base(self):
        spec = dyn_spec()
        cold = spec.materialize(0).build_network()
        base = spec.base_scenario().build_network()
        assert (cold.matrix == base.matrix).all()

    def test_materialized_points_round_trip_exactly(self):
        spec = dyn_spec()
        for epoch in range(spec.n_epochs):
            mat = spec.materialize(epoch)
            again = ScenarioSpec.from_json(mat.to_json())
            assert again == mat
            assert (again.build_network().matrix == mat.build_network().matrix).all()

    def test_points_kind_base_supported(self):
        base = ScenarioSpec.from_random(n=6, alpha=2.0, seed=0).build_network()
        spec = DynamicScenarioSpec(
            kind="points", points=tuple(tuple(float(x) for x in row)
                                        for row in base.points.coords),
            alpha=2.0, churn=ChurnSpec(epochs=3, seed=4, move_rate=0.5))
        assert spec.materialize(0).points == spec.points
        assert spec.n_epochs == 3


@st.composite
def churny_specs(draw):
    return DynamicScenarioSpec(
        kind="random",
        n=draw(st.integers(min_value=2, max_value=10)),
        alpha=2.0,
        seed=draw(st.integers(min_value=0, max_value=1000)),
        side=5.0,
        churn=ChurnSpec(
            epochs=draw(st.integers(min_value=1, max_value=5)),
            seed=draw(st.integers(min_value=0, max_value=1000)),
            join_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
            leave_rate=draw(st.floats(min_value=0.0, max_value=1.0)),
            move_rate=draw(st.floats(min_value=0.0, max_value=0.5)),
        ),
    )


class TestWireProperty:
    @given(churny_specs())
    @settings(max_examples=25, deadline=None)
    def test_json_round_trip_preserves_history(self, spec):
        again = DynamicScenarioSpec.from_dict(json.loads(spec.to_json()))
        assert again == spec
        assert again.epoch_states() == spec.epoch_states()
