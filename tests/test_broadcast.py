"""Tests for repro.wireless.broadcast (MEBT)."""

import pytest

from repro.geometry.points import uniform_points
from repro.wireless.broadcast import bip_broadcast, broadcast_cost_ratio, mst_broadcast
from repro.wireless.cost_graph import EuclideanCostGraph
from repro.wireless.memt import optimal_broadcast


class TestMSTBroadcast:
    @pytest.mark.parametrize("seed", range(5))
    def test_feasible(self, seed):
        net = EuclideanCostGraph(uniform_points(8, 2, rng=seed, side=4.0), 2.0)
        pa = mst_broadcast(net, 0)
        assert pa.reaches(net, 0, range(1, 8))

    @pytest.mark.parametrize("seed", range(5))
    def test_ratio_within_d2_bound(self, seed):
        """cost(MST heuristic)/C* <= 6 in the plane (Ambuehl via Lemma 3.4)."""
        net = EuclideanCostGraph(uniform_points(8, 2, rng=seed + 20, side=4.0), 2.0)
        ratio = broadcast_cost_ratio(net, 0)
        assert 1.0 - 1e-9 <= ratio <= 6.0 + 1e-9

    def test_d1_alpha1_mst_is_optimal(self):
        """On a line with alpha = 1 the MST heuristic is exactly optimal."""
        net = EuclideanCostGraph(uniform_points(7, 1, rng=3, side=5.0), 1.0)
        assert broadcast_cost_ratio(net, 0) == pytest.approx(1.0)


class TestBIPBroadcast:
    @pytest.mark.parametrize("seed", range(3))
    def test_feasible_and_at_least_optimal(self, seed):
        net = EuclideanCostGraph(uniform_points(7, 2, rng=seed, side=4.0), 2.0)
        pa = bip_broadcast(net, 0)
        assert pa.reaches(net, 0, range(1, 7))
        opt, _ = optimal_broadcast(net, 0)
        assert pa.cost() >= opt - 1e-9
