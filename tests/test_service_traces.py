"""Multi-group traces through the serving path: ``/v1/run`` with
``(group, epoch)`` must answer bit-identically to a direct
:class:`~repro.traces.session.MultiGroupSession`, one store entry hosts
every group of a scenario, and the fleet router spreads groups over
shards by the group-extended route key."""

from __future__ import annotations

import asyncio
import json

from repro.api import result_to_dict
from repro.service import CostSharingService, ServiceClient
from repro.service.fleet import scenario_route_key
from repro.service.ring import HashRing
from repro.traces import MultiGroupSession, generate_trace

TRACE = generate_trace(n=7, groups=2, epochs=3, seed=0, handover_rate=0.3)
SPEC = TRACE.to_spec()
PROFILES = [{str(a): float(a % 3 + 1) for a in SPEC.agents()}]
INT_PROFILES = [{int(a): v for a, v in p.items()} for p in PROFILES]


def canon(payload) -> str:
    return json.dumps(payload, sort_keys=True)


def direct_wire(group: str, epoch: int, mechanism: str) -> list[dict]:
    session = MultiGroupSession(SPEC)
    return [result_to_dict(r)
            for r in session.run_epoch(group, epoch, mechanism, INT_PROFILES)]


def test_run_endpoint_matches_direct_session_for_every_cell():
    async def go():
        client = ServiceClient(CostSharingService(batch_window=0.0))
        out = {}
        for epoch in range(SPEC.n_epochs):
            for group in SPEC.group_ids:
                status, payload = await client.run(
                    SPEC, "tree-shapley", PROFILES, epoch=epoch, group=group)
                out[(group, epoch)] = (status, payload)
        return out, client.service

    out, service = asyncio.run(go())
    for (group, epoch), (status, payload) in out.items():
        assert status == 200
        assert payload["group"] == group and payload["epoch"] == epoch
        assert canon(payload["results"]) == canon(
            direct_wire(group, epoch, "tree-shapley"))
    # Every group of the scenario lives in ONE store entry (the groups
    # share a substrate cache there) — not one entry per group.
    assert service.store.stats()["size"] == 1


def test_batch_endpoint_mixes_groups_and_epochs():
    requests = [
        {"scenario": SPEC.to_dict(), "mechanism": "jv",
         "profiles": PROFILES, "epoch": epoch, "group": group}
        for group in SPEC.group_ids for epoch in (0, 1)]

    async def go():
        client = ServiceClient(CostSharingService(batch_window=0.01))
        status, payload = await client.request(
            "POST", "/v1/batch", {"requests": requests})
        await client.service.drain()
        return status, payload

    status, payload = asyncio.run(go())
    assert status == 200
    assert payload["count"] == len(requests)
    for request, response in zip(requests, payload["responses"]):
        assert response["status"] == 200
        body = response["body"]
        assert body["group"] == request["group"]
        assert body["epoch"] == request["epoch"]
        assert canon(body["results"]) == canon(
            direct_wire(request["group"], request["epoch"], "jv"))


def test_repeat_requests_hit_the_warm_store_entry():
    async def go():
        client = ServiceClient(CostSharingService(batch_window=0.0))
        first = await client.run(SPEC, "jv", PROFILES, epoch=1, group="g0")
        second = await client.run(SPEC, "jv", PROFILES, epoch=1, group="g0")
        other = await client.run(SPEC, "jv", PROFILES, epoch=1, group="g1")
        return first, second, other, client.service.store.stats()

    first, second, other, stats = asyncio.run(go())
    assert first[0] == second[0] == other[0] == 200
    assert canon(first[1]) == canon(second[1])
    assert first[1]["group"] == "g0" and other[1]["group"] == "g1"
    assert stats["hits"] >= 2  # the second and the g1 run reuse the entry


def test_missing_group_is_a_400_not_a_500():
    async def go():
        client = ServiceClient(CostSharingService(batch_window=0.0))
        no_group = await client.run(SPEC, "jv", PROFILES, epoch=0)
        bad_group = await client.run(SPEC, "jv", PROFILES, epoch=0,
                                     group="g9")
        return no_group, bad_group

    no_group, bad_group = asyncio.run(go())
    assert no_group[0] == 400 and "group" in no_group[1]["error"]
    assert bad_group[0] == 400 and "g9" in bad_group[1]["error"]


def test_groups_spread_across_fleet_shards():
    # With enough groups, the group-extended route key must not pin the
    # whole trace to one shard — that is the point of extending the key.
    trace = generate_trace(n=6, groups=8, epochs=1, seed=1)
    spec = trace.to_spec()
    ring = HashRing(["w0", "w1", "w2"])
    shards = set()
    for group in spec.group_ids:
        body = json.dumps({"scenario": spec.to_dict(), "mechanism": "jv",
                           "profiles": PROFILES, "group": group,
                           "epoch": 0}).encode("utf-8")
        shards.add(ring.route(scenario_route_key(body)))
    assert len(shards) >= 2
