"""Service endpoints and failure paths, through both transports.

The in-process :class:`ServiceClient` calls the exact ``dispatch`` the
HTTP layer calls, so most contracts are pinned there; one test drives
the real asyncio HTTP server over a socket to cover the wire parsing,
keep-alive and header behaviour.
"""

from __future__ import annotations

import asyncio
import json

from repro.api import MulticastSession, ScenarioSpec, available_mechanisms, result_to_dict
from repro.dynamic import ChurnSpec, DynamicScenarioSpec
from repro.service import CostSharingService, ServiceClient, ServiceServer


def _spec(seed: int, n: int = 6) -> ScenarioSpec:
    return ScenarioSpec.from_random(n=n, alpha=2.0, seed=seed, side=5.0)


def _profiles(spec, utility=4.0):
    return [{a: utility for a in spec.agents()}]


def _client(**kwargs) -> ServiceClient:
    kwargs.setdefault("batch_window", 0.0)
    return ServiceClient(CostSharingService(**kwargs))


def run(coro):
    return asyncio.run(coro)


# -- happy paths -------------------------------------------------------------
def test_healthz_and_stats_shapes():
    async def go():
        client = _client()
        status, health = await client.healthz()
        assert status == 200 and health["status"] == "ok"
        status, stats = await client.stats()
        assert status == 200
        assert set(stats) == {"schema", "store", "batcher", "http", "metrics",
                              "spans"}
        assert stats["http"]["queue_limit"] == client.service.queue_limit
    run(go())


def test_run_endpoint_matches_direct_session_and_warms():
    spec = _spec(0)
    profiles = _profiles(spec)

    async def go():
        client = _client()
        status, cold = await client.run(spec, "jv", profiles)
        assert status == 200
        status, warm = await client.run(spec, "jv", profiles)
        assert status == 200
        return client, cold, warm

    client, cold, warm = run(go())
    direct = [result_to_dict(r)
              for r in MulticastSession(spec).run_batch("jv", profiles)]
    assert cold["results"] == warm["results"] == direct
    assert cold["scenario"] == spec.to_dict()
    assert cold["mechanism"] == {"name": "jv", "params": {}}
    assert client.service.store.stats()["hits"] == 1


def test_mechanism_params_forms_are_equivalent():
    spec = _spec(1)
    profiles = _profiles(spec)

    async def go():
        client = _client()
        _, inline = await client.run(spec, {"name": "tree-shapley",
                                            "params": {"tree": "mst"}}, profiles)
        _, split = await client.run(spec, "tree-shapley", profiles,
                                    params={"tree": "mst"})
        return inline, split

    inline, split = run(go())
    assert inline["results"] == split["results"]
    assert inline["mechanism"] == split["mechanism"]


def test_batch_endpoint_mixes_statuses_per_request():
    spec = _spec(2)
    good = {"scenario": spec.to_dict(), "mechanism": "tree-shapley",
            "profiles": [{str(a): 3.0 for a in spec.agents()}]}
    # Parses fine; fails only when the mechanism validates the profile.
    runtime_bad = {**good,
                   "profiles": [{str(a): 3.0 for a in spec.agents()} | {"99": 1.0}]}

    async def go():
        client = _client()
        status, payload = await client.batch([good, runtime_bad, good])
        return status, payload

    status, payload = run(go())
    assert status == 200 and payload["count"] == 3
    codes = [entry["status"] for entry in payload["responses"]]
    assert codes == [200, 400, 200]
    assert "99" in payload["responses"][1]["body"]["error"]
    assert (payload["responses"][0]["body"]["results"]
            == payload["responses"][2]["body"]["results"])


def test_dynamic_scenario_runs_an_epoch():
    spec = DynamicScenarioSpec(
        kind="random", n=6, alpha=2.0, seed=3,
        churn=ChurnSpec(epochs=3, seed=1, join_rate=0.4, leave_rate=0.2))
    profiles = [{a: 5.0 for a in spec.agents()}]

    async def go():
        client = _client()
        status, payload = await client.run(spec, "tree-shapley", profiles, epoch=1)
        return status, payload

    status, payload = run(go())
    assert status == 200 and payload["epoch"] == 1
    cold = MulticastSession(spec.materialize(1)).run_batch("tree-shapley", profiles)
    assert payload["results"] == [result_to_dict(r) for r in cold]


# -- failure paths -----------------------------------------------------------
def test_malformed_json_body_is_400():
    async def go():
        client = _client()
        status, payload = await client.request("POST", "/v1/run", body=b"{nope]")
        assert status == 400 and "malformed JSON body" in payload["error"]
        status, payload = await client.request("POST", "/v1/run", body=b"\xff\xfe")
        assert status == 400 and "UTF-8" in payload["error"]
        status, payload = await client.request("POST", "/v1/run",
                                               body=b'["not", "an", "object"]')
        assert status == 400 and "JSON object" in payload["error"]
    run(go())


def test_unknown_mechanism_is_400_listing_available():
    spec = _spec(4)

    async def go():
        client = _client()
        status, payload = await client.run(spec, "definitely-not-a-mechanism",
                                           _profiles(spec))
        return status, payload

    status, payload = run(go())
    assert status == 400
    # Mirrors the CLI's exit-2 contract: the message enumerates the registry.
    for name in available_mechanisms():
        assert name in payload["error"]


def test_bad_requests_are_400_with_reasons():
    spec = _spec(5)
    base = {"scenario": spec.to_dict(), "mechanism": "jv",
            "profiles": [{str(a): 1.0 for a in spec.agents()}]}
    cases = [
        ({**base, "surprise": 1}, "unknown request fields"),
        ({k: v for k, v in base.items() if k != "scenario"}, "missing"),
        ({**base, "scenario": {"kind": "nope"}}, "invalid scenario"),
        ({**base, "mechanism": 7}, "'mechanism' must be"),
        ({**base, "profiles": []}, "at least one profile"),
        ({**base, "profiles": [{"x": "y"}]}, "numeric"),
        ({**base, "epoch": 0}, "only applies to churn"),
        ({**base, "mechanism": {"name": "jv"}, "params": {}}, "not both"),
    ]

    async def go():
        client = _client()
        for payload, needle in cases:
            status, out = await client.request("POST", "/v1/run", payload)
            assert status == 400, (payload, out)
            assert needle in out["error"], (needle, out["error"])
    run(go())


def test_dynamic_epoch_out_of_range_is_400():
    spec = DynamicScenarioSpec(
        kind="random", n=6, alpha=2.0, seed=3,
        churn=ChurnSpec(epochs=2, seed=1, join_rate=0.4, leave_rate=0.2))

    async def go():
        client = _client()
        status, payload = await client.run(spec, "jv", [{a: 1.0 for a in spec.agents()}],
                                           epoch=5)
        assert status == 400 and "out of range" in payload["error"]
    run(go())


def test_batch_larger_than_queue_limit_is_413_not_eternal_429():
    spec = _spec(6)
    one = {"scenario": spec.to_dict(), "mechanism": "jv",
           "profiles": [{str(a): 1.0 for a in spec.agents()}]}

    async def go():
        # max_batch_requests (default 64) clamps to queue_limit: an
        # 8-request batch on an idle 4-slot server must be rejected as
        # permanently oversized (413), never as retryable congestion (429).
        client = _client(queue_limit=4)
        assert client.service.max_batch_requests == 4
        status, payload = await client.batch([one] * 8)
        assert status == 413 and "exceeds the limit of 4" in payload["error"]
        status, _ = await client.batch([one] * 4)
        assert status == 200
    run(go())


def test_unexpected_dispatch_exception_is_a_counted_500(monkeypatch):
    async def go():
        client = _client()

        def explode(_data):
            raise RuntimeError("wires crossed")

        from repro.service import server as server_module
        monkeypatch.setattr(server_module, "parse_run_request", explode)
        status, payload = await client.run(_spec(6), "jv", _profiles(_spec(6)))
        assert status == 500
        assert "internal error" in payload["error"]
        assert "wires crossed" in payload["error"]
        assert client.service.responses[500] == 1
    run(go())


def test_oversized_batch_is_413():
    spec = _spec(6)
    one = {"scenario": spec.to_dict(), "mechanism": "jv",
           "profiles": [{str(a): 1.0 for a in spec.agents()}]}

    async def go():
        client = _client(max_batch_requests=3)
        status, payload = await client.batch([one] * 4)
        assert status == 413 and "exceeds the limit of 3" in payload["error"]
        status, _ = await client.batch([one] * 3)
        assert status == 200
    run(go())


def test_full_queue_backpressure_is_429_with_retry_after():
    spec = _spec(7)

    async def go():
        # window long enough that admitted requests stay pending.
        service = CostSharingService(batch_window=5.0, queue_limit=2,
                                     retry_after=0.25)
        client = ServiceClient(service)
        pending = [asyncio.ensure_future(client.run(spec, "jv", _profiles(spec)))
                   for _ in range(2)]
        await asyncio.sleep(0)  # let both pass admission
        status, payload, headers = await service.dispatch(
            "POST", "/v1/run", json.dumps({
                "scenario": spec.to_dict(), "mechanism": "jv",
                "profiles": [{str(a): 1.0 for a in spec.agents()}],
            }).encode())
        assert status == 429
        assert "queue full" in payload["error"]
        assert headers.get("Retry-After") == "0.25"
        assert service.rejected == 1
        await service.batcher.drain()
        results = await asyncio.gather(*pending)
        assert all(s == 200 for s, _ in results)
        # Capacity released: the same request is admitted again now.
        status, _ = await client.run(spec, "jv", _profiles(spec))
        assert status == 200
    run(go())


def test_unknown_path_and_method_mismatches():
    async def go():
        client = _client()
        status, payload = await client.request("GET", "/v1/nope")
        assert status == 404 and "/v1/run" in payload["error"]
        status, _ = await client.request("POST", "/v1/healthz")
        assert status == 405
        status, _ = await client.request("GET", "/v1/run")
        assert status == 405
    run(go())


def test_lru_eviction_mid_flight_under_load():
    """A cache of 1 scenario thrashed by alternating requests still
    answers every request bit-identically to cold sessions."""
    specs = [_spec(8), _spec(9)]
    expected = {}
    for spec in specs:
        expected[spec.seed] = [
            result_to_dict(r)
            for r in MulticastSession(spec).run_batch("tree-shapley", _profiles(spec))]

    async def go():
        client = _client(cache_size=1, batch_window=0.002)
        for _ in range(3):
            outs = await asyncio.gather(*(
                client.run(spec, "tree-shapley", _profiles(spec)) for spec in specs))
            for spec, (status, payload) in zip(specs, outs):
                assert status == 200
                assert payload["results"] == expected[spec.seed]
        return client.service.store.stats()

    stats = run(go())
    assert stats["evictions"] >= 1  # the thrash actually happened
    assert stats["size"] <= 1


# -- the real HTTP layer -----------------------------------------------------
async def _raw_http(port: int, method: str, path: str, body: bytes = b"",
                    extra: str = "") -> tuple[int, dict, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        request = (f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
                   f"Content-Length: {len(body)}\r\n{extra}\r\n")
        writer.write(request.encode("latin-1") + body)
        await writer.drain()
        return await _read_response(reader)
    finally:
        writer.close()


async def _read_response(reader) -> tuple[int, dict, dict]:
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    headers = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    payload = json.loads(await reader.readexactly(int(headers["content-length"])))
    return status, payload, headers


def test_http_server_round_trip_keep_alive_and_errors():
    spec = _spec(10)
    body = json.dumps({
        "scenario": spec.to_dict(), "mechanism": "tree-shapley",
        "profiles": [{str(a): 4.0 for a in spec.agents()}],
    }).encode()
    direct = [result_to_dict(r)
              for r in MulticastSession(spec).run_batch("tree-shapley",
                                                        _profiles(spec))]

    async def go():
        service = CostSharingService(batch_window=0.001, max_body=1 << 16)
        server = await ServiceServer(service, port=0).start()
        try:
            status, health, _ = await _raw_http(server.port, "GET", "/v1/healthz")
            assert status == 200 and health["status"] == "ok"

            status, payload, _ = await _raw_http(server.port, "POST", "/v1/run", body)
            assert status == 200 and payload["results"] == direct

            # Keep-alive: two requests on one connection.
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                for _ in range(2):
                    writer.write((f"POST /v1/run HTTP/1.1\r\nHost: t\r\n"
                                  f"Content-Length: {len(body)}\r\n\r\n").encode()
                                 + body)
                    await writer.drain()
                    status, payload, headers = await _read_response(reader)
                    assert status == 200 and payload["results"] == direct
                    assert headers["connection"] == "keep-alive"
            finally:
                writer.close()

            # Wire-level failure paths.
            status, payload, _ = await _raw_http(server.port, "POST", "/v1/run",
                                                 b"{broken")
            assert status == 400 and "malformed JSON" in payload["error"]

            status, payload, _ = await _raw_http(
                server.port, "POST", "/v1/run", b"x" * ((1 << 16) + 1))
            assert status == 413 and "exceeds" in payload["error"]

            status, _, _ = await _raw_http(server.port, "GET", "/other")
            assert status == 404

            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                writer.write(b"BOGUS\r\n\r\n")
                await writer.drain()
                status, payload, _ = await _read_response(reader)
                assert status == 400 and "request line" in payload["error"]
            finally:
                writer.close()

            # A request line overrunning the StreamReader limit must not
            # kill the connection silently — the client gets a 400.
            reader, writer = await asyncio.open_connection("127.0.0.1", server.port)
            try:
                writer.write(b"GET /" + b"x" * (1 << 17) + b" HTTP/1.1\r\n\r\n")
                await writer.drain()
                status, payload, _ = await _read_response(reader)
                assert status == 400 and "unreadable" in payload["error"]
            finally:
                writer.close()
        finally:
            await server.close()

    run(go())
