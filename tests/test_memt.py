"""Tests for repro.wireless.memt: exact oracle + heuristic baselines."""

import itertools

import numpy as np
import pytest

from repro.geometry.points import uniform_points
from repro.graphs.random_graphs import random_cost_matrix
from repro.wireless.cost_graph import CostGraph, EuclideanCostGraph
from repro.wireless.memt import (
    bip_broadcast,
    bip_multicast,
    mst_multicast,
    optimal_broadcast,
    optimal_multicast,
    optimal_multicast_cost,
    spt_multicast,
    steiner_multicast,
)
from repro.wireless.power import PowerAssignment


def brute_force_memt(net: CostGraph, source, receivers):
    """Enumerate every power-level combination (tiny n only)."""
    levels = [[0.0, *net.power_levels(i)] for i in range(net.n)]
    best = float("inf")
    for combo in itertools.product(*levels):
        pa = PowerAssignment(list(combo))
        if sum(combo) < best and pa.reaches(net, source, receivers):
            best = sum(combo)
    return best


class TestExactSolver:
    @pytest.mark.parametrize("seed", range(5))
    def test_matches_brute_force(self, seed):
        net = CostGraph(random_cost_matrix(4, rng=seed))
        receivers = [1, 2, 3]
        cost, pa = optimal_multicast(net, 0, receivers)
        assert cost == pytest.approx(brute_force_memt(net, 0, receivers))
        assert pa.reaches(net, 0, receivers)
        assert pa.cost() == pytest.approx(cost)

    @pytest.mark.parametrize("seed", range(3))
    def test_subset_receivers(self, seed):
        net = CostGraph(random_cost_matrix(5, rng=seed + 10))
        receivers = [2, 4]
        cost, pa = optimal_multicast(net, 0, receivers)
        assert cost == pytest.approx(brute_force_memt(net, 0, receivers))
        assert pa.reaches(net, 0, receivers)

    def test_empty_receivers(self):
        net = CostGraph(random_cost_matrix(4, rng=0))
        cost, pa = optimal_multicast(net, 0, [])
        assert cost == 0.0 and pa.cost() == 0.0

    def test_source_excluded_from_receivers(self):
        net = CostGraph(random_cost_matrix(4, rng=0))
        c1 = optimal_multicast_cost(net, 0, [0, 1])
        c2 = optimal_multicast_cost(net, 0, [1])
        assert c1 == pytest.approx(c2)

    def test_monotone_in_receivers(self):
        net = CostGraph(random_cost_matrix(6, rng=2))
        c_small = optimal_multicast_cost(net, 0, [1])
        c_big = optimal_multicast_cost(net, 0, [1, 2, 3, 4, 5])
        assert c_small <= c_big + 1e-12

    def test_size_guard(self):
        net = CostGraph(np.zeros((25, 25)))
        with pytest.raises(ValueError):
            optimal_multicast(net, 0, [1])

    def test_broadcast_specialisation(self):
        net = CostGraph(random_cost_matrix(5, rng=4))
        cost, pa = optimal_broadcast(net, 0)
        assert cost == pytest.approx(optimal_multicast_cost(net, 0, [1, 2, 3, 4]))
        assert pa.reaches(net, 0, range(1, 5))


@pytest.mark.parametrize("heuristic", [spt_multicast, mst_multicast, steiner_multicast,
                                       bip_multicast])
class TestHeuristics:
    @pytest.mark.parametrize("seed", range(4))
    def test_feasible_and_at_least_optimal(self, heuristic, seed):
        pts = uniform_points(7, 2, rng=seed, side=4.0)
        net = EuclideanCostGraph(pts, 2.0)
        receivers = [1, 3, 5]
        pa = heuristic(net, 0, receivers)
        assert pa.reaches(net, 0, receivers)
        assert pa.cost() >= optimal_multicast_cost(net, 0, receivers) - 1e-9

    def test_empty_receivers_zero_power(self, heuristic):
        net = EuclideanCostGraph(uniform_points(5, 2, rng=0), 2.0)
        assert heuristic(net, 0, []).cost() == 0.0


class TestBIP:
    def test_broadcast_covers_everyone(self):
        net = EuclideanCostGraph(uniform_points(8, 2, rng=1, side=4.0), 2.0)
        pa = bip_broadcast(net, 0)
        assert pa.reaches(net, 0, range(1, 8))

    def test_pruning_never_costs_more(self):
        net = EuclideanCostGraph(uniform_points(8, 2, rng=2, side=4.0), 2.0)
        full = bip_broadcast(net, 0).cost()
        pruned = bip_multicast(net, 0, [1, 2]).cost()
        assert pruned <= full + 1e-9
