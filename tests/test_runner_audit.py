"""Sweep-scale axiom audit (ISSUE 4 satellite + acceptance grid).

``run_sweep(audit=True)`` verifies each mechanism's *registered*
guarantees (the paper's per-mechanism theorem matrix) on every row —
static and per-epoch — and embeds the report.  The slow acceptance test
runs the full 9-mechanism x 5-layout churn grid (200+ rows) and demands
zero violations; the non-vacuity tests prove the net actually catches
breaches when a guarantee is checked against a mechanism that lacks it.
"""

import pytest

from repro.api import MulticastSession, ScenarioSpec, available_mechanisms
from repro.api.registry import registered
from repro.mechanism.properties import audit_profile_results
from repro.runner import ChurnSpec, ProfileSpec, SweepSpec, run_sweep

ALL_LAYOUTS = ("uniform", "cluster", "grid", "ring", "radial")


def session_and_profiles(mechanism="tree-shapley", n=6, alpha=2.0):
    session = MulticastSession(ScenarioSpec.from_random(n=n, alpha=alpha, seed=0, side=5.0))
    profiles = [{a: 2.0 + a for a in session.agents()},
                {a: 0.5 for a in session.agents()}]
    results = session.run_batch(mechanism, profiles)
    return session, profiles, results


class TestAuditProfileResults:
    def test_clean_mechanism_reports_no_violations(self):
        session, profiles, results = session_and_profiles("tree-shapley")
        report = audit_profile_results(session.mechanism("tree-shapley"),
                                       profiles, results)
        assert report["violations"] == []
        assert report["profiles"] == 2
        assert report["checked"] == ["npt", "vp", "cost_recovery"]
        assert report["bb_factor_max"] == pytest.approx(1.0)

    def test_mc_deficit_is_caught_when_checked(self):
        # Non-vacuity: the marginal-cost mechanism runs deficits, so
        # checking cost recovery against it MUST itemize violations.
        session, profiles, results = session_and_profiles("tree-mc")
        report = audit_profile_results(session.mechanism("tree-mc"),
                                       profiles, results,
                                       axioms=("npt", "vp", "cost_recovery"))
        assert any("cost_recovery" in v["failed"] for v in report["violations"])
        for violation in report["violations"]:
            assert violation["charged"] < violation["cost"]

    def test_mc_guarantees_exclude_cost_recovery(self):
        session, profiles, results = session_and_profiles("tree-mc")
        report = audit_profile_results(session.mechanism("tree-mc"),
                                       profiles, results,
                                       axioms=registered("tree-mc").guarantees)
        assert report["checked"] == ["npt", "vp"]
        assert report["violations"] == []

    def test_unknown_axiom_rejected(self):
        session, profiles, results = session_and_profiles()
        with pytest.raises(ValueError, match="efficiency"):
            audit_profile_results(session.mechanism("tree-shapley"),
                                  profiles, results, axioms=("npt", "efficiency"))

    def test_every_registered_mechanism_declares_npt_and_vp(self):
        for name in available_mechanisms():
            guarantees = registered(name).guarantees
            assert {"npt", "vp"} <= set(guarantees), name
            if name.endswith("-mc"):
                assert "cost_recovery" not in guarantees, name
            else:
                assert "cost_recovery" in guarantees, name


class TestSweepAudit:
    def test_static_rows_carry_audit(self):
        spec = SweepSpec(ns=(6,), alphas=(2.0,), seeds=(0,),
                         layouts=("uniform",),
                         mechanisms=("tree-shapley", "tree-mc"),
                         profiles=ProfileSpec(count=2), side=5.0)
        rows = run_sweep(spec, audit=True)
        assert all(row["audit"]["violations"] == [] for row in rows)
        by_mech = {row["mechanism"]["name"]: row for row in rows}
        assert by_mech["tree-shapley"]["audit"]["checked"] == \
            ["npt", "vp", "cost_recovery"]
        assert by_mech["tree-mc"]["audit"]["checked"] == ["npt", "vp"]

    def test_audit_off_leaves_rows_unchanged(self):
        spec = SweepSpec(ns=(6,), alphas=(2.0,), seeds=(0,),
                         layouts=("uniform",), mechanisms=("jv",),
                         profiles=ProfileSpec(count=2), side=5.0)
        assert "audit" not in run_sweep(spec)[0]


@pytest.mark.slow
class TestAcceptanceAuditGrid:
    """The ISSUE 4 acceptance criterion: the sweep-scale axiom audit
    reports zero violations across the full mechanism x layout grid."""

    def test_all_mechanisms_all_layouts_zero_violations(self):
        # alpha=1 is the regime where *every* registered mechanism is
        # defined (the exact Euclidean mechanisms are alpha=1/d=1 only),
        # so one grid covers all 11 x all 5 layout families; 3 epochs of
        # churn turn the 110 items into 330 audited rows.
        spec = SweepSpec(
            ns=(6,), alphas=(1.0,), seeds=(0, 1), layouts=ALL_LAYOUTS,
            mechanisms=available_mechanisms(),
            profiles=ProfileSpec(count=2), side=5.0,
            churn=ChurnSpec(epochs=3, seed=11, join_rate=0.3,
                            leave_rate=0.3, move_rate=0.1, move_scale=0.3),
        )
        assert len(available_mechanisms()) == 11
        assert spec.n_rows() == 330
        rows = run_sweep(spec, workers=2, audit=True)
        assert len(rows) == 330
        violations = [(row["item"], row["epoch"], row["audit"]["violations"])
                      for row in rows if row["audit"]["violations"]]
        assert violations == []
        # Every (mechanism, layout) cell of the grid is present.
        cells = {(row["mechanism"]["name"], row["layout"]) for row in rows}
        assert cells == {(m, layout) for m in available_mechanisms()
                         for layout in ALL_LAYOUTS}

    def test_alpha_two_regime_zero_violations(self):
        # The paper's canonical alpha=2 regime, for the mechanisms that
        # support general alpha (all but the exact Euclidean pair).
        mechanisms = tuple(m for m in available_mechanisms()
                           if not m.startswith("euclid-"))
        spec = SweepSpec(
            ns=(6,), alphas=(2.0,), seeds=(0,), layouts=ALL_LAYOUTS,
            mechanisms=mechanisms, profiles=ProfileSpec(count=2), side=5.0,
            churn=ChurnSpec(epochs=3, seed=5, join_rate=0.25,
                            leave_rate=0.25, move_rate=0.15, move_scale=0.4),
        )
        rows = run_sweep(spec, workers=2, audit=True)
        assert len(rows) == spec.n_rows() == 135
        assert all(row["audit"]["violations"] == [] for row in rows)
