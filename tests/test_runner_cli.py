"""Tests for the ``python -m repro sweep`` subcommand, including the
200-item acceptance sweep (4 new layout families x 4 mechanisms)."""

import json

import pytest

from repro.__main__ import main
from repro.runner import ProfileSpec, SweepSpec, read_rows, run_sweep, summarize_rows


def write_spec(tmp_path, spec: SweepSpec):
    path = tmp_path / "sweep.json"
    path.write_text(spec.to_json())
    return path


def small_spec(**overrides) -> SweepSpec:
    base = dict(ns=(6,), alphas=(2.0,), seeds=(0,),
                layouts=("cluster", "grid"), mechanisms=("tree-shapley", "jv"),
                profiles=ProfileSpec(count=2), side=5.0)
    base.update(overrides)
    return SweepSpec(**base)


class TestSweepSubcommand:
    def test_sweep_writes_jsonl_and_prints_summary(self, tmp_path, capsys):
        spec_path = write_spec(tmp_path, small_spec())
        out = tmp_path / "results.jsonl"
        assert main(["sweep", "--spec", str(spec_path), "--workers", "2",
                     "--out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "sweep: 4 items" in printed and "worst_bb" in printed
        rows = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(rows) == 4
        assert {row["layout"] for row in rows} == {"cluster", "grid"}

    def test_sweep_resume_flag(self, tmp_path, capsys):
        spec = small_spec()
        spec_path = write_spec(tmp_path, spec)
        out = tmp_path / "results.jsonl"
        assert main(["sweep", "--spec", str(spec_path), "--out", str(out)]) == 0
        reference = sorted(out.read_text().splitlines())
        lines = out.read_text().splitlines(keepends=True)
        out.write_text("".join(lines[:2]) + lines[2][:25])
        assert main(["sweep", "--spec", str(spec_path), "--out", str(out),
                     "--resume"]) == 0
        assert sorted(out.read_text().splitlines()) == reference

    def test_resume_requires_out(self, tmp_path, capsys):
        spec_path = write_spec(tmp_path, small_spec())
        assert main(["sweep", "--spec", str(spec_path), "--resume"]) == 2
        captured = capsys.readouterr()
        assert "--resume requires --out" in captured.err and captured.out == ""

    def test_unknown_mechanism_exits_2_listing_available(self, tmp_path, capsys):
        from repro.api import available_mechanisms

        spec_path = tmp_path / "sweep.json"
        payload = small_spec().to_dict()
        payload["mechanisms"] = [{"name": "warp-drive"}]
        spec_path.write_text(json.dumps(payload))
        assert main(["sweep", "--spec", str(spec_path)]) == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "warp-drive" in captured.err
        for name in available_mechanisms():
            assert name in captured.err

    def test_bad_inputs_exit_2_without_traceback(self, tmp_path, capsys):
        assert main(["sweep", "--spec", str(tmp_path / "absent.json")]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["sweep", "--spec", str(bad)]) == 2
        stray = tmp_path / "stray.json"
        stray.write_text(json.dumps({"ns": [5], "alphas": [2.0], "seeds": [0],
                                     "warp": 9}))
        assert main(["sweep", "--spec", str(stray)]) == 2
        captured = capsys.readouterr()
        assert captured.out == "" and captured.err.count("error:") == 3

    def test_custom_summary_grouping(self, tmp_path, capsys):
        spec_path = write_spec(tmp_path, small_spec())
        assert main(["sweep", "--spec", str(spec_path), "--by", "mechanism"]) == 0
        printed = capsys.readouterr().out
        assert "mechanism" in printed and "layout" not in printed


@pytest.mark.slow
class TestAcceptanceSweep:
    """The ISSUE 3 acceptance criterion: a 200-item sweep over the layout
    families completes through the CLI with 4 workers, and its results are
    bit-identical to the serial path."""

    def test_200_item_sweep_parallel_equals_serial(self, tmp_path, capsys):
        spec = SweepSpec(
            ns=(6,), alphas=(2.0,), seeds=tuple(range(10)),
            layouts=("uniform", "cluster", "grid", "ring", "radial"),
            mechanisms=("tree-shapley", "tree-mc", "jv", "wireless"),
            profiles=ProfileSpec(count=2), side=5.0,
        )
        assert spec.n_items() == 200
        spec_path = write_spec(tmp_path, spec)
        out = tmp_path / "parallel.jsonl"
        assert main(["sweep", "--spec", str(spec_path), "--workers", "4",
                     "--out", str(out)]) == 0
        assert "sweep: 200 items" in capsys.readouterr().out

        parallel_rows = read_rows(out)
        assert len(parallel_rows) == 200
        serial_rows = run_sweep(spec, workers=1, out=tmp_path / "serial.jsonl")

        # Aggregated results are bit-identical (not approximately equal).
        order = {item.item_id: idx for idx, item in enumerate(spec.expand())}
        parallel_rows.sort(key=lambda row: order[row["item"]])
        assert summarize_rows(serial_rows) == summarize_rows(parallel_rows)
        # So are the raw sink payloads, modulo line order.
        assert sorted(out.read_text().splitlines()) == \
            sorted((tmp_path / "serial.jsonl").read_text().splitlines())
