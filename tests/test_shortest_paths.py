"""Tests for repro.graphs.shortest_paths (networkx as the oracle)."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs.adjacency import DiGraph, Graph
from repro.graphs.random_graphs import random_connected_graph
from repro.graphs.shortest_paths import (
    all_pairs_dijkstra,
    dijkstra,
    reconstruct_path,
    shortest_path,
)


def to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.nodes())
    for u, v, w in g.edges():
        h.add_edge(u, v, weight=w)
    return h


class TestDijkstra:
    def test_hand_instance(self):
        g = Graph()
        for u, v, w in [(0, 1, 1), (1, 2, 2), (0, 2, 4), (2, 3, 1)]:
            g.add_edge(u, v, w)
        dist, parent = dijkstra(g, 0)
        assert dist == {0: 0.0, 1: 1.0, 2: 3.0, 3: 4.0}
        assert reconstruct_path(parent, 3) == [0, 1, 2, 3]

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, seed):
        g = random_connected_graph(15, rng=seed)
        dist, _ = dijkstra(g, 0)
        expected = nx.single_source_dijkstra_path_length(to_nx(g), 0)
        assert dist.keys() == expected.keys()
        for v in dist:
            assert dist[v] == pytest.approx(expected[v])

    def test_early_exit_targets(self):
        g = Graph()
        for i in range(9):
            g.add_edge(i, i + 1, 1.0)
        dist, _ = dijkstra(g, 0, targets=[2])
        assert 2 in dist and 9 not in dist  # search stopped early

    def test_negative_weight_rejected(self):
        g = Graph()
        g.add_edge(0, 1, -1.0)
        with pytest.raises(ValueError):
            dijkstra(g, 0)

    def test_directed(self):
        g = DiGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(1, 2, 1.0)
        g.add_edge(2, 0, 10.0)
        dist, _ = dijkstra(g, 1)
        assert dist == {1: 0.0, 2: 1.0, 0: 11.0}

    def test_unreachable_absent(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_node(5)
        dist, parent = dijkstra(g, 0)
        assert 5 not in dist
        with pytest.raises(KeyError):
            reconstruct_path(parent, 5)


class TestEarlyExitConsistency:
    """Regression tests: the early-exit ``targets`` path must return dist
    and parent over exactly the settled nodes — no provisional parent
    entries that would silently path-reconstruct an unsettled node."""

    def diamond(self):
        # 0 -(1)- 1 -(1)- 3 and 0 -(1)- 2 -(10)- 3: node 2 gets relaxed
        # (hence a provisional parent) before the search stops at 1.
        g = Graph()
        for u, v, w in [(0, 1, 1.0), (0, 2, 1.5), (1, 3, 1.0), (2, 3, 10.0)]:
            g.add_edge(u, v, w)
        return g

    def test_single_target_parent_matches_dist(self):
        dist, parent = dijkstra(self.diamond(), 0, targets=[1])
        assert set(parent) == set(dist) == {0, 1}

    def test_single_target_no_stale_reconstruction(self):
        _, parent = dijkstra(self.diamond(), 0, targets=[1])
        with pytest.raises(KeyError):
            reconstruct_path(parent, 2)  # relaxed but never settled

    def test_target_settled_on_final_pop_is_recorded(self):
        g = self.diamond()
        dist, parent = dijkstra(g, 0, targets=[3])
        assert dist[3] == 2.0
        assert reconstruct_path(parent, 3) == [0, 1, 3]

    def test_single_target_query_matches_full_search(self):
        g = random_connected_graph(20, rng=5)
        full, _ = dijkstra(g, 0)
        for t in (1, 7, 19):
            dist, parent = dijkstra(g, 0, targets=[t])
            assert dist[t] == full[t]
            path = reconstruct_path(parent, t)
            assert path[0] == 0 and path[-1] == t
            assert sum(g.weight(a, b) for a, b in zip(path, path[1:])) == \
                pytest.approx(dist[t])
            assert set(parent) == set(dist)

    def test_target_is_source(self):
        dist, parent = dijkstra(self.diamond(), 0, targets=[0])
        assert dist == {0: 0.0} and parent == {0: None}

    def test_unreachable_target_leaves_consistent_maps(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_node(5)
        dist, parent = dijkstra(g, 0, targets=[5])
        assert 5 not in dist and 5 not in parent
        assert set(parent) == set(dist) == {0, 1}

    def test_node_weighted_mirror(self):
        from repro.graphs.node_weighted import node_weighted_dijkstra

        g = self.diamond()
        weights = {0: 0.0, 1: 1.0, 2: 1.0, 3: 0.0}
        dist, parent = node_weighted_dijkstra(g, weights, 0, targets=[1])
        assert set(parent) == set(dist)

    def test_shortest_path_single_target_regression(self):
        path, length = shortest_path(self.diamond(), 0, 3)
        assert path == [0, 1, 3] and length == 2.0


class TestHelpers:
    def test_shortest_path_wrapper(self):
        g = Graph()
        for u, v, w in [(0, 1, 1), (1, 2, 1), (0, 2, 5)]:
            g.add_edge(u, v, w)
        path, length = shortest_path(g, 0, 2)
        assert path == [0, 1, 2] and length == 2.0

    def test_shortest_path_unreachable(self):
        g = Graph()
        g.add_node(0)
        g.add_node(1)
        with pytest.raises(ValueError):
            shortest_path(g, 0, 1)

    def test_all_pairs_symmetric(self):
        g = random_connected_graph(10, rng=3)
        apsp = all_pairs_dijkstra(g)
        for u in g.nodes():
            for v in g.nodes():
                assert apsp[u][v] == pytest.approx(apsp[v][u])
                assert apsp[u][v] >= 0
        # Triangle inequality holds for shortest-path metrics.
        nodes = g.nodes()
        rng = np.random.default_rng(0)
        for _ in range(50):
            a, b, c = rng.choice(nodes, size=3)
            assert apsp[a][c] <= apsp[a][b] + apsp[b][c] + 1e-9
