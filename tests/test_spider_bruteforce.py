"""Brute-force validation of the minimum-ratio spider search.

`find_min_ratio_spider` (classic mode) must return exactly the minimum of
cost/|covered| over all centers and terminal subsets where legs are
node-weighted shortest paths — checked here by exhaustive enumeration on
small instances.  Branch mode must never be worse than classic.
"""


import pytest

from repro.graphs.node_weighted import node_weighted_dijkstra
from repro.graphs.nwst import find_min_ratio_spider
from repro.graphs.random_graphs import random_node_weighted_instance


def brute_force_classic_ratio(graph, weights, terminals, min_terminals=3):
    """min over centers v and subsets S (|S| >= 3) of
    (w(v) + sum of leg distances) / |S| with single-terminal legs."""
    best = float("inf")
    term_list = list(terminals)
    for v in graph.nodes():
        dist, _ = node_weighted_dijkstra(graph, weights, v)
        legs = sorted(dist.get(t, float("inf")) for t in term_list)
        # Optimal subset of a given size takes the cheapest legs.
        total = float(weights.get(v, 0.0))
        for size, leg in enumerate(legs, start=1):
            if leg == float("inf"):
                break
            total += leg
            if size >= min_terminals:
                best = min(best, total / size)
    return best


class TestSpiderBruteForce:
    @pytest.mark.parametrize("seed", range(10))
    def test_classic_mode_is_exact(self, seed):
        graph, weights, terminals = random_node_weighted_instance(
            10, 4, rng=seed, extra_edge_prob=0.3
        )
        spider = find_min_ratio_spider(graph, weights, terminals, mode="classic")
        expected = brute_force_classic_ratio(graph, weights, terminals)
        assert spider is not None
        assert spider.ratio == pytest.approx(expected)

    @pytest.mark.parametrize("seed", range(10))
    def test_branch_never_worse_than_classic(self, seed):
        graph, weights, terminals = random_node_weighted_instance(
            10, 5, rng=seed + 50, extra_edge_prob=0.3
        )
        classic = find_min_ratio_spider(graph, weights, terminals, mode="classic")
        branch = find_min_ratio_spider(graph, weights, terminals, mode="branch")
        assert classic is not None and branch is not None
        assert branch.ratio <= classic.ratio + 1e-9

    @pytest.mark.parametrize("seed", range(5))
    def test_spider_node_set_supports_its_cost(self, seed):
        """The bought node set's true weight never exceeds the charged cost
        (legs may overlap, making the cost an upper bound)."""
        graph, weights, terminals = random_node_weighted_instance(
            10, 4, rng=seed + 100, extra_edge_prob=0.3
        )
        spider = find_min_ratio_spider(graph, weights, terminals)
        assert spider is not None
        true_weight = sum(weights.get(x, 0.0) for x in spider.nodes)
        assert true_weight <= spider.cost + 1e-9
        assert spider.terminals <= spider.nodes

    @pytest.mark.parametrize("seed", range(5))
    def test_spider_nodes_connected(self, seed):
        from repro.graphs.traversal import is_connected

        graph, weights, terminals = random_node_weighted_instance(
            10, 4, rng=seed + 200, extra_edge_prob=0.3
        )
        spider = find_min_ratio_spider(graph, weights, terminals)
        assert spider is not None
        assert is_connected(graph.subgraph(spider.nodes))
