"""Tests for repro.graphs.mst (networkx as oracle) + merge-trace invariants."""

import networkx as nx
import pytest

from repro.graphs.adjacency import Graph
from repro.graphs.mst import (
    boruvka_mst,
    kruskal_complete,
    kruskal_mst,
    mst_weight,
    prim_mst,
)
from repro.graphs.random_graphs import as_rng, random_connected_graph


def to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.nodes())
    for u, v, w in g.edges():
        h.add_edge(u, v, weight=w)
    return h


@pytest.mark.parametrize("seed", range(6))
def test_kruskal_prim_boruvka_agree_with_networkx(seed):
    g = random_connected_graph(14, rng=seed)
    expected = nx.minimum_spanning_tree(to_nx(g)).size(weight="weight")
    k_edges, _ = kruskal_mst(g)
    assert mst_weight(k_edges) == pytest.approx(expected)
    assert mst_weight(prim_mst(g, root=0)) == pytest.approx(expected)
    assert mst_weight(boruvka_mst(g)) == pytest.approx(expected)
    assert len(k_edges) == len(g) - 1


def test_disconnected_graph_gives_forest():
    g = Graph()
    g.add_edge(0, 1, 1.0)
    g.add_edge(2, 3, 2.0)
    edges, _ = kruskal_mst(g)
    assert len(edges) == 2
    assert mst_weight(edges) == 3.0
    # Prim spans only the root's component.
    assert len(prim_mst(g, root=0)) == 1


def test_empty_and_singleton():
    assert prim_mst(Graph()) == []
    g = Graph()
    g.add_node("only")
    assert prim_mst(g) == []
    edges, _ = kruskal_mst(g)
    assert edges == []


class TestMergeTrace:
    def test_trace_reconstructs_weight_and_partitions(self):
        g = random_connected_graph(12, rng=7)
        edges, events = kruskal_mst(g, trace=True)
        assert len(events) == len(edges)
        # Times non-decreasing, components disjoint pre-merge.
        times = [e.weight for e in events]
        assert times == sorted(times)
        for ev in events:
            assert not (ev.component_u & ev.component_v)
            assert ev.u in ev.component_u and ev.v in ev.component_v
        # Total weight equals the integral of (#components - 1):
        # each merge at time t contributes t to sum of weights.
        assert mst_weight(edges) == pytest.approx(sum(times))

    def test_trace_component_sizes_telescope(self):
        g = random_connected_graph(10, rng=3)
        _, events = kruskal_mst(g, trace=True)
        total = 10
        seen = 0
        for ev in events:
            seen += 1
        assert seen == total - 1  # n-1 merges to a single component


class TestKruskalComplete:
    def test_matches_explicit_graph(self):
        rng = as_rng(5)
        pts = list(range(6))
        w = {(i, j): float(rng.uniform(1, 10)) for i in pts for j in pts if i < j}

        def weight(u, v):
            return w[(u, v)] if u < v else w[(v, u)]

        tree, _ = kruskal_complete(pts, weight)
        g = Graph()
        for i in pts:
            for j in pts:
                if i < j:
                    g.add_edge(i, j, weight(i, j))
        expected, _ = kruskal_mst(g)
        assert mst_weight(tree) == pytest.approx(mst_weight(expected))
        assert len(tree) == 5
