"""Tests for repro.mechanism.base."""

import pytest

from repro.mechanism.base import CostSharingMechanism, MechanismResult, with_report


class TestMechanismResult:
    def test_share_defaults_zero_for_nonreceivers(self):
        r = MechanismResult(receivers=frozenset({1}), shares={1: 2.0}, cost=2.0)
        assert r.share(1) == 2.0 and r.share(2) == 0.0
        assert r.total_charged() == 2.0

    def test_shares_must_be_receivers(self):
        with pytest.raises(ValueError):
            MechanismResult(receivers=frozenset({1}), shares={2: 1.0}, cost=1.0)

    def test_welfare(self):
        r = MechanismResult(receivers=frozenset({1, 2}), shares={1: 1.0, 2: 3.0}, cost=4.0)
        u = {1: 5.0, 2: 2.0, 3: 9.0}
        w = r.welfare(u)
        assert w == {1: 4.0, 2: -1.0, 3: 0.0}

    def test_net_worth_uses_built_cost(self):
        r = MechanismResult(receivers=frozenset({1}), shares={1: 1.0}, cost=4.0)
        assert r.net_worth({1: 10.0}) == 6.0


class _Fixed(CostSharingMechanism):
    def __init__(self):
        self.agents = [1, 2]

    def run(self, profile):
        u = self.validate_profile(profile)
        return MechanismResult(receivers=frozenset(u), shares={a: 0.0 for a in u}, cost=0.0)


class TestValidateProfile:
    def test_missing_agent(self):
        with pytest.raises(ValueError):
            _Fixed().run({1: 1.0})

    def test_negative_utility(self):
        with pytest.raises(ValueError):
            _Fixed().run({1: 1.0, 2: -0.5})

    def test_stray_agents_rejected(self):
        # Regression: reports for unknown agents used to be silently
        # dropped; they must be rejected like missing agents are.
        with pytest.raises(ValueError, match=r"unknown agents: \[98, 99\]"):
            _Fixed().run({1: 1.0, 2: 2.0, 99: 5.0, 98: 1.0})


def test_with_report_copies():
    base = {1: 1.0, 2: 2.0}
    modified = with_report(base, 1, 9.0)
    assert modified[1] == 9.0 and base[1] == 1.0
