"""The wire protocol's parsing and payload contracts, pinned.

These are compatibility guarantees clients build on: the resolved epoch
and group are echoed in every run payload (a missing wire epoch resolves
to 0 — trace replays attribute rows by the echo, never by re-deriving
the server's resolution rules), scenario dispatch picks the right spec
class from the embedded fields, and multi-group requests validate their
``group`` up front with a 400, not a 500."""

from __future__ import annotations

import json

import pytest

from repro.api import MulticastSession, ScenarioSpec
from repro.dynamic import ChurnSpec, DynamicScenarioSpec
from repro.service.fleet import scenario_route_key
from repro.service.protocol import (
    ProtocolError,
    parse_run_request,
    run_payload,
)
from repro.traces import generate_trace
from repro.traces.spec import MultiGroupScenarioSpec, TraceScenarioSpec

STATIC = ScenarioSpec(kind="random", n=6, alpha=2.0, seed=0)
DYNAMIC = DynamicScenarioSpec(kind="random", n=6, alpha=2.0, seed=0,
                              churn=ChurnSpec(epochs=3, seed=1,
                                              join_rate=0.3, leave_rate=0.3))
MULTI = generate_trace(n=6, groups=2, epochs=3, seed=0).to_spec()

PROFILE = {str(a): 2.0 for a in STATIC.agents()}


def body(scenario, **extra) -> dict:
    return {"scenario": scenario.to_dict(), "mechanism": "tree-shapley",
            "profiles": [PROFILE], **extra}


class TestScenarioDispatch:
    def test_embedded_fields_pick_the_spec_class(self):
        assert type(parse_run_request(body(STATIC)).scenario) is ScenarioSpec
        assert isinstance(parse_run_request(
            body(DYNAMIC, epoch=0)).scenario, DynamicScenarioSpec)
        assert isinstance(parse_run_request(
            body(MULTI, group="g0")).scenario, MultiGroupScenarioSpec)
        assert isinstance(parse_run_request(
            body(MULTI.group_spec("g0"), epoch=0)).scenario,
            TraceScenarioSpec)


class TestGroupValidation:
    def test_multigroup_requires_a_group(self):
        with pytest.raises(ProtocolError, match="require 'group'") as err:
            parse_run_request(body(MULTI))
        assert err.value.status == 400
        assert "g0" in err.value.message  # the 400 lists the options

    def test_unknown_or_nonstring_group_is_a_400(self):
        with pytest.raises(ProtocolError, match="unknown group"):
            parse_run_request(body(MULTI, group="g9"))
        with pytest.raises(ProtocolError, match="must be a string"):
            parse_run_request(body(MULTI, group=0))

    def test_group_on_non_multigroup_scenarios_is_a_400(self):
        with pytest.raises(ProtocolError, match="only applies to multi-group"):
            parse_run_request(body(STATIC, group="g0"))
        with pytest.raises(ProtocolError, match="only applies to multi-group"):
            parse_run_request(body(DYNAMIC, group="g0", epoch=0))

    def test_epoch_resolves_and_range_checks_on_multigroup(self):
        assert parse_run_request(body(MULTI, group="g0")).epoch == 0
        assert parse_run_request(body(MULTI, group="g0", epoch=2)).epoch == 2
        with pytest.raises(ProtocolError, match="out of range"):
            parse_run_request(body(MULTI, group="g0", epoch=3))
        with pytest.raises(ProtocolError, match="must be an integer"):
            parse_run_request(body(MULTI, group="g0", epoch=True))


class TestEchoes:
    def run_results(self):
        session = MulticastSession(STATIC)
        return session.run_batch("tree-shapley",
                                 [{int(a): v for a, v in PROFILE.items()}])

    def test_static_payload_carries_no_epoch_or_group(self):
        request = parse_run_request(body(STATIC))
        payload = run_payload(request, self.run_results())
        assert "epoch" not in payload and "group" not in payload

    def test_dynamic_payload_echoes_the_resolved_epoch(self):
        # The wire body omitted "epoch"; the echo is the *resolved* 0.
        request = parse_run_request(body(DYNAMIC))
        payload = run_payload(request, self.run_results())
        assert payload["epoch"] == 0
        request = parse_run_request(body(DYNAMIC, epoch=2))
        assert run_payload(request, self.run_results())["epoch"] == 2

    def test_multigroup_payload_echoes_group_and_resolved_epoch(self):
        request = parse_run_request(body(MULTI, group="g1"))
        payload = run_payload(request, self.run_results())
        assert payload["group"] == "g1"
        assert payload["epoch"] == 0


class TestRouteKey:
    def test_group_extends_the_store_key(self):
        plain = parse_run_request(body(STATIC))
        assert plain.route_key == plain.key
        grouped = parse_run_request(body(MULTI, group="g1"))
        assert grouped.route_key == f"{grouped.key}|group=g1"
        other = parse_run_request(body(MULTI, group="g0"))
        assert grouped.key == other.key          # one store entry...
        assert grouped.route_key != other.route_key  # ...two fleet routes

    def test_fleet_router_derives_the_same_key_without_parsing(self):
        # The router must agree with RunRequest.route_key byte-for-byte,
        # otherwise a group would pin to the wrong shard's warm session.
        request = parse_run_request(body(MULTI, group="g1"))
        raw = json.dumps(body(MULTI, group="g1")).encode("utf-8")
        assert scenario_route_key(raw) == request.route_key
        plain = parse_run_request(body(STATIC))
        assert scenario_route_key(
            json.dumps(body(STATIC)).encode("utf-8")) == plain.key
