"""Tests for repro.mechanism.properties — the auditors must catch planted
violations and stay quiet on well-behaved mechanisms."""

import pytest

from repro.mechanism.base import CostSharingMechanism, MechanismResult
from repro.mechanism.properties import (
    audit_basic_axioms,
    bb_factor,
    candidate_misreports,
    check_cs,
    check_npt,
    check_vp,
    efficiency_gap,
    find_group_deviation,
    find_unilateral_deviation,
)


class FixedPrice(CostSharingMechanism):
    """Serve anyone reporting >= price; charge exactly price.  This is
    strategyproof (posted price) — a clean baseline for the auditors."""

    def __init__(self, price=2.0, agents=(1, 2, 3)):
        self.price = price
        self.agents = list(agents)

    def run(self, profile):
        u = self.validate_profile(profile)
        R = frozenset(i for i in self.agents if u[i] >= self.price)
        return MechanismResult(
            receivers=R,
            shares={i: self.price for i in R},
            cost=self.price * len(R),
        )


class FirstPrice(CostSharingMechanism):
    """Pathological: charges each receiver its own report (classic
    manipulable first-price rule)."""

    def __init__(self, agents=(1, 2)):
        self.agents = list(agents)

    def run(self, profile):
        u = self.validate_profile(profile)
        R = frozenset(i for i in self.agents if u[i] > 0.5)
        return MechanismResult(receivers=R, shares={i: u[i] for i in R},
                               cost=0.5 * len(R))


class Overcharger(CostSharingMechanism):
    """Violates VP: charges double the report."""

    def __init__(self, agents=(1,)):
        self.agents = list(agents)

    def run(self, profile):
        u = self.validate_profile(profile)
        R = frozenset(self.agents)
        return MechanismResult(receivers=R, shares={i: 2 * u[i] for i in R}, cost=0.0)


class TestStaticAxioms:
    def test_npt_and_vp_pass_on_posted_price(self):
        result = FixedPrice().run({1: 3.0, 2: 1.0, 3: 5.0})
        assert check_npt(result)
        assert check_vp(result, {1: 3.0, 2: 1.0, 3: 5.0})
        assert result.receivers == frozenset({1, 3})

    def test_vp_fails_on_overcharger(self):
        profile = {1: 2.0}
        assert not check_vp(Overcharger().run(profile), profile)

    def test_bb_factor(self):
        result = FixedPrice(price=3.0).run({1: 5.0, 2: 0.0, 3: 0.0})
        assert bb_factor(result, 1.5) == pytest.approx(2.0)
        assert bb_factor(result, 0.0) == float("inf")
        empty = FixedPrice(price=3.0).run({1: 0.0, 2: 0.0, 3: 0.0})
        assert bb_factor(empty, 0.0) == 1.0

    def test_cs(self):
        assert check_cs(FixedPrice(), {1: 0.0, 2: 0.0, 3: 0.0}, 1)

    def test_audit_report_shape(self):
        report = audit_basic_axioms(FixedPrice(), {1: 3.0, 2: 0.0, 3: 3.0},
                                    optimal_cost=4.0, check_consumer_sovereignty=True)
        assert report["npt"] and report["vp"] and report["cs"]
        assert report["bb_factor"] == pytest.approx(1.0)
        assert report["receivers"] == [1, 3]


class TestDeviationSearch:
    def test_posted_price_is_strategyproof(self):
        assert find_unilateral_deviation(FixedPrice(), {1: 3.0, 2: 1.0, 3: 2.5}) is None

    def test_first_price_manipulable(self):
        deviation = find_unilateral_deviation(FirstPrice(), {1: 4.0, 2: 3.0})
        assert deviation is not None
        (i,) = deviation.coalition
        assert deviation.reports[i] < {1: 4.0, 2: 3.0}[i]
        assert deviation.gain > 0

    def test_group_search_finds_nothing_on_posted_price(self):
        assert find_group_deviation(FixedPrice(), {1: 3.0, 2: 1.0, 3: 2.5},
                                    max_coalition_size=2, rng=0) is None

    def test_group_search_catches_first_price(self):
        deviation = find_group_deviation(FirstPrice(), {1: 4.0, 2: 3.0},
                                         max_coalition_size=1, rng=0)
        assert deviation is not None

    def test_candidate_misreports_exclude_truth(self):
        grid = candidate_misreports(2.0, {1: 2.0, 2: 3.0})
        assert 2.0 not in grid
        assert 0.0 in grid and all(v >= 0 for v in grid)


class TestEfficiencyGap:
    def test_zero_for_optimal(self):
        result = MechanismResult(receivers=frozenset({1}), shares={1: 1.0}, cost=1.0)
        assert efficiency_gap(result, {1: 5.0}, optimal_net_worth=4.0) == pytest.approx(0.0)

    def test_positive_for_suboptimal(self):
        result = MechanismResult(receivers=frozenset(), shares={}, cost=0.0)
        assert efficiency_gap(result, {1: 5.0}, optimal_net_worth=4.0) == pytest.approx(4.0)
