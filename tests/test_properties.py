"""Tests for repro.mechanism.properties — the auditors must catch planted
violations and stay quiet on well-behaved mechanisms."""

import pytest

from repro.mechanism.base import CostSharingMechanism, MechanismResult
from repro.mechanism.properties import (
    audit_basic_axioms,
    bb_factor,
    candidate_misreports,
    check_cs,
    check_npt,
    check_vp,
    efficiency_gap,
    find_group_deviation,
    find_unilateral_deviation,
)


class FixedPrice(CostSharingMechanism):
    """Serve anyone reporting >= price; charge exactly price.  This is
    strategyproof (posted price) — a clean baseline for the auditors."""

    def __init__(self, price=2.0, agents=(1, 2, 3)):
        self.price = price
        self.agents = list(agents)

    def run(self, profile):
        u = self.validate_profile(profile)
        R = frozenset(i for i in self.agents if u[i] >= self.price)
        return MechanismResult(
            receivers=R,
            shares={i: self.price for i in R},
            cost=self.price * len(R),
        )


class FirstPrice(CostSharingMechanism):
    """Pathological: charges each receiver its own report (classic
    manipulable first-price rule)."""

    def __init__(self, agents=(1, 2)):
        self.agents = list(agents)

    def run(self, profile):
        u = self.validate_profile(profile)
        R = frozenset(i for i in self.agents if u[i] > 0.5)
        return MechanismResult(receivers=R, shares={i: u[i] for i in R},
                               cost=0.5 * len(R))


class Overcharger(CostSharingMechanism):
    """Violates VP: charges double the report."""

    def __init__(self, agents=(1,)):
        self.agents = list(agents)

    def run(self, profile):
        u = self.validate_profile(profile)
        R = frozenset(self.agents)
        return MechanismResult(receivers=R, shares={i: 2 * u[i] for i in R}, cost=0.0)


class TestStaticAxioms:
    def test_npt_and_vp_pass_on_posted_price(self):
        result = FixedPrice().run({1: 3.0, 2: 1.0, 3: 5.0})
        assert check_npt(result)
        assert check_vp(result, {1: 3.0, 2: 1.0, 3: 5.0})
        assert result.receivers == frozenset({1, 3})

    def test_vp_fails_on_overcharger(self):
        profile = {1: 2.0}
        assert not check_vp(Overcharger().run(profile), profile)

    def test_bb_factor(self):
        result = FixedPrice(price=3.0).run({1: 5.0, 2: 0.0, 3: 0.0})
        assert bb_factor(result, 1.5) == pytest.approx(2.0)
        assert bb_factor(result, 0.0) == float("inf")
        empty = FixedPrice(price=3.0).run({1: 0.0, 2: 0.0, 3: 0.0})
        assert bb_factor(empty, 0.0) == 1.0

    def test_cs(self):
        assert check_cs(FixedPrice(), {1: 0.0, 2: 0.0, 3: 0.0}, 1)

    def test_audit_report_shape(self):
        report = audit_basic_axioms(FixedPrice(), {1: 3.0, 2: 0.0, 3: 3.0},
                                    optimal_cost=4.0, check_consumer_sovereignty=True)
        assert report["npt"] and report["vp"] and report["cs"]
        assert report["bb_factor"] == pytest.approx(1.0)
        assert report["receivers"] == [1, 3]


class TestDeviationSearch:
    def test_posted_price_is_strategyproof(self):
        assert find_unilateral_deviation(FixedPrice(), {1: 3.0, 2: 1.0, 3: 2.5}) is None

    def test_first_price_manipulable(self):
        deviation = find_unilateral_deviation(FirstPrice(), {1: 4.0, 2: 3.0})
        assert deviation is not None
        (i,) = deviation.coalition
        assert deviation.reports[i] < {1: 4.0, 2: 3.0}[i]
        assert deviation.gain > 0

    def test_group_search_finds_nothing_on_posted_price(self):
        assert find_group_deviation(FixedPrice(), {1: 3.0, 2: 1.0, 3: 2.5},
                                    max_coalition_size=2, rng=0) is None

    def test_group_search_catches_first_price(self):
        deviation = find_group_deviation(FirstPrice(), {1: 4.0, 2: 3.0},
                                         max_coalition_size=1, rng=0)
        assert deviation is not None

    def test_candidate_misreports_exclude_truth(self):
        grid = candidate_misreports(2.0, {1: 2.0, 2: 3.0})
        assert 2.0 not in grid
        assert 0.0 in grid and all(v >= 0 for v in grid)


class NoisyPostedPrice(CostSharingMechanism):
    """A strategyproof posted-price rule whose shares carry deterministic
    float noise proportional to the price scale — the summation-order
    jitter a large-n mechanism legitimately exhibits.  The noise depends
    on the *reported profile* (like accumulated rounding does), so an
    absolute tolerance would misread it as a profitable deviation."""

    def __init__(self, price, agents, noise=1e-9):
        self.price = price
        self.agents = list(agents)
        self.noise = noise * max(1.0, price)

    def run(self, profile):
        u = self.validate_profile(profile)
        R = frozenset(i for i in self.agents if u[i] >= self.price)
        jitter = 1.0 if (sum(u.values()) * 1e6) % 2 < 1 else -1.0
        return MechanismResult(
            receivers=R,
            shares={i: self.price + jitter * self.noise for i in R},
            cost=self.price * len(R),
        )


class TestToleranceContract:
    """The relative-tolerance contract: float noise at large utility
    scales is never reported as a deviation, genuine gains still are."""

    def test_float_noise_not_flagged_at_large_scale(self):
        # Utilities ~1e6: noise of 1e-9 * scale = 1e-3 in absolute terms,
        # far above the old absolute tol=1e-6 but far below the relative
        # floor tol * max(1, |u_i|) = 1.0.
        price = 1e6
        agents = list(range(1, 31))
        mech = NoisyPostedPrice(price, agents)
        profile = {i: price * (1.0 + 0.001 * i) for i in agents}
        assert find_unilateral_deviation(mech, profile) is None
        assert find_group_deviation(mech, profile, max_coalition_size=2,
                                    n_samples_per_coalition=10, rng=0) is None

    def test_real_gains_still_found_at_large_scale(self):
        # First-price manipulation gains scale with the utilities, so the
        # relative floor must not hide them.
        agents = (1, 2)
        mech = FirstPrice(agents)
        profile = {1: 4e6, 2: 3e6}
        deviation = find_unilateral_deviation(mech, profile)
        assert deviation is not None
        assert deviation.gain > 1.0

    def test_small_scale_behaviour_unchanged(self):
        assert find_unilateral_deviation(FixedPrice(), {1: 3.0, 2: 1.0, 3: 2.5}) is None
        assert find_unilateral_deviation(FirstPrice(), {1: 4.0, 2: 3.0}) is not None

    def test_misreport_grid_dedupes_relatively(self):
        # At truth 1e12, 0.99 * truth is a genuine probe but truth + 1e-3
        # (an "others' utility" perturbation of the truth itself) is the
        # truth re-rounded at float precision; it must not survive.
        grid = candidate_misreports(1e12, {1: 1e12, 2: 1e12 + 1e-3})
        assert all(abs(v - 1e12) > 1e-12 * 1e12 or v < 1e12 * 0.5 for v in grid)
        assert any(v == pytest.approx(0.99e12) for v in grid)

    def test_audit_accepts_precomputed_result(self):
        mech = FixedPrice()
        profile = {1: 3.0, 2: 1.0, 3: 2.5}
        result = mech.run(profile)

        class Exploding(FixedPrice):
            def run(self, profile):  # pragma: no cover - must not be called
                raise AssertionError("audit re-ran the mechanism")

        report = audit_basic_axioms(Exploding(), profile, result=result)
        assert report["npt"] and report["vp"] and report["cost_recovery"]


class TestEfficiencyGap:
    def test_zero_for_optimal(self):
        result = MechanismResult(receivers=frozenset({1}), shares={1: 1.0}, cost=1.0)
        assert efficiency_gap(result, {1: 5.0}, optimal_net_worth=4.0) == pytest.approx(0.0)

    def test_positive_for_suboptimal(self):
        result = MechanismResult(receivers=frozenset(), shares={}, cost=0.0)
        assert efficiency_gap(result, {1: 5.0}, optimal_net_worth=4.0) == pytest.approx(4.0)
