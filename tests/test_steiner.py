"""Tests for repro.graphs.steiner: closure, KMB, Dreyfus-Wagner."""

import networkx as nx
import pytest

from repro.graphs.adjacency import Graph
from repro.graphs.random_graphs import as_rng, random_connected_graph
from repro.graphs.steiner import (
    dreyfus_wagner,
    kmb_steiner_tree,
    metric_closure,
    steiner_costs_all_subsets,
)
from repro.graphs.traversal import is_connected


def to_nx(g: Graph) -> nx.Graph:
    h = nx.Graph()
    h.add_nodes_from(g.nodes())
    for u, v, w in g.edges():
        h.add_edge(u, v, weight=w)
    return h


class TestMetricClosure:
    def test_matches_networkx(self):
        g = random_connected_graph(10, rng=0)
        terminals = [0, 3, 7]
        closure = metric_closure(g, terminals)
        h = to_nx(g)
        for t in terminals:
            lengths = nx.single_source_dijkstra_path_length(h, t)
            for o in terminals:
                if o != t:
                    assert closure.dist(t, o) == pytest.approx(lengths[o])
        assert closure.dist(0, 0) == 0.0

    def test_paths_are_real_paths(self):
        g = random_connected_graph(10, rng=1)
        closure = metric_closure(g, [0, 5])
        path = closure.path[(0, 5)]
        assert path[0] == 0 and path[-1] == 5
        total = sum(g.weight(a, b) for a, b in zip(path, path[1:]))
        assert total == pytest.approx(closure.dist(0, 5))

    def test_disconnected_raises(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_node(9)
        with pytest.raises(ValueError):
            metric_closure(g, [0, 9])


class TestKMB:
    def test_known_instance(self):
        # Star where the hub shortcut beats direct terminal connections.
        g = Graph()
        for t in (1, 2, 3):
            g.add_edge(0, t, 1.0)
            g.add_edge(t, t + 10, 5.0)  # decoys
        tree = kmb_steiner_tree(g, [1, 2, 3])
        assert tree.cost == pytest.approx(3.0)
        assert 0 in tree.nodes  # uses the Steiner hub

    @pytest.mark.parametrize("seed", range(6))
    def test_within_2x_of_exact_and_connected(self, seed):
        rng = as_rng(seed)
        g = random_connected_graph(12, rng)
        terminals = sorted(int(t) for t in rng.choice(12, size=4, replace=False))
        tree = kmb_steiner_tree(g, terminals)
        opt = dreyfus_wagner(g, terminals)
        assert opt - 1e-9 <= tree.cost <= 2 * opt + 1e-9
        sub = tree.as_graph()
        assert is_connected(sub)
        assert set(terminals) <= set(sub.nodes())
        # Non-terminal leaves pruned.
        for node in sub.nodes():
            if node not in terminals:
                assert sub.degree(node) >= 2

    def test_trivial_terminal_sets(self):
        g = random_connected_graph(5, rng=0)
        assert kmb_steiner_tree(g, []).cost == 0.0
        assert kmb_steiner_tree(g, [2]).cost == 0.0


class TestDreyfusWagner:
    def test_two_terminals_is_shortest_path(self):
        g = random_connected_graph(10, rng=4)
        import repro.graphs.shortest_paths as sp

        d = sp.dijkstra(g, 0)[0][6]
        assert dreyfus_wagner(g, [0, 6]) == pytest.approx(d)

    def test_exact_on_known_grid(self):
        # 2x3 unit grid; terminals at the corners of one long side.
        g = Graph()
        coords = {(r, c): r * 3 + c for r in range(2) for c in range(3)}
        for (r, c), i in coords.items():
            if c + 1 < 3:
                g.add_edge(i, coords[(r, c + 1)], 1.0)
            if r + 1 < 2:
                g.add_edge(i, coords[(r + 1, c)], 1.0)
        terminals = [coords[(0, 0)], coords[(0, 2)], coords[(1, 1)]]
        assert dreyfus_wagner(g, terminals) == pytest.approx(3.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_networkx_steiner_lower_bound(self, seed):
        """DW must lower-bound the networkx 2-approx and be >= closure-MST/2."""
        rng = as_rng(seed)
        g = random_connected_graph(11, rng)
        terminals = sorted(int(t) for t in rng.choice(11, size=4, replace=False))
        opt = dreyfus_wagner(g, terminals)
        approx = nx.algorithms.approximation.steiner_tree(
            to_nx(g), terminals, weight="weight"
        ).size(weight="weight")
        assert opt <= approx + 1e-9
        assert approx <= 2 * opt + 1e-9


class TestAllSubsets:
    def test_matches_individual_runs(self):
        rng = as_rng(9)
        g = random_connected_graph(10, rng)
        terminals = [1, 4, 7]
        root = 0
        table = steiner_costs_all_subsets(g, terminals, root)
        assert table[frozenset()] == 0.0
        import itertools

        for r in range(1, 4):
            for Q in itertools.combinations(terminals, r):
                expected = dreyfus_wagner(g, [root, *Q])
                assert table[frozenset(Q)] == pytest.approx(expected)

    def test_monotone_in_subsets(self):
        g = random_connected_graph(9, rng=2)
        table = steiner_costs_all_subsets(g, [1, 2, 3], 0)
        for Q, cost in table.items():
            for R, cost_r in table.items():
                if Q <= R:
                    assert cost <= cost_r + 1e-9

    def test_root_must_not_be_terminal(self):
        g = random_connected_graph(5, rng=0)
        with pytest.raises(ValueError):
            steiner_costs_all_subsets(g, [0, 1], 0)
