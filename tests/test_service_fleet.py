"""The sharded fleet (repro.service.fleet), end to end.

The load-bearing property is **bit-identity**: a client cannot tell the
consistent-hash router from a single-process service — same bytes for
priced runs, split-and-merged batches, and every error path.  These
tests drive it with in-process workers (real ``CostSharingService``
instances behind real sockets via ``BackgroundServer``, wired into a
``FleetRouter`` as ``FleetWorker``s without subprocesses) so the full
wire path runs in milliseconds; one test boots the real
``python -m repro fleet`` subprocess tree — the exact shape the CI
fleet-smoke job uses.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import pathlib
import re
import subprocess
import sys
import threading
import time
from contextlib import contextmanager

import pytest

from repro.api import ScenarioSpec
from repro.observability import parse_exposition, sample_total
from repro.service import BackgroundServer, CostSharingService
from repro.service.fleet import FleetRouter, FleetWorker, WorkerClient, scenario_route_key
from repro.service.loadgen import build_keyed_requests, build_requests, run_loadgen

REPO_SRC = pathlib.Path(__file__).resolve().parents[1] / "src"


def run(coro):
    return asyncio.run(coro)


def wire_bytes(payload) -> bytes:
    """Serialize a dispatch payload exactly as ServiceServer._respond
    would put it on the wire."""
    if isinstance(payload, str):
        return payload.encode("utf-8")
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


@contextmanager
def fleet_router(n_workers: int = 2, **service_kwargs):
    """A FleetRouter over ``n_workers`` in-process services, each behind
    a real socket; yields (router, backing services)."""
    service_kwargs.setdefault("batch_window", 0.0)
    service_kwargs.setdefault("cache_size", 8)
    servers, services = [], []
    router = FleetRouter()
    try:
        for index in range(n_workers):
            shard = f"w{index}"
            service = CostSharingService(shard=shard, **service_kwargs)
            server = BackgroundServer(service)
            port = server.start()
            servers.append(server)
            services.append(service)
            router.attach(FleetWorker(shard, WorkerClient("127.0.0.1", port)))
        yield router, services
    finally:
        for server in servers:
            server.stop()


def _bodies(count: int = 10, n: int = 6) -> list[bytes]:
    schedule = build_requests(requests=count, n=n, alpha=2.0, side=10.0,
                              seeds=[0, 1], layouts=["uniform"],
                              mechanisms=["tree-shapley", "jv"],
                              profile_count=1)
    return [json.dumps(request, sort_keys=True).encode("utf-8")
            for request in schedule]


# -- bit-identity ------------------------------------------------------------
def test_run_responses_are_bit_identical_through_the_router():
    single = CostSharingService(batch_window=0.0, cache_size=8)
    with fleet_router(3) as (router, _):

        async def scenario():
            for body in _bodies(12):
                expected = await single.dispatch("POST", "/v1/run", body)
                actual = await router.dispatch("POST", "/v1/run", body)
                assert actual[0] == expected[0] == 200
                assert wire_bytes(actual[1]) == wire_bytes(expected[1])
                assert actual[2]["X-Repro-Shard"].startswith("w")

        run(scenario())


def test_batch_splits_across_shards_and_merges_bit_identically():
    single = CostSharingService(batch_window=0.0, cache_size=16)
    with fleet_router(3) as (router, services):
        schedule = build_requests(requests=9, n=6, alpha=2.0, side=10.0,
                                  seeds=[0, 1, 2], layouts=["uniform", "ring"],
                                  mechanisms=["tree-shapley"], profile_count=1)
        body = json.dumps({"requests": schedule},
                          sort_keys=True).encode("utf-8")

        async def scenario():
            expected = await single.dispatch("POST", "/v1/batch", body)
            actual = await router.dispatch("POST", "/v1/batch", body)
            assert actual[0] == expected[0] == 200
            assert wire_bytes(actual[1]) == wire_bytes(expected[1])
            return actual[2]["X-Repro-Shard"]

        shards = run(scenario())
        # Six distinct scenarios over three shards: the batch really
        # split (multiple shards answered) and really merged (above).
        assert len(shards.split(",")) >= 2
        touched = [s for s in services if s.store.stats()["lookups"] > 0]
        assert len(touched) >= 2


def test_error_paths_are_bit_identical_through_the_router():
    single = CostSharingService(batch_window=0.0, cache_size=8)
    cases = [
        ("POST", "/v1/run", b"{not json"),
        ("POST", "/v1/run", b'{"scenario": 3}'),
        ("POST", "/v1/run", b'{"scenario": {"kind": "bogus"}}'),
        ("GET", "/v1/run", b""),                  # 405 + Allow header
        ("GET", "/totally/unknown", b""),         # 404
        ("POST", "/v1/batch", b'{"requests": "nope"}'),
        ("POST", "/v1/batch", b'{"requests": [{"scenario": 1}]}'),
    ]
    with fleet_router(2) as (router, _):

        async def scenario():
            for method, path, body in cases:
                expected = await single.dispatch(method, path, body)
                actual = await router.dispatch(method, path, body)
                assert actual[0] == expected[0], (method, path)
                assert wire_bytes(actual[1]) == wire_bytes(expected[1]), \
                    (method, path)
                if "Allow" in expected[2]:
                    assert actual[2]["Allow"] == expected[2]["Allow"]

        run(scenario())


def test_oversized_batch_rejected_with_413_parity():
    single = CostSharingService(batch_window=0.0, max_batch_requests=4)
    request = _bodies(1)[0]
    body = json.dumps({"requests": [json.loads(request)] * 5},
                      sort_keys=True).encode("utf-8")
    with fleet_router(2) as (router, _):
        router.max_batch_requests = 4

        async def scenario():
            expected = await single.dispatch("POST", "/v1/batch", body)
            actual = await router.dispatch("POST", "/v1/batch", body)
            assert actual[0] == expected[0] == 413
            assert wire_bytes(actual[1]) == wire_bytes(expected[1])

        run(scenario())


# -- routing -----------------------------------------------------------------
def test_scenario_route_key_matches_the_store_key_for_canonical_clients():
    spec = ScenarioSpec.from_random(n=6, alpha=2.0, seed=3)
    body = json.dumps({"scenario": spec.to_dict(), "mechanism": "jv",
                       "profiles": [{}]}, sort_keys=True).encode("utf-8")
    assert scenario_route_key(body) == spec.to_json()
    # Undecodable bodies still route deterministically.
    assert scenario_route_key(b"junk") == scenario_route_key(b"junk")
    assert scenario_route_key(b"junk") != scenario_route_key(b"junk2")


def test_same_scenario_always_lands_on_the_same_shard():
    with fleet_router(3) as (router, services):
        body = _bodies(1)[0]

        async def scenario():
            shards = set()
            for _ in range(6):
                status, _, headers = await router.dispatch(
                    "POST", "/v1/run", body)
                assert status == 200
                shards.add(headers["X-Repro-Shard"])
            return shards

        shards = run(scenario())
        assert len(shards) == 1  # warm affinity: one shard owns the key
        owner = [s for s in services if s.store.stats()["lookups"] > 0]
        assert len(owner) == 1
        assert owner[0].store.stats()["hits"] == 5  # warm after the first


def test_router_health_and_empty_ring_503():
    with fleet_router(2) as (router, _):

        async def scenario():
            status, payload, _ = await router.dispatch("GET", "/v1/healthz")
            assert status == 200 and payload["fleet"]["workers"] == 2
            assert payload["fleet"]["shards"] == ["w0", "w1"]

        run(scenario())

    empty = FleetRouter()

    async def no_workers():
        status, payload, headers = await empty.dispatch(
            "POST", "/v1/run", b"{}")
        assert status == 503
        assert "no live workers" in payload["error"]
        assert headers["Retry-After"] == "1"

    run(no_workers())


def test_unreachable_shard_answers_503():
    router = FleetRouter()
    # A worker whose socket nothing listens on.
    dead = BackgroundServer(CostSharingService(batch_window=0.0))
    port = dead.start()
    dead.stop()
    router.attach(FleetWorker("w0", WorkerClient("127.0.0.1", port)))

    async def scenario():
        status, payload, _ = await router.dispatch(
            "POST", "/v1/run", _bodies(1)[0])
        assert status == 503
        assert "unreachable" in payload["error"]

    run(scenario())


# -- aggregation -------------------------------------------------------------
def test_stats_and_metrics_aggregate_across_shards():
    with fleet_router(3) as (router, services):

        async def scenario():
            for body in _bodies(12):
                status, _, _ = await router.dispatch("POST", "/v1/run", body)
                assert status == 200
            stats = (await router.dispatch("GET", "/v1/stats"))[1]
            metrics = (await router.dispatch("GET", "/metrics"))[1]
            return stats, metrics

        stats, metrics = run(scenario())
        assert set(stats["shards"]) == {"w0", "w1", "w2"}
        # The aggregated store block is the exact sum of the shards'.
        for key in ("lookups", "hits", "misses"):
            assert stats["store"][key] == sum(
                shard["store"][key] for shard in stats["shards"].values())
        assert stats["store"]["lookups"] == 12
        # 12 runs + the /v1/stats request itself.
        assert stats["fleet"]["router"]["requests"] == 13
        assert stats["http"]["responses"].get("200", 0) >= 12
        # The merged exposition carries per-shard labels, sums to the
        # fleet-wide totals, and still parses as one document.
        parsed = parse_exposition(metrics)
        assert sample_total(parsed, "repro_store_lookups_total") == 12
        for shard in ("w0", "w1", "w2"):
            assert sample_total(parsed, "repro_http_requests_total",
                                {"shard": shard}) > 0
        # ... and the /metrics scrape makes 14 by the time it renders.
        assert sample_total(parsed, "repro_router_requests_total",
                            {"shard": "router"}) == 14
        assert metrics.count("# HELP repro_store_lookups_total") == 1


# -- resize ------------------------------------------------------------------
def test_drain_is_graceful_404_on_unknown_and_409_on_last():
    with fleet_router(2) as (router, _):

        async def scenario():
            status, payload, _ = await router.dispatch(
                "POST", "/v1/fleet/drain", b'{"shard": "nope"}')
            assert status == 404 and "no such shard" in payload["error"]
            status, payload, _ = await router.dispatch(
                "POST", "/v1/fleet/drain", b'{"shard": "w1"}')
            assert status == 200 and payload["drained"] == "w1"
            status, payload, _ = await router.dispatch(
                "POST", "/v1/fleet/drain", b'{"shard": "w0"}')
            assert status == 409 and "last live shard" in payload["error"]
            status, payload, _ = await router.dispatch(
                "POST", "/v1/fleet/drain", b"{}")
            assert status == 400
            # Requests keep landing on the survivor.
            status, _, headers = await router.dispatch(
                "POST", "/v1/run", _bodies(1)[0])
            assert status == 200 and headers["X-Repro-Shard"] == "w0"

        run(scenario())


def test_drain_under_load_loses_zero_requests():
    """The fleet-smoke property: removing a shard mid-burst reroutes its
    keys without a single failed request."""
    with fleet_router(3) as (router, _):
        server = BackgroundServer(router)
        port = server.start()
        try:
            statuses: list[int] = []
            lock = threading.Lock()
            bodies = []
            schedule = build_keyed_requests(
                requests=48, keys=8, zipf=1.1, n=6, alpha=2.0, side=10.0,
                layouts=["uniform"], mechanisms=["tree-shapley"],
                profile_count=1)
            for request in schedule:
                bodies.append(json.dumps(request, sort_keys=True)
                              .encode("utf-8"))

            def client(worker_bodies):
                connection = http.client.HTTPConnection(
                    "127.0.0.1", port, timeout=60)
                for body in worker_bodies:
                    connection.request(
                        "POST", "/v1/run", body=body,
                        headers={"Content-Type": "application/json"})
                    response = connection.getresponse()
                    response.read()
                    with lock:
                        statuses.append(response.status)
                connection.close()

            threads = [threading.Thread(target=client, args=(bodies[i::4],))
                       for i in range(4)]
            for thread in threads:
                thread.start()
            # Mid-burst, drain one shard over the admin endpoint.
            time.sleep(0.02)
            admin = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
            admin.request("POST", "/v1/fleet/drain",
                          body=b'{"shard": "w1"}',
                          headers={"Content-Type": "application/json"})
            drain_response = admin.getresponse()
            drain_body = json.loads(drain_response.read())
            admin.close()
            for thread in threads:
                thread.join(timeout=60)
            assert drain_response.status == 200, drain_body
            assert statuses == [200] * len(bodies)  # zero lost requests
        finally:
            server.stop()


# -- keyed loadgen -----------------------------------------------------------
def test_keyed_schedule_is_deterministic_and_zipf_skewed():
    kwargs = dict(requests=64, keys=8, n=6, alpha=2.0, side=10.0,
                  layouts=["uniform"], mechanisms=["tree-shapley"],
                  profile_count=1)
    first = build_keyed_requests(zipf=1.5, **kwargs)
    second = build_keyed_requests(zipf=1.5, **kwargs)
    assert first == second  # byte-identical schedules
    counts: dict[str, int] = {}
    for request in first:
        key = json.dumps(request["scenario"], sort_keys=True)
        counts[key] = counts.get(key, 0) + 1
    assert len(counts) <= 8
    # Zipf head dominates the tail.
    ordered = sorted(counts.values(), reverse=True)
    assert ordered[0] >= 3 * ordered[-1]
    # Distinct keys means distinct derived seeds.
    seeds = {request["scenario"]["seed"] for request in first}
    assert len(seeds) == len(counts)
    # The keyed path hangs off build_requests behind the keys flag and
    # ignores --seeds entirely.
    via_flag = build_requests(seeds=[999], zipf=1.5, **kwargs)
    assert via_flag == first
    with pytest.raises(ValueError):
        build_keyed_requests(zipf=-1.0, **kwargs)
    with pytest.raises(ValueError):
        build_keyed_requests(**{**kwargs, "keys": 0}, zipf=1.0)


def test_loadgen_reports_per_shard_latency_against_a_router():
    with fleet_router(2) as (router, _):
        server = BackgroundServer(router)
        port = server.start()
        try:
            report = run_loadgen(
                host="127.0.0.1", port=port, requests=24, concurrency=4,
                n=6, alpha=2.0, side=10.0, seeds=[0], layouts=["uniform"],
                mechanisms=["tree-shapley"], profile_count=1,
                keys=6, zipf=1.1)
        finally:
            server.stop()
    assert report.statuses == {200: 24}
    assert len(report.observed_shards()) == 2
    assert report.check(expect_shards=2) == []
    assert report.check(expect_shards=3)  # more shards than exist: fails
    shard_lines = report.shard_lines()
    assert len(shard_lines) == 2
    assert all("hit-rate" in line for line in shard_lines)
    assert sum(len(v) for v in report.shard_latencies.values()) == 24


# -- the real subprocess tree ------------------------------------------------
def test_fleet_cli_serves_workers_behind_one_router():
    """``python -m repro fleet`` end to end: the CI smoke shape."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (str(REPO_SRC) + os.pathsep + env["PYTHONPATH"]
                         if env.get("PYTHONPATH") else str(REPO_SRC))
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "fleet", "--port", "0",
         "--workers", "2", "--batch-window", "0.0"],
        stdout=subprocess.PIPE, text=True, env=env)
    try:
        port = None
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            match = re.search(r"serving on http://[^:]+:(\d+)", line or "")
            if match:
                port = int(match.group(1))
                break
        assert port is not None, "fleet router never printed its ready line"
        report = run_loadgen(
            host="127.0.0.1", port=port, requests=20, concurrency=4,
            n=6, alpha=2.0, side=10.0, seeds=[0], layouts=["uniform"],
            mechanisms=["tree-shapley"], profile_count=1, keys=6, zipf=1.1)
        assert report.statuses == {200: 20}
        assert report.check(expect_shards=2) == []
    finally:
        process.terminate()
        process.wait(timeout=30)
