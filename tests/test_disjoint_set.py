"""Unit + property tests for repro.graphs.disjoint_set."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs.disjoint_set import DisjointSet


class TestDisjointSet:
    def test_singletons(self):
        d = DisjointSet(range(4))
        assert d.n_components == 4
        assert all(d.find(i) == i for i in range(4))
        assert d.component_size(2) == 1

    def test_union_merges(self):
        d = DisjointSet(range(4))
        assert d.union(0, 1)
        assert d.connected(0, 1) and not d.connected(0, 2)
        assert d.n_components == 3
        assert d.component_size(0) == 2

    def test_union_idempotent(self):
        d = DisjointSet(range(3))
        d.union(0, 1)
        assert not d.union(1, 0)
        assert d.n_components == 2

    def test_members(self):
        d = DisjointSet(range(5))
        d.union(0, 1)
        d.union(1, 2)
        assert set(d.members(2)) == {0, 1, 2}
        assert set(d.members(3)) == {3}

    def test_components_iteration(self):
        d = DisjointSet("abcd")
        d.union("a", "b")
        comps = sorted(frozenset(c) for c in d.components())
        assert sorted(map(sorted, comps)) == [["a", "b"], ["c"], ["d"]]

    def test_add_idempotent_and_growable(self):
        d = DisjointSet()
        d.add("x")
        d.add("x")
        d.add("y")
        assert len(d) == 2 and d.n_components == 2

    def test_len_counts_elements(self):
        d = DisjointSet(range(7))
        d.union(1, 2)
        assert len(d) == 7  # elements, not components


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 20),
    pairs=st.lists(st.tuples(st.integers(0, 19), st.integers(0, 19)), max_size=40),
)
def test_matches_naive_partition(n, pairs):
    """DSU connectivity agrees with a naive set-merging implementation."""
    d = DisjointSet(range(n))
    naive = [{i} for i in range(n)]

    def naive_find(x):
        for s in naive:
            if x in s:
                return s
        raise AssertionError

    for a, b in pairs:
        a, b = a % n, b % n
        d.union(a, b)
        sa, sb = naive_find(a), naive_find(b)
        if sa is not sb:
            sa |= sb
            naive.remove(sb)

    assert d.n_components == len(naive)
    for a in range(n):
        for b in range(n):
            assert d.connected(a, b) == (naive_find(a) is naive_find(b))
    for a in range(n):
        assert set(d.members(a)) == naive_find(a)
