"""Observability through the serving pipeline: /metrics, stats, logs.

The service-facing half of the telemetry contract: ``GET /metrics``
serves valid Prometheus text covering every pipeline family, the stats
payload carries an atomic registry snapshot next to the (pinned) legacy
counters, responses stay bit-identical to direct sessions with the
instrumentation on, request logs are one parseable JSON line per priced
request, and the store's compound counters never tear under
concurrency — ``hits + misses + coalesced == lookups`` in *every*
snapshot, which is the bug this PR's registry-lock rework fixes.
"""

from __future__ import annotations

import asyncio
import io
import json
import threading
import time

from repro.api import MulticastSession, ScenarioSpec, result_to_dict
from repro.observability import (
    MetricsRegistry,
    RequestLogger,
    parse_exposition,
    sample_total,
    scenario_hash,
    stage_histogram,
)
from repro.service import CostSharingService, ServiceClient, ServiceServer, SessionStore
from repro.service.loadgen import LoadReport
from repro.service.server import METRICS_CONTENT_TYPE


def _spec(seed: int, n: int = 6) -> ScenarioSpec:
    return ScenarioSpec.from_random(n=n, alpha=2.0, seed=seed, side=5.0)


def _profiles(spec, utility=4.0):
    return [{a: utility for a in spec.agents()}]


def run(coro):
    return asyncio.run(coro)


# -- GET /metrics -------------------------------------------------------------
def test_metrics_endpoint_serves_every_pipeline_family():
    spec = _spec(0)
    profiles = _profiles(spec)

    async def go():
        client = ServiceClient(CostSharingService(batch_window=0.0))
        for _ in range(3):
            status, _ = await client.run(spec, "jv", profiles)
            assert status == 200
        await client.request("GET", "/no/such/path")
        status, text = await client.metrics()
        assert status == 200
        return text

    text = run(go())
    parsed = parse_exposition(text)
    # The whole pipeline reports: stage latencies, store, batch, HTTP.
    assert parsed["types"]["repro_stage_seconds"] == "histogram"
    assert parsed["types"]["repro_batch_occupancy"] == "histogram"
    assert parsed["types"]["repro_store_lookups_total"] == "counter"
    assert parsed["types"]["repro_http_requests_total"] == "counter"
    assert parsed["types"]["repro_http_in_flight"] == "gauge"
    assert parsed["types"]["repro_session_build_seconds"] == "histogram"
    for stage in ("parse", "queue", "build", "execute", "serialize"):
        assert sample_total(parsed, "repro_stage_seconds_count",
                            {"stage": stage}) == 3, stage
    assert sample_total(parsed, "repro_store_lookups_total") == 3
    assert sample_total(parsed, "repro_store_hits_total") == 2
    assert sample_total(parsed, "repro_store_misses_total") == 1
    assert sample_total(parsed, "repro_http_requests_total",
                        {"method": "POST", "path": "/v1/run"}) == 3
    # Unknown paths collapse into the "other" label (cardinality cap).
    assert sample_total(parsed, "repro_http_requests_total",
                        {"path": "other"}) == 1
    assert sample_total(parsed, "repro_http_responses_total",
                        {"code": "200"}) == 3
    assert sample_total(parsed, "repro_http_responses_total",
                        {"code": "404"}) == 1


def test_metrics_histogram_invariants_on_the_wire():
    spec = _spec(1)

    async def go():
        client = ServiceClient(CostSharingService(batch_window=0.0))
        await client.run(spec, "tree-shapley", _profiles(spec))
        _, text = await client.metrics()
        return text

    parsed = parse_exposition(run(go()))
    for name, samples in parsed["samples"].items():
        if not name.endswith("_bucket"):
            continue
        family = name[:-len("_bucket")]
        by_series: dict[tuple, list[tuple[float, float]]] = {}
        for labels, value in samples:
            key = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
            by_series.setdefault(key, []).append(
                (float(labels["le"].replace("+Inf", "inf")), value))
        for key, buckets in by_series.items():
            buckets.sort()
            counts = [count for _, count in buckets]
            assert all(a <= b for a, b in zip(counts, counts[1:])), name
            assert buckets[-1][0] == float("inf")
            where = dict(key)
            assert counts[-1] == sample_total(
                parsed, f"{family}_count", where), name


def test_http_metrics_content_type_and_scrapeability():
    spec = _spec(2)
    body = json.dumps({"scenario": spec.to_dict(), "mechanism": "jv",
                       "profiles": [{str(a): 4.0 for a in spec.agents()}]}).encode()

    async def go():
        service = CostSharingService(batch_window=0.0)
        server = await ServiceServer(service, port=0).start()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           server.port)
            try:
                writer.write((f"POST /v1/run HTTP/1.1\r\nHost: t\r\n"
                              f"Content-Length: {len(body)}\r\n\r\n").encode()
                             + body)
                writer.write(b"GET /metrics HTTP/1.1\r\nHost: t\r\n"
                             b"Content-Length: 0\r\nConnection: close\r\n\r\n")
                await writer.drain()
                raw = await reader.read()
            finally:
                writer.close()
        finally:
            await server.close()
        return raw.decode("utf-8")

    raw = run(go())
    # The second response on the keep-alive connection is the scrape.
    head, _, scrape = raw.rpartition("HTTP/1.1 200 OK\r\n")
    assert head  # the /v1/run response preceded it
    headers, _, text = scrape.partition("\r\n\r\n")
    assert f"Content-Type: {METRICS_CONTENT_TYPE}" in headers
    parsed = parse_exposition(text)
    assert sample_total(parsed, "repro_http_requests_total",
                        {"path": "/v1/run"}) == 1


# -- /v1/stats ----------------------------------------------------------------
def test_stats_carries_registry_snapshot_next_to_pinned_legacy_keys():
    spec = _spec(3)

    async def go():
        client = ServiceClient(CostSharingService(batch_window=0.0))
        await client.run(spec, "jv", _profiles(spec))
        await client.run(spec, "jv", _profiles(spec))
        status, stats = await client.stats()
        assert status == 200
        return client.service, stats

    service, stats = run(go())
    # Legacy shape unchanged; "metrics" and "spans" added.
    assert set(stats) == {"schema", "store", "batcher", "http", "metrics",
                          "spans"}
    assert set(stats["store"]) == {"capacity", "size", "building", "lookups",
                                   "hits", "misses", "evictions", "coalesced",
                                   "substrate_sessions_built",
                                   "substrate_sessions_shared"}
    store = stats["store"]
    assert store["hits"] + store["misses"] + store["coalesced"] == store["lookups"]
    snapshot = stats["metrics"]
    assert json.loads(json.dumps(snapshot)) == snapshot
    # The snapshot agrees with the legacy counters it mirrors.
    lookup_series, = snapshot["repro_store_lookups_total"]["series"]
    assert lookup_series["value"] == store["lookups"] == 2
    # The embedded snapshot already counts the /v1/stats dispatch itself.
    stats_requests, = (s["value"] for s in
                       snapshot["repro_http_requests_total"]["series"]
                       if s["labels"]["path"] == "/v1/stats")
    assert stats_requests == 1


# -- responses stay pure ------------------------------------------------------
def test_responses_bit_identical_to_direct_session_with_observability_on():
    spec = _spec(4)
    profiles = _profiles(spec)
    stream = io.StringIO()
    registry = MetricsRegistry()
    service = CostSharingService(batch_window=0.0, registry=registry,
                                 request_log=RequestLogger(stream))

    async def go():
        client = ServiceClient(service)
        _, cold = await client.run(spec, "tree-shapley", profiles)
        _, warm = await client.run(spec, "tree-shapley", profiles)
        return cold, warm

    cold, warm = run(go())
    direct = MulticastSession(spec, registry=MetricsRegistry())
    expected = [result_to_dict(r)
                for r in direct.run_batch("tree-shapley", profiles)]
    assert cold["results"] == warm["results"] == expected
    # Telemetry observed the traffic but never leaked into the payload.
    assert registry.snapshot()
    assert "ts" not in cold and "stages" not in cold


# -- request logs -------------------------------------------------------------
def test_request_log_emits_one_json_line_per_priced_request():
    spec = _spec(5)
    stream = io.StringIO()
    logger = RequestLogger(stream, clock=lambda: 1234.5)
    service = CostSharingService(batch_window=0.0, request_log=logger)

    async def go():
        client = ServiceClient(service)
        status, _ = await client.run(spec, "jv", _profiles(spec))
        assert status == 200
        status, _ = await client.request("POST", "/v1/run", {"nope": 1})
        assert status == 400

    run(go())
    lines = [json.loads(line) for line in stream.getvalue().splitlines()]
    assert len(lines) == 2
    ok, bad = lines
    assert ok["kind"] == "run" and ok["status"] == 200
    assert ok["id"] == 1 and ok["ts"] == 1234.5
    assert ok["mechanism"] == "jv" and ok["profiles"] == 1
    from repro.service.state import scenario_key
    assert ok["scenario"] == scenario_hash(scenario_key(spec))
    assert len(ok["scenario"]) == 12
    assert set(ok["stages_ms"]) == {"parse", "queue", "build", "execute",
                                    "serialize"}
    assert all(ms >= 0 for ms in ok["stages_ms"].values())
    assert bad["kind"] == "error" and bad["status"] == 400
    assert bad["id"] == 2 and bad["path"] == "/v1/run"
    # Lines are compact sorted-key JSON: stable for grep/join tooling.
    first_line = stream.getvalue().splitlines()[0]
    assert first_line == json.dumps(ok, sort_keys=True, separators=(",", ":"))


# -- the concurrency bugfix ---------------------------------------------------
def test_store_counters_never_tear_under_concurrent_lookups(monkeypatch):
    """The satellite bugfix: stats() snapshots are atomic, so the lookup
    identity holds mid-build, mid-hit, mid-eviction — always."""
    import repro.service.state as state

    class FakeSession:
        def __init__(self, spec):
            time.sleep(0.001)  # widen the build window so lookups coalesce

    monkeypatch.setattr(state, "build_session", lambda spec: FakeSession(spec))
    store = SessionStore(capacity=2)
    keys = [f"scenario-{i}" for i in range(4)]
    stop = threading.Event()
    torn: list[dict] = []

    def reader() -> None:
        while not stop.is_set():
            snapshot = store.stats()
            if (snapshot["hits"] + snapshot["misses"] + snapshot["coalesced"]
                    != snapshot["lookups"]):
                torn.append(snapshot)

    def worker(offset: int) -> None:
        for i in range(120):
            store.get(None, key=keys[(i + offset) % len(keys)])

    observer = threading.Thread(target=reader)
    workers = [threading.Thread(target=worker, args=(offset,))
               for offset in range(8)]
    observer.start()
    for thread in workers:
        thread.start()
    for thread in workers:
        thread.join()
    stop.set()
    observer.join()

    assert torn == []
    final = store.stats()
    assert final["lookups"] == 8 * 120
    assert final["hits"] + final["misses"] + final["coalesced"] == 8 * 120
    assert final["evictions"] >= 1  # capacity 2 over 4 keys did evict


def test_store_resize_is_the_capacity_knob(monkeypatch):
    import repro.service.state as state

    monkeypatch.setattr(state, "build_session", lambda spec: object())
    store = SessionStore(capacity=8)
    for i in range(6):
        store.get(None, key=f"k{i}")
    assert len(store) == 6 and store.evictions == 0

    evicted = store.resize(3)
    assert evicted == 3 and len(store) == 3
    assert store.capacity == 3 and store.evictions == 3
    # LRU-first: the oldest keys went, the warmest stayed.
    assert store.keys() == ["k3", "k4", "k5"]
    assert store.resize(10) == 0  # growing evicts nothing
    snapshot = store.registry.snapshot()
    capacity_series, = snapshot["repro_store_capacity"]["series"]
    assert capacity_series["value"] == 10
    size_series, = snapshot["repro_store_size"]["series"]
    assert size_series["value"] == 3


# -- loadgen report over crafted scrapes --------------------------------------
def _crafted_metrics(*, solo_flushes: int, multi_flushes: int) -> str:
    registry = MetricsRegistry()
    stage = stage_histogram(registry)
    for name in ("parse", "queue", "build", "execute", "serialize"):
        stage.labels(stage=name).observe(0.002)
        stage.labels(stage=name).observe(0.004)
    store = registry.counter("repro_store_lookups_total")
    store.inc(10)
    registry.counter("repro_store_hits_total").inc(6)
    registry.counter("repro_store_coalesced_total").inc(2)
    occupancy = registry.histogram("repro_batch_occupancy",
                                   buckets=(1.0, 2.0, 4.0))
    for _ in range(solo_flushes):
        occupancy.observe(1.0)
    for _ in range(multi_flushes):
        occupancy.observe(3.0)
    return registry.render()


def _report(metrics: str | None, stats: dict | None = None) -> LoadReport:
    return LoadReport(requests=10, concurrency=2, elapsed=1.0,
                      latencies=[0.01] * 10, statuses={200: 10}, errors=[],
                      stats=stats, metrics=metrics)


def test_loadgen_metric_lines_summarize_the_scrape():
    report = _report(_crafted_metrics(solo_flushes=2, multi_flushes=1))
    lines = report.metric_lines()
    assert len(lines) == 2
    # Mean of 2ms and 4ms observations is 3ms, for every stage.
    assert lines[0] == ("metrics: stage means parse 3.00ms | queue 3.00ms | "
                        "build 3.00ms | execute 3.00ms | serialize 3.00ms")
    assert "hit-rate 80%" in lines[1]          # (6 hits + 2 coalesced) / 10
    assert "multi-request flushes 1/3" in lines[1]
    assert report.lines()[-2:] == lines        # appended to the report


def test_loadgen_judges_batch_engagement_from_the_scrape():
    stats = {"store": {"hits": 6, "coalesced": 2},
             "batcher": {"max_batch_size": 1}}
    engaged = _report(_crafted_metrics(solo_flushes=2, multi_flushes=1), stats)
    assert engaged.batch_engaged() is True
    assert engaged.check(expect_engaged=True) == []

    # All-solo flushes: the scrape is the ground truth, even though the
    # stats fallback would be consulted only without a scrape.
    solo = _report(_crafted_metrics(solo_flushes=3, multi_flushes=0),
                   {"store": {"hits": 6, "coalesced": 2},
                    "batcher": {"max_batch_size": 4}})
    assert solo.batch_engaged() is False
    failures = solo.check(expect_engaged=True)
    assert failures and "micro-batching never engaged" in failures[0]

    # No scrape at all: fall back to the stats counter.
    unscraped = _report(None, {"store": {"hits": 6, "coalesced": 2},
                               "batcher": {"max_batch_size": 4}})
    assert unscraped.batch_engaged() is None
    assert unscraped.metric_lines() == []
    assert unscraped.check(expect_engaged=True) == []


# -- the metrics-dump CLI -----------------------------------------------------
def test_metrics_dump_runs_a_spec_and_reports_sweep_telemetry(tmp_path, capsys):
    from repro.__main__ import main
    from repro.runner import ProfileSpec, SweepSpec

    spec = SweepSpec(ns=(6,), alphas=(2.0,), seeds=(0,), layouts=("uniform",),
                     mechanisms=("tree-shapley", "jv"),
                     profiles=ProfileSpec(count=1), side=5.0)
    spec_path = tmp_path / "sweep.json"
    spec_path.write_text(spec.to_json())
    out_path = tmp_path / "metrics.json"

    rc = main(["metrics-dump", "--spec", str(spec_path),
               "--out", str(out_path)])
    capsys.readouterr()
    assert rc == 0
    payload = json.loads(out_path.read_text())
    assert payload["rows"] == 2
    metrics = payload["metrics"]
    rows_series, = metrics["repro_sweep_rows_total"]["series"]
    assert rows_series["value"] >= 2  # the default registry accumulates
    mechanisms = {s["labels"]["mechanism"]
                  for s in metrics["repro_sweep_item_seconds"]["series"]}
    assert {"tree-shapley", "jv"} <= mechanisms
    # The facade published its artifact-build timings too.
    assert "repro_session_build_seconds" in metrics


def test_metrics_dump_requires_exactly_one_source(capsys):
    from repro.__main__ import main

    assert main(["metrics-dump"]) == 2
    assert main(["metrics-dump", "--port", "1", "--spec", "x.json"]) == 2
    err = capsys.readouterr().err
    assert "exactly one of --port or --spec" in err
