"""Tests for repro.core.memt_mechanism (paper section 2.2.3)."""

import math

import numpy as np
import pytest

from repro.core.memt_mechanism import WirelessMulticastMechanism
from repro.geometry.points import uniform_points
from repro.graphs.random_graphs import random_cost_matrix
from repro.mechanism.properties import check_cs, check_npt, check_vp, find_unilateral_deviation
from repro.wireless.cost_graph import CostGraph, EuclideanCostGraph
from repro.wireless.memt import optimal_multicast_cost


def euclidean_case(seed, n=6, scale=18.0):
    pts = uniform_points(n, 2, rng=seed, side=4.0)
    net = EuclideanCostGraph(pts, 2.0)
    rng = np.random.default_rng(seed + 77)
    profile = {i: float(rng.uniform(0.0, scale)) for i in range(1, n)}
    return net, profile


class TestInvariants:
    @pytest.mark.parametrize("seed", range(5))
    def test_feasibility_cost_recovery_axioms(self, seed):
        net, profile = euclidean_case(seed)
        mech = WirelessMulticastMechanism(net, 0)
        result = mech.run(profile)
        assert check_npt(result)
        assert check_vp(result, profile)
        assert result.total_charged() >= result.cost - 1e-6
        if result.receivers:
            assert result.power.reaches(net, 0, result.receivers)

    @pytest.mark.parametrize("seed", range(5))
    def test_bb_bound_vs_exact_cstar(self, seed):
        net, profile = euclidean_case(seed)
        result = WirelessMulticastMechanism(net, 0).run(profile)
        if not result.receivers:
            return
        cstar = optimal_multicast_cost(net, 0, result.receivers)
        k = len(result.receivers)
        assert result.total_charged() <= 3 * math.log(k + 1) * cstar + 1e-9

    @pytest.mark.parametrize("seed", range(3))
    def test_general_symmetric_networks(self, seed):
        net = CostGraph(random_cost_matrix(6, rng=seed))
        rng = np.random.default_rng(seed)
        profile = {i: float(rng.uniform(0, 25)) for i in range(1, 6)}
        result = WirelessMulticastMechanism(net, 0).run(profile)
        assert check_npt(result) and check_vp(result, profile)
        if result.receivers:
            assert result.power.reaches(net, 0, result.receivers)
            cstar = optimal_multicast_cost(net, 0, result.receivers)
            k = len(result.receivers)
            assert result.total_charged() <= 3 * math.log(k + 1) * cstar + 1e-9

    @pytest.mark.parametrize("seed", range(2))
    def test_strategyproofness_sweep(self, seed):
        net, profile = euclidean_case(seed, n=5)
        mech = WirelessMulticastMechanism(net, 0)
        assert find_unilateral_deviation(mech, profile) is None

    def test_consumer_sovereignty(self):
        net, _ = euclidean_case(1, n=5)
        mech = WirelessMulticastMechanism(net, 0)
        zero = {i: 0.0 for i in range(1, 5)}
        assert check_cs(mech, zero, 2)

    def test_zero_utilities_nobody_served(self):
        net, _ = euclidean_case(0)
        result = WirelessMulticastMechanism(net, 0).run({i: 0.0 for i in range(1, 6)})
        assert result.total_charged() == pytest.approx(0.0)
        assert result.receivers == frozenset()

    def test_restricted_receiver_set(self):
        net, profile = euclidean_case(3)
        mech = WirelessMulticastMechanism(net, 0, receivers=[1, 2])
        result = mech.run({1: profile[1], 2: profile[2]})
        assert result.receivers <= {1, 2}

    def test_source_cannot_be_receiver(self):
        net, _ = euclidean_case(0)
        with pytest.raises(ValueError):
            WirelessMulticastMechanism(net, 0, receivers=[0, 1])

    def test_extra_charge_accounting(self):
        net, profile = euclidean_case(4)
        result = WirelessMulticastMechanism(net, 0).run(profile)
        if result.receivers:
            total = result.extra["charged_nwst"] + result.extra["charged_extra"]
            assert result.total_charged() == pytest.approx(total, rel=1e-6)
