"""Tests for repro.graphs.random_graphs (determinism + structure)."""

import numpy as np
import pytest

from repro.graphs.random_graphs import (
    as_rng,
    random_connected_graph,
    random_cost_matrix,
    random_node_weighted_instance,
)
from repro.graphs.traversal import is_connected


class TestAsRng:
    def test_passthrough_generator(self):
        rng = np.random.default_rng(0)
        assert as_rng(rng) is rng

    def test_seed_determinism(self):
        assert as_rng(7).uniform() == as_rng(7).uniform()


class TestCostMatrix:
    def test_shape_and_symmetry(self):
        m = random_cost_matrix(8, rng=0)
        assert m.shape == (8, 8)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0.0)
        off = m[~np.eye(8, dtype=bool)]
        assert (off >= 1.0).all() and (off <= 10.0).all()

    def test_metric_closure_option(self):
        m = random_cost_matrix(8, rng=1, metric=True)
        for i in range(8):
            for j in range(8):
                for k in range(8):
                    assert m[i, j] <= m[i, k] + m[k, j] + 1e-9

    def test_determinism(self):
        assert np.allclose(random_cost_matrix(6, rng=42), random_cost_matrix(6, rng=42))


class TestConnectedGraph:
    @pytest.mark.parametrize("seed", range(5))
    def test_connected(self, seed):
        g = random_connected_graph(20, rng=seed)
        assert len(g) == 20 and is_connected(g)

    def test_nodes_are_python_ints(self):
        g = random_connected_graph(6, rng=0)
        for node in g.nodes():
            assert type(node) is int


class TestNodeWeightedInstance:
    def test_structure(self):
        g, w, terms = random_node_weighted_instance(12, 4, rng=0)
        assert len(terms) == 4
        assert is_connected(g)
        for t in terms:
            assert w[t] == 0.0
            # Terminals attach only to relay nodes.
            for nbr, _ in g.neighbors(t):
                assert nbr not in terms
        relays = [v for v in g.nodes() if v not in terms]
        assert all(w[v] > 0 for v in relays)

    def test_needs_a_relay(self):
        with pytest.raises(ValueError):
            random_node_weighted_instance(4, 4, rng=0)
