"""Tests for repro.core.mst_game (Bird allocation, MST game)."""

import itertools

import pytest

from repro.core.jv_steiner import JVSteinerShares
from repro.core.mst_game import MSTGame
from repro.geometry.points import uniform_points
from repro.mechanism.core import verify_core_allocation
from repro.mechanism.moulin_shenker import check_cross_monotonicity
from repro.wireless.cost_graph import EuclideanCostGraph


def game(seed, n=7, alpha=2.0):
    net = EuclideanCostGraph(uniform_points(n, 2, rng=seed, side=4.0), alpha)
    return MSTGame(net, 0), [i for i in range(n) if i != 0]


class TestMSTGameCost:
    def test_matches_jv_closure_mst(self):
        g, agents = game(0)
        jv = JVSteinerShares(g.network, 0)
        for size in (1, 3, len(agents)):
            R = frozenset(agents[:size])
            assert g.cost(R) == pytest.approx(jv.closure_mst_weight(R))

    def test_not_necessarily_monotone(self):
        """The MST game is famously NOT monotone: a new terminal can act as
        a Steiner point and shorten the tree (why the terminal-MST is only a
        2-approximation of the Steiner tree).  Certify the phenomenon."""
        decrease_found = False
        for seed in range(20):
            g, agents = game(seed, n=6)
            for r in range(1, len(agents)):
                for R in itertools.combinations(agents, r):
                    base = g.cost(R)
                    for extra in agents:
                        if extra not in R and g.cost(set(R) | {extra}) < base - 1e-9:
                            decrease_found = True
                            break
                    if decrease_found:
                        break
                if decrease_found:
                    break
            if decrease_found:
                break
        assert decrease_found

    def test_empty(self):
        g, _ = game(0)
        assert g.cost([]) == 0.0
        assert g.bird_allocation([]) == {}


class TestBirdAllocation:
    @pytest.mark.parametrize("seed", range(5))
    def test_budget_balanced(self, seed):
        g, agents = game(seed)
        shares = g.bird_allocation(agents)
        assert sum(shares.values()) == pytest.approx(g.cost(agents))
        assert set(shares) == set(agents)
        assert all(s >= -1e-12 for s in shares.values())

    @pytest.mark.parametrize("seed", range(5))
    def test_birds_theorem_in_core(self, seed):
        """Bird's allocation always lies in the core of the MST game."""
        g, agents = game(seed, n=6)
        shares = g.bird_allocation(agents)
        assert verify_core_allocation(shares, agents, lambda R: g.cost(R))

    def test_not_cross_monotonic_somewhere(self):
        """Unlike the JV shares, Bird's rule is not cross-monotonic — the
        reason the paper's section 3.2 cannot just use it."""
        found = False
        for seed in range(30):
            g, agents = game(seed, n=6)
            violations = check_cross_monotonicity(
                agents, lambda R, g=g: g.bird_allocation(R)
            )
            if violations:
                found = True
                break
        assert found, "expected a cross-monotonicity violation on some instance"

    def test_jv_shares_agree_in_total_with_bird(self):
        g, agents = game(2)
        jv = JVSteinerShares(g.network, 0)
        R = frozenset(agents)
        assert sum(jv.shares(R).values()) == pytest.approx(
            sum(g.bird_allocation(R).values())
        )
