"""The adaptive controller: deterministic decision replay + live binding.

``AdaptiveController.step`` is a pure function of an
:class:`AdaptObservation` plus controller state (no clocks, no
randomness), so a synthetic trace produces one exact decision sequence
— pinned here event by event.  The acceptance criterion rides along: on
a bursty trace the batch window demonstrably converges (geometrically,
without overshoot) to the window the arrival rate warrants.
"""

from __future__ import annotations

import pytest

from repro.observability import AdaptiveController, AdaptObservation, EventBus, MetricsRegistry


def _obs(arrivals: int, *, interval: float = 0.5, lookups: int = 0,
         hits: int = 0, evictions: int = 0, store_size: int = 0) -> AdaptObservation:
    return AdaptObservation(arrivals=arrivals, interval=interval,
                            lookups=lookups, hits=hits, evictions=evictions,
                            store_size=store_size)


def _controller(**overrides) -> AdaptiveController:
    kwargs = dict(batch_window=0.005, cache_capacity=64,
                  registry=MetricsRegistry())
    kwargs.update(overrides)
    return AdaptiveController(None, **kwargs)


# -- construction -------------------------------------------------------------
def test_needs_service_or_explicit_knobs():
    with pytest.raises(ValueError, match="bind a service"):
        AdaptiveController(None)
    with pytest.raises(ValueError, match="must exceed 1.0"):
        _controller(band=1.0)
    with pytest.raises(ValueError, match="must exceed 1.0"):
        _controller(window_step=0.5)


def test_observe_without_service_raises():
    with pytest.raises(ValueError, match="needs a bound service"):
        _controller().observe()


# -- window control -----------------------------------------------------------
def test_window_converges_geometrically_on_a_burst():
    """The acceptance criterion: under a sustained burst the window walks
    down x(1/1.5) per tick and lands exactly on the clamped target."""
    controller = _controller()  # window 0.005, min 0.0005, step 1.5
    burst = _obs(4000)          # 8000 req/s -> desired 4/8000 = min_window
    windows = []
    for _ in range(10):
        controller.step(burst)
        windows.append(controller.window)
    # Strict geometric descent, never below the clamp, then a fixed point.
    assert windows[0] == pytest.approx(0.005 / 1.5)
    assert all(b <= a for a, b in zip(windows, windows[1:]))
    assert controller.window == pytest.approx(0.0005)  # == min_window
    decisions = controller.decisions()
    assert len(decisions) == 6  # six moves, then hysteresis holds it still
    assert all(d["knob"] == "batch_window" for d in decisions)
    assert all(d["reason"] == "burst" for d in decisions)
    assert [d["tick"] for d in decisions] == [1, 2, 3, 4, 5, 6]
    # Ticks 7-10 produced no decision: the fixed point is stable.
    assert controller.tick == 10


def test_window_grows_toward_max_when_arrivals_are_sparse():
    controller = _controller()
    sparse = _obs(1)  # 2 req/s -> desired 2.0s, clamped to max_window 0.05
    for _ in range(10):
        controller.step(sparse)
    assert controller.window == pytest.approx(0.05)  # == max_window
    assert all(d["reason"] == "sparse arrivals" for d in controller.decisions())


def test_no_arrivals_means_no_window_move():
    controller = _controller()
    before = controller.window
    controller.step(_obs(0))
    controller.step(_obs(5, interval=0.0))
    assert controller.window == before
    assert controller.decisions() == []


def test_window_holds_inside_the_hysteresis_band():
    # rate 1000/s -> desired 0.004; 0.005/1.25 = 0.004 is not strictly
    # below, so the band absorbs the difference.
    controller = _controller()
    controller.step(_obs(500))
    assert controller.window == 0.005
    assert controller.decisions() == []


def test_window_control_disabled_by_zero_window_or_collapsed_bounds():
    frozen = _controller(batch_window=0.0)
    frozen.step(_obs(4000))
    assert frozen.window == 0.0 and frozen.decisions() == []
    pinned = _controller(min_window=0.01, max_window=0.01)
    pinned.step(_obs(4000))
    assert pinned.window == 0.005 and pinned.decisions() == []


# -- capacity control ---------------------------------------------------------
def test_capacity_grows_under_eviction_pressure_with_cooldown():
    controller = _controller(cache_capacity=8, capacity_cooldown=2,
                             max_capacity=64)
    thrash = _obs(0, lookups=32, hits=8, evictions=3, store_size=8)
    capacities = []
    for _ in range(7):
        controller.step(thrash)
        capacities.append(controller.capacity)
    # Doubles on ticks 1, 4, 7 — two cooldown ticks between moves.
    assert capacities == [16, 16, 16, 32, 32, 32, 64]
    grow = controller.decisions()
    assert [d["tick"] for d in grow] == [1, 4, 7]
    assert all(d["knob"] == "store_capacity" for d in grow)
    assert all(d["reason"] == "evicting under low hit rate" for d in grow)
    # Already at max_capacity: pressure can push it no further.
    for _ in range(5):
        controller.step(thrash)
    assert controller.capacity == 64


def test_capacity_shrinks_when_idle_and_overprovisioned():
    controller = _controller(cache_capacity=64, capacity_cooldown=0,
                             min_capacity=4)
    idle = _obs(0, lookups=32, hits=31, evictions=0, store_size=4)
    controller.step(idle)
    assert controller.capacity == 32
    decision, = controller.decisions()
    assert decision["reason"] == "idle over-provision"
    assert decision["hit_rate"] == pytest.approx(31 / 32)
    # Shrinking never drops below the live population or min_capacity.
    controller.step(_obs(0, lookups=32, hits=31, store_size=20))
    assert controller.capacity == 32  # store_size*4 > capacity: no move
    for _ in range(10):
        controller.step(idle)
    # Halving stops once store_size*4 exceeds the next capacity: the
    # store keeps >= 2x headroom over its live population.
    assert controller.capacity == 8


def test_capacity_needs_evidence_and_real_pressure():
    controller = _controller(cache_capacity=8)
    # Too few lookups this tick: no decision either way.
    controller.step(_obs(0, lookups=8, hits=0, evictions=5, store_size=8))
    # Misses without evictions are cold keys, not pressure.
    controller.step(_obs(0, lookups=32, hits=2, evictions=0, store_size=3))
    assert controller.capacity == 8
    assert controller.decisions() == []


# -- exact decision-sequence replay ------------------------------------------
def test_synthetic_trace_replays_an_exact_decision_sequence():
    bus = EventBus()
    controller = _controller(batch_window=0.004, cache_capacity=8,
                             min_window=0.001, max_window=0.016,
                             window_step=2.0, capacity_cooldown=1,
                             target_occupancy=4.0, bus=bus)
    trace = [
        _obs(8),                                             # rate 16: grow window
        _obs(8),                                             # grow again, hits max
        _obs(0, lookups=32, hits=8, evictions=2, store_size=8),   # grow capacity
        _obs(0, lookups=32, hits=8, evictions=2, store_size=8),   # cooldown blocks
        _obs(4000, lookups=32, hits=31, store_size=2),       # burst + shrink
    ]
    for obs in trace:
        controller.step(obs)
    assert [(d["tick"], d["knob"], d["previous"], d["value"], d["reason"])
            for d in controller.decisions()] == [
        (1, "batch_window", 0.004, 0.008, "sparse arrivals"),
        (2, "batch_window", 0.008, 0.016, "sparse arrivals"),
        (3, "store_capacity", 8, 16, "evicting under low hit rate"),
        (5, "batch_window", 0.016, 0.008, "burst"),
        (5, "store_capacity", 16, 8, "idle over-provision"),
    ]
    assert controller.decisions() == bus.history("adapt")


def test_decisions_and_ticks_are_counted_in_the_registry():
    registry = MetricsRegistry()
    controller = _controller(registry=registry, capacity_cooldown=0)
    controller.step(_obs(1))                                  # window move
    controller.step(_obs(0, lookups=32, hits=0, evictions=1,  # capacity move
                         store_size=64))
    controller.step(_obs(0))                                  # no move
    snapshot = registry.snapshot()
    ticks, = snapshot["repro_adapt_ticks_total"]["series"]
    assert ticks["value"] == 3
    by_knob = {tuple(s["labels"].items()): s["value"]
               for s in snapshot["repro_adapt_decisions_total"]["series"]}
    assert by_knob == {(("knob", "batch_window"),): 1.0,
                       (("knob", "store_capacity"),): 1.0}
    window, = snapshot["repro_adapt_batch_window_seconds"]["series"]
    assert window["value"] == pytest.approx(controller.window)


# -- live service binding -----------------------------------------------------
def test_bound_controller_reads_deltas_and_moves_the_real_knobs():
    import asyncio

    from repro.api import ScenarioSpec
    from repro.service import CostSharingService, ServiceClient

    service = CostSharingService(cache_size=8, batch_window=0.004)
    spec = ScenarioSpec.from_random(n=6, alpha=2.0, seed=0, side=5.0)
    profiles = [{a: 4.0 for a in spec.agents()}]

    async def go():
        client = ServiceClient(service)
        for _ in range(3):
            status, _ = await client.run(spec, "jv", profiles)
            assert status == 200

    asyncio.run(go())
    controller = AdaptiveController(service, min_window=0.0005,
                                    max_window=0.032)
    assert controller.window == service.batcher.window == 0.004
    assert controller.capacity == service.store.capacity == 8

    first = controller.observe(interval=0.5)
    assert first.arrivals == 3
    assert first.lookups == 3 and first.hits == 2
    assert first.store_size == 1
    # Deltas: a second observation with no traffic in between is all-zero.
    second = controller.observe(interval=0.5)
    assert (second.arrivals, second.lookups, second.hits) == (0, 0, 0)

    # 6 req/s -> desired window 4/6 s, clamped to max: one x1.5 step up,
    # written onto the batcher's live window through the property setter.
    controller.step(first)
    assert service.batcher.window == controller.window == pytest.approx(0.006)

    # A synthetic pressure tick resizes the real store.
    controller.step(AdaptObservation(arrivals=0, interval=0.5, lookups=32,
                                     hits=4, evictions=2, store_size=8))
    assert service.store.capacity == controller.capacity == 16
