"""Tests for repro.wireless.multicast (tree <-> power conversions)."""

import numpy as np
import pytest

from repro.geometry.points import uniform_points
from repro.graphs.steiner import kmb_steiner_tree
from repro.wireless.cost_graph import CostGraph, EuclideanCostGraph
from repro.wireless.multicast import (
    parents_from_tree_edges,
    power_from_parents,
    steiner_heuristic_power,
    validate_multicast,
)


@pytest.fixture()
def net():
    return CostGraph(np.array([
        [0.0, 1.0, 4.0, 9.0],
        [1.0, 0.0, 2.0, 6.0],
        [4.0, 2.0, 0.0, 3.0],
        [9.0, 6.0, 3.0, 0.0],
    ]))


class TestPowerFromParents:
    def test_chain(self, net):
        parents = {0: None, 1: 0, 2: 1, 3: 2}
        pa = power_from_parents(net, parents)
        assert pa.powers.tolist() == [1.0, 2.0, 3.0, 0.0]
        assert pa.reaches(net, 0, [1, 2, 3])

    def test_max_child_edge(self, net):
        parents = {0: None, 1: 0, 2: 0, 3: 0}
        pa = power_from_parents(net, parents)
        assert pa[0] == 9.0  # pays only the farthest child
        assert pa.cost() == 9.0


class TestOrientation:
    def test_parents_from_tree_edges(self):
        parents = parents_from_tree_edges([(0, 1), (1, 2), (0, 3)], source=0)
        assert parents[0] is None and parents[1] == 0
        assert parents[2] == 1 and parents[3] == 0

    def test_steiner_heuristic_cost_leq_tree_weight(self):
        pts = uniform_points(8, 2, rng=0, side=4.0)
        net = EuclideanCostGraph(pts, 2.0)
        tree = kmb_steiner_tree(net.as_graph(), [0, 2, 5, 7])
        pa = steiner_heuristic_power(net, [(u, v) for u, v, _ in tree.edges], 0)
        assert pa.cost() <= tree.cost + 1e-9
        assert pa.reaches(net, 0, [2, 5, 7])


class TestValidate:
    def test_accepts_feasible(self, net):
        pa = power_from_parents(net, {0: None, 1: 0, 2: 1, 3: 2})
        validate_multicast(net, pa, 0, [3])

    def test_rejects_infeasible_with_missing_list(self, net):
        pa = power_from_parents(net, {0: None, 1: 0})
        with pytest.raises(ValueError, match=r"\[3\]"):
            validate_multicast(net, pa, 0, [1, 3])
