"""Cross-mechanism contract tests.

Every mechanism in the library must satisfy the same basic contract on any
profile: receivers come from the agent set, shares are only charged to
receivers, NPT, VP, and the budget discipline appropriate to its kind
(cost recovery for the BB-flavoured mechanisms; no surplus for the MC
ones).  Hypothesis drives random utility profiles against fixed instances.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    EuclideanJVMechanism,
    EuclideanMCMechanism,
    EuclideanShapleyMechanism,
    NWSTMechanism,
    UniversalTreeMCMechanism,
    UniversalTreeShapleyMechanism,
    WirelessMulticastMechanism,
)
from repro.core.exact_mechanisms import ExactMCMechanism, ExactShapleyMechanism
from repro.geometry.points import uniform_points
from repro.graphs.random_graphs import random_node_weighted_instance
from repro.wireless.cost_graph import EuclideanCostGraph
from repro.wireless.universal_tree import UniversalTree

_NET_2D = EuclideanCostGraph(uniform_points(6, 2, rng=42, side=4.0), 2.0)
_NET_1D = EuclideanCostGraph(uniform_points(6, 1, rng=43, side=4.0), 2.0)
_NET_A1 = EuclideanCostGraph(uniform_points(6, 2, rng=44, side=4.0), 1.0)
_TREE = UniversalTree.from_shortest_paths(_NET_2D, 0)
_NWST_G, _NWST_W, _NWST_T = random_node_weighted_instance(11, 4, rng=45)

# (name, mechanism factory, budget discipline)
CASES = [
    ("ut-shapley", lambda: UniversalTreeShapleyMechanism(_TREE), "recovery"),
    ("ut-mc", lambda: UniversalTreeMCMechanism(_TREE), "no-surplus"),
    ("jv", lambda: EuclideanJVMechanism(_NET_2D, 0), "recovery"),
    ("euclid-shapley-d1", lambda: EuclideanShapleyMechanism(_NET_1D, 0), "recovery"),
    ("euclid-mc-d1", lambda: EuclideanMCMechanism(_NET_1D, 0), "no-surplus"),
    ("euclid-shapley-a1", lambda: EuclideanShapleyMechanism(_NET_A1, 0), "recovery"),
    ("euclid-mc-a1", lambda: EuclideanMCMechanism(_NET_A1, 0), "no-surplus"),
    ("exact-shapley", lambda: ExactShapleyMechanism(_NET_2D, 0), "recovery"),
    ("exact-mc", lambda: ExactMCMechanism(_NET_2D, 0), "no-surplus"),
    ("wireless", lambda: WirelessMulticastMechanism(_NET_2D, 0), "recovery"),
    ("nwst", lambda: NWSTMechanism(_NWST_G, _NWST_W, _NWST_T), "recovery"),
]


def assert_contract(mechanism, profile, discipline):
    result = mechanism.run(profile)
    assert result.receivers <= set(mechanism.agents)
    assert set(result.shares) <= set(result.receivers)
    for i in result.receivers:
        share = result.share(i)
        assert share >= -1e-9  # NPT
        assert share <= profile[i] + 1e-6  # VP
    total = result.total_charged()
    if discipline == "recovery":
        assert total >= result.cost - 1e-6
    else:
        assert total <= result.cost + 1e-6
    return result


@pytest.mark.parametrize("name,factory,discipline", CASES,
                         ids=[c[0] for c in CASES])
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_contract_under_random_profiles(name, factory, discipline, data):
    mechanism = factory()
    scale = float(np.median(
        _NET_2D.matrix[_NET_2D.matrix > 0]
    )) * 3.0
    profile = {
        a: data.draw(st.floats(0.0, scale, allow_nan=False), label=f"u_{a}")
        for a in mechanism.agents
    }
    assert_contract(mechanism, profile, discipline)


@pytest.mark.parametrize("name,factory,discipline", CASES,
                         ids=[c[0] for c in CASES])
def test_contract_under_extreme_profiles(name, factory, discipline):
    mechanism = factory()
    agents = list(mechanism.agents)
    # All zeros: nobody can be charged anything.
    zero = {a: 0.0 for a in agents}
    result = assert_contract(mechanism, zero, discipline)
    assert result.total_charged() == pytest.approx(0.0, abs=1e-9)
    # All huge: everyone served (consumer sovereignty in the aggregate).
    huge = {a: 1e7 for a in agents}
    result = assert_contract(mechanism, huge, discipline)
    assert result.receivers == frozenset(agents)
    # One agent huge, rest zero.
    lonely = dict(zero)
    lonely[agents[0]] = 1e7
    result = assert_contract(mechanism, lonely, discipline)
    assert agents[0] in result.receivers


@pytest.mark.parametrize("name,factory,discipline", CASES,
                         ids=[c[0] for c in CASES])
def test_rejects_invalid_profiles(name, factory, discipline):
    mechanism = factory()
    agents = list(mechanism.agents)
    with pytest.raises(ValueError):
        mechanism.run({a: -1.0 for a in agents})
    with pytest.raises(ValueError):
        mechanism.run({agents[0]: 1.0})  # missing agents
