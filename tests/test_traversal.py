"""Unit tests for repro.graphs.traversal."""

from repro.graphs.adjacency import DiGraph, Graph
from repro.graphs.traversal import (
    bfs_numbering,
    bfs_order,
    bfs_parents,
    connected_components,
    dfs_order,
    is_connected,
    reachable_set,
    weakly_connected_components,
)


def path_graph(n):
    g = Graph()
    for i in range(n - 1):
        g.add_edge(i, i + 1, 1.0)
    return g


class TestBFS:
    def test_order_on_path(self):
        g = path_graph(5)
        assert bfs_order(g, 0) == [0, 1, 2, 3, 4]
        assert bfs_order(g, 2)[0] == 2

    def test_parents_form_tree(self):
        g = path_graph(4)
        g.add_edge(0, 3, 1.0)
        parents = bfs_parents(g, 0)
        assert parents[0] is None
        assert parents[3] == 0  # direct edge found at depth 1
        assert parents[2] in (1, 3)

    def test_numbering_starts_at_zero(self):
        g = path_graph(3)
        numbering = bfs_numbering(g, 0)
        assert numbering == {0: 0, 1: 1, 2: 2}

    def test_unreachable_not_included(self):
        g = Graph()
        g.add_edge(0, 1, 1.0)
        g.add_node(2)
        assert set(bfs_order(g, 0)) == {0, 1}
        assert reachable_set(g, 2) == {2}

    def test_directed_respects_orientation(self):
        g = DiGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 1, 1.0)
        assert set(bfs_order(g, 0)) == {0, 1}
        assert set(bfs_order(g, 2)) == {2, 1}


class TestDFS:
    def test_preorder_on_tree(self):
        g = Graph()
        for u, v in [(0, 1), (0, 2), (1, 3)]:
            g.add_edge(u, v, 1.0)
        order = dfs_order(g, 0)
        assert order[0] == 0 and set(order) == {0, 1, 2, 3}
        # Child subtree fully visited before the next sibling.
        assert order.index(3) < order.index(2) or order.index(2) < order.index(1)


class TestComponents:
    def test_connected_components(self):
        g = path_graph(3)
        g.add_edge(10, 11, 1.0)
        comps = sorted(connected_components(g), key=len)
        assert [sorted(c) for c in comps] == [[10, 11], [0, 1, 2]]

    def test_weakly_connected(self):
        g = DiGraph()
        g.add_edge(0, 1, 1.0)
        g.add_edge(2, 1, 1.0)
        comps = weakly_connected_components(g)
        assert len(comps) == 1 and comps[0] == {0, 1, 2}

    def test_is_connected(self):
        g = path_graph(4)
        assert is_connected(g)
        assert is_connected(g, nodes=[0, 1])
        assert not is_connected(g, nodes=[0, 2])  # 1 missing breaks the path
        assert is_connected(Graph())  # vacuous
