"""Scaling-path tests: auto backend dispatch, terminal-sourced NWST
distance columns, and the large-n axiom audit.

The fast tests pin the dispatch/equivalence contracts at small sizes
(thresholds monkeypatched down); the ``slow``-marked audit prices a real
n=500 grid through the registry and requires zero axiom violations plus
the approx family's declared 2x budget-balance bound.
"""

import dataclasses

import numpy as np
import pytest

import repro.engine.backend as backend_mod
from repro.api import ScenarioSpec
from repro.api.registry import registered
from repro.api.session import MulticastSession
from repro.engine.backend import as_array_backend
from repro.engine.dense import CSRGraph, DenseGraph
from repro.graphs.adjacency import Graph
from repro.graphs.nwst import GreedySpiderSolver, find_min_ratio_spider
from repro.mechanism.properties import audit_profile_results


def sparse_graph(n, extra=0, seed=0):
    g = Graph()
    g.add_nodes(range(n))
    rng = np.random.default_rng(seed)
    for i in range(n - 1):
        g.add_edge(i, i + 1, float(rng.uniform(0.5, 2.0)))
    for _ in range(extra):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            g.add_edge(int(u), int(v), float(rng.uniform(0.5, 2.0)))
    return g


class TestAutoBackend:
    def test_small_graph_densifies(self):
        assert isinstance(as_array_backend(sparse_graph(10), prefer="auto"),
                          DenseGraph)

    def test_large_sparse_routes_to_csr(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "AUTO_CSR_MIN_NODES", 16)
        assert isinstance(as_array_backend(sparse_graph(32), prefer="auto"),
                          CSRGraph)

    def test_large_dense_still_densifies(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "AUTO_CSR_MIN_NODES", 16)
        g = Graph()
        g.add_nodes(range(24))
        for i in range(24):
            for j in range(i + 1, 24):
                g.add_edge(i, j, 1.0)
        assert isinstance(as_array_backend(g, prefer="auto"), DenseGraph)

    def test_force_overrides_auto(self, monkeypatch):
        monkeypatch.setattr(backend_mod, "AUTO_CSR_MIN_NODES", 16)
        g = sparse_graph(32)
        assert isinstance(as_array_backend(g, prefer="dense"), DenseGraph)
        assert isinstance(as_array_backend(g, prefer="csr"), CSRGraph)

    def test_unknown_preference_rejected(self):
        with pytest.raises(ValueError, match="preference"):
            as_array_backend(sparse_graph(5), prefer="sparse")

    def test_non_contiguous_labels_stay_none(self):
        g = Graph()
        g.add_nodes(["a", "b"])
        g.add_edge("a", "b", 1.0)
        assert as_array_backend(g, prefer="auto") is None


class TestNWSTDistanceMode:
    def instance(self, seed, n=24, k=6):
        g = sparse_graph(n, extra=n, seed=seed)
        rng = np.random.default_rng(seed + 1)
        terms = sorted(int(t) for t in rng.choice(n, size=k, replace=False))
        w = {i: float(rng.uniform(0.1, 2.0)) for i in range(n)}
        for t in terms:
            w[t] = 0.0
        return g, w, terms

    @pytest.mark.parametrize("seed", range(4))
    def test_terminal_matches_full_classic(self, seed):
        g, w, terms = self.instance(seed)
        full = find_min_ratio_spider(g, w, terms, mode="classic",
                                     distance_mode="full")
        term = find_min_ratio_spider(g, w, terms, mode="classic",
                                     distance_mode="terminal")
        assert (full is None) == (term is None)
        if full is not None:
            assert term.cost == pytest.approx(full.cost)
            assert term.terminals == full.terminals
            assert term.center == full.center

    def test_terminal_rejected_for_branch_dp(self):
        g, w, terms = self.instance(0)
        with pytest.raises(ValueError, match="branch subset DP"):
            find_min_ratio_spider(g, w, terms, mode="branch",
                                  distance_mode="terminal")

    def test_branch_downgrade_unlocks_terminal_columns(self, monkeypatch):
        import repro.graphs.nwst as nwst_mod

        monkeypatch.setattr(nwst_mod, "TERMINAL_COLUMNS_MIN_NODES", 8)
        g, w, terms = self.instance(1, n=40, k=20)
        # k > max_dp_terminals downgrades branch to the classic prefix
        # search, where auto may take the terminal-sourced path
        auto = find_min_ratio_spider(g, w, terms, mode="branch",
                                     distance_mode="auto")
        full = find_min_ratio_spider(g, w, terms, mode="branch",
                                     distance_mode="full")
        assert auto.cost == pytest.approx(full.cost)
        assert auto.terminals == full.terminals

    def test_auto_below_threshold_is_bit_identical_to_full(self):
        g, w, terms = self.instance(2)
        auto = find_min_ratio_spider(g, w, terms, mode="branch",
                                     distance_mode="auto")
        full = find_min_ratio_spider(g, w, terms, mode="branch",
                                     distance_mode="full")
        assert auto == full

    def test_unknown_mode_rejected(self):
        g, w, terms = self.instance(3)
        with pytest.raises(ValueError, match="distance mode"):
            find_min_ratio_spider(g, w, terms, distance_mode="reverse")

    @pytest.mark.parametrize("distance_mode", ["full", "terminal"])
    def test_solver_end_to_end(self, distance_mode):
        g, w, terms = self.instance(4)
        sol = GreedySpiderSolver(mode="classic",
                                 distance_mode=distance_mode).solve(g, w, terms)
        assert sol.cost <= sol.charged + 1e-9


@pytest.mark.slow
class TestLargeNAudit:
    """The n=500 acceptance grid: every scalable mechanism must audit
    clean (zero axiom violations; the approx family additionally within
    its declared 2x budget-balance bound)."""

    def test_n500_grid_audits_clean(self):
        spec = dataclasses.replace(
            ScenarioSpec.from_random(n=500, alpha=2.0, seed=0),
            receivers=tuple(range(1, 13)))
        sess = MulticastSession(spec)
        rng = np.random.default_rng(0)
        profiles = [{i: float(rng.uniform(0.0, 40.0)) for i in sess.agents()}
                    for _ in range(4)]
        for name in ("tree-shapley", "jv", "jv-approx", "bird-approx"):
            entry = registered(name)
            results = sess.run_batch(name, profiles)
            report = audit_profile_results(
                sess.mechanism(name), profiles, results,
                axioms=entry.guarantees, bb_bound=entry.bb_factor)
            assert report["violations"] == [], (name, report)
            if entry.bb_factor is not None:
                assert report["bb_factor_max"] <= entry.bb_factor + 1e-7
