"""The request-log line format, pinned.

One JSON line per priced request is an *interface*: fleet operators
join these lines against span logs (``trace_id``) and across shards
(``shard``), so the exact key set and rendering are pinned here — a new
field is a deliberate schema change, not an accident.
"""

from __future__ import annotations

import asyncio
import io
import json

from repro.api import ScenarioSpec
from repro.observability import RequestLogger, SpanRecorder
from repro.service import CostSharingService, ServiceClient


def _spec(seed: int) -> ScenarioSpec:
    return ScenarioSpec.from_random(n=6, alpha=2.0, seed=seed, side=5.0)


def _profiles(spec):
    return [{a: 4.0 for a in spec.agents()}]


def _priced_line(service_kwargs: dict) -> tuple[dict, str, dict]:
    """Price one request; returns (parsed log line, raw line, headers)."""
    spec = _spec(0)
    stream = io.StringIO()
    service = CostSharingService(
        batch_window=0.0, request_log=RequestLogger(stream),
        **service_kwargs)

    async def go():
        client = ServiceClient(service)
        status, _, headers = await service.dispatch(
            "POST", "/v1/run",
            json.dumps({"scenario": spec.to_dict(), "mechanism": "jv",
                        "profiles": [{str(a): 4.0 for a in spec.agents()}]},
                       sort_keys=True).encode("utf-8"))
        assert status == 200
        del client
        return headers

    headers = asyncio.run(go())
    raw, = stream.getvalue().splitlines()
    return json.loads(raw), raw, headers


def test_untraced_unsharded_line_key_set_is_pinned():
    line, raw, _ = _priced_line({})
    assert set(line) == {"ts", "id", "kind", "scenario", "mechanism",
                         "profiles", "status", "stages_ms"}
    # Compact, key-sorted JSON — greppable and diff-stable.
    assert raw == json.dumps(line, sort_keys=True, separators=(",", ":"))
    assert line["kind"] == "run" and line["status"] == 200
    assert set(line["stages_ms"]) == {"parse", "queue", "build", "execute",
                                      "serialize"}


def test_traced_sharded_line_gains_trace_id_and_shard():
    spans = SpanRecorder()
    line, raw, headers = _priced_line({"shard": "w3", "spans": spans})
    assert set(line) == {"ts", "id", "kind", "scenario", "mechanism",
                         "profiles", "status", "stages_ms", "shard",
                         "trace_id"}
    assert raw == json.dumps(line, sort_keys=True, separators=(",", ":"))
    assert line["shard"] == "w3"
    # The logged trace id is the join key: it matches both the response
    # header and the recorded request span.
    assert line["trace_id"] == headers["X-Repro-Trace-Id"]
    request_span, = spans.recent("request")
    assert line["trace_id"] == request_span.trace_id
    assert len(line["trace_id"]) == 32
    int(line["trace_id"], 16)


def test_shard_without_tracing_logs_shard_but_no_trace_id():
    line, _, headers = _priced_line({"shard": "w1"})
    assert line["shard"] == "w1"
    assert "trace_id" not in line
    assert "X-Repro-Trace-Id" not in headers
