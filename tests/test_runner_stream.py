"""Streaming sink iteration: ``iter_rows`` == ``read_rows`` == old ``_scan``.

``summarize_jsonl`` streams rows through ``iter_rows`` in fixed-size
chunks; these tests pin the behaviour contract on every corruption shape
the append-only writer can produce, with chunk sizes small enough that
single rows span many read chunks.
"""

from __future__ import annotations

import json

import pytest

from repro.runner import iter_rows, read_rows, summarize_jsonl, summarize_rows
from repro.runner.sink import _scan


def _write(path, text: str) -> str:
    path.write_bytes(text.encode("utf-8"))
    return str(path)


def _row(i, extra=None):
    row = {"item": f"it-{i:04d}", "layout": ["uniform", "ring"][i % 2],
           "mechanism": {"name": "jv", "params": {}}, "n": 6, "alpha": 2.0,
           "summary": {"profiles": 2, "mean_receivers": 2.5, "mean_charged": 1.0 + i,
                       "mean_cost": 1.0 + i, "mean_bb": 1.0, "worst_bb": 1.0}}
    if extra:
        row.update(extra)
    return row


@pytest.mark.parametrize("chunk_size", [1, 7, 64, 1 << 16])
def test_iter_rows_matches_read_rows_on_clean_file(tmp_path, chunk_size):
    rows = [_row(i) for i in range(20)]
    path = _write(tmp_path / "clean.jsonl",
                  "".join(json.dumps(r, sort_keys=True) + "\n" for r in rows))
    assert list(iter_rows(path, chunk_size=chunk_size)) == rows
    assert read_rows(path) == rows
    assert _scan(tmp_path / "clean.jsonl")[0] == rows


@pytest.mark.parametrize("chunk_size", [1, 5, 64])
def test_chunk_boundary_spanning_rows(tmp_path, chunk_size):
    # Rows far larger than the chunk size: every row spans many chunks.
    rows = [_row(i, extra={"padding": "x" * 300}) for i in range(8)]
    path = _write(tmp_path / "wide.jsonl",
                  "".join(json.dumps(r, sort_keys=True) + "\n" for r in rows))
    assert list(iter_rows(path, chunk_size=chunk_size)) == rows


@pytest.mark.parametrize("tail", [
    '{"item": "it-9999", "trunca',      # killed mid-write, no newline
    '{"item": }\n',                     # malformed but newline-terminated
    '{"item": "it-9999"}',              # complete JSON but no newline
    "\n\n",                             # stray blank lines
])
def test_tail_corruption_semantics_match_scan(tmp_path, tail):
    rows = [_row(i) for i in range(5)]
    body = "".join(json.dumps(r, sort_keys=True) + "\n" for r in rows)
    path = _write(tmp_path / "tail.jsonl", body + tail)
    expected, _ = _scan(tmp_path / "tail.jsonl")
    for chunk_size in (3, 1 << 16):
        assert list(iter_rows(path, chunk_size=chunk_size)) == expected == rows


def test_malformed_interior_line_stops_the_stream(tmp_path):
    rows = [_row(i) for i in range(4)]
    lines = [json.dumps(r, sort_keys=True) for r in rows]
    lines.insert(2, "{broken")  # complete line, malformed JSON
    path = _write(tmp_path / "mid.jsonl", "\n".join(lines) + "\n")
    expected, _ = _scan(tmp_path / "mid.jsonl")
    assert list(iter_rows(path, chunk_size=8)) == expected == rows[:2]


def test_missing_and_empty_files(tmp_path):
    assert list(iter_rows(tmp_path / "absent.jsonl")) == []
    assert list(iter_rows(_write(tmp_path / "empty.jsonl", ""))) == []
    with pytest.raises(ValueError):
        list(iter_rows(tmp_path / "absent.jsonl", chunk_size=0))


def test_summarize_jsonl_streams_identically(tmp_path):
    rows = [_row(i) for i in range(30)]
    one = _write(tmp_path / "a.jsonl",
                 "".join(json.dumps(r, sort_keys=True) + "\n" for r in rows[:17]))
    two = _write(tmp_path / "b.jsonl",
                 "".join(json.dumps(r, sort_keys=True) + "\n" for r in rows[17:])
                 + '{"partial": tr')  # truncated tail on the second shard
    whole = summarize_rows(rows)
    assert summarize_jsonl([one, two]) == whole
    # A chunk size smaller than any row still reproduces the summary.
    assert summarize_jsonl([one, two], chunk_size=3) == whole
    # Single-path form and by= grouping stay behaviour-identical.
    assert summarize_jsonl(one, by=("layout",)) == summarize_rows(rows[:17], by=("layout",))
