"""The metrics core: instruments, exposition golden tests, atomicity.

Three contracts are pinned here: the Prometheus text exposition format
(escaping, label ordering, the ``_bucket``/``_sum``/``_count``
invariants), the registry's get-or-create registration semantics, and
the single-lock atomicity story — parallel observers must account for
exactly what serial observers would, and compound updates taken under
``registry.lock`` must be indivisible in every snapshot.
"""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.observability import (
    BATCH_OCCUPANCY_BUCKETS,
    DEFAULT_LATENCY_BUCKETS,
    NULL_REGISTRY,
    MetricsRegistry,
    NullRegistry,
    default_registry,
    format_value,
    parse_exposition,
    sample_total,
    stage_histogram,
)


# -- value formatting ---------------------------------------------------------
@pytest.mark.parametrize("value, text", [
    (0.0, "0"), (3.0, "3"), (-2.0, "-2"), (2.5, "2.5"), (0.0005, "0.0005"),
    (math.inf, "+Inf"), (-math.inf, "-Inf"), (float("nan"), "NaN"),
])
def test_format_value(value, text):
    assert format_value(value) == text


# -- instruments --------------------------------------------------------------
def test_counter_is_monotone():
    registry = MetricsRegistry()
    counter = registry.counter("c_total", "help")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError, match="only go up"):
        counter.inc(-1)


def test_gauge_moves_both_ways_and_keeps_high_water():
    registry = MetricsRegistry()
    gauge = registry.gauge("g")
    gauge.set(4.0)
    gauge.inc()
    gauge.dec(2.0)
    assert gauge.value == 3.0
    gauge.set_max(10.0)
    gauge.set_max(1.0)
    assert gauge.value == 10.0


def test_histogram_le_bucketing_is_upper_inclusive():
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=(0.5, 1.0))
    for value in (0.25, 0.5, 0.75, 1.0, 2.0):
        hist.observe(value)
    # 0.25 and exactly-0.5 land in le=0.5; 0.75 and exactly-1.0 in le=1;
    # 2.0 overflows into +Inf only.
    assert hist.cumulative_counts() == [2, 4, 5]
    assert hist.count == 5
    assert hist.sum == pytest.approx(4.5)


def test_histogram_invariants_hold_for_any_observations():
    registry = MetricsRegistry()
    hist = registry.histogram("h", buckets=DEFAULT_LATENCY_BUCKETS)
    for value in (0.0, 1e-6, 0.003, 0.4, 99.0):
        hist.observe(value)
    cumulative = hist.cumulative_counts()
    assert all(a <= b for a, b in zip(cumulative, cumulative[1:]))
    assert cumulative[-1] == hist.count  # +Inf bucket == count


def test_histogram_rejects_bad_buckets():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="strictly increasing"):
        registry.histogram("bad", buckets=(1.0, 1.0))
    with pytest.raises(ValueError, match="strictly increasing"):
        registry.histogram("bad2", buckets=())


# -- families and registration -----------------------------------------------
def test_labels_must_name_exactly_the_declared_set():
    registry = MetricsRegistry()
    family = registry.counter("f_total", labels=("method", "path"))
    family.labels(method="GET", path="/x").inc()
    with pytest.raises(ValueError, match="takes labels"):
        family.labels(method="GET")
    with pytest.raises(ValueError, match="takes labels"):
        family.labels(method="GET", path="/x", extra="no")


def test_unlabeled_passthrough_and_labeled_guard():
    registry = MetricsRegistry()
    plain = registry.counter("plain_total")
    plain.inc(2)
    assert plain.value == 2
    labeled = registry.counter("labeled_total", labels=("k",))
    with pytest.raises(ValueError, match="labeled by"):
        labeled.inc()


def test_registration_is_get_or_create():
    registry = MetricsRegistry()
    first = registry.counter("same_total", "help", labels=("k",))
    second = registry.counter("same_total", "other help", labels=("k",))
    assert first is second
    assert first.labels(k="a") is second.labels(k="a")


def test_conflicting_redefinition_raises():
    registry = MetricsRegistry()
    registry.counter("x_total", labels=("k",))
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("x_total", labels=("k",))
    with pytest.raises(ValueError, match="already registered"):
        registry.counter("x_total", labels=("other",))
    registry.histogram("h", buckets=(1.0, 2.0))
    with pytest.raises(ValueError, match="already registered"):
        registry.histogram("h", buckets=(1.0, 3.0))


def test_name_and_label_validation():
    registry = MetricsRegistry()
    with pytest.raises(ValueError, match="invalid metric name"):
        registry.counter("0bad")
    with pytest.raises(ValueError, match="invalid label name"):
        registry.counter("ok_total", labels=("bad-label",))
    with pytest.raises(ValueError, match="invalid label name"):
        registry.counter("ok2_total", labels=("__reserved",))
    with pytest.raises(ValueError, match="reserves the 'le' label"):
        registry.histogram("h", labels=("le",))


def test_stage_histogram_is_one_shared_family():
    registry = MetricsRegistry()
    assert stage_histogram(registry) is stage_histogram(registry)


def test_default_registry_is_process_wide():
    assert default_registry() is default_registry()
    assert isinstance(default_registry(), MetricsRegistry)


# -- exposition golden tests --------------------------------------------------
def _demo_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    requests = registry.counter("demo_requests_total", "Requests handled",
                                labels=("code",))
    requests.labels(code="200").inc(3)
    requests.labels(code="404").inc()
    registry.gauge("demo_temp", "Temp").set(2.5)
    lat = registry.histogram("demo_lat", "Latency", buckets=(0.5, 1.0))
    for value in (0.25, 0.5, 2.0):
        lat.observe(value)
    return registry


GOLDEN = """\
# HELP demo_lat Latency
# TYPE demo_lat histogram
demo_lat_bucket{le="0.5"} 2
demo_lat_bucket{le="1"} 2
demo_lat_bucket{le="+Inf"} 3
demo_lat_sum 2.75
demo_lat_count 3
# HELP demo_requests_total Requests handled
# TYPE demo_requests_total counter
demo_requests_total{code="200"} 3
demo_requests_total{code="404"} 1
# HELP demo_temp Temp
# TYPE demo_temp gauge
demo_temp 2.5
"""


def test_render_matches_golden_exposition():
    assert _demo_registry().render() == GOLDEN


def test_render_label_order_follows_declaration_and_children_sort():
    registry = MetricsRegistry()
    family = registry.counter("multi_total", labels=("method", "path"))
    # Children are created out of order but render value-sorted, and the
    # labels inside the braces follow the declaration order.
    family.labels(path="/b", method="POST").inc()
    family.labels(path="/a", method="GET").inc()
    assert registry.render() == (
        "# TYPE multi_total counter\n"
        'multi_total{method="GET",path="/a"} 1\n'
        'multi_total{method="POST",path="/b"} 1\n')


def test_render_escapes_label_values_and_help():
    registry = MetricsRegistry()
    family = registry.counter("esc_total", 'line\none "quoted" \\ slash',
                              labels=("k",))
    family.labels(k='a"b\\c\nd').inc()
    text = registry.render()
    assert '# HELP esc_total line\\none "quoted" \\\\ slash' in text
    assert 'esc_total{k="a\\"b\\\\c\\nd"} 1' in text


def test_empty_registry_renders_empty():
    assert MetricsRegistry().render() == ""
    assert MetricsRegistry().snapshot() == {}


def test_parse_exposition_round_trips_render():
    registry = _demo_registry()
    parsed = parse_exposition(registry.render())
    assert parsed["types"] == {"demo_lat": "histogram",
                               "demo_requests_total": "counter",
                               "demo_temp": "gauge"}
    assert sample_total(parsed, "demo_requests_total") == 4
    assert sample_total(parsed, "demo_requests_total", {"code": "200"}) == 3
    assert sample_total(parsed, "demo_temp") == 2.5
    assert sample_total(parsed, "demo_lat_count") == 3
    assert sample_total(parsed, "demo_lat_sum") == 2.75
    assert sample_total(parsed, "demo_lat_bucket", {"le": "1"}) == 2
    assert sample_total(parsed, "demo_lat_bucket", {"le": "+Inf"}) == 3


def test_parse_exposition_unescapes_label_values():
    registry = MetricsRegistry()
    value = 'a"b\\c\nd,e'
    registry.counter("esc_total", labels=("k",)).labels(k=value).inc()
    parsed = parse_exposition(registry.render())
    (labels, count), = parsed["samples"]["esc_total"]
    assert labels == {"k": value}
    assert count == 1


def test_snapshot_is_json_serializable_with_cumulative_buckets():
    snapshot = _demo_registry().snapshot()
    assert json.loads(json.dumps(snapshot)) == snapshot
    lat = snapshot["demo_lat"]
    assert lat["type"] == "histogram"
    series, = lat["series"]
    assert series["buckets"] == {"0.5": 2, "1": 2, "+Inf": 3}
    assert series["count"] == 3
    assert snapshot["demo_requests_total"]["series"] == [
        {"labels": {"code": "200"}, "value": 3.0},
        {"labels": {"code": "404"}, "value": 1.0},
    ]


# -- concurrency --------------------------------------------------------------
def test_parallel_observes_equal_serial_totals():
    registry = MetricsRegistry()
    counter = registry.counter("hammer_total")
    hist = registry.histogram("hammer_lat", buckets=BATCH_OCCUPANCY_BUCKETS)
    n_threads, n_iterations = 8, 1000

    def work() -> None:
        for i in range(n_iterations):
            counter.inc()
            hist.observe(float(i % 4))

    threads = [threading.Thread(target=work) for _ in range(n_threads)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()

    expected = n_threads * n_iterations
    assert counter.value == expected
    assert hist.count == expected
    assert hist.cumulative_counts()[-1] == expected
    # le=1 holds exactly the 0.0 and 1.0 observations.
    assert hist.cumulative_counts()[0] == expected // 2
    assert hist.sum == pytest.approx(n_threads * sum(
        float(i % 4) for i in range(n_iterations)))


def test_compound_updates_are_atomic_with_respect_to_snapshots():
    registry = MetricsRegistry()
    left = registry.counter("pair_left_total")
    right = registry.counter("pair_right_total")
    stop = threading.Event()

    def writer() -> None:
        while not stop.is_set():
            with registry.lock:
                left.inc()
                right.inc()

    thread = threading.Thread(target=writer)
    thread.start()
    try:
        torn = []
        for _ in range(300):
            snapshot = registry.snapshot()
            a = snapshot["pair_left_total"]["series"][0]["value"]
            b = snapshot["pair_right_total"]["series"][0]["value"]
            if a != b:
                torn.append((a, b))
        assert torn == []
    finally:
        stop.set()
        thread.join()


# -- the null registry --------------------------------------------------------
def test_null_registry_answers_the_whole_api_with_noops():
    registry = NullRegistry()
    counter = registry.counter("c_total", "help", labels=("k",))
    counter.labels(k="x").inc(5)
    counter.inc()
    hist = registry.histogram("h", labels=("stage",))
    hist.labels(stage="parse").observe(1.0)
    gauge = registry.gauge("g")
    gauge.set(3.0)
    gauge.set_max(9.0)
    gauge.dec()
    assert counter.value == 0.0
    assert hist.sum == 0.0 and hist.count == 0
    assert registry.snapshot() == {}
    assert registry.render() == ""
    assert registry.families() == []
    with registry.lock:  # usable as a context manager like the real one
        pass
    assert isinstance(NULL_REGISTRY, NullRegistry)


# -- fleet exposition surgery -------------------------------------------------
def _registry_with_traffic() -> MetricsRegistry:
    registry = MetricsRegistry()
    counter = registry.counter("repro_reqs_total", "requests",
                               labels=("path",))
    counter.labels(path="/v1/run").inc(3)
    registry.gauge("repro_up", "liveness").set(1)
    registry.histogram("repro_lat", "latency",
                       buckets=(0.1, 1.0)).observe(0.05)
    return registry


def test_relabel_exposition_injects_labels_without_touching_values():
    from repro.observability import relabel_exposition

    text = _registry_with_traffic().render()
    relabeled = relabel_exposition(text, {"shard": "w0"})
    parsed = parse_exposition(relabeled)
    # Every sample carries the shard label; totals are untouched.
    assert sample_total(parsed, "repro_reqs_total", {"shard": "w0"}) == 3
    assert sample_total(parsed, "repro_reqs_total",
                        {"shard": "w0", "path": "/v1/run"}) == 3
    assert sample_total(parsed, "repro_up", {"shard": "w0"}) == 1
    assert sample_total(parsed, "repro_lat_count", {"shard": "w0"}) == 1
    # Comment lines pass through untouched; no unlabeled samples remain.
    for line in relabeled.splitlines():
        if line and not line.startswith("#"):
            assert 'shard="w0"' in line
    assert relabel_exposition(text, {}) == text


def test_relabel_exposition_survives_spaces_inside_label_values():
    from repro.observability import relabel_exposition

    registry = MetricsRegistry()
    registry.counter("c_total", "c", labels=("k",)).labels(
        k="a value, with spaces").inc(2)
    relabeled = relabel_exposition(registry.render(), {"shard": "w1"})
    parsed = parse_exposition(relabeled)
    assert sample_total(parsed, "c_total",
                        {"shard": "w1", "k": "a value, with spaces"}) == 2


def test_merge_expositions_dedupes_headers_and_keeps_all_samples():
    from repro.observability import merge_expositions, relabel_exposition

    parts = [relabel_exposition(_registry_with_traffic().render(),
                                {"shard": shard})
             for shard in ("w0", "w1", "w2")]
    merged = merge_expositions(parts)
    assert merged.count("# HELP repro_reqs_total") == 1
    assert merged.count("# TYPE repro_reqs_total") == 1
    parsed = parse_exposition(merged)
    # Per-shard series survive; the unqualified total sums the fleet.
    assert sample_total(parsed, "repro_reqs_total") == 9
    for shard in ("w0", "w1", "w2"):
        assert sample_total(parsed, "repro_reqs_total",
                            {"shard": shard}) == 3
    assert merge_expositions([]) == ""
