"""Tests for repro.mechanism.core (core of a cost game, least core)."""

import pytest

from repro.mechanism.core import (
    core_allocation,
    core_is_empty,
    least_core_value,
    verify_core_allocation,
)


def three_agent_majority():
    """Classic empty-core cost game: any pair can serve itself for 1, the
    grand coalition costs 2 (> 3/2 achievable by pairs)."""

    def cost(R):
        R = frozenset(R)
        if len(R) <= 1:
            return 1.0 if R else 0.0
        if len(R) == 2:
            return 1.0
        return 2.0

    return cost


class TestCoreAllocation:
    def test_submodular_game_has_core(self):
        # Max game: the allocation charging everything to the max agent works.
        a = {1: 1.0, 2: 2.0, 3: 7.0}
        cost = lambda R: max((a[i] for i in R), default=0.0)
        f = core_allocation([1, 2, 3], cost)
        assert f is not None
        assert verify_core_allocation(f, [1, 2, 3], cost)
        assert sum(f.values()) == pytest.approx(7.0)

    def test_empty_core_detected(self):
        cost = three_agent_majority()
        assert core_is_empty([1, 2, 3], cost)
        assert core_allocation([1, 2, 3], cost) is None

    def test_additive_game_core_is_unique(self):
        cost = lambda R: float(sum(R))
        f = core_allocation([1, 2, 3], cost)
        assert f is not None
        for i in (1, 2, 3):
            assert f[i] == pytest.approx(float(i))

    def test_empty_agent_list(self):
        assert core_allocation([], lambda R: 0.0) == {}


class TestVerify:
    def test_rejects_coalition_violation(self):
        a = {1: 1.0, 2: 2.0}
        cost = lambda R: max((a[i] for i in R), default=0.0)
        # Charges agent 1 above its standalone cost.
        assert not verify_core_allocation({1: 1.5, 2: 0.5}, [1, 2], cost)

    def test_rejects_unbalanced_total(self):
        cost = lambda R: float(len(R))
        assert not verify_core_allocation({1: 0.2, 2: 0.2}, [1, 2], cost)

    def test_rejects_negative(self):
        cost = lambda R: float(len(R))
        assert not verify_core_allocation({1: -0.5, 2: 2.5}, [1, 2], cost)


class TestLeastCore:
    def test_positive_eps_iff_empty(self):
        eps_empty, _ = least_core_value([1, 2, 3], three_agent_majority())
        assert eps_empty > 1e-6
        a = {1: 1.0, 2: 2.0, 3: 7.0}
        eps_full, f = least_core_value([1, 2, 3], lambda R: max((a[i] for i in R), default=0.0))
        assert eps_full <= 1e-8
        assert sum(f.values()) == pytest.approx(7.0)

    def test_majority_game_exact_eps(self):
        # Balanced-collection bound: eps* = (3*C(pair)/2 - C(N)) / ... for
        # this game: allocations sum to 2; best spread is 2/3 each; each
        # pair pays 4/3 vs cost 1 -> eps = 1/3.
        eps, _ = least_core_value([1, 2, 3], three_agent_majority())
        assert eps == pytest.approx(1 / 3, abs=1e-6)
