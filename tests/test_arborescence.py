"""Tests for repro.graphs.arborescence (networkx Edmonds as oracle)."""

import networkx as nx
import pytest

from repro.graphs.adjacency import DiGraph
from repro.graphs.arborescence import arborescence_weight, minimum_arborescence
from repro.graphs.random_graphs import as_rng


def random_digraph(n, seed, p=0.5):
    rng = as_rng(seed)
    g = DiGraph()
    g.add_nodes(range(n))
    # Guarantee reachability from 0 via a random out-tree, then extra arcs.
    for v in range(1, n):
        u = int(rng.integers(0, v))
        g.add_edge(u, v, float(rng.uniform(1, 10)))
    for u in range(n):
        for v in range(n):
            if u != v and rng.random() < p:
                g.add_edge(u, v, float(rng.uniform(1, 10)))
    return g


def to_nx(g: DiGraph) -> nx.DiGraph:
    h = nx.DiGraph()
    h.add_nodes_from(g.nodes())
    for u, v, w in g.edges():
        h.add_edge(u, v, weight=w)
    return h


class TestMinimumArborescence:
    def test_hand_instance_with_cycle_contraction(self):
        # Classic instance where the greedy best-in-edges form a cycle.
        g = DiGraph()
        arcs = [("r", "a", 10), ("r", "b", 10), ("a", "b", 1), ("b", "a", 1),
                ("a", "c", 4), ("b", "c", 8)]
        for u, v, w in arcs:
            g.add_edge(u, v, float(w))
        result = minimum_arborescence(g, "r")
        assert arborescence_weight(result) == pytest.approx(15.0)  # r->a, a->b, a->c

    def test_structure_is_arborescence(self):
        g = random_digraph(9, seed=2)
        arcs = minimum_arborescence(g, 0)
        heads = [v for _, v, _ in arcs]
        assert sorted(heads) == list(range(1, 9))  # each non-root exactly once
        # Every node reachable from the root through the chosen arcs.
        t = DiGraph()
        t.add_nodes(range(9))
        for u, v, w in arcs:
            t.add_edge(u, v, w)
        from repro.graphs.traversal import reachable_set

        assert reachable_set(t, 0) == set(range(9))

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_networkx(self, seed):
        g = random_digraph(10, seed=seed)
        mine = arborescence_weight(minimum_arborescence(g, 0))
        # networkx Edmonds on the subgraph without arcs into the root.
        h = to_nx(g)
        h.remove_edges_from([(u, 0) for u in list(h.predecessors(0))])
        expected = nx.algorithms.tree.branchings.minimum_spanning_arborescence(
            h, attr="weight"
        ).size(weight="weight")
        assert mine == pytest.approx(expected)

    def test_unreachable_raises(self):
        g = DiGraph()
        g.add_edge(0, 1, 1.0)
        g.add_node(2)
        with pytest.raises(ValueError):
            minimum_arborescence(g, 0)

    def test_missing_root_raises(self):
        g = DiGraph()
        g.add_edge(0, 1, 1.0)
        with pytest.raises(ValueError):
            minimum_arborescence(g, 99)

    def test_trivial_single_node(self):
        g = DiGraph()
        g.add_node("r")
        assert minimum_arborescence(g, "r") == []
