"""Dynamic multicast sessions — epoch-based agent churn (the wire format).

The paper's mechanisms (sections 2-3) price a *static* receiver set, but
real wireless multicast groups churn: receivers join, leave and move
between rounds.  A :class:`DynamicScenarioSpec` extends
:class:`~repro.api.spec.ScenarioSpec` with a churn model
(:class:`ChurnSpec`): a number of epochs plus join/leave/move rates and a
churn seed.  The per-epoch event list is *derived, not stored* — a pure
function of the base scenario's wire form, the churn parameters and the
epoch index (SHA-256 seeded, like the sweep runner's profile seeds) — so
the spec stays a compact, frozen, JSON-round-trippable description and
every process replays the exact same event sequence.

Epoch 0 is the base state: every agent active, at the base layout's
positions.  Each later epoch applies its event delta to the previous
state:

* ``join``  — an inactive agent becomes an active receiver candidate;
* ``leave`` — an active agent withdraws (it keeps its station, but
  reports zero utility until it rejoins);
* ``move``  — an agent's station position jitters by a Gaussian step of
  std ``move_scale`` per coordinate (Euclidean scenarios only — a
  ``matrix`` scenario has no geometry, so ``move_rate`` must be 0).

:meth:`DynamicScenarioSpec.materialize` renders any epoch as a plain
static :class:`ScenarioSpec` (an explicit-``points`` layout for Euclidean
scenarios) — the reference a cold
:class:`~repro.api.session.MulticastSession` is built from, and the
object the incremental :class:`~repro.dynamic.session.DynamicSession`
must reproduce bit-for-bit.

Extending the horizon is prefix-stable: the events of epoch ``e`` do not
depend on ``churn.epochs``, so the same spec with more epochs replays the
same history and keeps going.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from dataclasses import dataclass, fields

import numpy as np

from repro.api.spec import ScenarioSpec, seed_from_text

EVENT_KINDS = ("join", "leave", "move")


@dataclass(frozen=True)
class ChurnSpec:
    """How a dynamic scenario's receiver set evolves across epochs.

    ``seed`` is the churn seed; ``join_rate``/``leave_rate`` are the
    per-agent per-epoch membership-flip probabilities, ``move_rate`` the
    per-agent per-epoch probability of a position jitter of per-coordinate
    std ``move_scale`` (Euclidean scenarios only).

    The defaults are deliberately *degenerate* — one epoch, zero rates —
    so a :class:`DynamicScenarioSpec` without an explicit churn block is
    exactly its static scenario (nothing is fabricated); any real churn
    must be asked for.
    """

    epochs: int = 1
    seed: int = 0
    join_rate: float = 0.0
    leave_rate: float = 0.0
    move_rate: float = 0.0
    move_scale: float = 0.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "epochs", int(self.epochs))
        object.__setattr__(self, "seed", int(self.seed))
        for name in ("join_rate", "leave_rate", "move_rate", "move_scale"):
            object.__setattr__(self, name, float(getattr(self, name)))
        if self.epochs < 1:
            raise ValueError(f"churn epochs must be >= 1, got {self.epochs}")
        for name in ("join_rate", "leave_rate", "move_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"churn {name} must be in [0, 1], got {rate}")
        if self.move_rate > 0 and self.move_scale <= 0:
            # move_scale is only consulted when moves can actually fire,
            # so "move_scale: 0" is fine as part of disabling mobility.
            raise ValueError(
                f"churn move_scale must be positive when move_rate > 0, "
                f"got {self.move_scale}")

    def identity(self) -> str:
        """The seed-derivation identity: everything but ``epochs`` (so a
        longer horizon replays the same event history, prefix-stable) and
        but ``move_scale`` when moves are disabled (an inert parameter
        must not rewrite the join/leave history)."""
        fields_used: dict = {
            "seed": self.seed, "join_rate": self.join_rate,
            "leave_rate": self.leave_rate, "move_rate": self.move_rate,
        }
        if self.move_rate > 0:
            fields_used["move_scale"] = self.move_scale
        return json.dumps(fields_used, sort_keys=True)

    def to_dict(self) -> dict:
        return {"epochs": self.epochs, "seed": self.seed,
                "join_rate": self.join_rate, "leave_rate": self.leave_rate,
                "move_rate": self.move_rate, "move_scale": self.move_scale}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ChurnSpec":
        known = {f.name for f in fields(cls)}
        stray = sorted(set(data) - known)
        if stray:
            raise ValueError(f"unknown ChurnSpec fields: {stray}")
        return cls(**dict(data))


@dataclass(frozen=True)
class EpochEvent:
    """One churn event: ``join``/``leave``/``move`` of one agent.

    ``position`` is the agent's new coordinates (moves only)."""

    kind: str
    agent: int
    position: tuple | None = None

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "agent": self.agent}
        if self.position is not None:
            out["position"] = list(self.position)
        return out


@dataclass(frozen=True)
class EpochState:
    """The materialized state of one epoch: who is active, where the
    stations sit (``None`` for matrix scenarios), and the event delta
    that produced it from the previous epoch."""

    epoch: int
    active: tuple
    points: tuple | None
    events: tuple

    def event_counts(self) -> dict:
        counts = {kind: 0 for kind in EVENT_KINDS}
        for event in self.events:
            counts[event.kind] += 1
        return counts


@dataclass(frozen=True)
class DynamicScenarioSpec(ScenarioSpec):
    """A :class:`ScenarioSpec` plus a churn model — one dynamic session.

    Everything of the base spec applies unchanged (layouts, alpha, source,
    universal tree); ``churn`` adds the temporal dimension.  The wire form
    is the base spec's dict plus a ``churn`` object, so static specs stay
    readable by :class:`ScenarioSpec` and dynamic ones round-trip through
    :meth:`from_dict`/:meth:`from_json` of this class.
    """

    churn: ChurnSpec | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        churn = self.churn
        if churn is None:
            churn = ChurnSpec()
        elif isinstance(churn, Mapping):
            churn = ChurnSpec.from_dict(churn)
        elif not isinstance(churn, ChurnSpec):
            raise ValueError(f"churn must be a ChurnSpec or mapping, got {type(churn).__name__}")
        object.__setattr__(self, "churn", churn)
        if self.kind == "matrix" and churn.move_rate > 0:
            raise ValueError("matrix scenarios have no geometry: churn.move_rate must be 0")
        if self.receivers is not None:
            # Churn IS the receiver-set model here: an explicit static
            # subset would silently rewrite every epoch's membership draw.
            raise ValueError(
                "dynamic scenarios model the receiver set through churn; "
                "the static receivers field is not supported"
            )
        object.__setattr__(self, "_states", None)
        object.__setattr__(self, "_materialized", {})

    # -- wire format --------------------------------------------------------
    def to_dict(self) -> dict:
        out = super().to_dict()
        out["churn"] = self.churn.to_dict()
        return out

    # -- derived epoch history ----------------------------------------------
    @property
    def n_epochs(self) -> int:
        return self.churn.epochs

    def base_scenario(self) -> ScenarioSpec:
        """The static spec this dynamic one extends (identical fields)."""
        data = super().to_dict()
        data.pop("churn", None)
        return ScenarioSpec.from_dict(data)

    def _epoch_seed(self, epoch: int) -> int:
        return seed_from_text(
            f"{self.base_scenario().to_json()}|churn:{self.churn.identity()}|epoch:{epoch}")

    def _base_points(self) -> tuple | None:
        if self.kind == "matrix":
            return None
        if self.kind == "points":
            return self.points
        from repro.geometry.layouts import layout_points

        coords = layout_points(self.layout, self.n, self.dim, side=self.side,
                               seed=self.seed).coords
        return tuple(tuple(float(x) for x in row) for row in coords)

    def epoch_states(self) -> tuple:
        """Every epoch's :class:`EpochState`, derived once and cached.

        Epoch 0 is the base state (all agents active, base positions);
        epoch ``e`` applies the seeded event delta to epoch ``e - 1``.
        Agents are visited in sorted order with one membership draw each,
        then (when ``move_rate > 0``) one move draw each, so the history
        is a pure function of the spec's wire form.
        """
        if self._states is not None:
            return self._states
        churn = self.churn
        agents = self.agents()
        active = set(agents)
        points = self._base_points()
        states = [EpochState(epoch=0, active=tuple(sorted(active)),
                             points=points, events=())]
        for epoch in range(1, churn.epochs):
            rng = np.random.default_rng(self._epoch_seed(epoch))
            events: list[EpochEvent] = []
            for agent in agents:
                if agent in active:
                    if rng.random() < churn.leave_rate:
                        active.discard(agent)
                        events.append(EpochEvent("leave", agent))
                elif rng.random() < churn.join_rate:
                    active.add(agent)
                    events.append(EpochEvent("join", agent))
            if churn.move_rate > 0:
                assert points is not None  # matrix + moves rejected at build
                mutable = [list(row) for row in points]
                moved = False
                for agent in agents:
                    if rng.random() < churn.move_rate:
                        step = rng.normal(0.0, churn.move_scale, size=len(mutable[agent]))
                        new = tuple(float(x + d) for x, d in zip(mutable[agent], step))
                        mutable[agent] = list(new)
                        events.append(EpochEvent("move", agent, position=new))
                        moved = True
                if moved:
                    points = tuple(tuple(row) for row in mutable)
            states.append(EpochState(epoch=epoch, active=tuple(sorted(active)),
                                     points=points, events=tuple(events)))
        object.__setattr__(self, "_states", tuple(states))
        return self._states

    def state(self, epoch: int) -> EpochState:
        states = self.epoch_states()
        if not 0 <= epoch < len(states):
            raise ValueError(f"epoch {epoch} out of range for {len(states)} epochs")
        return states[epoch]

    def active_agents(self, epoch: int) -> tuple:
        return self.state(epoch).active

    def materialize(self, epoch: int) -> ScenarioSpec:
        """The epoch rendered as a plain static :class:`ScenarioSpec` —
        what a cold :class:`~repro.api.MulticastSession` would be built
        from.  Euclidean scenarios materialize as explicit ``points``
        layouts (bit-exact float coordinates); matrix scenarios are
        position-free, so every epoch materializes to the base spec.
        Cached per epoch (the replay loop asks several times per row)."""
        found = self._materialized.get(epoch)
        if found is not None:
            return found
        state = self.state(epoch)
        if self.kind == "matrix":
            spec = ScenarioSpec(kind="matrix", matrix=self.matrix,
                                source=self.source, tree=self.tree)
        else:
            spec = ScenarioSpec(kind="points", points=state.points,
                                alpha=self.alpha, source=self.source, tree=self.tree)
        self._materialized[epoch] = spec
        return spec
