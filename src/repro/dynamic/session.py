"""Incremental epoch replay: one churning scenario, many priced epochs.

A :class:`DynamicSession` replays the epochs of a
:class:`~repro.dynamic.spec.DynamicScenarioSpec` on top of the caching
:class:`~repro.api.session.MulticastSession` facade, invalidating only
what each epoch's event delta actually touches:

* ``join``/``leave`` events change *who reports positive utility* — not
  the network, not the universal trees, not the metric closure, not a
  single memoised ``xi(R)`` entry.  The session (and every artifact and
  cache inside it) is carried to the next epoch untouched.
* ``move`` events change the geometry, hence the cost matrix, hence
  everything derived from it.  The carried session is discarded and a
  fresh one is built from the epoch's materialized scenario.  (The
  invalidation is value-driven: the session is kept exactly when the
  epoch's materialized scenario — float coordinates and all — equals the
  one the session was built from.)
* identical ``(mechanism, profile)`` requests on an unchanged network
  (common under pure membership churn with repeating workloads) reuse
  the previous epoch's :class:`~repro.mechanism.base.MechanismResult`
  outright.

Outputs are bit-identical to cold per-epoch recomputation — a fresh
``MulticastSession`` per epoch over :meth:`DynamicScenarioSpec.materialize`
— because every reuse is of a pure function of unchanged inputs
(property-tested in ``tests/test_dynamic_session.py`` and
``tests/test_engine_equivalence.py``).  The per-epoch reuse counters in
:attr:`DynamicSession.counters` make the avoided work observable;
``benchmarks/bench_dynamic.py`` turns them into a measured speedup.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from repro.api.session import MulticastSession
from repro.api.spec import MechanismSpec, ScenarioSpec, seed_from_text
from repro.dynamic.spec import ChurnSpec, DynamicScenarioSpec
from repro.mechanism.base import MechanismResult, Profile

# Per-generation cap on the (mechanism, profile) -> result memo: a
# long-lived server re-pricing one epoch under never-repeating bids must
# not accumulate a result per request (reuse is an optimisation; outputs
# are identical with or without the memo).
RESULT_MEMO_LIMIT = 4096


def epoch_profile_seed(materialized: ScenarioSpec, epoch: int, profile_spec) -> int:
    """The profile rng seed of one epoch — a pure function of the epoch's
    materialized wire form, the epoch index (fresh draws every epoch even
    when nothing moved) and the profile recipe, never of execution order.
    """
    return seed_from_text(
        f"{materialized.to_json()}|epoch:{epoch}"
        f"|profiles:{profile_spec.generator}:{profile_spec.seed}")


def make_epoch_profiles(network, source: int, materialized: ScenarioSpec,
                        active: Sequence[int], epoch: int,
                        profile_spec) -> list[dict[int, float]]:
    """One epoch's utility profiles: inactive agents report 0 (they have
    left the session), active agents draw from the generator.  Draws are
    made for *every* agent before inactives are zeroed, so an agent's
    utility trajectory does not shift when somebody else churns."""
    agents = [i for i in range(network.n) if i != source]
    active_set = set(active)
    if profile_spec.generator == "constant":
        return [{a: (profile_spec.scale if a in active_set else 0.0) for a in agents}
                for _ in range(profile_spec.count)]
    from repro.analysis.instances import random_utilities

    rng = np.random.default_rng(epoch_profile_seed(materialized, epoch, profile_spec))
    profiles = []
    for _ in range(profile_spec.count):
        drawn = random_utilities(network, source, rng, scale=profile_spec.scale)
        profiles.append({a: (drawn[a] if a in active_set else 0.0) for a in agents})
    return profiles


class DynamicSession:
    """Epoch replay over one :class:`DynamicScenarioSpec`.

    ``incremental=True`` (the default) carries every artifact whose
    inputs did not change across the epoch boundary;
    ``incremental=False`` is the cold reference — a fresh
    :class:`MulticastSession` per epoch, no cross-epoch reuse — which the
    incremental path must (and does) reproduce bit-for-bit.
    """

    def __init__(self, spec: DynamicScenarioSpec | Mapping, *,
                 incremental: bool = True, registry=None,
                 session_factory=None) -> None:
        if isinstance(spec, Mapping):
            spec = DynamicScenarioSpec.from_dict(spec)
        if not isinstance(spec, DynamicScenarioSpec):
            raise TypeError(
                f"spec must be a DynamicScenarioSpec or mapping, got {type(spec).__name__}")
        self.spec = spec
        self.incremental = bool(incremental)
        self._registry = registry
        # session_factory(scenario) -> MulticastSession lets a caller
        # supply substrate-shared sessions (repro.traces) — sessions are
        # pure functions of their scenario, so sharing one across callers
        # changes speed, never row content.
        self._session_factory = session_factory
        self._session: MulticastSession | None = None
        self._session_epoch: int | None = None
        self._max_epoch: int | None = None  # high-water mark of carried credit
        # Two-generation (mechanism, profile) -> result memo: the current
        # epoch's results plus the previous epoch's (the repeat window of
        # a churning subscription workload).  A long horizon of
        # never-repeating uniform profiles costs two epochs of results,
        # not the whole history; RESULT_MEMO_LIMIT additionally caps each
        # generation, because a *serving* workload can re-price one epoch
        # forever with fresh profiles (the rotation only fires on epoch
        # advance) — at the cap fresh results are still computed and
        # returned, just not memoised.
        self._result_memo: dict[tuple, MechanismResult] = {}
        self._result_memo_prev: dict[tuple, MechanismResult] = {}
        # What the carried counters have already credited (so each
        # distinct artifact is counted once, not once per boundary).
        self._counted_trees: set[str] = set()
        self._counted_closure = False
        self._counted_xi = 0
        self.counters = {
            "epochs_replayed": 0,
            "sessions_built": 0,
            "sessions_carried": 0,
            "trees_carried": 0,
            "closures_carried": 0,
            "xi_entries_carried": 0,
            "results_reused": 0,
        }
        # Registry mirror of the reuse counters (one counter family per
        # key); the plain dict stays authoritative either way.
        if registry is not None:
            help_by_key = {
                "epochs_replayed": "Epochs priced (carried or rebuilt)",
                "sessions_built": "Cold session rebuilds forced by moves",
                "sessions_carried": "Sessions carried across an epoch boundary",
                "trees_carried": "Universal trees that survived a boundary",
                "closures_carried": "Metric closures that survived a boundary",
                "xi_entries_carried": "Memoised xi entries that survived a boundary",
                "results_reused": "Exact (mechanism, profile) result reuses",
            }
            self._metrics = {
                key: registry.counter(f"repro_dynamic_{key}_total",
                                      help_by_key[key])
                for key in self.counters
            }
        else:
            self._metrics = None

    def _bump(self, key: str, amount: int = 1) -> None:
        self.counters[key] += amount
        if self._metrics is not None and amount:
            self._metrics[key].inc(amount)

    # -- epoch state --------------------------------------------------------
    @property
    def n_epochs(self) -> int:
        return self.spec.n_epochs

    @property
    def churn(self) -> ChurnSpec:
        return self.spec.churn

    def state(self, epoch: int):
        return self.spec.state(epoch)

    def materialized(self, epoch: int) -> ScenarioSpec:
        return self.spec.materialize(epoch)

    # -- the incremental core ------------------------------------------------
    def session(self, epoch: int) -> MulticastSession:
        """The :class:`MulticastSession` serving ``epoch``.

        Carried from the previous epoch when the epoch's materialized
        scenario is unchanged (no move events since the session was
        built); rebuilt — and the result memo flushed — otherwise.
        """
        scenario = self.materialized(epoch)
        if (self.incremental and self._session is not None
                and self._session.scenario == scenario):
            # Only a *new* epoch (beyond the high-water mark) is an
            # advance worth crediting; replaying earlier epochs on a
            # shared session (the multi-mechanism pattern) redoes no
            # carry and must not rotate the memo or inflate counters.
            if epoch != self._session_epoch and (
                    self._max_epoch is None or epoch > self._max_epoch):
                self._max_epoch = epoch
                info = self._session.cache_info()
                self._bump("sessions_carried")
                self._bump("epochs_replayed")
                # Credit each distinct artifact the first time it crosses
                # an epoch boundary alive (misses == xi entries created).
                new_trees = set(info["trees"]) - self._counted_trees
                self._bump("trees_carried", len(new_trees))
                self._counted_trees |= new_trees
                if info["closure_built"] and not self._counted_closure:
                    self._bump("closures_carried")
                    self._counted_closure = True
                xi_entries = sum(m["misses"] for m in info["methods"].values())
                self._bump("xi_entries_carried",
                           max(0, xi_entries - self._counted_xi))
                self._counted_xi = max(self._counted_xi, xi_entries)
                # Rotate the result memo: the finished epoch becomes the
                # repeat window, the new epoch starts fresh.
                self._result_memo_prev = self._result_memo
                self._result_memo = {}
            self._session_epoch = epoch
            return self._session
        if self._session is None or epoch != self._session_epoch or (
                self._session.scenario != scenario):
            if self._session_factory is not None:
                self._session = self._session_factory(scenario)
            else:
                self._session = MulticastSession(scenario, registry=self._registry)
            self._session_epoch = epoch
            self._result_memo.clear()
            self._result_memo_prev = {}
            self._counted_trees = set()
            self._counted_closure = False
            self._counted_xi = 0
            self._max_epoch = epoch
            self._bump("sessions_built")
            self._bump("epochs_replayed")
        return self._session

    def epoch_profiles(self, epoch: int, profile_spec) -> list[dict[int, float]]:
        """The epoch's utility profiles (identical for every mechanism,
        every execution schedule, and both replay modes)."""
        session = self.session(epoch)
        return make_epoch_profiles(session.network, session.source,
                                   self.materialized(epoch),
                                   self.state(epoch).active, epoch, profile_spec)

    def run_epoch(self, epoch: int, mechanism: str | MechanismSpec,
                  profiles: Sequence[Profile]) -> list[MechanismResult]:
        """Price ``profiles`` on ``epoch`` (bit-identical to a cold
        session built from the materialized epoch scenario).

        In incremental mode, an exact ``(mechanism, profile)`` repeat on
        an unchanged network returns the memoised previous result —
        mechanisms are pure, so this is reuse, not approximation.
        """
        session = self.session(epoch)
        if not self.incremental:
            return session.run_batch(mechanism, profiles)
        mkey = (mechanism.key() if isinstance(mechanism, MechanismSpec)
                else MechanismSpec(str(mechanism)).key())
        out = []
        for profile in profiles:
            key = (mkey, tuple(sorted(profile.items())))
            found = self._result_memo.get(key)
            if found is None:
                found = self._result_memo_prev.get(key)
                if found is None:
                    found = session.run(mechanism, profile)
                else:
                    self._bump("results_reused")
                if len(self._result_memo) < RESULT_MEMO_LIMIT:
                    self._result_memo[key] = found
            else:
                self._bump("results_reused")
            out.append(found)
        return out

    def reuse_info(self) -> dict:
        """Counter snapshot plus the live session's cache diagnostics."""
        info = dict(self.counters)
        info["session"] = (self._session.cache_info()
                           if self._session is not None else None)
        return info

    def __repr__(self) -> str:
        return (f"DynamicSession(n={self.spec.n_stations}, "
                f"epochs={self.n_epochs}, "
                f"mode={'incremental' if self.incremental else 'cold'})")


def epoch_payload(dyn: DynamicSession, epoch: int,
                  mechanism: str | MechanismSpec, profile_spec, *,
                  profiles: Sequence[Profile] | None = None,
                  audit: bool = False) -> dict:
    """Price one epoch and render it as a row payload (shared by
    :func:`replay_dynamic` and the sweep executor's churn branch).

    Pure function of ``(dyn.spec, epoch, mechanism, profile_spec,
    audit)`` — reuse inside the session changes how fast the payload is
    computed, never its content.  ``profiles`` may carry the epoch's
    already-generated profiles (must equal
    ``dyn.epoch_profiles(epoch, profile_spec)``) so a caller pricing
    several mechanisms on one epoch generates them once.
    """
    from repro.api.serialize import result_to_dict, summarize_results
    from repro.mechanism.properties import audit_profile_results

    mech_spec = (mechanism if isinstance(mechanism, MechanismSpec)
                 else MechanismSpec(str(mechanism)))
    state = dyn.state(epoch)
    if profiles is None:
        profiles = dyn.epoch_profiles(epoch, profile_spec)
    results = dyn.run_epoch(epoch, mech_spec, profiles)
    row = {
        "epoch": epoch,
        "events": [event.to_dict() for event in state.events],
        "event_counts": state.event_counts(),
        "active": list(state.active),
        "carried": bool(epoch > 0 and not any(
            event.kind == "move" for event in state.events)),
        "mechanism": mech_spec.to_dict(),
        "profiles": profile_spec.to_dict(),
        "profile_seed": epoch_profile_seed(dyn.materialized(epoch), epoch, profile_spec),
        "results": [result_to_dict(r) for r in results],
        "summary": summarize_results(results),
    }
    if audit:
        from repro.api.registry import registered

        session = dyn.session(epoch)
        entry = registered(mech_spec.name)
        row["audit"] = audit_profile_results(
            session.mechanism(mech_spec), profiles, results,
            axioms=entry.guarantees, bb_bound=entry.bb_factor)
    return row


def replay_dynamic(spec: DynamicScenarioSpec | Mapping | DynamicSession,
                   mechanism: str | MechanismSpec,
                   profiles=None, *, incremental: bool | None = None,
                   audit: bool = False) -> list[dict]:
    """Replay every epoch of ``spec`` under ``mechanism`` and return one
    row dict per epoch.

    ``profiles`` is a :class:`~repro.runner.spec.ProfileSpec` (or mapping;
    default: 3 uniform profiles per epoch).  Rows carry the epoch's event
    delta, active set, derived profile seed, wire-format results and
    summary — plus, with ``audit=True``, the per-epoch axiom audit
    (:func:`~repro.mechanism.properties.audit_profile_results`).  Row
    content is a pure function of ``(spec, mechanism, profiles, audit)``:
    incremental and cold replays return identical rows.

    ``incremental`` defaults to incremental replay when a spec is given.
    Pass an existing :class:`DynamicSession` to share its caches (and its
    reuse counters) across several mechanisms — the session's own mode
    then governs, and an explicit contradictory ``incremental=`` raises
    (a "cold reference" that silently ran incrementally would vacuously
    pass any equivalence check and time the wrong path).
    """
    from repro.runner.spec import ProfileSpec  # late: avoids an import cycle

    if profiles is None:
        profiles = ProfileSpec()
    elif isinstance(profiles, Mapping):
        profiles = ProfileSpec.from_dict(profiles)
    if isinstance(spec, DynamicSession):
        if incremental is not None and incremental != spec.incremental:
            raise ValueError(
                f"incremental={incremental} contradicts the passed session's "
                f"{'incremental' if spec.incremental else 'cold'} mode")
        dyn = spec
    else:
        dyn = DynamicSession(spec, incremental=incremental is not False)
    return [epoch_payload(dyn, epoch, mechanism, profiles, audit=audit)
            for epoch in range(dyn.n_epochs)]


def trajectory_row(row: Mapping) -> dict:
    """Flatten one replay row into the per-epoch trajectory table shape
    shared by the ``dynamic`` CLI, EXP-D1 and the examples (append any
    caller-specific columns to the returned dict)."""
    return {
        "epoch": row["epoch"],
        "joins": row["event_counts"]["join"],
        "leaves": row["event_counts"]["leave"],
        "moves": row["event_counts"]["move"],
        "active": len(row["active"]),
        "receivers": row["summary"]["mean_receivers"],
        "charged": row["summary"]["mean_charged"],
        "cost": row["summary"]["mean_cost"],
        "carried": row["carried"],
    }
