"""Dynamic multicast sessions: epoch-based agent churn with incremental
recomputation.

* :mod:`repro.dynamic.spec` — :class:`ChurnSpec` (rates + churn seed),
  :class:`DynamicScenarioSpec` (a :class:`~repro.api.ScenarioSpec` plus a
  deterministic epoch history of join/leave/move events), and the
  materialization of any epoch as a plain static scenario.
* :mod:`repro.dynamic.session` — :class:`DynamicSession` (epoch replay
  carrying every artifact whose inputs did not change) and
  :func:`replay_dynamic` (per-epoch row dicts, bit-identical between
  incremental and cold replay).
"""

from repro.dynamic.session import (
    DynamicSession,
    epoch_payload,
    epoch_profile_seed,
    make_epoch_profiles,
    replay_dynamic,
    trajectory_row,
)
from repro.dynamic.spec import ChurnSpec, DynamicScenarioSpec, EpochEvent, EpochState

__all__ = [
    "ChurnSpec",
    "DynamicScenarioSpec",
    "DynamicSession",
    "EpochEvent",
    "EpochState",
    "epoch_payload",
    "epoch_profile_seed",
    "make_epoch_profiles",
    "replay_dynamic",
    "trajectory_row",
]
