"""repro — cost-sharing mechanisms for multicast in wireless networks.

A from-scratch reproduction of Bilò, Flammini, Melideo, Moscardelli &
Navarra, *Sharing the cost of multicast transmissions in wireless networks*
(SPAA 2004 / Theoretical Computer Science 369, 2006).

Layering (each layer only depends on the ones above it):

* :mod:`repro.graphs` / :mod:`repro.geometry` — pure algorithmic substrate;
* :mod:`repro.engine` — array graph backends, vectorised kernels and the
  batched mechanism pipeline (the substrate half sits beside
  :mod:`repro.graphs`; :mod:`repro.engine.batch` sits above
  :mod:`repro.core`);
* :mod:`repro.wireless` — the paper's wireless power model + exact oracles;
* :mod:`repro.mechanism` — mechanism-design vocabulary and axiom auditors;
* :mod:`repro.core` — the paper's mechanisms;
* :mod:`repro.api` — the declarative scenario/mechanism spec API, the
  string-keyed mechanism registry, and the caching
  :class:`~repro.api.MulticastSession` facade (the service entry path);
* :mod:`repro.dynamic` — epoch-based agent churn over any scenario:
  :class:`~repro.dynamic.DynamicScenarioSpec` (deterministic
  join/leave/move histories) replayed incrementally by
  :class:`~repro.dynamic.DynamicSession` (the temporal entry path);
* :mod:`repro.traces` — multi-group trace workloads above
  :mod:`repro.dynamic`: the frozen JSONL trace format
  (:class:`~repro.traces.Trace`), the deterministic IGMP-like generator
  with RSSI handover moves, and
  :class:`~repro.traces.MultiGroupSession` replaying N concurrent
  groups over one shared substrate (network/closure/xi built once per
  distinct geometry, bit-identical to cold per-group replays);
* :mod:`repro.runner` — declarative sweep grids over scenario layout
  families x mechanisms (x churn epochs), the process-parallel executor,
  and the resumable JSONL result store (the fleet entry path);
* :mod:`repro.service` — the concurrent serving layer: a bounded LRU
  session store with single-flight request coalescing, a micro-batcher
  executing in-flight requests per scenario on shared caches, and the
  asyncio HTTP/JSON endpoint with explicit 429 backpressure (the
  online entry path — ``python -m repro serve`` / ``loadgen``);
* :mod:`repro.observability` — the telemetry layer beside all of the
  above: a thread-safe stdlib metrics registry (counters/gauges/
  histograms in labeled families, Prometheus text exposition on
  ``GET /metrics``), an event bus, structured JSON request logs, and
  the :class:`~repro.observability.AdaptiveController` closing the
  loop from observed traffic back onto the serving knobs;
* :mod:`repro.analysis` — instances, experiments, tables.

The most common entry points are re-exported here; run
``python -m repro`` for the full experiment report, ``python -m repro
run --scenario spec.json --mechanism jv --profiles profiles.json`` to
price profiles over a JSON scenario spec, and ``python -m repro sweep
--spec sweep.json --workers 4 --out results.jsonl`` for whole grids;
``python -m repro dynamic --n 12 --epochs 4 --check`` replays churn.
"""

from repro.api import (
    MechanismSpec,
    MulticastSession,
    ScenarioSpec,
    available_mechanisms,
    make_mechanism,
    register_mechanism,
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.core import (
    EuclideanJVMechanism,
    EuclideanMCMechanism,
    EuclideanShapleyMechanism,
    NWSTMechanism,
    UniversalTreeMCMechanism,
    UniversalTreeShapleyMechanism,
    WirelessMulticastMechanism,
    WirelessNWSTMechanism,
)
from repro.dynamic import (
    ChurnSpec,
    DynamicScenarioSpec,
    DynamicSession,
    replay_dynamic,
)
from repro.engine import CSRGraph, DenseGraph
from repro.geometry import LAYOUT_FAMILIES, PointSet, layout_points, uniform_points
from repro.mechanism import MechanismResult
from repro.observability import (
    AdaptiveController,
    EventBus,
    MetricsRegistry,
    RequestLogger,
    default_registry,
)
from repro.runner import ProfileSpec, SweepSpec, run_sweep
from repro.service import (
    CostSharingService,
    MicroBatcher,
    ServiceClient,
    ServiceServer,
    SessionStore,
)
from repro.traces import (
    MultiGroupScenarioSpec,
    MultiGroupSession,
    Trace,
    TraceScenarioSpec,
    generate_trace,
    replay_trace,
)
from repro.wireless import CostGraph, EuclideanCostGraph, PowerAssignment, UniversalTree

__version__ = "1.10.0"

__all__ = [
    "AdaptiveController",
    "CSRGraph",
    "ChurnSpec",
    "CostGraph",
    "CostSharingService",
    "DenseGraph",
    "DynamicScenarioSpec",
    "DynamicSession",
    "EuclideanCostGraph",
    "EventBus",
    "MetricsRegistry",
    "RequestLogger",
    "EuclideanJVMechanism",
    "EuclideanMCMechanism",
    "EuclideanShapleyMechanism",
    "LAYOUT_FAMILIES",
    "MechanismResult",
    "MechanismSpec",
    "MicroBatcher",
    "MultiGroupScenarioSpec",
    "MultiGroupSession",
    "MulticastSession",
    "NWSTMechanism",
    "PointSet",
    "PowerAssignment",
    "ProfileSpec",
    "ScenarioSpec",
    "ServiceClient",
    "ServiceServer",
    "SessionStore",
    "SweepSpec",
    "Trace",
    "TraceScenarioSpec",
    "UniversalTree",
    "UniversalTreeMCMechanism",
    "UniversalTreeShapleyMechanism",
    "WirelessMulticastMechanism",
    "WirelessNWSTMechanism",
    "available_mechanisms",
    "default_registry",
    "generate_trace",
    "layout_points",
    "make_mechanism",
    "register_mechanism",
    "result_from_dict",
    "result_from_json",
    "result_to_dict",
    "replay_dynamic",
    "replay_trace",
    "result_to_json",
    "run_sweep",
    "uniform_points",
    "__version__",
]
