"""Wire-format serialization of mechanism outcomes.

:func:`result_to_dict` / :func:`result_from_dict` (and the ``_json``
variants) move a :class:`~repro.mechanism.base.MechanismResult` — including
its :class:`~repro.wireless.PowerAssignment` — across a process boundary.
The wire format addresses agents by station id (int), which is what every
scenario-built mechanism uses; shares and costs round-trip with exact
float equality (Python's JSON uses shortest-repr floats).

``extra`` diagnostics are *sanitized*, not guaranteed round-trippable:
JSON-native values pass through unchanged, sets become sorted lists,
tuples become lists, non-serializable objects (e.g. spider traces) are
dropped.  A result whose ``extra`` is already JSON-native round-trips
exactly.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence

from repro.mechanism.base import MechanismResult

RESULT_SCHEMA = 1

_DROP = object()


def _jsonify(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, Mapping):
        out = {}
        for k, v in value.items():
            jv = _jsonify(v)
            if jv is not _DROP:
                out[str(k)] = jv
        return out
    if isinstance(value, (set, frozenset)):
        items = [_jsonify(v) for v in value]
        kept = [v for v in items if v is not _DROP]
        return sorted(kept, key=repr)
    if isinstance(value, Sequence):
        items = [_jsonify(v) for v in value]
        return [v for v in items if v is not _DROP]
    try:  # numpy scalars and anything else that knows how to be a float
        import numpy as np

        if isinstance(value, np.generic):
            return value.item()
        if isinstance(value, np.ndarray):
            return [_jsonify(v) for v in value.tolist()]
    except ImportError:  # pragma: no cover - numpy is a hard dependency
        pass
    return _DROP


def sanitize_extra(extra: Mapping) -> dict:
    """The JSON-safe projection of a result's ``extra`` diagnostics."""
    out = _jsonify(dict(extra))
    return out if out is not _DROP else {}


def _agent_key(agent) -> str:
    if not isinstance(agent, int) or isinstance(agent, bool):
        raise TypeError(
            f"wire format addresses agents by station id (int), got {agent!r}; "
            "run scenario-built mechanisms (see repro.api.session) to serialize results"
        )
    return str(agent)


def result_to_dict(result: MechanismResult) -> dict:
    """Wire dict of a mechanism outcome (station-id agents only)."""
    power = None
    p = result.power
    if p is not None and hasattr(p, "powers"):
        power = [float(x) for x in p.powers]
    return {
        "schema": RESULT_SCHEMA,
        "receivers": sorted(int(_agent_key(i)) for i in result.receivers),
        "shares": {_agent_key(i): float(s) for i, s in sorted(result.shares.items())},
        "cost": float(result.cost),
        "power": power,
        "extra": sanitize_extra(result.extra),
    }


def result_from_dict(data: Mapping) -> MechanismResult:
    """Rebuild a :class:`MechanismResult` from its wire dict."""
    schema = data.get("schema", RESULT_SCHEMA)
    if schema != RESULT_SCHEMA:
        raise ValueError(f"unsupported result schema {schema!r} (this build speaks {RESULT_SCHEMA})")
    stray = sorted(set(data) - {"schema", "receivers", "shares", "cost", "power", "extra"})
    if stray:
        raise ValueError(f"unknown result fields: {stray}")
    power = data.get("power")
    if power is not None:
        from repro.wireless.power import PowerAssignment

        power = PowerAssignment(power)
    return MechanismResult(
        receivers=frozenset(int(i) for i in data["receivers"]),
        shares={int(a): float(s) for a, s in data["shares"].items()},
        cost=float(data["cost"]),
        power=power,
        extra=dict(data.get("extra", {})),
    )


def bb_ratio(charged: float, cost: float) -> float | None:
    """charged/cost, with the degenerate cases pinned: an empty/free
    outcome is perfectly balanced (1.0), revenue over zero cost is
    undefined (None — JSONL stays strict-parseable, no Infinity)."""
    if cost > 1e-12:
        return charged / cost
    return 1.0 if abs(charged) < 1e-9 else None


def summarize_results(results: Sequence[MechanismResult]) -> dict:
    """The per-row summary block of a batch of mechanism outcomes (the
    shape the sweep runner's JSONL rows and the dynamic replay rows
    share; pure function of the results, no timestamps)."""
    charges = [r.total_charged() for r in results]
    costs = [r.cost for r in results]
    ratios = [bb_ratio(charged, cost) for charged, cost in zip(charges, costs)]
    defined = [r for r in ratios if r is not None]
    return {
        "profiles": len(results),
        "mean_receivers": sum(len(r.receivers) for r in results) / len(results),
        "mean_charged": sum(charges) / len(charges),
        "mean_cost": sum(costs) / len(costs),
        "mean_bb": sum(defined) / len(defined) if defined else None,
        "worst_bb": max(defined) if defined else None,
    }


def result_to_json(result: MechanismResult, **dumps_kwargs) -> str:
    dumps_kwargs.setdefault("sort_keys", True)
    return json.dumps(result_to_dict(result), **dumps_kwargs)


def result_from_json(text: str) -> MechanismResult:
    return result_from_dict(json.loads(text))
