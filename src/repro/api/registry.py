"""The string-keyed mechanism registry.

Every mechanism in :mod:`repro.core` registers a builder here at import
time, so callers address mechanisms by name instead of knowing seven
constructor signatures:

    >>> from repro.api import ScenarioSpec, make_mechanism
    >>> spec = ScenarioSpec.from_random(n=8, alpha=2.0, seed=1)
    >>> mech = make_mechanism("jv", spec)

A builder receives the :class:`~repro.api.session.MulticastSession` bound
to the scenario (so it can reuse the session's cached universal trees,
metric closure, dense backend, ...) plus the mechanism's keyword
parameters, and returns a ready :class:`CostSharingMechanism`.  Entries
may also declare ``method_of`` — how to extract the mechanism's pure
cost-sharing method ``xi(R) -> shares`` — which is what the session
memoises across profiles.
"""

from __future__ import annotations

import importlib
from collections.abc import Callable
from dataclasses import dataclass

from repro.mechanism.base import CostSharingMechanism

Builder = Callable[..., CostSharingMechanism]


# The axioms every registered mechanism is expected (and audited) to
# satisfy unless its registration narrows them.  Names match the
# checkers in :mod:`repro.mechanism.properties`.
DEFAULT_GUARANTEES = ("npt", "vp", "cost_recovery")


@dataclass(frozen=True)
class RegisteredMechanism:
    """One registry entry.

    ``bb_factor`` optionally declares a *proven* budget-balance bound:
    total charged at most ``bb_factor * result.cost`` on every profile.
    Audited mechanisms with a declared bound fail the audit when any
    profile's empirical factor exceeds it (the ``*-approx`` family
    declares the Mehlhorn 2x factor this way).  ``None`` means no bound
    is claimed beyond the ``guarantees`` axioms.
    """

    name: str
    builder: Builder
    method_of: Callable[[CostSharingMechanism], Callable] | None
    summary: str
    guarantees: tuple = DEFAULT_GUARANTEES
    bb_factor: float | None = None


_REGISTRY: dict[str, RegisteredMechanism] = {}


def register_mechanism(
    name: str,
    builder: Builder | None = None,
    *,
    method_of: Callable[[CostSharingMechanism], Callable] | None = None,
    summary: str = "",
    guarantees: tuple = DEFAULT_GUARANTEES,
    bb_factor: float | None = None,
    replace: bool = False,
):
    """Register ``builder`` under ``name`` (usable as a decorator).

    Parameters
    ----------
    name:
        The wire name (``"jv"``, ``"tree-shapley"``, ...).
    builder:
        ``builder(session, **params) -> CostSharingMechanism``.
    method_of:
        Optional extractor of the mechanism's pure cost-sharing method,
        memoised by the session across profiles (the mechanism's ``run``
        must then accept a ``method=`` keyword).
    guarantees:
        The axioms the paper proves for this mechanism — what the sweep
        runner's ``audit=True`` verifies per row.  Defaults to NPT + VP +
        cost recovery; the marginal-cost mechanisms narrow it to NPT + VP
        (they are efficient and strategyproof but run deficits by design,
        so cost recovery is *expected* to fail on them).
    bb_factor:
        Optional proven budget-balance bound (charged <= bb_factor * cost
        per profile), enforced by the audit when declared.
    replace:
        Allow overwriting an existing entry (default: raise).
    """

    def decorate(fn: Builder) -> Builder:
        if name in _REGISTRY and not replace:
            raise ValueError(f"mechanism {name!r} is already registered (pass replace=True)")
        doc = summary or (fn.__doc__ or "").strip().split("\n")[0]
        _REGISTRY[name] = RegisteredMechanism(name, fn, method_of, doc,
                                              tuple(guarantees), bb_factor)
        return fn

    if builder is None:
        return decorate
    return decorate(builder)


def _ensure_registered() -> None:
    # repro.core imports every mechanism module, each of which registers
    # its builders on import.
    importlib.import_module("repro.core")


def available_mechanisms() -> tuple[str, ...]:
    """Sorted names of every registered mechanism."""
    _ensure_registered()
    return tuple(sorted(_REGISTRY))


def registered(name: str) -> RegisteredMechanism:
    """The registry entry for ``name`` (raises ``ValueError`` if unknown)."""
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown mechanism {name!r}; available: {list(available_mechanisms())}"
        ) from None


def make_mechanism(name: str, scenario, **params) -> CostSharingMechanism:
    """Build mechanism ``name`` for ``scenario``.

    ``scenario`` may be a :class:`~repro.api.spec.ScenarioSpec`, an
    already-bound :class:`~repro.api.session.MulticastSession` (whose
    caches the builder then shares), or a bare
    :class:`~repro.wireless.CostGraph` (source defaults to station 0).
    """
    from repro.api.session import MulticastSession

    if isinstance(scenario, MulticastSession):
        session = scenario
    else:
        session = MulticastSession(scenario)
    # Through the session so repeat requests share its mechanism cache.
    return session.mechanism(name, **params)
