"""Declarative instance descriptions — the wire format of the service API.

A :class:`ScenarioSpec` is a frozen, JSON-round-trippable description of
one multicast pricing instance: *what* the network is (an explicit point
layout, an explicit symmetric cost matrix, or a seeded random layout),
which station is the source, and which universal tree the section 2.1
mechanisms should fix.  A :class:`MechanismSpec` names a registered
mechanism plus its parameters.  Both carry ``to_dict``/``from_dict`` and
``to_json``/``from_json`` so requests can cross a process boundary and be
replayed bit-for-bit: rebuilding a network from a spec reproduces the
exact float cost matrix (JSON floats round-trip exactly in Python).

These specs are *descriptions*, not solvers — hand them to
:class:`repro.api.session.MulticastSession` (or
:func:`repro.api.registry.make_mechanism`) to do work.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field, fields
from typing import Any

from repro.geometry.layouts import LAYOUT_FAMILIES
from repro.wireless.universal_tree import UniversalTree

SCENARIO_KINDS = ("points", "matrix", "random")
TREE_KINDS = UniversalTree.KINDS  # the one home of the kind vocabulary


def seed_from_text(text: str) -> int:
    """A 64-bit rng seed derived from ``text`` (SHA-256, first 8 bytes).

    The one home of the derived-seed recipe: sweep profile seeds, churn
    event seeds and per-epoch profile seeds are all pure functions of a
    wire-form identity string through this helper, so they agree across
    processes, schedules and sessions by construction.
    """
    return int.from_bytes(hashlib.sha256(text.encode("utf-8")).digest()[:8], "big")


def freeze_params(value: Any) -> Any:
    """Recursively convert ``value`` into a hashable cache key."""
    if isinstance(value, Mapping):
        return tuple(sorted((str(k), freeze_params(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple, set, frozenset)):
        return tuple(freeze_params(v) for v in value)
    return value


def _as_float_rows(rows: Sequence[Sequence[float]], label: str) -> tuple:
    try:
        frozen = tuple(tuple(float(x) for x in row) for row in rows)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{label} must be a sequence of numeric rows: {exc}") from exc
    if not frozen:
        raise ValueError(f"{label} must be non-empty")
    widths = {len(row) for row in frozen}
    if len(widths) != 1:
        raise ValueError(f"{label} rows must all have the same length, got lengths {sorted(widths)}")
    return frozen


@dataclass(frozen=True)
class ScenarioSpec:
    """A frozen, serializable description of one wireless multicast instance.

    Exactly one layout is populated, selected by ``kind``:

    * ``"points"`` — an explicit Euclidean layout (``points`` + ``alpha``);
    * ``"matrix"`` — an explicit symmetric cost matrix (general networks);
    * ``"random"`` — a seeded generated layout (``n``/``dim``/``side``/
      ``seed`` + ``alpha``), rebuilt deterministically from the seed.
      ``layout`` selects the point family — one of
      :data:`repro.geometry.layouts.LAYOUT_FAMILIES` (default
      ``"uniform"``, bit-identical to the historical uniform draw).

    ``source`` is the multicast root; ``tree`` fixes the universal-tree
    construction the section 2.1 mechanisms use (``spt``/``mst``/``star``).

    ``receivers`` (valid for every kind) optionally restricts the agent
    set to an explicit station subset — the lever that makes n=10^3..10^4
    instances tractable: sessions then build *terminal-sourced* closures
    over ``{source} + receivers`` instead of all-pairs ones, and
    mechanisms price only the listed agents.  ``None`` keeps the
    historical "every non-source station is an agent" behaviour.
    """

    kind: str
    source: int = 0
    tree: str = "spt"
    alpha: float | None = None
    points: tuple | None = None
    matrix: tuple | None = None
    n: int | None = None
    dim: int | None = None
    side: float | None = None
    seed: int | None = None
    layout: str | None = None
    receivers: tuple | None = None

    def __post_init__(self) -> None:
        if self.kind not in SCENARIO_KINDS:
            raise ValueError(f"unknown scenario kind {self.kind!r} (want one of {SCENARIO_KINDS})")
        if self.tree not in TREE_KINDS:
            raise ValueError(f"unknown universal tree kind {self.tree!r} (want one of {TREE_KINDS})")
        object.__setattr__(self, "source", int(self.source))
        if self.alpha is not None:
            object.__setattr__(self, "alpha", float(self.alpha))
            if self.alpha < 1:
                raise ValueError(f"alpha must be >= 1 (paper's model), got {self.alpha}")

        if self.kind == "points":
            self._reject_foreign_fields(("matrix", "n", "side", "seed", "layout"))
            if self.points is None:
                raise ValueError("kind='points' requires points")
            if self.alpha is None:
                raise ValueError("kind='points' requires alpha")
            object.__setattr__(self, "points", _as_float_rows(self.points, "points"))
            width = len(self.points[0])
            if self.dim is not None and int(self.dim) != width:
                raise ValueError(f"dim={self.dim} contradicts {width}-d points")
            object.__setattr__(self, "dim", width)
        elif self.kind == "matrix":
            self._reject_foreign_fields(
                ("points", "alpha", "n", "dim", "side", "seed", "layout"))
            if self.matrix is None:
                raise ValueError("kind='matrix' requires matrix")
            m = _as_float_rows(self.matrix, "matrix")
            if any(len(row) != len(m) for row in m):
                raise ValueError(f"matrix must be square, got {len(m)} rows of width {len(m[0])}")
            object.__setattr__(self, "matrix", m)
        else:  # random
            self._reject_foreign_fields(("points", "matrix"))
            if self.n is None or self.seed is None:
                raise ValueError("kind='random' requires n and seed")
            if self.alpha is None:
                raise ValueError("kind='random' requires alpha")
            object.__setattr__(self, "n", int(self.n))
            object.__setattr__(self, "dim", int(self.dim if self.dim is not None else 2))
            object.__setattr__(self, "side", float(self.side if self.side is not None else 10.0))
            object.__setattr__(self, "seed", int(self.seed))
            object.__setattr__(
                self, "layout", str(self.layout) if self.layout is not None else "uniform")
            if self.layout not in LAYOUT_FAMILIES:
                raise ValueError(
                    f"unknown layout family {self.layout!r} (want one of {LAYOUT_FAMILIES})")
            if self.n < 1 or self.dim < 1:
                raise ValueError(f"need n >= 1 and dim >= 1, got n={self.n}, dim={self.dim}")

        if not 0 <= self.source < self.n_stations:
            raise ValueError(
                f"source {self.source} out of range for {self.n_stations} stations"
            )

        if self.receivers is not None:
            try:
                recv = sorted({int(r) for r in self.receivers})
            except (TypeError, ValueError) as exc:
                raise ValueError(f"receivers must be station indices: {exc}") from exc
            if not recv:
                raise ValueError("receivers must be non-empty when given (or omit it)")
            if self.source in recv:
                raise ValueError(f"source {self.source} cannot be a receiver")
            out_of_range = [r for r in recv if not 0 <= r < self.n_stations]
            if out_of_range:
                raise ValueError(
                    f"receivers {out_of_range} out of range for "
                    f"{self.n_stations} stations"
                )
            object.__setattr__(self, "receivers", tuple(recv))

    def _reject_foreign_fields(self, foreign: tuple[str, ...]) -> None:
        set_anyway = [f for f in foreign if getattr(self, f) is not None]
        if set_anyway:
            raise ValueError(
                f"kind={self.kind!r} does not use fields {set_anyway} — "
                "exactly one layout may be populated"
            )

    # -- constructors -------------------------------------------------------
    @classmethod
    def from_points(cls, points, alpha: float, *, source: int = 0,
                    tree: str = "spt") -> "ScenarioSpec":
        """Spec for an explicit Euclidean layout (accepts a
        :class:`~repro.geometry.PointSet`, an array, or nested sequences)."""
        coords = getattr(points, "coords", points)
        return cls(kind="points", points=tuple(tuple(float(x) for x in row) for row in coords),
                   alpha=alpha, source=source, tree=tree)

    @classmethod
    def from_matrix(cls, matrix, *, source: int = 0, tree: str = "spt") -> "ScenarioSpec":
        """Spec for an explicit symmetric cost matrix (general networks)."""
        return cls(kind="matrix", matrix=tuple(tuple(float(x) for x in row) for row in matrix),
                   source=source, tree=tree)

    @classmethod
    def from_random(cls, n: int, dim: int = 2, alpha: float = 2.0, seed: int = 0,
                    *, side: float = 10.0, source: int = 0,
                    tree: str = "spt", layout: str = "uniform") -> "ScenarioSpec":
        """Spec for a seeded generated layout in ``[0, side]^dim`` (``layout``
        names a :data:`~repro.geometry.layouts.LAYOUT_FAMILIES` member)."""
        return cls(kind="random", n=n, dim=dim, alpha=alpha, seed=seed,
                   side=side, source=source, tree=tree, layout=layout)

    @classmethod
    def from_network(cls, network, *, source: int = 0, tree: str = "spt") -> "ScenarioSpec":
        """Spec describing an already-built :class:`~repro.wireless.CostGraph`.

        Euclidean networks round-trip through their point layout (keeping
        ``alpha``/``dim`` so the Euclidean-only mechanisms stay available);
        general networks through their cost matrix.  ``build_network`` on
        the result reproduces the exact same costs.
        """
        from repro.wireless.cost_graph import EuclideanCostGraph

        if isinstance(network, EuclideanCostGraph):
            return cls.from_points(network.points, network.alpha, source=source, tree=tree)
        return cls.from_matrix(network.matrix, source=source, tree=tree)

    # -- derived views ------------------------------------------------------
    @property
    def n_stations(self) -> int:
        if self.kind == "points":
            return len(self.points)
        if self.kind == "matrix":
            return len(self.matrix)
        return self.n

    @property
    def is_euclidean(self) -> bool:
        """True when the spec rebuilds an :class:`EuclideanCostGraph`."""
        return self.kind in ("points", "random")

    def agents(self) -> list[int]:
        """Every potential receiver: the explicit ``receivers`` subset when
        given, otherwise all stations but the source."""
        if self.receivers is not None:
            return list(self.receivers)
        return [i for i in range(self.n_stations) if i != self.source]

    def build_network(self):
        """Construct the described network (deterministic, exact floats)."""
        import numpy as np

        from repro.geometry.layouts import layout_points
        from repro.geometry.points import PointSet
        from repro.wireless.cost_graph import CostGraph, EuclideanCostGraph

        if self.kind == "points":
            return EuclideanCostGraph(PointSet(np.array(self.points, dtype=float)), self.alpha)
        if self.kind == "matrix":
            return CostGraph(np.array(self.matrix, dtype=float))
        points = layout_points(self.layout, self.n, self.dim, side=self.side,
                               seed=self.seed)
        return EuclideanCostGraph(points, self.alpha)

    # -- wire format --------------------------------------------------------
    def to_dict(self) -> dict:
        """Plain-JSON dict (``None`` fields omitted; tuples become lists)."""
        out: dict[str, Any] = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if value is None:
                continue
            if f.name in ("points", "matrix"):
                value = [list(row) for row in value]
            out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScenarioSpec":
        known = {f.name for f in fields(cls)}
        stray = sorted(set(data) - known)
        if stray:
            raise ValueError(f"unknown ScenarioSpec fields: {stray}")
        return cls(**dict(data))

    def to_json(self, **dumps_kwargs) -> str:
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))


@dataclass(frozen=True)
class MechanismSpec:
    """A registered mechanism name plus its (JSON-serializable) parameters."""

    name: str
    params: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name:
            raise ValueError(f"mechanism name must be a non-empty string, got {self.name!r}")
        object.__setattr__(self, "params", dict(self.params))

    def key(self) -> tuple:
        """Hashable identity (used by session caches)."""
        return (self.name, freeze_params(self.params))

    def __hash__(self) -> int:
        # The generated frozen-dataclass hash would choke on the params
        # dict; hash the frozen key instead (consistent with __eq__).
        return hash(self.key())

    def to_dict(self) -> dict:
        return {"name": self.name, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "MechanismSpec":
        stray = sorted(set(data) - {"name", "params"})
        if stray:
            raise ValueError(f"unknown MechanismSpec fields: {stray}")
        return cls(name=data["name"], params=dict(data.get("params", {})))

    def to_json(self, **dumps_kwargs) -> str:
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "MechanismSpec":
        return cls.from_dict(json.loads(text))
