"""repro.api — the declarative scenario/mechanism API and session facade.

This is the stable entry path a service speaks:

* :class:`ScenarioSpec` / :class:`MechanismSpec` — frozen,
  JSON-round-trippable descriptions of an instance and of a mechanism
  request (:mod:`repro.api.spec`);
* the mechanism registry — :func:`make_mechanism` /
  :func:`register_mechanism` / :func:`available_mechanisms`, populated by
  every mechanism in :mod:`repro.core` (:mod:`repro.api.registry`);
* :class:`MulticastSession` — a long-lived facade binding one scenario,
  caching the expensive shared state (network, universal trees, metric
  closure, memoised cost-share methods) across ``run``/``run_batch``
  requests (:mod:`repro.api.session`);
* result wire format — :func:`result_to_dict` & friends
  (:mod:`repro.api.serialize`).

``python -m repro run --scenario spec.json --mechanism jv --profiles
profiles.json --json`` drives this API from the command line.
"""

from repro.api.registry import (
    available_mechanisms,
    make_mechanism,
    register_mechanism,
    registered,
)
from repro.api.serialize import (
    result_from_dict,
    result_from_json,
    result_to_dict,
    result_to_json,
)
from repro.api.session import MulticastSession
from repro.api.spec import MechanismSpec, ScenarioSpec

__all__ = [
    "MechanismSpec",
    "MulticastSession",
    "ScenarioSpec",
    "available_mechanisms",
    "make_mechanism",
    "register_mechanism",
    "registered",
    "result_from_dict",
    "result_from_json",
    "result_to_dict",
    "result_to_json",
]
