"""The caching session facade: one scenario, many priced requests.

A production service prices streams of utility profiles (and many
mechanisms) over one slowly-changing network.  Everything that depends
only on the *scenario* is built lazily, once, and shared:

* the :class:`~repro.wireless.CostGraph` itself (rebuilt from the spec),
  and its dense array backend;
* universal trees, per construction kind (shared by ``tree-shapley`` and
  ``tree-mc``);
* the metric closure (shared by every ``jv`` parameterization);
* mechanism instances, per ``(name, params)``;
* memoised cost-sharing methods ``xi(R)`` (a
  :class:`~repro.engine.batch.MethodCache` per mechanism) for the
  mechanisms that declare one — receiver sets repeat heavily across
  profiles, so hit rates climb quickly.

Outputs are bit-identical to direct construction: the caches only avoid
recomputing pure functions (property-tested in ``tests/test_api_session.py``
and asserted every run by EXP-S2).
"""

from __future__ import annotations

import inspect
import threading
import time
from collections.abc import Iterable, Mapping

from repro.api.spec import MechanismSpec, ScenarioSpec
from repro.engine.batch import MethodCache
from repro.mechanism.base import CostSharingMechanism, MechanismResult, Profile
from repro.wireless.cost_graph import CostGraph
from repro.wireless.universal_tree import UniversalTree


class MulticastSession:
    """A long-lived solver session bound to one :class:`ScenarioSpec`.

    Accepts a spec, anything :meth:`ScenarioSpec.from_network` accepts
    (an already-built :class:`CostGraph`), or a plain dict/JSON-shaped
    mapping.  ``run``/``run_batch`` address mechanisms by registry name
    or :class:`MechanismSpec`.

    Safe under concurrent access: every lazy build (network, universal
    trees, metric closure, mechanism instances, method caches) is guarded
    by one reentrant lock, so racing threads observe exactly one fully
    built artifact per key; the mechanism runs themselves execute outside
    the lock against read-only scenario state (the memoised ``xi`` caches
    carry their own lock — see :class:`~repro.engine.batch.MethodCache`).
    The service layer's request coalescing (``repro.service.state``)
    additionally ensures a cold session is *built* once, but a session
    reached by several threads stays correct without it — regression
    tested against the serial oracle in
    ``tests/test_api_session_concurrency.py``.
    """

    def __init__(self, scenario: ScenarioSpec | CostGraph | Mapping, *,
                 source: int | None = None, registry=None) -> None:
        if isinstance(scenario, CostGraph):
            self._network = scenario
            scenario = ScenarioSpec.from_network(scenario, source=source or 0)
        elif isinstance(scenario, ScenarioSpec):
            self._network = None
        elif isinstance(scenario, Mapping):
            scenario = ScenarioSpec.from_dict(scenario)
            self._network = None
        else:
            raise TypeError(
                f"scenario must be a ScenarioSpec, CostGraph or mapping, got {type(scenario).__name__}"
            )
        if source is not None and source != scenario.source:
            raise ValueError(
                f"source={source} conflicts with the spec's source={scenario.source}"
            )
        self.scenario = scenario
        # Telemetry is strictly opt-in: without a registry the session
        # publishes nothing and pays nothing (direct constructions keep
        # their benchmarked facade overhead).
        if registry is not None:
            self._h_build = registry.histogram(
                "repro_session_build_seconds",
                "Scenario artifact build latency (seconds)",
                labels=("artifact",))
            xi = registry.counter(
                "repro_xi_cache_total", "Memoised xi(R) lookups by outcome",
                labels=("result",))
            self._xi_counters = (xi.labels(result="hit"),
                                 xi.labels(result="miss"))
        else:
            self._h_build = None
            self._xi_counters = None
        self._lock = threading.RLock()
        self._trees: dict[str, UniversalTree] = {}
        self._closure = None
        self._terminal_closure = None
        self._mechanisms: dict[tuple, CostSharingMechanism] = {}
        self._method_caches: dict[tuple, MethodCache] = {}
        self._builder_defaults: dict[str, dict] = {}

    # -- shared scenario state (built lazily, cached) -----------------------
    @property
    def source(self) -> int:
        return self.scenario.source

    def _timed_build(self, artifact: str, build):
        """Run one lazy artifact build, observing its latency when a
        registry is attached (called with the session lock held)."""
        if self._h_build is None:
            return build()
        t0 = time.perf_counter()
        built = build()
        self._h_build.labels(artifact=artifact).observe(time.perf_counter() - t0)
        return built

    @property
    def network(self) -> CostGraph:
        """The scenario's network (built once)."""
        with self._lock:
            if self._network is None:
                self._network = self._timed_build(
                    "network", self.scenario.build_network)
            return self._network

    def agents(self) -> list[int]:
        return self.scenario.agents()

    def dense(self):
        """The network's dense array backend (cached on the network)."""
        return self.network.as_dense()

    def universal_tree(self, kind: str | None = None) -> UniversalTree:
        """The universal tree of construction ``kind`` (default: the
        spec's ``tree``), built once per kind."""
        kind = kind or self.scenario.tree
        with self._lock:
            tree = self._trees.get(kind)
            if tree is None:
                tree = self._timed_build(
                    "tree",
                    lambda: UniversalTree.build(self.network, self.source, kind))
                self._trees[kind] = tree
            return tree

    def metric_closure(self):
        """All-pairs shortest-path matrix of the network (built once;
        shared by every Jain-Vazirani parameterization)."""
        with self._lock:
            if self._closure is None:
                from repro.core.jv_steiner import metric_closure_matrix

                self._closure = self._timed_build(
                    "closure", lambda: metric_closure_matrix(self.network))
            return self._closure

    def terminal_closure(self):
        """The cheapest closure that can price this scenario's agents.

        With an explicit ``receivers`` subset this is a terminal-sourced
        :class:`~repro.engine.closure.TerminalClosure` over
        ``{source} + receivers`` — ``O(k n^2)`` to build instead of the
        ``O(n^3)`` all-pairs pass, with bit-identical rows (and therefore
        bit-identical shares).  Without one, every station is a potential
        terminal and the full matrix *is* the terminal closure, so this
        falls through to :meth:`metric_closure`.
        """
        if self.scenario.receivers is None:
            return self.metric_closure()
        with self._lock:
            if self._terminal_closure is None:
                from repro.engine.closure import TerminalClosure

                terminals = [self.source, *self.scenario.receivers]
                self._terminal_closure = self._timed_build(
                    "closure",
                    lambda: TerminalClosure.from_network(self.network, terminals))
            return self._terminal_closure

    # -- mechanisms ---------------------------------------------------------
    def _key(self, name: str, params: Mapping) -> tuple:
        return MechanismSpec(name, dict(params)).key()

    def _canonical_params(self, name: str, params: dict) -> dict:
        """Fill in the builder's keyword defaults (and resolve ``tree=None``
        to the spec's kind) so equivalent requests — parameter omitted vs
        passed explicitly — share one mechanism instance and one xi cache."""
        with self._lock:
            defaults = self._builder_defaults.get(name)
        if defaults is None:
            from repro.api.registry import registered

            signature = inspect.signature(registered(name).builder)
            defaults = {
                p.name: p.default
                for p in signature.parameters.values()
                if p.kind == p.KEYWORD_ONLY and p.default is not p.empty
            }
            with self._lock:
                self._builder_defaults[name] = defaults
        canonical = {**defaults, **params}
        if "tree" in canonical and canonical["tree"] is None:
            canonical["tree"] = self.scenario.tree
        return canonical

    def _resolve(self, mechanism: str | MechanismSpec, params: Mapping) -> tuple[str, dict]:
        if isinstance(mechanism, MechanismSpec):
            name, params = mechanism.name, {**mechanism.params, **params}
        else:
            name, params = mechanism, dict(params)
        return name, self._canonical_params(name, params)

    def mechanism(self, mechanism: str | MechanismSpec, **params) -> CostSharingMechanism:
        """The (cached) mechanism instance for ``(name, params)``."""
        from repro.api.registry import registered

        name, params = self._resolve(mechanism, params)
        key = self._key(name, params)
        with self._lock:
            mech = self._mechanisms.get(key)
            if mech is None:
                mech = registered(name).builder(self, **params)
                self._mechanisms[key] = mech
            return mech

    def method_cache(self, mechanism: str | MechanismSpec, **params) -> MethodCache | None:
        """The memoised cost-sharing method for ``(name, params)``, or
        ``None`` for mechanisms without a reusable ``xi`` (their per-run
        work is profile-specific)."""
        from repro.api.registry import registered

        name, params = self._resolve(mechanism, params)
        key = self._key(name, params)
        with self._lock:
            cache = self._method_caches.get(key)
            if cache is None:
                entry = registered(name)
                if entry.method_of is None:
                    return None
                cache = MethodCache(
                    entry.method_of(self.mechanism(name, **params)),
                    counters=self._xi_counters)
                self._method_caches[key] = cache
            return cache

    def run(self, mechanism: str | MechanismSpec, profile: Profile,
            **params) -> MechanismResult:
        """Price one utility profile (bit-identical to direct construction)."""
        mech = self.mechanism(mechanism, **params)
        cache = self.method_cache(mechanism, **params)
        if cache is not None:
            return mech.run(profile, method=cache)
        return mech.run(profile)

    def run_batch(self, mechanism: str | MechanismSpec, profiles: Iterable[Profile],
                  **params) -> list[MechanismResult]:
        """Price a profile stream on the shared caches (one mechanism
        build, one method cache across the whole stream).

        Mechanisms that expose a vectorized ``run_many`` (the universal
        trees: one flat-array xi pass across every profile) take that
        path; the results are bit-identical to the per-profile loop —
        ``run_many`` only pre-seeds the shared cache and then replays the
        real per-profile driver over it.
        """
        mech = self.mechanism(mechanism, **params)
        cache = self.method_cache(mechanism, **params)
        profiles = list(profiles)
        if cache is not None:
            run_many = getattr(mech, "run_many", None)
            if run_many is not None and len(profiles) > 1:
                return run_many(profiles, method=cache)
            return [mech.run(profile, method=cache) for profile in profiles]
        return [mech.run(profile) for profile in profiles]

    def cache_info(self) -> dict:
        """Diagnostics: what the session has built and how the memoised
        methods are hitting."""
        with self._lock:
            return self._cache_info_locked()

    def _cache_info_locked(self) -> dict:
        per_name: dict[str, int] = {}
        for key in self._method_caches:
            per_name[key[0]] = per_name.get(key[0], 0) + 1

        def label(key: tuple) -> str:
            # Bare name unless several parameterizations coexist — then
            # each keeps its params so none shadows another.
            if per_name[key[0]] == 1:
                return key[0]
            return f"{key[0]} {dict(key[1])}"

        return {
            "network_built": self._network is not None,
            "trees": sorted(self._trees),
            "closure_built": self._closure is not None,
            "terminal_closure_built": self._terminal_closure is not None,
            "mechanisms": len(self._mechanisms),
            "methods": {
                label(key): {
                    "hits": cache.hits, "misses": cache.misses,
                    "hit_rate": cache.hit_rate,
                }
                for key, cache in self._method_caches.items()
            },
        }

    def __repr__(self) -> str:
        return (f"MulticastSession({self.scenario.kind!r}, n={self.scenario.n_stations}, "
                f"source={self.source})")
