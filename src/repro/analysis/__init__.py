"""Experiment layer: named paper instances, experiment runners, tables.

Each experiment in DESIGN.md section 4 has a runner in
:mod:`repro.analysis.experiments` returning structured rows; the benchmark
suite (``benchmarks/``) times and asserts them, and EXPERIMENTS.md records
paper-vs-measured.
"""

from repro.analysis.bounds import (
    jv_bound,
    mst_euclidean_bound,
    nwst_bb_bound,
    wireless_bb_bound,
)
from repro.analysis.instances import (
    Fig1Instance,
    PentagonInstance,
    fig1_collusion_instance,
    pentagon_instance,
    random_euclidean_suite,
    random_symmetric_suite,
)
from repro.analysis.tables import format_table

__all__ = [
    "Fig1Instance",
    "PentagonInstance",
    "fig1_collusion_instance",
    "format_table",
    "jv_bound",
    "mst_euclidean_bound",
    "nwst_bb_bound",
    "pentagon_instance",
    "random_euclidean_suite",
    "random_symmetric_suite",
    "wireless_bb_bound",
]
