"""Experiment runners (one per DESIGN.md experiment ID).

Every runner is deterministic given its seed, returns plain dict rows
(ready for :func:`repro.analysis.tables.format_table`), and includes the
relevant *paper bound* next to each *measured* value so EXPERIMENTS.md can
quote both.  Benchmarks wrap these runners; the test-suite asserts their
invariants on smaller parameters.
"""

from __future__ import annotations

import time
from collections.abc import Sequence

import numpy as np

from repro.analysis.bounds import (
    jv_bound,
    mst_euclidean_bound,
    nwst_bb_bound,
    wireless_bb_bound,
)
from repro.api import MulticastSession, make_mechanism
from repro.analysis.instances import (
    fig1_collusion_instance,
    pentagon_instance,
    random_euclidean_suite,
    random_symmetric_suite,
    random_utilities,
)
from repro.core import (
    EuclideanJVMechanism,
    EuclideanMCMechanism,
    EuclideanShapleyMechanism,
    JVSteinerShares,
    NWSTMechanism,
    UniversalTreeMCMechanism,
    UniversalTreeShapleyMechanism,
    WirelessMulticastMechanism,
    euclidean_optimal_cost_function,
)
from repro.graphs.nwst import exact_node_weighted_steiner
from repro.graphs.random_graphs import as_rng, random_node_weighted_instance
from repro.mechanism.core import core_is_empty, least_core_value
from repro.mechanism.cost_function import CostFunction
from repro.mechanism.moulin_shenker import check_cross_monotonicity
from repro.mechanism.properties import (
    bb_factor,
    find_group_deviation,
    find_unilateral_deviation,
)
from repro.mechanism.vcg import brute_force_efficient_set
from repro.wireless.broadcast import mst_broadcast
from repro.wireless.cost_graph import CostGraph
from repro.wireless.memt import optimal_broadcast, optimal_multicast_cost, steiner_multicast
from repro.wireless.universal_tree import UniversalTree


# ---------------------------------------------------------------------------
# EXP-F1 — Fig. 1: the NWST mechanism is not group strategyproof
# ---------------------------------------------------------------------------

def exp_f1_collusion(epsilon: float = 0.3) -> dict:
    """Reproduce the paper's Fig. 1 walk-through numbers exactly."""
    inst = fig1_collusion_instance()
    mech = NWSTMechanism(inst.graph, inst.weights, inst.terminals)

    truthful = mech.run(inst.utilities)
    w_true = truthful.welfare(inst.utilities)

    collusive_profile = dict(inst.utilities)
    collusive_profile[inst.colluder] = inst.utilities[inst.colluder] - epsilon
    collusive = mech.run(collusive_profile)
    w_coll = collusive.welfare(inst.utilities)

    gsp_violated = all(
        w_coll[i] >= w_true[i] - 1e-9 for i in inst.terminals
    ) and any(w_coll[i] > w_true[i] + 1e-9 for i in inst.terminals)

    rows = [
        {
            "scenario": "truthful",
            **{f"w{i}": w_true[i] for i in inst.terminals},
            "receivers": len(truthful.receivers),
            "charged": truthful.total_charged(),
        },
        {
            "scenario": f"v7 = 3/2 - {epsilon}",
            **{f"w{i}": w_coll[i] for i in inst.terminals},
            "receivers": len(collusive.receivers),
            "charged": collusive.total_charged(),
        },
    ]
    return {
        "rows": rows,
        "expected_truthful": inst.expected_truthful_welfare,
        "expected_collusive": inst.expected_collusive_welfare,
        "measured_truthful": w_true,
        "measured_collusive": w_coll,
        "gsp_violated": gsp_violated,
    }


# ---------------------------------------------------------------------------
# EXP-F2 — Fig. 2: the pentagon instance has an empty core (Lemma 3.3)
# ---------------------------------------------------------------------------

def exp_f2_empty_core(m_values: Sequence[float] = (6.0, 8.0, 10.0),
                      alpha: float = 2.0) -> dict:
    """Empty core for alpha > 1, d = 2; non-empty under alpha = 1."""
    rows = []
    for m in m_values:
        inst = pentagon_instance(m=m, alpha=alpha)
        agents = list(inst.external)
        grand = inst.cost_fn(frozenset(agents))
        pair = inst.cost_fn(frozenset(agents[:2]))
        single = inst.cost_fn(frozenset(agents[:1]))
        empty = core_is_empty(agents, inst.cost_fn)
        eps, _ = least_core_value(agents, inst.cost_fn)

        # alpha = 1 control: C* = max distance, submodular => core non-empty.
        def alpha1_cost(R: frozenset, _inst=inst) -> float:
            return max(
                (_inst.points.distance(_inst.source, i) for i in R), default=0.0
            )

        empty_alpha1 = core_is_empty(agents, alpha1_cost)
        rows.append({
            "m": m,
            "n_stations": inst.points.n,
            "C(all5)": grand,
            "C(single)": single,
            "C(adjacent pair)": pair,
            "pair < 2C/5": pair < 2 * grand / 5,
            "single > C/5": single > grand / 5,
            "core_empty": empty,
            "least_core_eps": eps,
            "core_empty_alpha1": empty_alpha1,
        })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-T1 — universal-tree mechanisms (Lemma 2.1, section 2.1)
# ---------------------------------------------------------------------------

def exp_t1_universal_tree(n_instances: int = 5, n: int = 7, seed: int = 0,
                          tree_kind: str = "spt", layout: str = "uniform",
                          alpha: float = 2.0) -> dict:
    """Universal-tree mechanism invariants over a runner scenario grid.

    The instance suite is the sweep runner's own expansion (one
    :class:`~repro.runner.SweepSpec` scenario axis over ``layout``), so
    the lemma is checked on exactly the replayable scenarios the fleet
    executor serves — pass ``layout="cluster"``/``"grid"``/... to audit
    the other families.
    """
    from repro.engine.batch import sweep_instances
    from repro.runner import SweepSpec

    rng = as_rng(seed)
    grid = SweepSpec(ns=(n,), alphas=(alpha,), layouts=(layout,),
                     seeds=tuple(seed + i for i in range(n_instances)),
                     tree=tree_kind, side=5.0)

    def run_one(scenario) -> dict:
        session = MulticastSession(scenario)
        network, source = session.network, session.source
        tree = session.universal_tree(tree_kind)
        agents = tree.agents()
        cf = CostFunction(agents, lambda R, t=tree: t.cost(R))
        submodular_violations = len(cf.submodularity_violations())
        monotone_violations = len(cf.monotonicity_violations())

        profile = random_utilities(network, source, rng)
        res_s = session.run("tree-shapley", profile, tree=tree_kind)
        shapley_bb = bb_factor(res_s, res_s.cost)

        res_m = session.run("tree-mc", profile, tree=tree_kind)
        nw_opt, _ = brute_force_efficient_set(agents, cf)(dict(profile))
        mc_gap = nw_opt - res_m.extra["net_worth"]
        mc_revenue_ratio = (
            res_m.total_charged() / res_m.cost if res_m.cost > 0 else 1.0
        )

        return {
            "submodularity_violations": submodular_violations,
            "monotonicity_violations": monotone_violations,
            "shapley_bb_factor": shapley_bb,
            "shapley_receivers": len(res_s.receivers),
            "mc_efficiency_gap": mc_gap,
            "mc_revenue_ratio": mc_revenue_ratio,
            "mc_receivers": len(res_m.receivers),
        }

    rows = sweep_instances(grid.scenarios(), run_one)
    return {"rows": rows}


def _build_tree(network: CostGraph, source: int, kind: str) -> UniversalTree:
    return UniversalTree.build(network, source, kind)


# ---------------------------------------------------------------------------
# EXP-T2 — the NWST mechanism (Theorems 2.2 and 2.3)
# ---------------------------------------------------------------------------

def exp_t2_nwst(n_instances: int = 5, n: int = 14, k: int = 5, seed: int = 0,
                mode: str = "branch", check_sp: bool = True) -> dict:
    rng = as_rng(seed)
    rows = []
    for idx in range(n_instances):
        graph, weights, terminals = random_node_weighted_instance(
            n, k, rng, extra_edge_prob=0.2, weight_low=1.0, weight_high=5.0
        )
        profile = {t: float(rng.uniform(0.0, 10.0)) for t in terminals}
        mech = NWSTMechanism(graph, weights, terminals, mode=mode)
        result = mech.run(profile)
        charged = result.total_charged()
        if result.receivers:
            opt = exact_node_weighted_steiner(graph, weights, sorted(result.receivers))
        else:
            opt = 0.0
        ratio = charged / opt if opt > 1e-12 else (1.0 if charged < 1e-9 else float("inf"))
        deviation = (
            find_unilateral_deviation(mech, profile) if check_sp else None
        )
        rows.append({
            "instance": idx,
            "receivers": len(result.receivers),
            "charged": charged,
            "tree_cost": result.cost,
            "optimal": opt,
            "bb_ratio": ratio,
            "paper_bound": nwst_bb_bound(max(len(result.receivers), 1)),
            "restarts": result.extra["n_restarts"],
            "profitable_deviation": deviation is not None,
        })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-T3 — the wireless multicast mechanism (section 2.2.3)
# ---------------------------------------------------------------------------

def exp_t3_wireless(n_instances: int = 4, n: int = 7, seed: int = 0,
                    euclidean: bool = True, check_sp: bool = False) -> dict:
    rng = as_rng(seed)
    if euclidean:
        networks: list[CostGraph] = random_euclidean_suite(n_instances, n, 2, 2.0, rng)
    else:
        networks = random_symmetric_suite(n_instances, n, rng)
    rows = []
    for idx, network in enumerate(networks):
        source = 0
        profile = random_utilities(network, source, rng, scale=2.0)
        mech = make_mechanism("wireless", MulticastSession(network, source=source))
        result = mech.run(profile)
        charged = result.total_charged()
        if result.receivers:
            cstar = optimal_multicast_cost(network, source, result.receivers)
            assert result.power is not None
            feasible = result.power.reaches(network, source, result.receivers)
        else:
            cstar, feasible = 0.0, True
        ratio = charged / cstar if cstar > 1e-12 else (1.0 if charged < 1e-9 else float("inf"))
        deviation = find_unilateral_deviation(mech, profile) if check_sp else None
        rows.append({
            "instance": idx,
            "receivers": len(result.receivers),
            "charged": charged,
            "built_cost": result.cost,
            "C*": cstar,
            "bb_ratio": ratio,
            "paper_bound": wireless_bb_bound(max(len(result.receivers), 1)),
            "feasible": feasible,
            "outer_rounds": result.extra["n_outer_rounds"],
            "profitable_deviation": deviation is not None,
        })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-T4 — optimal Euclidean mechanisms (Lemma 3.1, Theorem 3.2)
# ---------------------------------------------------------------------------

def exp_t4_euclidean_optimal(n_instances: int = 4, n: int = 7, seed: int = 0) -> dict:
    rng = as_rng(seed)
    rows = []
    cases = [("alpha=1, d=2", 2, 1.0), ("d=1, alpha=2", 1, 2.0)]
    for label, dim, alpha in cases:
        for idx, network in enumerate(
            random_euclidean_suite(n_instances, n, dim, alpha, rng)
        ):
            source = 0
            agents = [i for i in range(n) if i != source]
            cf_opt = euclidean_optimal_cost_function(network, source)

            # Solver exactness against the generic bitmask oracle.
            max_err = 0.0
            for _ in range(6):
                size = int(rng.integers(1, len(agents) + 1))
                R = frozenset(
                    int(x) for x in rng.choice(agents, size=size, replace=False)
                )
                max_err = max(max_err, abs(cf_opt(R) - optimal_multicast_cost(network, source, R)))

            cf = CostFunction(agents, cf_opt)
            submod = len(cf.submodularity_violations())

            profile = random_utilities(network, source, rng)
            shap = EuclideanShapleyMechanism(network, source).run(profile)
            shap_bb = bb_factor(shap, cf_opt(shap.receivers))

            mc_mech = EuclideanMCMechanism(network, source)
            mc = mc_mech.run(profile)
            nw_opt, _ = brute_force_efficient_set(agents, cf_opt)(dict(profile))
            rows.append({
                "case": label,
                "instance": idx,
                "solver_vs_exact_err": max_err,
                "submodularity_violations": submod,
                "shapley_bb_factor": shap_bb,
                "mc_efficiency_gap": nw_opt - mc.extra["net_worth"],
            })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-T5 — core emptiness frequency (Lemma 3.3 beyond Fig. 2)
# ---------------------------------------------------------------------------

def exp_t5_core_emptiness(n_instances: int = 20, n: int = 6, seed: int = 0) -> dict:
    rng = as_rng(seed)
    rows = []
    for alpha, label in ((2.0, "alpha=2, d=2"), (1.0, "alpha=1, d=2")):
        empty_count = 0
        for network in random_euclidean_suite(n_instances, n, 2, alpha, rng):
            source = 0
            agents = [i for i in range(n) if i != source]

            def cstar(R: frozenset, net=network) -> float:
                return optimal_multicast_cost(net, source, R)

            if core_is_empty(agents, cstar):
                empty_count += 1
        rows.append({
            "case": label,
            "instances": n_instances,
            "empty_cores": empty_count,
            "fraction_empty": empty_count / n_instances,
        })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-T6 — Steiner/MST approximation bounds (Lemmas 3.4, 3.5)
# ---------------------------------------------------------------------------

def exp_t6_steiner_bounds(n_instances: int = 8, n: int = 8, seed: int = 0,
                          alphas: Sequence[float] = (2.0, 4.0),
                          dims: Sequence[int] = (1, 2, 3)) -> dict:
    rng = as_rng(seed)
    rows = []
    for dim in dims:
        for alpha in alphas:
            if alpha < dim:
                continue  # the theorems require alpha >= d
            worst_multicast = 0.0
            worst_broadcast = 0.0
            for network in random_euclidean_suite(n_instances, n, dim, alpha, rng):
                source = 0
                k = max(2, n // 2)
                receivers = sorted(
                    int(x) for x in rng.choice(range(1, n), size=k, replace=False)
                )
                cstar = optimal_multicast_cost(network, source, receivers)
                if cstar > 1e-9:
                    heur = steiner_multicast(network, source, receivers).cost()
                    worst_multicast = max(worst_multicast, heur / cstar)
                opt_b, _ = optimal_broadcast(network, source)
                if opt_b > 1e-9:
                    mst_b = mst_broadcast(network, source).cost()
                    worst_broadcast = max(worst_broadcast, mst_b / opt_b)
            rows.append({
                "d": dim,
                "alpha": alpha,
                "worst_steiner_multicast_ratio": worst_multicast,
                "worst_mst_broadcast_ratio": worst_broadcast,
                "paper_bound_3d": mst_euclidean_bound(dim),
            })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-T7 — the Jain-Vazirani mechanism (Theorems 3.6, 3.7)
# ---------------------------------------------------------------------------

def exp_t7_jv(n_instances: int = 5, n: int = 7, seed: int = 0, dim: int = 2,
              alpha: float = 2.0, check_gsp: bool = False) -> dict:
    rng = as_rng(seed)
    rows = []
    for idx, network in enumerate(random_euclidean_suite(n_instances, n, dim, alpha, rng)):
        source = 0
        session = MulticastSession(network, source=source)
        mech = session.mechanism("jv")
        xmono = len(check_cross_monotonicity(mech.agents, mech.jv.shares))
        profile = random_utilities(network, source, rng, scale=2.0)
        result = session.run("jv", profile)
        charged = result.total_charged()
        if result.receivers:
            cstar = optimal_multicast_cost(network, source, result.receivers)
        else:
            cstar = 0.0
        ratio = charged / cstar if cstar > 1e-12 else (1.0 if charged < 1e-9 else float("inf"))
        deviation = (
            find_group_deviation(mech, profile, max_coalition_size=2,
                                 n_samples_per_coalition=25, rng=rng)
            if check_gsp
            else None
        )
        rows.append({
            "instance": idx,
            "receivers": len(result.receivers),
            "charged": charged,
            "built_cost": result.cost,
            "C*": cstar,
            "bb_ratio": ratio,
            "paper_bound": jv_bound(dim),
            "cross_monotonicity_violations": xmono,
            "group_deviation_found": deviation is not None,
        })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-E1 — Lemma 3.3's consequence at small scale: C* non-submodular, the
# Shapley value of C* not cross-monotonic (alpha > 1, d > 1)
# ---------------------------------------------------------------------------

def exp_e1_nonsubmodularity(n_instances: int = 12, n: int = 6, seed: int = 0) -> dict:
    """How often exact ``C*`` fails submodularity, and whether its Shapley
    value fails cross-monotonicity, on random alpha = 2, d = 2 instances.

    Lemma 3.3 proves such instances *exist* (the pentagon); this shows they
    are not exotic: already small uniform instances routinely violate
    submodularity, killing the Shapley route to budget balance and
    motivating the paper's approximate mechanisms.
    """
    from repro.core.exact_mechanisms import ExactShapleyMechanism

    rng = as_rng(seed)
    rows = []
    for alpha, label in ((2.0, "alpha=2, d=2"), (1.0, "alpha=1, d=2")):
        non_submodular = 0
        shapley_not_xmono = 0
        for network in random_euclidean_suite(n_instances, n, 2, alpha, rng):
            source = 0
            agents = [i for i in range(n) if i != source]

            def cstar(R: frozenset, net=network) -> float:
                return optimal_multicast_cost(net, source, R)

            cf = CostFunction(agents, cstar)
            if not cf.is_submodular():
                non_submodular += 1
            mech = ExactShapleyMechanism(network, source)
            if check_cross_monotonicity(agents, mech.shares):
                shapley_not_xmono += 1
        rows.append({
            "case": label,
            "instances": n_instances,
            "C*_non_submodular": non_submodular,
            "shapley_not_cross_monotonic": shapley_not_xmono,
        })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-E3 — the properties matrix: every mechanism vs every axiom, measured
# ---------------------------------------------------------------------------

def exp_e3_properties_matrix(seed: int = 0, n: int = 5) -> dict:
    """One row per mechanism: the paper's contribution table, measured.

    Axioms are audited empirically on a fixed small instance with exact
    oracles: NPT/VP/CS, budget-balance factor against C*, efficiency gap,
    and the deviation sweeps (SP: unilateral; GSP: coalitions of size <= 2,
    truth-inclusive grids).  The NWST row uses the paper's own Fig. 1
    instance, where the group deviation *must* be found.
    """
    from repro.analysis.instances import fig1_collusion_instance
    from repro.core.exact_mechanisms import ExactMCMechanism, ExactShapleyMechanism
    from repro.graphs.nwst import exact_node_weighted_steiner
    from repro.mechanism.properties import audit_basic_axioms

    rng = as_rng(seed)
    network = random_euclidean_suite(1, n, 2, 2.0, rng)[0]
    source = 0
    profile = random_utilities(network, source, rng, scale=2.5)
    tree = UniversalTree.from_shortest_paths(network, source)

    def cstar(R: frozenset) -> float:
        return optimal_multicast_cost(network, source, R)

    rows = []

    def audit(name, mech, prof, *, optimum, efficiency_oracle=None,
              expect_group_deviation=None):
        result = mech.run(prof)
        base = audit_basic_axioms(mech, prof, check_consumer_sovereignty=True)
        opt_cost = optimum(frozenset(result.receivers)) if result.receivers else 0.0
        uni = find_unilateral_deviation(mech, prof)
        grp = find_group_deviation(mech, prof, max_coalition_size=2,
                                   n_samples_per_coalition=60, rng=rng)
        row = {
            "mechanism": name,
            "npt": base["npt"],
            "vp": base["vp"],
            "cs": base["cs"],
            "cost_recovery": base["cost_recovery"],
            "bb_factor_vs_C*": bb_factor(result, opt_cost),
            "sp_deviation": uni is not None,
            "gsp_deviation": grp is not None,
        }
        if efficiency_oracle is not None:
            nw_opt, _ = efficiency_oracle(dict(prof))
            row["efficiency_gap"] = nw_opt - result.net_worth(prof)
        rows.append(row)
        if expect_group_deviation is not None:
            row["gsp_expected"] = expect_group_deviation

    agents = [i for i in range(n) if i != source]
    audit("universal-tree Shapley (§2.1)",
          UniversalTreeShapleyMechanism(tree), profile,
          optimum=lambda R: tree.cost(R))
    audit("universal-tree MC (§2.1)",
          UniversalTreeMCMechanism(tree), profile,
          optimum=lambda R: tree.cost(R),
          efficiency_oracle=brute_force_efficient_set(agents, lambda R: tree.cost(R)))
    audit("JV Euclidean (Thm 3.7)",
          EuclideanJVMechanism(network, source), profile, optimum=cstar)
    audit("exact Shapley over C*",
          ExactShapleyMechanism(network, source), profile, optimum=cstar)
    audit("exact MC over C*",
          ExactMCMechanism(network, source), profile, optimum=cstar,
          efficiency_oracle=brute_force_efficient_set(agents, cstar))
    audit("wireless 3ln(k+1)-BB (§2.2.3)",
          WirelessMulticastMechanism(network, source), profile, optimum=cstar)

    # The NWST row runs on the paper's own Fig. 1 counterexample.
    fig1 = fig1_collusion_instance()
    nwst = NWSTMechanism(fig1.graph, fig1.weights, fig1.terminals)

    def nwst_opt(R: frozenset) -> float:
        if not R:
            return 0.0
        return exact_node_weighted_steiner(fig1.graph, fig1.weights, sorted(R))

    audit("NWST 1.5 ln k-BB (Thm 2.2, Fig. 1 instance)",
          nwst, fig1.utilities, optimum=nwst_opt, expect_group_deviation=True)

    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-E4 — Moulin-Shenker [38]: Shapley's worst-case efficiency loss is
# lowest among budget-balanced cross-monotonic methods
# ---------------------------------------------------------------------------

def exp_e4_efficiency_loss(n_instances: int = 4, n: int = 7,
                           n_profiles: int = 40, seed: int = 0) -> dict:
    """Compare the efficiency loss of M(Shapley) against M(marginal-vector)
    mechanisms (fixed-permutation marginal methods — also cross-monotonic
    and budget balanced on the submodular universal-tree game).

    The paper adopts the Shapley value "especially because it achieves the
    lowest worst case efficiency loss over all the utility profiles" [38];
    this experiment measures the worst-case and mean welfare loss of each
    method over random profiles.
    """
    from repro.engine.batch import MethodCache
    from repro.mechanism.moulin_shenker import moulin_shenker
    from repro.mechanism.shapley import marginal_vector_method, shapley_method

    rng = as_rng(seed)
    method_losses: dict[str, list[float]] = {}
    for network in random_euclidean_suite(n_instances, n, 2, 2.0, rng):
        source = 0
        tree = _build_tree(network, source, "spt")
        agents = tree.agents()

        def cost_fn(R, t=tree):
            return t.cost(R)

        solver = brute_force_efficient_set(agents, cost_fn)
        # Memoised per network: the exponential Shapley evaluation of a
        # receiver set is shared by every profile that visits it.
        methods = {
            "shapley": MethodCache(shapley_method(cost_fn)),
            "marginal (ascending ids)": MethodCache(
                marginal_vector_method(sorted(agents), cost_fn)),
            "marginal (descending ids)": MethodCache(
                marginal_vector_method(sorted(agents, reverse=True), cost_fn)),
        }
        for _ in range(n_profiles // n_instances):
            profile = random_utilities(network, source, rng)
            nw_opt, _ = solver(dict(profile))
            for name, method in methods.items():
                result = moulin_shenker(agents, method, profile,
                                        build=lambda R, t=tree: (t.cost(R), None))
                loss = nw_opt - result.net_worth(profile)
                method_losses.setdefault(name, []).append(loss)
    rows = [{
        "method": name,
        "worst_loss": float(np.max(losses)),
        "mean_loss": float(np.mean(losses)),
        "profiles": len(losses),
    } for name, losses in method_losses.items()]
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-E2 — the distributed tree protocol (Penna-Ventre [43], §2.1 remark)
# ---------------------------------------------------------------------------

def exp_e2_distributed(sizes: Sequence[int] = (8, 16, 32), seed: int = 0,
                       tree_kind: str = "spt") -> dict:
    """Distributed vs centralized efficient-set computation on trees:
    correctness (identical results) and the protocol's message/round
    complexity (2(n-1) messages; rounds proportional to tree depth)."""
    from repro.core.distributed_tree import DistributedTreeNetWorth
    from repro.core.universal_tree_mechanisms import tree_efficient_set

    rng = as_rng(seed)
    rows = []
    for n in sizes:
        network = random_symmetric_suite(1, n, rng)[0]
        tree = _build_tree(network, 0, tree_kind)
        profile = random_utilities(network, 0, rng)
        nw_c, set_c = tree_efficient_set(tree, profile)
        nw_d, set_d, stats = DistributedTreeNetWorth(tree).run(profile)
        depth = max(len(tree.path_to_root(i)) for i in range(n)) - 1
        rows.append({
            "n": n,
            "identical_result": abs(nw_c - nw_d) < 1e-9 and set_c == set_d,
            "messages": stats.messages,
            "message_bound_2(n-1)": 2 * (n - 1),
            "rounds": stats.rounds,
            "tree_depth": depth,
        })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-S1 — the fleet sweep: every layout family x mechanism, via the
# process-parallel runner (repro.runner)
# ---------------------------------------------------------------------------

def exp_s1_sweep_fleet(n: int = 7, seeds: Sequence[int] = (0, 1),
                       n_profiles: int = 3, workers: int = 2,
                       alpha: float = 2.0) -> dict:
    """The paper's mechanism families over every scenario layout family,
    executed as one :func:`repro.runner.run_sweep` grid.

    This is the fleet-scale face of the scalability experiment: the grid
    expands deterministically into work items, scenario groups fan out
    over ``workers`` processes (each reusing one session per scenario),
    and the aggregation helper rolls the rows back up into the summary
    table.  Outputs are bit-identical to the serial path — asserted here
    by re-pricing one item from scratch and comparing payloads.
    """
    from repro.geometry.layouts import LAYOUT_FAMILIES
    from repro.runner import ProfileSpec, SweepSpec, run_item, run_sweep, summarize_rows

    spec = SweepSpec(ns=(n,), alphas=(alpha,), seeds=tuple(seeds),
                     layouts=LAYOUT_FAMILIES,
                     mechanisms=("tree-shapley", "tree-mc", "jv", "wireless"),
                     profiles=ProfileSpec(count=n_profiles), side=5.0)
    rows = run_sweep(spec, workers=workers)
    probe = spec.expand()[0]
    if run_item(probe) != rows[0]:
        raise AssertionError(f"sweep row for {probe.item_id} is not replayable")
    return {
        "rows": summarize_rows(rows, by=("layout", "mechanism")),
        "work_items": len(rows),
        "scenarios": len(spec.scenarios()),
        "workers": workers,
        "replayed_item_identical": True,
    }


# ---------------------------------------------------------------------------
# EXP-S2 — the batched mechanism pipeline (repro.engine.batch)
# ---------------------------------------------------------------------------

def exp_s2_batch_pipeline(n: int = 24, n_profiles: int = 60, seed: int = 0) -> dict:
    """Throughput of serving many utility profiles over one network.

    The naive service loop rebuilds the instance artifacts (universal tree /
    metric closure) per profile and re-evaluates every cost-share set; a
    :class:`repro.api.MulticastSession` builds them once and memoises
    ``xi(R)`` across the whole ``run_batch`` stream.  Outcomes are asserted
    identical (the runner raises on divergence — the session caches only
    avoid recomputing pure functions), so the rows report pure speedup.
    """
    rng = as_rng(seed)
    network = random_euclidean_suite(1, n, 2, 2.0, rng)[0]
    source = 0
    profiles = [random_utilities(network, source, rng, scale=2.0)
                for _ in range(n_profiles)]
    session = MulticastSession(network, source=source)

    def same(a, b):
        return (a.receivers == b.receivers and a.shares == b.shares
                and a.cost == b.cost)

    def time_pipeline(label, naive_fn, mechanism_name):
        t0 = time.perf_counter()
        naive = [naive_fn(p) for p in profiles]
        naive_s = time.perf_counter() - t0
        cache = session.method_cache(mechanism_name)
        t0 = time.perf_counter()
        batched = session.run_batch(mechanism_name, profiles)
        batched_s = time.perf_counter() - t0
        identical = all(map(same, naive, batched))
        if not identical:
            raise AssertionError(f"batched {label} diverged from the naive loop")
        return {
            "pipeline": label,
            "profiles": n_profiles,
            "naive_seconds": naive_s,
            "batched_seconds": batched_s,
            "speedup": naive_s / batched_s if batched_s > 0 else float("inf"),
            "cache_hit_rate": cache.hit_rate,
            "identical_results": identical,
        }

    rows = [
        time_pipeline(
            "universal-tree Shapley (§2.1)",
            lambda p: UniversalTreeShapleyMechanism(
                UniversalTree.from_shortest_paths(network, source)
            ).run(p),
            "tree-shapley",
        ),
        time_pipeline(
            "Jain-Vazirani Euclidean (§3.2)",
            lambda p: EuclideanJVMechanism(network, source).run(p),
            "jv",
        ),
    ]
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-D1 — dynamic sessions: cost-share trajectories under churn
# ---------------------------------------------------------------------------

def exp_d1_churn_trajectories(n: int = 10, epochs: int = 6, seed: int = 0,
                              churn_seed: int = 1, n_profiles: int = 3,
                              mechanism: str = "tree-shapley",
                              alpha: float = 2.0) -> dict:
    """Cost-share trajectories of one churning multicast session.

    A :class:`~repro.dynamic.DynamicScenarioSpec` replays ``epochs``
    rounds of seeded join/leave/move churn; the incremental
    :class:`~repro.dynamic.DynamicSession` carries every artifact whose
    inputs did not change across each epoch boundary.  The runner asserts
    the incremental rows are bit-identical to cold per-epoch
    recomputation (a fresh session per epoch) and audits the paper's
    axioms (NPT, VP, cost recovery) at every epoch — then reports the
    per-epoch trajectory: who was active, who got served, what was
    charged, and what the carried caches saved.
    """
    from repro.dynamic import ChurnSpec, DynamicScenarioSpec, DynamicSession, replay_dynamic, trajectory_row
    from repro.runner import ProfileSpec

    spec = DynamicScenarioSpec(
        kind="random", n=n, alpha=alpha, seed=seed, side=5.0, layout="cluster",
        churn=ChurnSpec(epochs=epochs, seed=churn_seed, join_rate=0.3,
                        leave_rate=0.25, move_rate=0.05, move_scale=0.4),
    )
    profile_spec = ProfileSpec(count=n_profiles)
    dyn = DynamicSession(spec)
    t0 = time.perf_counter()
    rows_inc = replay_dynamic(dyn, mechanism, profile_spec, audit=True)
    incremental_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    rows_cold = replay_dynamic(spec, mechanism, profile_spec,
                               incremental=False, audit=True)
    cold_s = time.perf_counter() - t0
    if rows_inc != rows_cold:
        raise AssertionError("incremental epoch replay diverged from cold recomputation")
    violations = sum(len(row["audit"]["violations"]) for row in rows_inc)

    rows = [{**trajectory_row(row), "bb_factor_max": row["audit"]["bb_factor_max"]}
            for row in rows_inc]
    counters = dyn.counters
    return {
        "rows": rows,
        "incremental_equals_cold": True,
        "axiom_violations": violations,
        "sessions_built": counters["sessions_built"],
        "sessions_carried": counters["sessions_carried"],
        "xi_entries_carried": counters["xi_entries_carried"],
        "incremental_seconds": incremental_s,
        "cold_seconds": cold_s,
    }


# ---------------------------------------------------------------------------
# EXP-A4 — baseline comparison: multicast heuristics vs the exact optimum
# ---------------------------------------------------------------------------

def exp_a4_multicast_heuristics(n_instances: int = 6, n: int = 8, seed: int = 0,
                                dim: int = 2, alpha: float = 2.0) -> dict:
    """The Wieselthier-style baseline table the paper's introduction leans
    on: SPT vs MST vs Steiner(KMB) vs BIP multicast, measured against C*."""
    from repro.wireless.memt import bip_multicast, mst_multicast, spt_multicast

    rng = as_rng(seed)
    heuristics = {
        "spt": spt_multicast,
        "mst": mst_multicast,
        "steiner_kmb": steiner_multicast,
        "bip": bip_multicast,
    }
    ratios: dict[str, list[float]] = {name: [] for name in heuristics}
    for network in random_euclidean_suite(n_instances, n, dim, alpha, rng):
        source = 0
        k = max(2, n // 2)
        receivers = sorted(int(x) for x in rng.choice(range(1, n), size=k, replace=False))
        cstar = optimal_multicast_cost(network, source, receivers)
        if cstar <= 1e-9:
            continue
        for name, fn in heuristics.items():
            ratios[name].append(fn(network, source, receivers).cost() / cstar)
    n_cases = min((len(v) for v in ratios.values()), default=0)
    rows = []
    for name, vals in ratios.items():
        if not vals:
            continue
        wins = sum(
            1 for i in range(n_cases)
            if vals[i] <= min(ratios[o][i] for o in ratios) + 1e-12
        )
        rows.append({
            "heuristic": name,
            "mean_ratio": float(np.mean(vals)),
            "max_ratio": float(np.max(vals)),
            "best_on": wins,
        })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-A1 — ablation: universal-tree choice (the "arbitrarily worse" remark)
# ---------------------------------------------------------------------------

def exp_a1_tree_ablation(n_instances: int = 5, n: int = 7, seed: int = 0) -> dict:
    rng = as_rng(seed)
    rows = []
    networks = random_euclidean_suite(n_instances, n, 2, 2.0, rng)
    for kind in ("spt", "mst", "star"):
        ratios = []
        for network in networks:
            source = 0
            tree = _build_tree(network, source, kind)
            receivers = list(range(1, n))
            cstar = optimal_multicast_cost(network, source, receivers)
            if cstar > 1e-9:
                ratios.append(tree.cost(receivers) / cstar)
        rows.append({
            "tree": kind,
            "mean_cost_ratio": float(np.mean(ratios)),
            "max_cost_ratio": float(np.max(ratios)),
        })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-A2 — ablation: Klein-Ravi vs Guha-Khuller spiders
# ---------------------------------------------------------------------------

def exp_a2_spider_ablation(n_instances: int = 5, n: int = 14, k: int = 5,
                           seed: int = 0) -> dict:
    rng = as_rng(seed)
    instances = [
        random_node_weighted_instance(n, k, rng, extra_edge_prob=0.2,
                                      weight_low=1.0, weight_high=5.0)
        for _ in range(n_instances)
    ]
    profiles = [
        {t: float(rng.uniform(0.0, 10.0)) for t in terms}
        for _, _, terms in instances
    ]
    rows = []
    for mode in ("branch", "classic"):
        charged_ratios = []
        elapsed = 0.0
        for (graph, weights, terms), profile in zip(instances, profiles):
            mech = NWSTMechanism(graph, weights, terms, mode=mode)
            t0 = time.perf_counter()
            result = mech.run(profile)
            elapsed += time.perf_counter() - t0
            if result.receivers:
                opt = exact_node_weighted_steiner(graph, weights, sorted(result.receivers))
                if opt > 1e-12:
                    charged_ratios.append(result.total_charged() / opt)
        rows.append({
            "mode": mode,
            "mean_bb_ratio": float(np.mean(charged_ratios)) if charged_ratios else 1.0,
            "max_bb_ratio": float(np.max(charged_ratios)) if charged_ratios else 1.0,
            "total_seconds": elapsed,
        })
    return {"rows": rows}


# ---------------------------------------------------------------------------
# EXP-A3 — ablation: the JV family's per-user mappings f_i
# ---------------------------------------------------------------------------

def exp_a3_jv_weights(n: int = 7, seed: int = 0) -> dict:
    rng = as_rng(seed)
    network = random_euclidean_suite(1, n, 2, 2.0, rng)[0]
    source = 0
    agents = [i for i in range(n) if i != source]
    R = frozenset(agents)

    equal = JVSteinerShares(network, source)
    weighted = JVSteinerShares(
        network, source, {i: float(rng.uniform(0.5, 3.0)) for i in agents}
    )
    s_eq, s_w = equal.shares(R), weighted.shares(R)
    rows = [{
        "family_member": name,
        "total": sum(s.values()),
        "closure_mst": equal.closure_mst_weight(R),
        "max_share": max(s.values()),
        "min_share": min(s.values()),
        "cross_monotonicity_violations": len(
            check_cross_monotonicity(agents, shares_fn.shares)
        ),
    } for name, s, shares_fn in (("equal", s_eq, equal), ("weighted", s_w, weighted))]
    l1 = sum(abs(s_eq[i] - s_w[i]) for i in agents)
    return {"rows": rows, "share_l1_distance": l1}
