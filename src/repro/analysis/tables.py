"""Minimal ASCII table formatting for experiment outputs."""

from __future__ import annotations

from collections.abc import Mapping, Sequence


def format_table(rows: Sequence[Mapping], *, columns: Sequence[str] | None = None,
                 floatfmt: str = ".4g", title: str | None = None) -> str:
    """Render ``rows`` (list of dicts) as a fixed-width ASCII table."""
    if not rows:
        return "(no rows)"
    cols = list(columns) if columns is not None else list(rows[0].keys())

    def cell(value) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            return format(value, floatfmt)
        return str(value)

    rendered = [[cell(row.get(c, "")) for c in cols] for row in rows]
    widths = [max(len(c), *(len(r[i]) for r in rendered)) for i, c in enumerate(cols)]
    sep = "-+-".join("-" * w for w in widths)
    header = " | ".join(c.ljust(w) for c, w in zip(cols, widths))
    body = "\n".join(" | ".join(v.ljust(w) for v, w in zip(r, widths)) for r in rendered)
    parts = []
    if title:
        parts.append(title)
    parts.extend([header, sep, body])
    return "\n".join(parts)
