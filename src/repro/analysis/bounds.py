"""The paper's proven bounds, as named helpers.

Keeping them in one place makes the EXPERIMENTS.md "paper vs measured"
columns unambiguous about which theorem each number comes from.
"""

from __future__ import annotations

import math


def nwst_bb_bound(k: int) -> float:
    """Theorem 2.2: the NWST mechanism is ``1.5 ln k``-BB (k receivers).

    For tiny ``k`` the logarithm is degenerate; the greedy is exactly
    optimal at ``k <= 2`` (a single shortest connection), so the bound is
    reported as ``max(1, 1.5 ln k)``.
    """
    if k <= 2:
        return 1.0 if k <= 1 else max(1.0, 1.5 * math.log(2))
    return 1.5 * math.log(k)


def wireless_bb_bound(k: int) -> float:
    """Section 2.2.3: the wireless mechanism is ``3 ln(k+1)``-BB."""
    return 3.0 * math.log(k + 1)


def mst_euclidean_bound(d: int) -> float:
    """Lemmas 3.4/3.5: ``cost(min Steiner) <= (3^d - 1) C*``; the d = 2
    constant improves to 6 (Ambuehl [1])."""
    if d == 2:
        return 6.0
    return 3.0**d - 1.0


def jv_bound(d: int) -> float:
    """Theorems 3.6/3.7: ``2 (3^d - 1)``-BB, improved to 12 for d = 2."""
    return 2.0 * mst_euclidean_bound(d)
