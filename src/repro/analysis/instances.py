"""Named instances: the paper's two figures plus randomized suites.

Fig. 1 — the NWST group-strategyproofness counterexample.  The journal
figure's node weights are OCR-damaged, but the walk-through in section 2.2.2
pins every quantity; :func:`fig1_collusion_instance` reconstructs a graph
with exactly those spiders and ratios (see DESIGN.md §3):

* terminals 1, 5, 6, 7 with utilities (3, 3, 3, 3/2);
* node 2 (weight 3) adjacent to 1, 5, 7 — the minimum-ratio spider ``Sp2``
  of ratio 1;
* node 3 (weight 4) adjacent to 1, 5, 6 — spider ``Sp1`` of ratio 4/3;
* node 4 (weight 3) adjacent to 1, 6 — the "path 1-4-6" of 2-terminal
  ratio 3/2.

Truthful run: Sp2 (shares 1 each), then the path (3/2 split as +1/2 to
each of {1,5,7} and 3/2 to 6) — welfares (3/2, 3/2, 3/2, 0).  If agent 7
shades its report to 3/2 - eps, the path becomes unaffordable, 7 is
dropped, and the restart picks Sp1 — welfares (5/3, 5/3, 5/3, 0): a
coalition deviation where nobody loses and three agents strictly gain.

Fig. 2 — the pentagon empty-core instance of Lemma 3.3 (see
:func:`repro.geometry.points.pentagon_layout`).  ``C*`` over the five
external agents is priced by the exact Dreyfus-Wagner oracle on the
unit-hop chain graph (for ``alpha > 1`` and unit spacing, chains of unit
hops dominate longer hops; branch-point savings are O(1) against the
Theta(m) inequality slack — the substitution DESIGN.md documents).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.points import PointSet, pentagon_layout, uniform_points
from repro.graphs.adjacency import Graph
from repro.graphs.random_graphs import as_rng, random_cost_matrix
from repro.graphs.steiner import steiner_costs_all_subsets
from repro.wireless.cost_graph import CostGraph, EuclideanCostGraph


# ---------------------------------------------------------------------------
# Fig. 1
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Fig1Instance:
    graph: Graph
    weights: dict
    terminals: tuple
    utilities: dict
    colluder: int  # agent 7
    expected_truthful_welfare: dict
    expected_collusive_welfare: dict


def fig1_collusion_instance() -> Fig1Instance:
    """The reconstructed Fig. 1a instance (exact rational behaviour)."""
    g = Graph()
    weights = {1: 0.0, 5: 0.0, 6: 0.0, 7: 0.0, 2: 3.0, 3: 4.0, 4: 3.0}
    for node in weights:
        g.add_node(node)
    for u, v in [(2, 1), (2, 5), (2, 7), (3, 1), (3, 5), (3, 6), (4, 1), (4, 6)]:
        g.add_edge(u, v, 1.0)
    utilities = {1: 3.0, 5: 3.0, 6: 3.0, 7: 1.5}
    return Fig1Instance(
        graph=g,
        weights=weights,
        terminals=(1, 5, 6, 7),
        utilities=utilities,
        colluder=7,
        expected_truthful_welfare={1: 1.5, 5: 1.5, 6: 1.5, 7: 0.0},
        expected_collusive_welfare={1: 5 / 3, 5: 5 / 3, 6: 5 / 3, 7: 0.0},
    )


# ---------------------------------------------------------------------------
# Fig. 2
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PentagonInstance:
    points: PointSet
    network: EuclideanCostGraph
    chain_graph: Graph  # unit-hop connectivity, edge weight = hop^alpha
    source: int
    external: tuple
    internal: tuple
    alpha: float
    m: float
    costs: dict = field(default_factory=dict)  # frozenset(externals) -> C*

    def cost_fn(self, R: frozenset) -> float:
        return self.costs[frozenset(R)]


def pentagon_instance(m: float = 8.0, alpha: float = 2.0, spacing: float = 1.0) -> PentagonInstance:
    """Build Fig. 2 and price every coalition of external stations."""
    layout = pentagon_layout(m=m, spacing=spacing)
    points: PointSet = layout["points"]
    network = EuclideanCostGraph(points, alpha)

    chain_graph = Graph()
    chain_graph.add_nodes(range(points.n))
    for chain in layout["chains"]:
        for a, b in zip(chain, chain[1:]):
            chain_graph.add_edge(a, b, points.distance(a, b) ** alpha)

    costs = steiner_costs_all_subsets(chain_graph, layout["external"], layout["source"])
    return PentagonInstance(
        points=points,
        network=network,
        chain_graph=chain_graph,
        source=layout["source"],
        external=tuple(layout["external"]),
        internal=tuple(layout["internal"]),
        alpha=alpha,
        m=m,
        costs=costs,
    )


# ---------------------------------------------------------------------------
# Random suites
# ---------------------------------------------------------------------------

def random_symmetric_suite(
    n_instances: int,
    n: int,
    rng: int | np.random.Generator | None = None,
    *,
    metric: bool = False,
) -> list[CostGraph]:
    """General symmetric wireless networks (costs need not be metric)."""
    rng = as_rng(rng)
    return [CostGraph(random_cost_matrix(n, rng, metric=metric)) for _ in range(n_instances)]


def random_euclidean_suite(
    n_instances: int,
    n: int,
    dim: int,
    alpha: float,
    rng: int | np.random.Generator | None = None,
    *,
    side: float = 5.0,
) -> list[EuclideanCostGraph]:
    rng = as_rng(rng)
    return [
        EuclideanCostGraph(uniform_points(n, dim, side=side, rng=rng), alpha)
        for _ in range(n_instances)
    ]


def random_utilities(
    network: CostGraph,
    source: int,
    rng: int | np.random.Generator | None = None,
    *,
    scale: float = 1.0,
) -> dict[int, float]:
    """Utilities commensurate with the instance's cost scale, so receiver
    sets are non-trivial (neither empty nor always-everyone)."""
    rng = as_rng(rng)
    typical = float(np.median(network.matrix[network.matrix > 0])) if network.n > 1 else 1.0
    return {
        i: float(rng.uniform(0.0, 3.0 * scale * typical))
        for i in range(network.n)
        if i != source
    }
