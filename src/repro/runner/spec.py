"""Declarative sweep grids: many scenarios x many mechanisms x profiles.

A :class:`SweepSpec` is the fleet-scale analogue of
:class:`~repro.api.spec.ScenarioSpec`: a frozen, JSON-round-trippable
description of a whole experiment grid — scenario axes (layout families,
sizes, alphas, seeds) crossed with mechanism requests and a profile
generator.  :meth:`SweepSpec.expand` flattens the grid deterministically
into :class:`SweepItem` work items with stable, human-readable ids, so a
sweep can be chunked across processes, written to a JSONL sink, and
resumed by id without ever replaying completed work.

Per-item randomness is *derived, not drawn*: every scenario's profile rng
is seeded from a SHA-256 digest of the scenario's own wire form (plus the
profile spec's base seed), so the same spec expands to the same profiles
in any process, in any order, on any worker count — the property the
serial==parallel equivalence tests pin down.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections.abc import Mapping
from dataclasses import dataclass, field, fields

from repro.api.spec import MechanismSpec, ScenarioSpec, seed_from_text
from repro.dynamic.spec import ChurnSpec, DynamicScenarioSpec
from repro.geometry.layouts import LAYOUT_FAMILIES

PROFILE_GENERATORS = ("uniform", "constant")


def _stable_digest(text: str, length: int = 8) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:length]


@dataclass(frozen=True)
class ProfileSpec:
    """How to generate the utility profiles priced on each scenario.

    * ``generator="uniform"`` — ``count`` profiles of utilities uniform in
      ``[0, 3 * scale * median_cost]`` per agent (the
      :func:`~repro.analysis.instances.random_utilities` convention, so
      receiver sets are non-trivial at any instance scale);
    * ``generator="constant"`` — ``count`` copies of the flat profile
      ``{agent: scale}`` (a deterministic smoke/throughput workload).

    ``seed`` offsets the per-scenario derived seed, so two sweeps over the
    same scenarios can still price independent profile draws.
    """

    generator: str = "uniform"
    count: int = 3
    scale: float = 1.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.generator not in PROFILE_GENERATORS:
            raise ValueError(
                f"unknown profile generator {self.generator!r} "
                f"(want one of {PROFILE_GENERATORS})"
            )
        object.__setattr__(self, "count", int(self.count))
        object.__setattr__(self, "scale", float(self.scale))
        object.__setattr__(self, "seed", int(self.seed))
        if self.count < 1:
            raise ValueError(f"profile count must be >= 1, got {self.count}")
        if self.scale <= 0:
            raise ValueError(f"profile scale must be positive, got {self.scale}")

    def derive_seed(self, scenario: ScenarioSpec) -> int:
        """The profile rng seed for ``scenario`` — a pure function of the
        scenario's wire form and this spec's base seed (never of execution
        order or worker id), shared by every mechanism on the scenario."""
        return seed_from_text(
            f"{scenario.to_json()}|profiles:{self.generator}:{self.seed}")

    def to_dict(self) -> dict:
        return {"generator": self.generator, "count": self.count,
                "scale": self.scale, "seed": self.seed}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ProfileSpec":
        known = {f.name for f in fields(cls)}
        stray = sorted(set(data) - known)
        if stray:
            raise ValueError(f"unknown ProfileSpec fields: {stray}")
        return cls(**dict(data))


@dataclass(frozen=True)
class SweepItem:
    """One unit of sweep work: price ``profiles`` on ``scenario`` with
    ``mechanism``.  ``item_id`` is the stable resume/dedup key."""

    item_id: str
    scenario: ScenarioSpec
    mechanism: MechanismSpec
    profiles: ProfileSpec


def _as_tuple(value, caster, label: str) -> tuple:
    try:
        out = tuple(caster(v) for v in value)
    except (TypeError, ValueError) as exc:
        raise ValueError(f"{label} must be a sequence of {caster.__name__}s: {exc}") from exc
    if not out:
        raise ValueError(f"{label} must be non-empty")
    return out


@dataclass(frozen=True)
class SweepSpec:
    """A frozen grid over scenario axes x mechanisms x a profile spec.

    Scenario axes (the cartesian product defines the instance suite):

    * ``layouts`` — layout family names (:data:`LAYOUT_FAMILIES`);
    * ``ns`` — station counts;
    * ``alphas`` — distance-power gradients;
    * ``seeds`` — layout seeds;

    with shared scalars ``dim``/``side``/``source``/``tree``.  Every
    scenario is priced by every entry of ``mechanisms`` on the *same*
    generated profiles (mechanism comparisons stay paired).  Expansion
    order is deterministic: scenarios in axis order (layouts, then ns,
    then alphas, then seeds), mechanisms innermost — so items sharing a
    scenario are adjacent and an executor can pin them to one session.

    ``churn`` (optional) adds the temporal axis: every scenario becomes a
    :class:`~repro.dynamic.spec.DynamicScenarioSpec` replayed over the
    churn model's epochs, and each work item produces one JSONL row per
    epoch (``(item, epoch)`` resume keys) instead of a single row.
    """

    ns: tuple
    alphas: tuple
    seeds: tuple
    layouts: tuple = ("uniform",)
    mechanisms: tuple = (MechanismSpec("tree-shapley"),)
    profiles: ProfileSpec = field(default_factory=ProfileSpec)
    dim: int = 2
    side: float = 10.0
    source: int = 0
    tree: str = "spt"
    churn: ChurnSpec | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "ns", _as_tuple(self.ns, int, "ns"))
        object.__setattr__(self, "alphas", _as_tuple(self.alphas, float, "alphas"))
        object.__setattr__(self, "seeds", _as_tuple(self.seeds, int, "seeds"))
        object.__setattr__(self, "layouts", tuple(str(v) for v in self.layouts))
        if not self.layouts:
            raise ValueError("layouts must be non-empty")
        unknown = sorted(set(self.layouts) - set(LAYOUT_FAMILIES))
        if unknown:
            raise ValueError(
                f"unknown layout families {unknown} (want members of {LAYOUT_FAMILIES})")
        mechanisms = tuple(
            m if isinstance(m, MechanismSpec) else
            MechanismSpec.from_dict(m) if isinstance(m, Mapping) else
            MechanismSpec(str(m))
            for m in self.mechanisms
        )
        if not mechanisms:
            raise ValueError("mechanisms must be non-empty")
        object.__setattr__(self, "mechanisms", mechanisms)
        if not isinstance(self.profiles, ProfileSpec):
            object.__setattr__(self, "profiles", ProfileSpec.from_dict(self.profiles))
        object.__setattr__(self, "dim", int(self.dim))
        object.__setattr__(self, "side", float(self.side))
        object.__setattr__(self, "source", int(self.source))
        if self.churn is not None and not isinstance(self.churn, ChurnSpec):
            object.__setattr__(self, "churn", ChurnSpec.from_dict(self.churn))
        # Validate the scalar axes early with probe scenarios — n/alpha/dim/
        # side/source/tree errors surface at spec build, not mid-sweep.
        for alpha in self.alphas:
            self._scenario(self.layouts[0], min(self.ns), alpha, self.seeds[0])

    # -- expansion ----------------------------------------------------------
    def _scenario(self, layout: str, n: int, alpha: float, seed: int) -> ScenarioSpec:
        if self.churn is not None:
            return DynamicScenarioSpec(
                kind="random", n=n, dim=self.dim, alpha=alpha, seed=seed,
                side=self.side, source=self.source, tree=self.tree,
                layout=layout, churn=self.churn,
            )
        return ScenarioSpec.from_random(
            n=n, dim=self.dim, alpha=alpha, seed=seed, side=self.side,
            source=self.source, tree=self.tree, layout=layout,
        )

    def _mechanism_label(self, mech: MechanismSpec) -> str:
        if not mech.params:
            return mech.name
        params_json = json.dumps(mech.params, sort_keys=True)
        return f"{mech.name}#{_stable_digest(params_json)}"

    def scenarios(self) -> list[ScenarioSpec]:
        """The scenario suite in deterministic axis order."""
        return [
            self._scenario(layout, n, alpha, seed)
            for layout, n, alpha, seed in itertools.product(
                self.layouts, self.ns, self.alphas, self.seeds)
        ]

    def expand(self) -> list[SweepItem]:
        """Flatten the grid into work items (scenario-major, stable ids).

        Ids look like ``cluster-n12-a2-s3::jv`` — unique within a spec
        because they embed every varying axis (mechanism parameterizations
        are disambiguated by a digest of their params).
        """
        items: list[SweepItem] = []
        seen: set[str] = set()
        for scenario in self.scenarios():
            scenario_id = (f"{scenario.layout}-n{scenario.n}"
                           f"-a{scenario.alpha:g}-s{scenario.seed}")
            for mech in self.mechanisms:
                item_id = f"{scenario_id}::{self._mechanism_label(mech)}"
                if item_id in seen:
                    raise ValueError(f"duplicate work item {item_id!r} "
                                     "(repeated mechanism entry?)")
                seen.add(item_id)
                items.append(SweepItem(item_id=item_id, scenario=scenario,
                                       mechanism=mech, profiles=self.profiles))
        return items

    def n_items(self) -> int:
        return (len(self.layouts) * len(self.ns) * len(self.alphas)
                * len(self.seeds) * len(self.mechanisms))

    def n_epochs(self) -> int:
        """Epochs per work item (1 for static sweeps)."""
        return self.churn.epochs if self.churn is not None else 1

    def n_rows(self) -> int:
        """Total JSONL rows the sweep produces (items x epochs)."""
        return self.n_items() * self.n_epochs()

    # -- wire format --------------------------------------------------------
    def to_dict(self) -> dict:
        out = {
            "ns": list(self.ns),
            "alphas": list(self.alphas),
            "seeds": list(self.seeds),
            "layouts": list(self.layouts),
            "mechanisms": [m.to_dict() for m in self.mechanisms],
            "profiles": self.profiles.to_dict(),
            "dim": self.dim,
            "side": self.side,
            "source": self.source,
            "tree": self.tree,
        }
        # Omitted when unset, so pre-churn specs keep their exact wire form.
        if self.churn is not None:
            out["churn"] = self.churn.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        known = {f.name for f in fields(cls)}
        stray = sorted(set(data) - known)
        if stray:
            raise ValueError(f"unknown SweepSpec fields: {stray}")
        return cls(**dict(data))

    def to_json(self, **dumps_kwargs) -> str:
        dumps_kwargs.setdefault("sort_keys", True)
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_json(cls, text: str) -> "SweepSpec":
        return cls.from_dict(json.loads(text))
