"""JSONL result store with crash-safe resume.

One sweep work item = one JSON object on one line, written append-only
and flushed per row, so a killed sweep loses at most the line being
written.  On resume the sink truncates any partial trailing line (the
only corruption an append-only writer can suffer) and reports the item
ids already present; the executor then runs exactly the missing items.

Rows are serialized with sorted keys and no timestamps, so a row's bytes
are a pure function of its work item — the serial==parallel equivalence
guarantee is literal byte equality of sink files modulo line order.
"""

from __future__ import annotations

import json
import os
import pathlib


def _scan(path: pathlib.Path) -> tuple[list[dict], int]:
    """Parse complete JSONL rows and return them with the byte offset of
    the end of the last complete line (0 for a missing/empty file)."""
    rows: list[dict] = []
    good_end = 0
    if not path.exists():
        return rows, good_end
    with path.open("rb") as fh:
        offset = 0
        for raw in fh:
            offset += len(raw)
            text = raw.decode("utf-8", errors="replace").strip()
            if not text:
                good_end = offset
                continue
            if not raw.endswith(b"\n"):
                break  # partial tail line (killed mid-write)
            try:
                row = json.loads(text)
            except json.JSONDecodeError:
                break  # malformed tail; everything before it stands
            rows.append(row)
            good_end = offset
    return rows, good_end


def iter_rows(path: str | os.PathLike, *,
              chunk_size: int = 1 << 16):
    """Yield the complete rows of a sink file one at a time.

    Streams the file in ``chunk_size`` blocks and holds at most one
    pending line in memory, so a multi-million-row service or sweep log
    aggregates in O(1) memory.  Semantics match :func:`read_rows`
    exactly: blank lines are skipped, a partial trailing line (no
    newline — a writer killed mid-row) is ignored, and a malformed line
    ends the stream (everything before it stands, as on resume).
    """
    path = pathlib.Path(path)
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    if not path.exists():
        return
    buffer = b""
    with path.open("rb") as fh:
        while True:
            chunk = fh.read(chunk_size)
            if not chunk:
                return  # leftover buffer (if any) is a partial tail
            buffer += chunk
            while True:
                newline = buffer.find(b"\n")
                if newline < 0:
                    break
                line, buffer = buffer[:newline], buffer[newline + 1:]
                text = line.decode("utf-8", errors="replace").strip()
                if not text:
                    continue
                try:
                    yield json.loads(text)
                except json.JSONDecodeError:
                    return  # malformed tail; everything before it stands


def read_rows(path: str | os.PathLike) -> list[dict]:
    """All complete rows of a sink file (a truncated tail is ignored)."""
    return list(iter_rows(path))


class JSONLSink:
    """Append-only JSONL writer keyed by each row's ``"item"`` field."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = pathlib.Path(path)
        self._fh = None

    # -- lifecycle ----------------------------------------------------------
    def start(self, *, resume: bool = False) -> list[dict]:
        """Open the sink and return the rows already completed.

        With ``resume=False`` any existing file is truncated (a fresh
        sweep).  With ``resume=True`` the file is kept, a partial trailing
        line is cut off, and the surviving rows are returned so the caller
        can skip their items.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        rows: list[dict] = []
        if resume:
            rows, good_end = _scan(self.path)
            if self.path.exists():
                with self.path.open("r+b") as fh:
                    fh.truncate(good_end)
        self._fh = self.path.open("a" if resume else "w", encoding="utf-8")
        return rows

    def write(self, row: dict) -> None:
        if self._fh is None:
            raise RuntimeError("sink is not open — call start() first")
        self._fh.write(json.dumps(row, sort_keys=True) + "\n")
        self._fh.flush()

    def rewrite(self, rows: list[dict]) -> None:
        """Replace the file's contents with exactly ``rows`` (used by a
        resume that rejected stale rows), leaving the sink open for
        appending the remaining work."""
        if self._fh is None:
            raise RuntimeError("sink is not open — call start() first")
        self._fh.close()
        self._fh = self.path.open("w", encoding="utf-8")
        for row in rows:
            self.write(row)

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "JSONLSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- inspection ---------------------------------------------------------
    @staticmethod
    def completed_ids(path: str | os.PathLike) -> set[str]:
        """Item ids of every complete row in ``path``."""
        return {row["item"] for row in read_rows(path) if "item" in row}
