"""The sweep executor: expand, chunk, price, sink — serially or across
processes.

Work items sharing a scenario are grouped and dispatched together, so a
worker builds one :class:`~repro.api.session.MulticastSession` (network,
universal trees, metric closure, memoised xi caches) per scenario and
prices every mechanism of the group on it — the same sharing the PR 2
facade gives a single-process service, now fleet-wide.  A churn sweep
(:attr:`SweepSpec.churn` set) pins one
:class:`~repro.dynamic.session.DynamicSession` per scenario group
instead and replays its epochs once for the whole group — every
mechanism prices every epoch on the carried caches, and each work item
emits one row per epoch keyed ``(item, epoch)``.

Determinism is the contract: a row's content is a pure function of its
work item (profiles come from seeds *derived* from the scenario's wire
form, rows carry no timestamps), so ``run_sweep(spec, workers=4)``
produces byte-identical JSONL payloads to the serial path, modulo line
order.  Rows returned from :func:`run_sweep` are always in expansion
order (epochs ascending within an item) regardless of worker scheduling.

``audit=True`` additionally runs the paper's axiom checkers (NPT, VP,
cost recovery + the empirical budget-balance factor — see
:func:`repro.mechanism.properties.audit_profile_results`) on every row's
already-computed results and embeds the report under ``row["audit"]``;
violations are itemized per profile, so a sweep doubles as a
paper-theorem regression net at fleet scale.
"""

from __future__ import annotations

import functools
import multiprocessing
import time
from collections.abc import Callable, Sequence

import numpy as np

from repro.api.registry import available_mechanisms, registered
from repro.api.serialize import result_to_dict, summarize_results
from repro.api.session import MulticastSession
from repro.api.spec import ScenarioSpec
from repro.dynamic.session import DynamicSession, epoch_payload
from repro.dynamic.spec import DynamicScenarioSpec
from repro.engine.batch import group_consecutive
from repro.mechanism.properties import audit_profile_results
from repro.observability import default_registry
from repro.runner.sink import JSONLSink
from repro.runner.spec import ProfileSpec, SweepItem, SweepSpec

ROW_SCHEMA = 1


def _sweep_metrics():
    """Per-process sweep telemetry in the *process-local* default
    registry (a registry holds a lock, so it is never pickled to pool
    workers — each worker accumulates its own and ``metrics-dump``
    reports the serial in-process view).  Timings are observability
    only: rows never carry them, so parallel output stays byte-identical
    to serial."""
    registry = default_registry()
    return (registry.histogram(
                "repro_sweep_item_seconds",
                "Per-work-item pricing latency (seconds)",
                labels=("mechanism",)),
            registry.counter(
                "repro_sweep_rows_total", "Sweep result rows produced"))


def make_profiles(network, source: int, scenario: ScenarioSpec,
                  profile_spec: ProfileSpec) -> list[dict[int, float]]:
    """The scenario's utility profiles (identical for every mechanism and
    every execution schedule — see :meth:`ProfileSpec.derive_seed`)."""
    agents = scenario.agents()
    if profile_spec.generator == "constant":
        return [{a: profile_spec.scale for a in agents}
                for _ in range(profile_spec.count)]
    from repro.analysis.instances import random_utilities

    rng = np.random.default_rng(profile_spec.derive_seed(scenario))
    # Draw over every non-source station, then restrict: an explicit
    # ``receivers`` subset must not perturb the rng stream, so scenarios
    # without one keep byte-identical profiles across versions.
    keep = set(agents)
    return [{i: u for i, u in
             random_utilities(network, source, rng, scale=profile_spec.scale).items()
             if i in keep}
            for _ in range(profile_spec.count)]


def _item_meta(item: SweepItem) -> dict:
    scenario = item.scenario
    return {
        "schema": ROW_SCHEMA,
        "item": item.item_id,
        "layout": scenario.layout,
        "n": scenario.n_stations,
        "alpha": scenario.alpha,
        "seed": scenario.seed,
        "scenario": scenario.to_dict(),
    }


def _item_row(item: SweepItem, results: Sequence, *,
              session: MulticastSession | None = None,
              profiles: Sequence | None = None,
              audit: bool = False) -> dict:
    row = {
        **_item_meta(item),
        "mechanism": item.mechanism.to_dict(),
        "profiles": item.profiles.to_dict(),
        "profile_seed": item.profiles.derive_seed(item.scenario),
        "results": [result_to_dict(r) for r in results],
        "summary": summarize_results(results),
    }
    if audit:
        entry = registered(item.mechanism.name)
        row["audit"] = audit_profile_results(
            session.mechanism(item.mechanism), profiles, results,
            axioms=entry.guarantees, bb_bound=entry.bb_factor)
    return row


def run_item(item: SweepItem, *, audit: bool = False) -> dict:
    """Price one *static* work item from scratch (its own session) — the
    reference any grouped/parallel execution must reproduce exactly.  For
    churn items (one row per epoch) use :func:`run_dynamic_item`."""
    if isinstance(item.scenario, DynamicScenarioSpec):
        raise ValueError(
            f"{item.item_id!r} is a churn item (one row per epoch); "
            "use run_dynamic_item to replay it")
    return _run_scenario_group((item,), audit=audit)[0]


def run_dynamic_item(item: SweepItem, *, audit: bool = False) -> list[dict]:
    """Replay one churn work item from scratch: its rows in epoch order,
    byte-identical to what any sweep schedule produces for the item."""
    if not isinstance(item.scenario, DynamicScenarioSpec):
        raise ValueError(f"{item.item_id!r} is a static item; use run_item")
    return _run_scenario_group((item,), audit=audit)


def _run_scenario_group(group: tuple[SweepItem, ...], audit: bool = False) -> list[dict]:
    """Price every item of one scenario on a shared session."""
    if isinstance(group[0].scenario, DynamicScenarioSpec):
        return _run_dynamic_group(group, audit)
    h_item, c_rows = _sweep_metrics()
    session = MulticastSession(group[0].scenario, registry=default_registry())
    profiles = make_profiles(session.network, session.source,
                             group[0].scenario, group[0].profiles)
    rows = []
    for item in group:
        t0 = time.perf_counter()
        results = session.run_batch(item.mechanism, profiles)
        rows.append(_item_row(item, results, session=session,
                              profiles=profiles, audit=audit))
        h_item.labels(mechanism=item.mechanism.name).observe(
            time.perf_counter() - t0)
        c_rows.inc()
    return rows


def _run_dynamic_group(group: tuple[SweepItem, ...], audit: bool) -> list[dict]:
    """Replay one churning scenario for every mechanism of the group.

    Epochs advance in the outer loop so the shared
    :class:`DynamicSession` carries its artifacts across each boundary
    exactly once, whatever the group size; rows come back item-major
    after the final sort in :func:`run_sweep`.
    """
    h_item, c_rows = _sweep_metrics()
    dyn = DynamicSession(group[0].scenario, registry=default_registry())
    rows = []
    for epoch in range(dyn.n_epochs):
        # Items of a group share one ProfileSpec (SweepSpec carries a
        # single profile recipe), so the epoch's profiles are drawn once.
        profiles = dyn.epoch_profiles(epoch, group[0].profiles)
        for item in group:
            t0 = time.perf_counter()
            payload = epoch_payload(dyn, epoch, item.mechanism, item.profiles,
                                    profiles=profiles, audit=audit)
            rows.append({**_item_meta(item), **payload})
            h_item.labels(mechanism=item.mechanism.name).observe(
                time.perf_counter() - t0)
            c_rows.inc()
    return rows


def _row_matches(row: dict, item: SweepItem, audit: bool) -> bool:
    """A stored row is reusable only when it was produced by this exact
    work item under the same audit setting.  Item ids embed the *varying*
    axes but not the spec's shared scalars (side/dim/source/tree), the
    profile recipe, or the churn model, so a sink left behind by a
    different spec — e.g. the same grid with a different churn seed —
    could collide on id alone; compare the full embedded wire state
    instead."""
    return (row.get("scenario") == item.scenario.to_dict()
            and row.get("mechanism") == item.mechanism.to_dict()
            and row.get("profiles") == item.profiles.to_dict()
            and ("audit" in row) == audit)


def _check_mechanisms(spec: SweepSpec) -> None:
    known = set(available_mechanisms())
    unknown = sorted({m.name for m in spec.mechanisms} - known)
    if unknown:
        raise ValueError(
            f"unknown mechanisms {unknown}; available: {sorted(known)}")


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    out: str | None = None,
    resume: bool = False,
    audit: bool = False,
    progress: Callable[[dict], None] | None = None,
) -> list[dict]:
    """Run the whole grid and return its rows in expansion order.

    ``workers > 1`` distributes scenario groups over a process pool (each
    group keeps its one-session-per-scenario reuse); outputs are
    byte-identical to ``workers=1``.  With ``out`` every row is appended
    to a JSONL sink as it completes; ``resume=True`` additionally skips
    items already present in the sink (after truncating any partial tail
    line) and folds their stored rows into the returned list.  ``audit``
    embeds the per-row axiom audit (and makes rows from audit-less sweeps
    non-reusable on resume, since their bytes differ).

    Churn sweeps emit one row per ``(item, epoch)``.  Resume is
    all-or-nothing per item: an item whose epoch block is complete and
    matching is reused wholesale; a partial block (e.g. a sweep killed
    mid-item, or a truncated tail epoch) is purged from the sink and the
    item replays from epoch 0 — incremental replay needs the carried
    state anyway, and rows are pure functions of the item, so the rerun
    reproduces the purged rows byte-for-byte.

    ``progress`` (if given) is called with each freshly-computed row, in
    completion order.
    """
    _check_mechanisms(spec)
    items = spec.expand()
    epochs = spec.churn.epochs if spec.churn is not None else None
    order = {item.item_id: idx for idx, item in enumerate(items)}
    by_id = {item.item_id: item for item in items}

    def item_keys(item: SweepItem) -> list[tuple]:
        if epochs is None:
            return [(item.item_id, None)]
        return [(item.item_id, epoch) for epoch in range(epochs)]

    sink = JSONLSink(out) if out is not None else None
    completed: dict[tuple, dict] = {}
    try:
        if sink is not None:
            stored = sink.start(resume=resume)
            kept: dict[tuple, dict] = {}
            for row in stored:
                item = by_id.get(row.get("item"))
                if item is None or not _row_matches(row, item, audit):
                    continue
                key = (row["item"], row.get("epoch"))
                if key not in kept:
                    kept[key] = row
            for item in items:
                keys = item_keys(item)
                if all(key in kept for key in keys):
                    for key in keys:
                        completed[key] = kept[key]
            if len(completed) != len(stored):
                # Stale/foreign/partial-epoch rows (another spec's sink, a
                # changed churn seed, or a mid-item crash) must not
                # survive into the final file.
                sink.rewrite(list(completed.values()))
        todo = [item for item in items if item_keys(item)[0] not in completed]
        groups = group_consecutive(todo, key=lambda item: item.scenario)

        fresh: list[dict] = []

        def collect(rows: list[dict]) -> None:
            for row in rows:
                fresh.append(row)
                if sink is not None:
                    sink.write(row)
                if progress is not None:
                    progress(row)

        run_group = functools.partial(_run_scenario_group, audit=audit)
        n_workers = max(1, min(int(workers), len(groups)))
        if n_workers <= 1:
            for group in groups:
                collect(run_group(group))
        else:
            with multiprocessing.Pool(n_workers) as pool:
                for rows in pool.imap_unordered(run_group, groups):
                    collect(rows)
    finally:
        if sink is not None:
            sink.close()

    merged = list(completed.values()) + fresh
    merged.sort(key=lambda row: (order[row["item"]], row.get("epoch") or 0))
    return merged
