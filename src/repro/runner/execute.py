"""The sweep executor: expand, chunk, price, sink — serially or across
processes.

Work items sharing a scenario are grouped and dispatched together, so a
worker builds one :class:`~repro.api.session.MulticastSession` (network,
universal trees, metric closure, memoised xi caches) per scenario and
prices every mechanism of the group on it — the same sharing the PR 2
facade gives a single-process service, now fleet-wide.

Determinism is the contract: a row's content is a pure function of its
work item (profiles come from seeds *derived* from the scenario's wire
form, rows carry no timestamps), so ``run_sweep(spec, workers=4)``
produces byte-identical JSONL payloads to the serial path, modulo line
order.  Rows returned from :func:`run_sweep` are always in expansion
order regardless of worker scheduling.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Callable, Sequence

import numpy as np

from repro.api.registry import available_mechanisms
from repro.api.serialize import result_to_dict
from repro.api.session import MulticastSession
from repro.api.spec import ScenarioSpec
from repro.engine.batch import group_consecutive
from repro.runner.sink import JSONLSink
from repro.runner.spec import ProfileSpec, SweepItem, SweepSpec

ROW_SCHEMA = 1


def make_profiles(network, source: int, scenario: ScenarioSpec,
                  profile_spec: ProfileSpec) -> list[dict[int, float]]:
    """The scenario's utility profiles (identical for every mechanism and
    every execution schedule — see :meth:`ProfileSpec.derive_seed`)."""
    agents = [i for i in range(network.n) if i != source]
    if profile_spec.generator == "constant":
        return [{a: profile_spec.scale for a in agents}
                for _ in range(profile_spec.count)]
    from repro.analysis.instances import random_utilities

    rng = np.random.default_rng(profile_spec.derive_seed(scenario))
    return [random_utilities(network, source, rng, scale=profile_spec.scale)
            for _ in range(profile_spec.count)]


def _bb_ratio(charged: float, cost: float) -> float | None:
    """charged/cost, with the degenerate cases pinned: an empty/free
    outcome is perfectly balanced (1.0), revenue over zero cost is
    undefined (None — JSONL stays strict-parseable, no Infinity)."""
    if cost > 1e-12:
        return charged / cost
    return 1.0 if abs(charged) < 1e-9 else None


def _item_row(item: SweepItem, results: Sequence) -> dict:
    charges = [r.total_charged() for r in results]
    costs = [r.cost for r in results]
    ratios = [_bb_ratio(charged, cost) for charged, cost in zip(charges, costs)]
    defined = [r for r in ratios if r is not None]
    scenario = item.scenario
    return {
        "schema": ROW_SCHEMA,
        "item": item.item_id,
        "layout": scenario.layout,
        "n": scenario.n_stations,
        "alpha": scenario.alpha,
        "seed": scenario.seed,
        "mechanism": item.mechanism.to_dict(),
        "scenario": scenario.to_dict(),
        "profiles": item.profiles.to_dict(),
        "profile_seed": item.profiles.derive_seed(scenario),
        "results": [result_to_dict(r) for r in results],
        "summary": {
            "profiles": len(results),
            "mean_receivers": sum(len(r.receivers) for r in results) / len(results),
            "mean_charged": sum(charges) / len(charges),
            "mean_cost": sum(costs) / len(costs),
            "mean_bb": sum(defined) / len(defined) if defined else None,
            "worst_bb": max(defined) if defined else None,
        },
    }


def run_item(item: SweepItem) -> dict:
    """Price one work item from scratch (its own session) — the reference
    any grouped/parallel execution must reproduce exactly."""
    return _run_scenario_group((item,))[0]


def _run_scenario_group(group: tuple[SweepItem, ...]) -> list[dict]:
    """Price every item of one scenario on a shared session."""
    session = MulticastSession(group[0].scenario)
    profiles = make_profiles(session.network, session.source,
                             group[0].scenario, group[0].profiles)
    rows = []
    for item in group:
        results = session.run_batch(item.mechanism, profiles)
        rows.append(_item_row(item, results))
    return rows


def _row_matches(row: dict, item: SweepItem) -> bool:
    """A stored row is reusable only when it was produced by this exact
    work item.  Item ids embed the *varying* axes but not the spec's
    shared scalars (side/dim/source/tree) or the profile recipe, so a
    sink left behind by a different spec could collide on id alone —
    compare the full embedded wire state instead."""
    return (row.get("scenario") == item.scenario.to_dict()
            and row.get("mechanism") == item.mechanism.to_dict()
            and row.get("profiles") == item.profiles.to_dict())


def _check_mechanisms(spec: SweepSpec) -> None:
    known = set(available_mechanisms())
    unknown = sorted({m.name for m in spec.mechanisms} - known)
    if unknown:
        raise ValueError(
            f"unknown mechanisms {unknown}; available: {sorted(known)}")


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    out: str | None = None,
    resume: bool = False,
    progress: Callable[[dict], None] | None = None,
) -> list[dict]:
    """Run the whole grid and return its rows in expansion order.

    ``workers > 1`` distributes scenario groups over a process pool (each
    group keeps its one-session-per-scenario reuse); outputs are
    byte-identical to ``workers=1``.  With ``out`` every row is appended
    to a JSONL sink as it completes; ``resume=True`` additionally skips
    items already present in the sink (after truncating any partial tail
    line) and folds their stored rows into the returned list.

    ``progress`` (if given) is called with each freshly-computed row, in
    completion order.
    """
    _check_mechanisms(spec)
    items = spec.expand()
    order = {item.item_id: idx for idx, item in enumerate(items)}
    by_id = {item.item_id: item for item in items}

    sink = JSONLSink(out) if out is not None else None
    completed: dict[str, dict] = {}
    try:
        if sink is not None:
            stored = sink.start(resume=resume)
            for row in stored:
                item = by_id.get(row.get("item"))
                if item is not None and _row_matches(row, item):
                    completed[item.item_id] = row
            if len(completed) != len(stored):
                # Stale/foreign rows (another spec's sink, or a reused
                # path) must not survive into the final file.
                sink.rewrite(list(completed.values()))
        todo = [item for item in items if item.item_id not in completed]
        groups = group_consecutive(todo, key=lambda item: item.scenario)

        fresh: list[dict] = []

        def collect(rows: list[dict]) -> None:
            for row in rows:
                fresh.append(row)
                if sink is not None:
                    sink.write(row)
                if progress is not None:
                    progress(row)

        n_workers = max(1, min(int(workers), len(groups)))
        if n_workers <= 1:
            for group in groups:
                collect(_run_scenario_group(group))
        else:
            with multiprocessing.Pool(n_workers) as pool:
                for rows in pool.imap_unordered(_run_scenario_group, groups):
                    collect(rows)
    finally:
        if sink is not None:
            sink.close()

    merged = list(completed.values()) + fresh
    merged.sort(key=lambda row: order[row["item"]])
    return merged
