"""repro.runner — the fleet-scale sweep layer over the ``repro.api`` facade.

PR 1 built the per-instance fast path (``repro.engine``) and PR 2 the
per-scenario serving facade (``repro.api``); this package is the layer
above both: declarative experiment *grids* executed across processes with
replayable results.

* :class:`SweepSpec` / :class:`ProfileSpec` / :class:`SweepItem` — a
  frozen, JSON-round-trippable grid over scenario axes (layout families x
  sizes x alphas x seeds) x mechanisms x profile generators, expanding
  deterministically into work items (:mod:`repro.runner.spec`);
* :func:`run_sweep` / :func:`run_item` — the executor: one session per
  scenario, optional ``multiprocessing`` fan-out, bit-identical to the
  serial path (:mod:`repro.runner.execute`);
* :class:`JSONLSink` / :func:`read_rows` / :func:`iter_rows` — the append-only result store
  with truncation-tolerant resume (:mod:`repro.runner.sink`);
* :func:`summarize_rows` / :func:`summarize_jsonl` — roll sink files into
  ``analysis.tables``-ready summaries (:mod:`repro.runner.aggregate`).

``python -m repro sweep --spec sweep.json --workers 4 --out results.jsonl
[--resume]`` drives this from the command line.
"""

from repro.dynamic.spec import ChurnSpec
from repro.runner.aggregate import mechanism_label, summarize_jsonl, summarize_rows
from repro.runner.execute import make_profiles, run_dynamic_item, run_item, run_sweep
from repro.runner.sink import JSONLSink, iter_rows, read_rows
from repro.runner.spec import ProfileSpec, SweepItem, SweepSpec

__all__ = [
    "ChurnSpec",
    "JSONLSink",
    "ProfileSpec",
    "SweepItem",
    "SweepSpec",
    "make_profiles",
    "mechanism_label",
    "iter_rows",
    "read_rows",
    "run_dynamic_item",
    "run_item",
    "run_sweep",
    "summarize_jsonl",
    "summarize_rows",
]
