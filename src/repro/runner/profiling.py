"""cProfile support for the CLI (``--profile`` on ``run`` and ``sweep``).

One :class:`cProfile.Profile` wraps the whole pricing call; the report
then *attributes* time to the pipeline's stages by matching the profiled
function names against per-stage marker sets — build (network/backend
construction), closure (all-pairs / terminal-sourced distances), tree
(Steiner/universal-tree construction) and xi (share evaluation + the
Moulin-Shenker drop loop).  Attribution through markers rather than
explicit stage wrapping keeps the measured run identical to a normal
one: the session's lazy caches (closure, trees) are built exactly when a
mechanism demands them, never force-warmed just to be timed.

Stage times are the *cumulative* time of the stage's dominant marker
function, so nested stages overlap (xi includes closure work a memoised
method triggers on first touch) and the stages need not sum to the
total — the report says where the time is, not a partition of it.
"""

from __future__ import annotations

import cProfile
import pstats
from contextlib import contextmanager

# funcname fragments per stage; a profiled function belongs to the stage
# whose fragment its name contains.  Cumulative time of the dominant
# match = the stage's headline number.
STAGE_MARKERS: dict[str, tuple[str, ...]] = {
    "build": ("build_network", "from_cost_graph", "power_matrix",
              "as_dense", "from_graph"),
    "closure": ("all_pairs_arrays", "metric_closure", "batched_dijkstra",
                "heap_dijkstra_arrays", "multi_source_arrays",
                "TerminalClosure"),
    "tree": ("universal_tree", "mehlhorn_steiner_tree", "kmb_steiner_tree",
             "mehlhorn_aux_metric", "find_min_ratio_spider", "prim_mst",
             "spanning_mst"),
    "xi": ("moulin_shenker", "water_filling_shares", "moat_shares",
           "run_profiles_lockstep", "shapley", "_aux_shares"),
}


@contextmanager
def maybe_profile(enabled: bool):
    """Yield an active :class:`StageProfile` (or ``None`` when disabled)."""
    if not enabled:
        yield None
        return
    prof = StageProfile()
    prof.profile.enable()
    try:
        yield prof
    finally:
        prof.profile.disable()


class StageProfile:
    """A cProfile run plus the stage-attribution report."""

    def __init__(self) -> None:
        self.profile = cProfile.Profile()

    def stage_rows(self) -> list[dict]:
        """Per-stage ``{stage, function, calls, cumulative_s}`` rows —
        the dominant (highest cumulative time) marker match of each
        stage; stages whose markers never ran are omitted."""
        stats = pstats.Stats(self.profile)
        rows = []
        for stage, markers in STAGE_MARKERS.items():
            best = None
            for (filename, _lineno, funcname), entry in stats.stats.items():
                if not any(m in funcname for m in markers):
                    continue
                cc, _nc, _tt, ct, _callers = entry
                if best is None or ct > best[2]:
                    best = (funcname, cc, ct)
            if best is not None:
                rows.append({"stage": stage, "function": best[0],
                             "calls": best[1],
                             "cumulative_s": round(best[2], 4)})
        return rows

    def report(self, stream, *, top: int = 15) -> None:
        """Human-readable report: the stage table, then the ``top``
        functions by cumulative time."""
        print("profile: stage attribution (cumulative time of the "
              "dominant marker per stage)", file=stream)
        rows = self.stage_rows()
        if not rows:
            print("  (no pipeline stages were exercised)", file=stream)
        for row in rows:
            print(f"  {row['stage']:8s} {row['cumulative_s']:10.4f}s "
                  f"{row['calls']:8d} calls  {row['function']}",
                  file=stream)
        print(f"profile: top {top} functions by cumulative time",
              file=stream)
        stats = pstats.Stats(self.profile, stream=stream)
        stats.sort_stats("cumulative").print_stats(top)
