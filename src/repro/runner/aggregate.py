"""Roll sweep sink files up into the ``analysis.tables`` summary shape.

A sweep leaves behind JSONL rows — one per (scenario, mechanism) work
item, or one per (item, epoch) for churn sweeps; these helpers fold them
into per-group summary rows (plain dicts, ready for
:func:`repro.analysis.tables.format_table`) — the bridge between the
fleet-scale runner and the experiment-report tables.  Any row column can
group, so ``by=("mechanism", "epoch")`` yields per-epoch trajectories
across a whole churn grid (static rows have no ``epoch`` and group under
``None``).
"""

from __future__ import annotations

import os
from collections.abc import Iterable, Mapping, Sequence

from repro.runner.sink import iter_rows

DEFAULT_GROUP_BY = ("layout", "mechanism", "n", "alpha")


def mechanism_label(mechanism: Mapping) -> str:
    """Human-readable label of a row's mechanism dict (params shown only
    when present, so plain requests stay compact)."""
    name = mechanism.get("name", "?")
    params = mechanism.get("params") or {}
    if not params:
        return name
    rendered = ",".join(f"{k}={params[k]}" for k in sorted(params))
    return f"{name}({rendered})"


def _group_key(row: Mapping, by: Sequence[str]) -> tuple:
    key = []
    for column in by:
        if column == "mechanism":
            key.append(mechanism_label(row.get("mechanism", {})))
        else:
            key.append(row.get(column))
    return tuple(key)


def summarize_rows(rows: Iterable[Mapping],
                   by: Sequence[str] = DEFAULT_GROUP_BY) -> list[dict]:
    """Aggregate item rows into one summary row per ``by`` group.

    Each summary row carries the group columns plus item/profile counts
    and the mean/worst of the per-item summary statistics (undefined
    budget-balance ratios — revenue over zero cost — are skipped, as in
    the item rows themselves).  Groups appear in first-encounter order,
    which for expansion-ordered rows is the sweep's own axis order.
    """
    by = tuple(by)
    groups: dict[tuple, dict] = {}
    for row in rows:
        summary = row.get("summary", {})
        key = _group_key(row, by)
        bucket = groups.get(key)
        if bucket is None:
            bucket = groups[key] = {
                "items": 0, "profiles": 0, "receivers": 0.0,
                "charged": 0.0, "cost": 0.0, "bb": [], "worst_bb": [],
            }
        bucket["items"] += 1
        bucket["profiles"] += summary.get("profiles", 0)
        bucket["receivers"] += summary.get("mean_receivers", 0.0)
        bucket["charged"] += summary.get("mean_charged", 0.0)
        bucket["cost"] += summary.get("mean_cost", 0.0)
        if summary.get("mean_bb") is not None:
            bucket["bb"].append(summary["mean_bb"])
        if summary.get("worst_bb") is not None:
            bucket["worst_bb"].append(summary["worst_bb"])

    out = []
    for key, bucket in groups.items():
        n_items = bucket["items"]
        row = dict(zip(by, key))
        row.update({
            "items": n_items,
            "profiles": bucket["profiles"],
            "mean_receivers": bucket["receivers"] / n_items,
            "mean_charged": bucket["charged"] / n_items,
            "mean_cost": bucket["cost"] / n_items,
            "mean_bb": (sum(bucket["bb"]) / len(bucket["bb"])
                        if bucket["bb"] else None),
            "worst_bb": max(bucket["worst_bb"]) if bucket["worst_bb"] else None,
        })
        out.append(row)
    return out


def summarize_jsonl(paths: str | os.PathLike | Iterable[str | os.PathLike],
                    by: Sequence[str] = DEFAULT_GROUP_BY, *,
                    chunk_size: int = 1 << 16) -> list[dict]:
    """Summarize one sink file — or several, concatenated in argument
    order (a sharded sweep writing one file per host rolls up the same
    way a single-file sweep does).

    Rows are *streamed* through :func:`~repro.runner.sink.iter_rows` —
    one row in memory at a time, only the per-group accumulators
    retained — so service/sweep logs of millions of rows aggregate in
    O(groups) memory, not O(rows).
    """
    if isinstance(paths, (str, os.PathLike)):
        paths = [paths]
    path_list = list(paths)

    def stream():
        for path in path_list:
            yield from iter_rows(path, chunk_size=chunk_size)

    return summarize_rows(stream(), by=by)
