"""Base vocabulary for cost-sharing mechanisms.

A *utility profile* is a plain ``dict[agent, float]`` of reported utilities.
A mechanism maps a profile to a :class:`MechanismResult`: the receiver set,
the per-receiver cost shares, and the cost of the solution it actually
built (plus an optional power assignment and free-form diagnostics).
"""

from __future__ import annotations

import abc
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

Agent = int
Profile = Mapping[Agent, float]


@dataclass(frozen=True)
class MechanismResult:
    """Outcome of one mechanism run."""

    receivers: frozenset
    shares: dict[Agent, float]
    cost: float
    power: Any | None = None  # PowerAssignment for wireless mechanisms
    extra: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        stray = set(self.shares) - set(self.receivers)
        if stray:
            raise ValueError(f"shares assigned to non-receivers: {sorted(stray)}")

    def share(self, agent: Agent) -> float:
        """Cost share of ``agent`` (0 for non-receivers, as VP demands)."""
        return self.shares.get(agent, 0.0)

    def total_charged(self) -> float:
        return sum(self.shares.values())

    def welfare(self, true_utilities: Profile) -> dict[Agent, float]:
        """Individual welfare ``w_i = u_i - c_i`` (0 for non-receivers)."""
        return {
            i: (true_utilities[i] - self.share(i)) if i in self.receivers else 0.0
            for i in true_utilities
        }

    def net_worth(self, true_utilities: Profile) -> float:
        """``NW = sum of receiver utilities - cost of the built solution``."""
        return sum(true_utilities[i] for i in self.receivers) - self.cost


class CostSharingMechanism(abc.ABC):
    """A cost-sharing mechanism over a fixed agent set.

    Subclasses implement :meth:`run`; ``agents`` lists every potential
    receiver (for wireless mechanisms: all stations except the source).
    """

    agents: Sequence[Agent]

    @abc.abstractmethod
    def run(self, profile: Profile) -> MechanismResult:
        """Execute the mechanism on reported utilities ``profile``."""

    def validate_profile(self, profile: Profile) -> dict[Agent, float]:
        known = set(self.agents)
        missing = [a for a in self.agents if a not in profile]
        if missing:
            raise ValueError(f"profile missing agents: {missing}")
        stray = sorted((a for a in profile if a not in known), key=repr)
        if stray:
            raise ValueError(f"profile reports unknown agents: {stray}")
        bad = {a: v for a, v in profile.items() if v < 0}
        if bad:
            raise ValueError(f"utilities must be non-negative: {bad}")
        return {a: float(profile[a]) for a in self.agents}


def with_report(profile: Profile, agent: Agent, value: float) -> dict[Agent, float]:
    """Copy of ``profile`` where ``agent`` reports ``value`` (the ``(v_-i,
    a_i)`` notation of the paper)."""
    p = dict(profile)
    p[agent] = value
    return p
