"""Set cost functions with monotonicity/submodularity auditing.

Lemma 2.1 and Lemma 3.1 of the paper claim specific cost functions are
non-decreasing and submodular; Lemma 3.3 exhibits one that is not (empty
core).  :class:`CostFunction` wraps ``C : 2^N -> R+`` with memoisation and
provides exhaustive (small ``n``) or sampled certification of both
properties.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Iterable, Sequence

import numpy as np

from repro.graphs.random_graphs import as_rng

Agent = int


class CostFunction:
    """Memoised set function ``C(R)`` over a ground set of agents."""

    def __init__(self, agents: Sequence[Agent], fn: Callable[[frozenset], float]) -> None:
        self.agents = list(agents)
        self._fn = fn
        self._cache: dict[frozenset, float] = {}

    def __call__(self, subset: Iterable[Agent]) -> float:
        key = frozenset(subset)
        extra = key - set(self.agents)
        if extra:
            raise ValueError(f"unknown agents: {sorted(extra)}")
        if key not in self._cache:
            self._cache[key] = float(self._fn(key))
        return self._cache[key]

    # -- property auditing ---------------------------------------------------
    def is_nondecreasing(self, *, tol: float = 1e-9) -> bool:
        """Exhaustive check of ``Q ⊆ R ⇒ C(Q) <= C(R)`` (2^n subsets)."""
        return not self.monotonicity_violations(tol=tol)

    def monotonicity_violations(self, *, tol: float = 1e-9) -> list[tuple[frozenset, frozenset]]:
        """All covering pairs ``(R \\ {i}, R)`` with ``C(R \\ {i}) > C(R)``.

        Checking covering pairs suffices: monotonicity along single-element
        chains implies it for all inclusions.
        """
        violations = []
        for r in range(1, len(self.agents) + 1):
            for R in itertools.combinations(self.agents, r):
                R = frozenset(R)
                cR = self(R)
                for i in R:
                    Q = R - {i}
                    if self(Q) > cR + tol:
                        violations.append((Q, R))
        return violations

    def is_submodular(self, *, tol: float = 1e-9) -> bool:
        return not self.submodularity_violations(tol=tol)

    def submodularity_violations(
        self, *, tol: float = 1e-9
    ) -> list[tuple[frozenset, frozenset, int]]:
        """All witnesses of failed diminishing returns.

        Submodularity ``C(Q ∪ R) + C(Q ∩ R) <= C(Q) + C(R)`` is equivalent to
        ``C(A + i) - C(A) >= C(B + i) - C(B)`` for all ``A ⊆ B``, ``i ∉ B``;
        and it is enough to check ``B = A + j``.  Each violation is returned
        as ``(A, B, i)``.
        """
        violations = []
        agents = self.agents
        for r in range(len(agents)):
            for A in itertools.combinations(agents, r):
                A = frozenset(A)
                cA = self(A)
                outside = [x for x in agents if x not in A]
                for j in outside:
                    B = A | {j}
                    cB = self(B)
                    for i in outside:
                        if i == j:
                            continue
                        if self(A | {i}) - cA < self(B | {i}) - cB - tol:
                            violations.append((A, B, i))
        return violations

    def sampled_submodularity_violations(
        self,
        n_samples: int = 200,
        rng: int | np.random.Generator | None = None,
        *,
        tol: float = 1e-9,
    ) -> list[tuple[frozenset, frozenset, int]]:
        """Randomised check for larger ground sets."""
        rng = as_rng(rng)
        agents = self.agents
        violations = []
        for _ in range(n_samples):
            mask = rng.random(len(agents)) < rng.random()
            A = frozenset(a for a, m in zip(agents, mask) if m)
            outside = [a for a in agents if a not in A]
            if len(outside) < 2:
                continue
            i, j = (agents[k] for k in rng.choice(
                [agents.index(o) for o in outside], size=2, replace=False))
            B = A | {j}
            if self(A | {i}) - self(A) < self(B | {i}) - self(B) - tol:
                violations.append((A, B, i))
        return violations
