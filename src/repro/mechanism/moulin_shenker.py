"""The Moulin-Shenker mechanism ``M(xi)`` (paper section 1.1).

Given a (beta-BB) cross-monotonic cost-sharing method ``xi``, the mechanism

* starts from the full agent set,
* repeatedly drops any agent whose reported utility is below its current
  share,
* charges the surviving agents their shares.

For cross-monotonic ``xi`` the fixpoint is independent of the drop order
(dropping someone only raises the others' shares, so anyone droppable stays
droppable), the mechanism is group strategyproof, and it inherits ``xi``'s
budget-balance factor [37, 38, 29].
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence

import numpy as np

from repro.graphs.random_graphs import as_rng
from repro.mechanism.base import Agent, MechanismResult, Profile

Method = Callable[[frozenset], dict[Agent, float]]

_EPS = 1e-9


def moulin_shenker(
    agents: Sequence[Agent],
    method: Method,
    profile: Profile,
    *,
    build: Callable[[frozenset], tuple[float, object | None]] | None = None,
    one_at_a_time: bool = False,
) -> MechanismResult:
    """Run ``M(method)`` on ``profile``.

    Parameters
    ----------
    agents:
        The full potential receiver set.
    method:
        ``xi``: maps a receiver set to the shares of its members.
    profile:
        Reported utilities.
    build:
        Optional constructor of the actual solution for the final set,
        returning ``(cost, artifact)``; defaults to ``cost = sum of
        shares`` with no artifact (exact budget balance).
    one_at_a_time:
        Drop a single (deterministically chosen) agent per round instead of
        all deficient agents — used by tests to confirm drop-order
        independence for cross-monotonic methods.
    """
    R = set(agents)
    shares: dict[Agent, float] = {}
    while True:
        shares = method(frozenset(R)) if R else {}
        deficient = sorted(i for i in R if profile[i] < shares[i] - _EPS)
        if not deficient:
            break
        if one_at_a_time:
            R.discard(deficient[0])
        else:
            R.difference_update(deficient)

    final = frozenset(R)
    final_shares = {i: max(0.0, shares[i]) for i in final}
    if build is not None:
        cost, artifact = build(final)
    else:
        cost, artifact = sum(final_shares.values()), None
    return MechanismResult(
        receivers=final,
        shares=final_shares,
        cost=cost,
        power=artifact,
        extra={"method_shares": dict(shares)},
    )


def check_cross_monotonicity(
    agents: Sequence[Agent],
    method: Method,
    *,
    exhaustive_limit: int = 10,
    n_samples: int = 300,
    rng: int | np.random.Generator | None = None,
    tol: float = 1e-9,
) -> list[tuple[frozenset, frozenset, Agent]]:
    """Violations of ``Q ⊆ R ⇒ xi(Q, i) >= xi(R, i)``.

    Exhaustive over covering pairs when ``2^n`` is small, sampled otherwise.
    (Covering pairs suffice: cross-monotonicity composes along chains.)
    """
    agents = list(agents)
    violations: list[tuple[frozenset, frozenset, Agent]] = []
    if len(agents) <= exhaustive_limit:
        for r in range(1, len(agents) + 1):
            for Q in itertools.combinations(agents, r):
                Qs = frozenset(Q)
                shares_Q = method(Qs)
                for j in agents:
                    if j in Qs:
                        continue
                    Rs = Qs | {j}
                    shares_R = method(Rs)
                    for i in Qs:
                        if shares_Q[i] < shares_R[i] - tol:
                            violations.append((Qs, Rs, i))
        return violations

    rng = as_rng(rng)
    for _ in range(n_samples):
        mask = rng.random(len(agents)) < rng.random()
        Qs = frozenset(a for a, m in zip(agents, mask) if m)
        if not Qs or len(Qs) == len(agents):
            continue
        outside = [a for a in agents if a not in Qs]
        j = outside[int(rng.integers(len(outside)))]
        Rs = Qs | {j}
        shares_Q, shares_R = method(Qs), method(Rs)
        for i in Qs:
            if shares_Q[i] < shares_R[i] - tol:
                violations.append((Qs, Rs, i))
    return violations
