"""The marginal-cost (MC / VCG) mechanism (paper section 1.1, Eq. (3)).

For a non-decreasing submodular cost function the MC mechanism is the unique
(up to welfare equivalence) strategyproof *efficient* mechanism meeting NPT
and VP [38].  We implement the standard Feigenbaum-Papadimitriou-Shenker
form: select the largest efficient set ``R*(u)`` and charge

    c_i(u) = u_i - (NW(u) - NW(u^{-i}))        for i in R*(u),

where ``NW(u)`` is the maximum net worth and ``u^{-i}`` is the profile with
``u_i`` set to 0 (the station stays available as a relay).  For receivers
this equals the VCG payment; welfares are the marginal contributions
``NW(u) - NW(u^{-i})``, which is what makes truth-telling dominant.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence

from repro.mechanism.base import Agent, CostSharingMechanism, MechanismResult, Profile

SetCost = Callable[[frozenset], float]
EfficientSetSolver = Callable[[dict[Agent, float]], tuple[float, frozenset]]


def brute_force_efficient_set(
    agents: Sequence[Agent], cost_fn: SetCost
) -> EfficientSetSolver:
    """Exhaustive ``(max net worth, largest maximiser)`` oracle (2^n)."""
    agents = list(agents)

    def solve(profile: dict[Agent, float]) -> tuple[float, frozenset]:
        best_nw = 0.0
        best_set: frozenset = frozenset()
        for r in range(len(agents) + 1):
            for R in itertools.combinations(agents, r):
                Rs = frozenset(R)
                nw = sum(profile[i] for i in Rs) - float(cost_fn(Rs))
                # Prefer strictly better welfare; among ties prefer the
                # larger set (the submodular case has a unique largest
                # efficient set, which this tie-break finds).
                if nw > best_nw + 1e-12 or (
                    abs(nw - best_nw) <= 1e-12 and len(Rs) > len(best_set)
                ):
                    best_nw = nw
                    best_set = Rs
        return best_nw, best_set

    return solve


class MarginalCostMechanism(CostSharingMechanism):
    """MC mechanism over an arbitrary efficient-set oracle.

    Parameters
    ----------
    agents:
        Potential receivers.
    solver:
        ``profile -> (max net worth, largest efficient set)``.  Use
        :func:`brute_force_efficient_set` or the tree dynamic program in
        :mod:`repro.core.universal_tree_mechanisms`.
    cost_fn:
        The cost function (to price the selected set).
    """

    def __init__(
        self, agents: Sequence[Agent], solver: EfficientSetSolver, cost_fn: SetCost
    ) -> None:
        self.agents = list(agents)
        self._solver = solver
        self._cost_fn = cost_fn

    def run(self, profile: Profile) -> MechanismResult:
        u = self.validate_profile(profile)
        nw, receivers = self._solver(u)
        shares: dict[Agent, float] = {}
        for i in receivers:
            u_wo = dict(u)
            u_wo[i] = 0.0
            nw_wo, _ = self._solver(u_wo)
            marginal = nw - nw_wo  # i's welfare: its marginal contribution
            shares[i] = max(0.0, u[i] - marginal)
        cost = float(self._cost_fn(frozenset(receivers)))
        return MechanismResult(
            receivers=frozenset(receivers),
            shares=shares,
            cost=cost,
            extra={"net_worth": nw},
        )
