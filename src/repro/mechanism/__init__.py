"""Mechanism-design framework: profiles, axioms, cost-sharing machinery.

This layer is paper-agnostic: it provides the vocabulary (mechanism results,
axiom auditors, Shapley values, the core, the Moulin-Shenker driver, VCG)
that :mod:`repro.core` instantiates with the paper's wireless structures.
"""

from repro.mechanism.base import CostSharingMechanism, MechanismResult
from repro.mechanism.core import core_allocation, core_is_empty, verify_core_allocation
from repro.mechanism.cost_function import CostFunction
from repro.mechanism.moulin_shenker import check_cross_monotonicity, moulin_shenker
from repro.mechanism.properties import (
    audit_basic_axioms,
    bb_factor,
    efficiency_gap,
    find_group_deviation,
    find_unilateral_deviation,
)
from repro.mechanism.shapley import shapley_sample, shapley_shares
from repro.mechanism.vcg import MarginalCostMechanism

__all__ = [
    "CostFunction",
    "CostSharingMechanism",
    "MarginalCostMechanism",
    "MechanismResult",
    "audit_basic_axioms",
    "bb_factor",
    "check_cross_monotonicity",
    "core_allocation",
    "core_is_empty",
    "efficiency_gap",
    "find_group_deviation",
    "find_unilateral_deviation",
    "moulin_shenker",
    "shapley_sample",
    "shapley_shares",
    "verify_core_allocation",
]
