"""Axiom auditors: NPT, VP, CS, budget balance, strategyproofness.

These are *empirical* checkers used by the test-suite and the experiment
harness: they re-run a mechanism under deviations/coalitions and report the
first violation found (or an exhaustive list).  The paper's theorems predict
exactly which checks pass for which mechanism; EXPERIMENTS.md records the
outcomes.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.graphs.random_graphs import as_rng
from repro.mechanism.base import Agent, CostSharingMechanism, MechanismResult, Profile, with_report

_EPS = 1e-7


# ---------------------------------------------------------------------------
# Static axioms
# ---------------------------------------------------------------------------

def check_npt(result: MechanismResult, *, tol: float = _EPS) -> bool:
    """No positive transfers: every share non-negative."""
    return all(s >= -tol for s in result.shares.values())


def check_vp(result: MechanismResult, profile: Profile, *, tol: float = _EPS) -> bool:
    """Voluntary participation: no receiver pays above its reported utility."""
    return all(result.share(i) <= profile[i] + tol for i in result.receivers)


def check_cost_recovery(result: MechanismResult, *, tol: float = _EPS) -> bool:
    """The receivers' payments cover the built solution's cost."""
    return result.total_charged() >= result.cost - tol * max(1.0, result.cost)


def bb_factor(result: MechanismResult, optimal_cost: float) -> float:
    """``total charged / C*`` — the empirical budget-balance factor.

    1.0 means optimally budget balanced; the paper's beta-BB mechanisms must
    stay below their beta.  Returns ``inf`` when ``C* = 0`` but something was
    charged.
    """
    charged = result.total_charged()
    if optimal_cost <= 0:
        return 1.0 if charged <= _EPS else float("inf")
    return charged / optimal_cost


def check_cs(
    mechanism: CostSharingMechanism,
    profile: Profile,
    agent: Agent,
    *,
    high_value: float = 1e9,
) -> bool:
    """Consumer sovereignty: reporting high enough gets the agent served."""
    result = mechanism.run(with_report(profile, agent, high_value))
    return agent in result.receivers


def audit_basic_axioms(
    mechanism: CostSharingMechanism,
    profile: Profile,
    *,
    optimal_cost: float | None = None,
    check_consumer_sovereignty: bool = False,
    result: MechanismResult | None = None,
) -> dict:
    """One-stop audit; returns a flat report dict.

    Pass ``result`` to audit an outcome the caller already computed for
    this exact profile (the sweep runner's ``audit=True`` path does —
    mechanisms are deterministic, so re-running would only burn time);
    otherwise the mechanism is run here.
    """
    if result is None:
        result = mechanism.run(profile)
    report = {
        "receivers": sorted(result.receivers),
        "charged": result.total_charged(),
        "cost": result.cost,
        "npt": check_npt(result),
        "vp": check_vp(result, profile),
        "cost_recovery": check_cost_recovery(result),
    }
    if optimal_cost is not None:
        report["bb_factor"] = bb_factor(result, optimal_cost)
    if check_consumer_sovereignty:
        report["cs"] = all(check_cs(mechanism, profile, a) for a in mechanism.agents)
    return report


def audit_profile_results(
    mechanism: CostSharingMechanism,
    profiles: Sequence[Profile],
    results: Sequence[MechanismResult],
    *,
    axioms: Sequence[str] = ("npt", "vp", "cost_recovery"),
    bb_bound: float | None = None,
) -> dict:
    """Audit a batch of already-computed outcomes against the paper's
    basic axioms — the payload the sweep runner embeds per JSONL row.

    ``axioms`` names the checks a failure of which counts as a violation
    (the runner passes each mechanism's registered ``guarantees``, so a
    marginal-cost mechanism's deficit — expected per the paper — is not
    reported as a broken theorem, while an NPT or VP breach anywhere
    is).  Per profile: the selected subset of NPT / VP / cost recovery
    (via :func:`audit_basic_axioms` on the precomputed result) plus the
    empirical budget-balance factor of the *built* solution
    (:func:`bb_factor` against ``result.cost`` — charged/cost, exactly 1
    for the budget-balanced Shapley mechanisms).  ``bb_bound`` optionally
    enforces a declared budget-balance factor: a profile whose empirical
    factor exceeds it (beyond float tolerance) is itemized as a
    ``"bb_bound"`` failure — how the registry's ``bb_factor`` claims
    (e.g. the approx family's audited 2x) become hard audit errors.
    Only failures are itemized, so clean rows stay compact.
    """
    axioms = tuple(axioms)
    unknown = sorted(set(axioms) - {"npt", "vp", "cost_recovery"})
    if unknown:
        raise ValueError(f"unknown audit axioms {unknown}")
    violations: list[dict] = []
    factors: list[float] = []
    for idx, (profile, result) in enumerate(zip(profiles, results, strict=True)):
        report = audit_basic_axioms(mechanism, profile, result=result,
                                    optimal_cost=result.cost)
        factors.append(report["bb_factor"])
        failed = [axiom for axiom in axioms if not report[axiom]]
        if bb_bound is not None and report["bb_factor"] > bb_bound * (1 + _EPS):
            failed = [*failed, "bb_bound"]
        if failed:
            violations.append({
                "profile": idx, "failed": failed,
                "charged": report["charged"], "cost": report["cost"],
            })
    finite = [f for f in factors if f != float("inf")]
    return {
        "profiles": len(results),
        "checked": list(axioms) if bb_bound is None
        else [*axioms, f"bb_bound<={bb_bound:g}"],
        "violations": violations,
        "bb_factor_max": max(finite) if finite else None,
    }


# ---------------------------------------------------------------------------
# Strategyproofness
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Deviation:
    """A profitable misreport found by the auditors."""

    coalition: tuple[Agent, ...]
    reports: dict[Agent, float]
    welfare_before: dict[Agent, float]
    welfare_after: dict[Agent, float]

    @property
    def gain(self) -> float:
        return min(self.welfare_after[i] - self.welfare_before[i] for i in self.coalition)


def candidate_misreports(true_value: float, profile: Profile) -> list[float]:
    """A deviation grid: scalings of the truth, 0, other agents' utilities,
    and a very large report.

    Reports indistinguishable from the truth at float precision are
    excluded *relatively* — within ``1e-12 * max(1, |truth|)`` — so a
    large-utility instance (where ``truth * 1.01`` and ``truth`` differ
    by many ULPs but ``truth + 1e-12`` does not) never probes a
    "deviation" that is just the truth re-rounded."""
    others = sorted(set(profile.values()))
    grid = {0.0, true_value / 2, true_value * 0.9, true_value * 0.99,
            true_value * 1.01, true_value * 1.1, true_value * 2, true_value + 1.0,
            max(others, default=0.0) * 2 + 1.0, 1e6}
    for v in others:
        grid.add(v)
        grid.add(max(0.0, v - 1e-3))
        grid.add(v + 1e-3)
    min_gap = 1e-12 * max(1.0, abs(true_value))
    return sorted(v for v in grid if v >= 0 and abs(v - true_value) > min_gap)


def find_unilateral_deviation(
    mechanism: CostSharingMechanism,
    true_profile: Profile,
    *,
    agents: Iterable[Agent] | None = None,
    extra_reports: Sequence[float] = (),
    tol: float = 1e-6,
) -> Deviation | None:
    """Search for a profitable unilateral misreport (strategyproofness
    violation).  Returns the first one found, or ``None``.

    Tolerance contract: a misreport counts as profitable only when the
    welfare gain exceeds ``tol * max(1, |u_i|)`` — *relative* to the
    agent's utility scale, not absolute.  Shares inherit the instance's
    cost magnitudes, so at large ``n`` (or large coordinates) two
    float-summation orders legitimately differ by ``O(eps * scale)``;
    an absolute threshold would flag that noise as a "deviation" on
    mechanisms that are provably strategyproof.  ``tol`` defaults to
    ``1e-6`` relative — far above accumulated rounding, far below any
    real manipulation gain."""
    baseline = mechanism.run(true_profile)
    w0 = baseline.welfare(true_profile)
    for i in agents if agents is not None else mechanism.agents:
        u_i = true_profile[i]
        gain_floor = tol * max(1.0, abs(u_i))
        for v in [*candidate_misreports(u_i, true_profile), *extra_reports]:
            result = mechanism.run(with_report(true_profile, i, v))
            w_i = (u_i - result.share(i)) if i in result.receivers else 0.0
            if w_i > w0[i] + gain_floor:
                return Deviation(
                    coalition=(i,),
                    reports={i: v},
                    welfare_before={i: w0[i]},
                    welfare_after={i: w_i},
                )
    return None


def find_group_deviation(
    mechanism: CostSharingMechanism,
    true_profile: Profile,
    *,
    max_coalition_size: int = 3,
    n_samples_per_coalition: int = 40,
    rng: int | np.random.Generator | None = None,
    tol: float = 1e-6,
) -> Deviation | None:
    """Search for a group-strategyproofness violation.

    Per the paper's definition, a coalition deviation violates GSP when no
    member is worse off and at least one is strictly better off.  Joint
    misreports are sampled from each member's candidate grid.

    ``tol`` follows the same relative contract as
    :func:`find_unilateral_deviation`: "worse off" / "better off" are
    judged against ``tol * max(1, |u_i|)`` per member, so float noise at
    large utility scales is never reported as a coalition gain.
    """
    rng = as_rng(rng)
    baseline = mechanism.run(true_profile)
    w0 = baseline.welfare(true_profile)
    agents = list(mechanism.agents)
    for size in range(1, max_coalition_size + 1):
        for coalition in itertools.combinations(agents, size):
            # Coalition members may keep their truthful report (the paper's
            # Fig. 1 coalition does exactly that), so the truth is included
            # in each member's grid; the all-truthful sample is skipped.
            grids = [
                [true_profile[i], *candidate_misreports(true_profile[i], true_profile)]
                for i in coalition
            ]
            total = int(np.prod([len(g) for g in grids]))
            if total <= n_samples_per_coalition:
                samples = list(itertools.product(*grids))
            else:
                samples = [
                    tuple(g[int(rng.integers(len(g)))] for g in grids)
                    for _ in range(n_samples_per_coalition)
                ]
            for reports in samples:
                if all(v == true_profile[i] for i, v in zip(coalition, reports)):
                    continue
                deviated = dict(true_profile)
                for i, v in zip(coalition, reports):
                    deviated[i] = v
                result = mechanism.run(deviated)
                w1 = {
                    i: (true_profile[i] - result.share(i)) if i in result.receivers else 0.0
                    for i in coalition
                }
                floor = {i: tol * max(1.0, abs(true_profile[i])) for i in coalition}
                if all(w1[i] >= w0[i] - floor[i] for i in coalition) and any(
                    w1[i] > w0[i] + floor[i] for i in coalition
                ):
                    return Deviation(
                        coalition=coalition,
                        reports=dict(zip(coalition, reports)),
                        welfare_before={i: w0[i] for i in coalition},
                        welfare_after=w1,
                    )
    return None


# ---------------------------------------------------------------------------
# Efficiency
# ---------------------------------------------------------------------------

def efficiency_gap(
    result: MechanismResult, true_profile: Profile, optimal_net_worth: float
) -> float:
    """``max net worth - achieved net worth`` (0 for efficient mechanisms).

    The achieved net worth uses the *built* solution's cost, matching the
    paper's ``NW(u) = W(R(u))``.
    """
    return optimal_net_worth - result.net_worth(true_profile)
