"""Axiom auditors: NPT, VP, CS, budget balance, strategyproofness.

These are *empirical* checkers used by the test-suite and the experiment
harness: they re-run a mechanism under deviations/coalitions and report the
first violation found (or an exhaustive list).  The paper's theorems predict
exactly which checks pass for which mechanism; EXPERIMENTS.md records the
outcomes.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.graphs.random_graphs import as_rng
from repro.mechanism.base import Agent, CostSharingMechanism, MechanismResult, Profile, with_report

_EPS = 1e-7


# ---------------------------------------------------------------------------
# Static axioms
# ---------------------------------------------------------------------------

def check_npt(result: MechanismResult, *, tol: float = _EPS) -> bool:
    """No positive transfers: every share non-negative."""
    return all(s >= -tol for s in result.shares.values())


def check_vp(result: MechanismResult, profile: Profile, *, tol: float = _EPS) -> bool:
    """Voluntary participation: no receiver pays above its reported utility."""
    return all(result.share(i) <= profile[i] + tol for i in result.receivers)


def check_cost_recovery(result: MechanismResult, *, tol: float = _EPS) -> bool:
    """The receivers' payments cover the built solution's cost."""
    return result.total_charged() >= result.cost - tol * max(1.0, result.cost)


def bb_factor(result: MechanismResult, optimal_cost: float) -> float:
    """``total charged / C*`` — the empirical budget-balance factor.

    1.0 means optimally budget balanced; the paper's beta-BB mechanisms must
    stay below their beta.  Returns ``inf`` when ``C* = 0`` but something was
    charged.
    """
    charged = result.total_charged()
    if optimal_cost <= 0:
        return 1.0 if charged <= _EPS else float("inf")
    return charged / optimal_cost


def check_cs(
    mechanism: CostSharingMechanism,
    profile: Profile,
    agent: Agent,
    *,
    high_value: float = 1e9,
) -> bool:
    """Consumer sovereignty: reporting high enough gets the agent served."""
    result = mechanism.run(with_report(profile, agent, high_value))
    return agent in result.receivers


def audit_basic_axioms(
    mechanism: CostSharingMechanism,
    profile: Profile,
    *,
    optimal_cost: float | None = None,
    check_consumer_sovereignty: bool = False,
) -> dict:
    """One-stop audit; returns a flat report dict."""
    result = mechanism.run(profile)
    report = {
        "receivers": sorted(result.receivers),
        "charged": result.total_charged(),
        "cost": result.cost,
        "npt": check_npt(result),
        "vp": check_vp(result, profile),
        "cost_recovery": check_cost_recovery(result),
    }
    if optimal_cost is not None:
        report["bb_factor"] = bb_factor(result, optimal_cost)
    if check_consumer_sovereignty:
        report["cs"] = all(check_cs(mechanism, profile, a) for a in mechanism.agents)
    return report


# ---------------------------------------------------------------------------
# Strategyproofness
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Deviation:
    """A profitable misreport found by the auditors."""

    coalition: tuple[Agent, ...]
    reports: dict[Agent, float]
    welfare_before: dict[Agent, float]
    welfare_after: dict[Agent, float]

    @property
    def gain(self) -> float:
        return min(self.welfare_after[i] - self.welfare_before[i] for i in self.coalition)


def candidate_misreports(true_value: float, profile: Profile) -> list[float]:
    """A deviation grid: scalings of the truth, 0, other agents' utilities,
    and a very large report."""
    others = sorted(set(profile.values()))
    grid = {0.0, true_value / 2, true_value * 0.9, true_value * 0.99,
            true_value * 1.01, true_value * 1.1, true_value * 2, true_value + 1.0,
            max(others, default=0.0) * 2 + 1.0, 1e6}
    for v in others:
        grid.add(v)
        grid.add(max(0.0, v - 1e-3))
        grid.add(v + 1e-3)
    return sorted(v for v in grid if v >= 0 and abs(v - true_value) > 1e-12)


def find_unilateral_deviation(
    mechanism: CostSharingMechanism,
    true_profile: Profile,
    *,
    agents: Iterable[Agent] | None = None,
    extra_reports: Sequence[float] = (),
    tol: float = 1e-6,
) -> Deviation | None:
    """Search for a profitable unilateral misreport (strategyproofness
    violation).  Returns the first one found, or ``None``.
    """
    baseline = mechanism.run(true_profile)
    w0 = baseline.welfare(true_profile)
    for i in agents if agents is not None else mechanism.agents:
        u_i = true_profile[i]
        for v in [*candidate_misreports(u_i, true_profile), *extra_reports]:
            result = mechanism.run(with_report(true_profile, i, v))
            w_i = (u_i - result.share(i)) if i in result.receivers else 0.0
            if w_i > w0[i] + tol:
                return Deviation(
                    coalition=(i,),
                    reports={i: v},
                    welfare_before={i: w0[i]},
                    welfare_after={i: w_i},
                )
    return None


def find_group_deviation(
    mechanism: CostSharingMechanism,
    true_profile: Profile,
    *,
    max_coalition_size: int = 3,
    n_samples_per_coalition: int = 40,
    rng: int | np.random.Generator | None = None,
    tol: float = 1e-6,
) -> Deviation | None:
    """Search for a group-strategyproofness violation.

    Per the paper's definition, a coalition deviation violates GSP when no
    member is worse off and at least one is strictly better off.  Joint
    misreports are sampled from each member's candidate grid.
    """
    rng = as_rng(rng)
    baseline = mechanism.run(true_profile)
    w0 = baseline.welfare(true_profile)
    agents = list(mechanism.agents)
    for size in range(1, max_coalition_size + 1):
        for coalition in itertools.combinations(agents, size):
            # Coalition members may keep their truthful report (the paper's
            # Fig. 1 coalition does exactly that), so the truth is included
            # in each member's grid; the all-truthful sample is skipped.
            grids = [
                [true_profile[i], *candidate_misreports(true_profile[i], true_profile)]
                for i in coalition
            ]
            total = int(np.prod([len(g) for g in grids]))
            if total <= n_samples_per_coalition:
                samples = list(itertools.product(*grids))
            else:
                samples = [
                    tuple(g[int(rng.integers(len(g)))] for g in grids)
                    for _ in range(n_samples_per_coalition)
                ]
            for reports in samples:
                if all(v == true_profile[i] for i, v in zip(coalition, reports)):
                    continue
                deviated = dict(true_profile)
                for i, v in zip(coalition, reports):
                    deviated[i] = v
                result = mechanism.run(deviated)
                w1 = {
                    i: (true_profile[i] - result.share(i)) if i in result.receivers else 0.0
                    for i in coalition
                }
                if all(w1[i] >= w0[i] - tol for i in coalition) and any(
                    w1[i] > w0[i] + tol for i in coalition
                ):
                    return Deviation(
                        coalition=coalition,
                        reports=dict(zip(coalition, reports)),
                        welfare_before={i: w0[i] for i in coalition},
                        welfare_after=w1,
                    )
    return None


# ---------------------------------------------------------------------------
# Efficiency
# ---------------------------------------------------------------------------

def efficiency_gap(
    result: MechanismResult, true_profile: Profile, optimal_net_worth: float
) -> float:
    """``max net worth - achieved net worth`` (0 for efficient mechanisms).

    The achieved net worth uses the *built* solution's cost, matching the
    paper's ``NW(u) = W(R(u))``.
    """
    return optimal_net_worth - result.net_worth(true_profile)
