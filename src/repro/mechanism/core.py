"""The core of a cost game (paper section 1.1 and Lemma 3.3).

``core(C)`` is the set of allocations ``f >= 0`` with ``sum over N of f =
C(N)`` and ``sum over R of f <= C(R)`` for every coalition ``R`` — no
coalition would rather secede.  Emptiness of the core rules out (weakly)
cross-monotonic cost-sharing methods, the paper's argument for why the
Euclidean ``alpha > 1, d > 1`` case needs approximate budget balance.

The feasibility LP is solved with ``scipy.optimize.linprog``;
:func:`verify_core_allocation` re-checks any produced allocation
inequality-by-inequality so a numerical false-positive cannot slip through.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence

import numpy as np
from scipy.optimize import linprog

Agent = int
SetCost = Callable[[frozenset], float]


def _coalitions(agents: Sequence[Agent]) -> list[frozenset]:
    out = []
    for r in range(1, len(agents)):
        out.extend(frozenset(c) for c in itertools.combinations(agents, r))
    return out


def core_allocation(
    agents: Sequence[Agent], cost_fn: SetCost, *, tol: float = 1e-9
) -> dict[Agent, float] | None:
    """An allocation in ``core(C)``, or ``None`` if the core is empty.

    Solves the feasibility LP ``min 0 s.t. f >= 0, sum f = C(N),
    sum_{i in R} f_i <= C(R) for all proper coalitions R``.
    """
    agents = list(agents)
    n = len(agents)
    if n == 0:
        return {}
    index = {a: k for k, a in enumerate(agents)}
    grand = float(cost_fn(frozenset(agents)))

    coalitions = _coalitions(agents)
    A_ub = np.zeros((len(coalitions), n))
    b_ub = np.zeros(len(coalitions))
    for row, R in enumerate(coalitions):
        for i in R:
            A_ub[row, index[i]] = 1.0
        b_ub[row] = float(cost_fn(R))
    A_eq = np.ones((1, n))
    b_eq = np.array([grand])

    res = linprog(
        c=np.zeros(n),
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * n,
        method="highs",
    )
    if not res.success:
        return None
    f = {a: float(res.x[index[a]]) for a in agents}
    if not verify_core_allocation(f, agents, cost_fn, tol=max(tol, 1e-7)):
        return None
    return f


def core_is_empty(agents: Sequence[Agent], cost_fn: SetCost, *, tol: float = 1e-9) -> bool:
    return core_allocation(agents, cost_fn, tol=tol) is None


def verify_core_allocation(
    allocation: dict[Agent, float],
    agents: Sequence[Agent],
    cost_fn: SetCost,
    *,
    tol: float = 1e-7,
) -> bool:
    """Exhaustively re-check every core inequality for ``allocation``."""
    agents = list(agents)
    if any(allocation.get(a, 0.0) < -tol for a in agents):
        return False
    total = sum(allocation.get(a, 0.0) for a in agents)
    if abs(total - float(cost_fn(frozenset(agents)))) > tol * max(1.0, abs(total)):
        return False
    for R in _coalitions(agents):
        if sum(allocation.get(a, 0.0) for a in R) > float(cost_fn(R)) + tol:
            return False
    return True


def least_core_value(
    agents: Sequence[Agent], cost_fn: SetCost
) -> tuple[float, dict[Agent, float]]:
    """The least-core LP: minimise ``eps`` such that every coalition pays at
    most ``C(R) + eps``.  ``eps > 0`` iff the core is empty; the magnitude
    measures *how* empty (used by the Fig. 2 experiment to show the
    violation does not vanish as the instance grows)."""
    agents = list(agents)
    n = len(agents)
    index = {a: k for k, a in enumerate(agents)}
    grand = float(cost_fn(frozenset(agents)))
    coalitions = _coalitions(agents)

    # Variables: f_1..f_n, eps.  Minimise eps.
    A_ub = np.zeros((len(coalitions), n + 1))
    b_ub = np.zeros(len(coalitions))
    for row, R in enumerate(coalitions):
        for i in R:
            A_ub[row, index[i]] = 1.0
        A_ub[row, n] = -1.0
        b_ub[row] = float(cost_fn(R))
    A_eq = np.zeros((1, n + 1))
    A_eq[0, :n] = 1.0
    b_eq = np.array([grand])
    c = np.zeros(n + 1)
    c[n] = 1.0
    res = linprog(
        c=c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * n + [(None, None)],
        method="highs",
    )
    if not res.success:
        raise RuntimeError(f"least-core LP failed: {res.message}")
    f = {a: float(res.x[index[a]]) for a in agents}
    return float(res.x[n]), f
