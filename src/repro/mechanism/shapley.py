"""Shapley value of a cost game (paper Eq. (4)).

``xi(R, i) = sum over Q ⊆ R \\ {i} of |Q|!(|R|-|Q|-1)!/|R|! *
(C(Q + i) - C(Q))`` — the average marginal cost of ``i`` over all arrival
orders.  For non-decreasing submodular ``C`` this method is cross-monotonic,
so plugging it into the Moulin-Shenker driver yields a budget-balanced,
group-strategyproof mechanism (section 1.1 of the paper).

The exact computation enumerates ``2^{|R|-1}`` subsets per agent; the
sampling estimator averages marginal costs over random permutations.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable, Sequence

import numpy as np

from repro.graphs.random_graphs import as_rng

Agent = int
SetCost = Callable[[frozenset], float]


def shapley_shares(subset: Sequence[Agent], cost_fn: SetCost) -> dict[Agent, float]:
    """Exact Shapley shares of ``cost_fn`` restricted to ``subset``."""
    R = list(dict.fromkeys(subset))
    k = len(R)
    if k == 0:
        return {}
    # Pre-compute the order weights |Q|! (k - |Q| - 1)! / k!.
    fact = [math.factorial(x) for x in range(k + 1)]
    weight = [fact[q] * fact[k - q - 1] / fact[k] for q in range(k)]
    # Memoise C over sub-subsets.
    cache: dict[frozenset, float] = {}

    def C(Q: frozenset) -> float:
        if Q not in cache:
            cache[Q] = float(cost_fn(Q))
        return cache[Q]

    shares: dict[Agent, float] = {}
    for i in R:
        others = [x for x in R if x != i]
        total = 0.0
        for q in range(len(others) + 1):
            w = weight[q]
            for Q in itertools.combinations(others, q):
                Qs = frozenset(Q)
                total += w * (C(Qs | {i}) - C(Qs))
        shares[i] = total
    return shares


def shapley_sample(
    subset: Sequence[Agent],
    cost_fn: SetCost,
    n_permutations: int = 500,
    rng: int | np.random.Generator | None = None,
) -> dict[Agent, float]:
    """Permutation-sampling estimate of the Shapley shares (unbiased)."""
    R = list(dict.fromkeys(subset))
    if not R:
        return {}
    rng = as_rng(rng)
    cache: dict[frozenset, float] = {}

    def C(Q: frozenset) -> float:
        if Q not in cache:
            cache[Q] = float(cost_fn(Q))
        return cache[Q]

    acc = {i: 0.0 for i in R}
    for _ in range(n_permutations):
        order = [R[j] for j in rng.permutation(len(R))]
        prefix: frozenset = frozenset()
        c_prev = C(prefix)
        for i in order:
            prefix = prefix | {i}
            c_new = C(prefix)
            acc[i] += c_new - c_prev
            c_prev = c_new
    return {i: acc[i] / n_permutations for i in R}


def shapley_method(cost_fn: SetCost) -> Callable[[frozenset], dict[Agent, float]]:
    """Adapter: the Shapley value as a cost-sharing *method* ``xi(R, .)``
    usable by :func:`repro.mechanism.moulin_shenker.moulin_shenker`."""

    def method(R: frozenset) -> dict[Agent, float]:
        return shapley_shares(sorted(R), cost_fn)

    return method


def marginal_vector_method(
    order: Sequence[Agent], cost_fn: SetCost
) -> Callable[[frozenset], dict[Agent, float]]:
    """The fixed-permutation *marginal vector* cost-sharing method.

    ``xi(R, i) = C(pred(i) ∩ R + i) - C(pred(i) ∩ R)`` where ``pred(i)`` are
    the agents before ``i`` in ``order``.  Always budget balanced
    (telescoping), and cross-monotonic whenever ``C`` is submodular —
    so it spans, with the Shapley value (their average over all orders),
    the classic family of Moulin-Shenker-compatible methods.  The paper's
    §1.1 singles out Shapley among them as achieving the lowest worst-case
    efficiency loss [38]; EXP-E4 measures exactly that comparison.
    """
    position = {a: p for p, a in enumerate(order)}

    def method(R: frozenset) -> dict[Agent, float]:
        members = sorted(R, key=lambda a: position[a])
        shares: dict[Agent, float] = {}
        prefix: frozenset = frozenset()
        c_prev = float(cost_fn(prefix))
        for i in members:
            prefix = prefix | {i}
            c_new = float(cost_fn(prefix))
            shares[i] = c_new - c_prev
            c_prev = c_new
        return shares

    return method
