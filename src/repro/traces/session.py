"""N concurrent groups, one substrate: shared-artifact trace replay.

A :class:`MultiGroupSession` prices every group of a
:class:`~repro.traces.spec.MultiGroupScenarioSpec` through per-group
:class:`~repro.dynamic.session.DynamicSession` replays — but all groups
draw their :class:`~repro.api.session.MulticastSession` from one
:class:`SubstrateCache`, keyed by the materialized epoch scenario.
Groups on one substrate share the same geometry at every epoch (moves
are substrate-wide), so the network, the universal trees, the metric
closure and the memoised ``xi`` entries are built **once per distinct
substrate**, not once per group; the cache's
``substrate_sessions_built`` / ``substrate_sessions_shared`` counters
(mirrored to ``repro_trace_substrate_*_total``) make that sharing
observable and assertable.

Row content is bit-identical to fully independent cold per-group
replays — a fresh ``DynamicSession(spec.group_spec(g), incremental=False)``
per group — because every shared object is a pure function of the
materialized scenario (property-tested in
``tests/test_traces_session.py``; :func:`check_trace_replay` packages
the comparison for the CLI's ``--check``).

Per-group profiles derive from :func:`group_profile_spec`: the group id
is folded into the profile seed, so concurrent groups price
*different* utility draws (as distinct IGMP groups would) while both
the shared and the cold replay derive the identical per-group spec.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from collections.abc import Mapping

from repro.api.session import MulticastSession
from repro.api.spec import MechanismSpec, ScenarioSpec, seed_from_text
from repro.dynamic.session import DynamicSession, epoch_payload
from repro.traces.spec import MultiGroupScenarioSpec

SUBSTRATE_CACHE_LIMIT = 8


def group_profile_spec(profile_spec, group: str):
    """The per-group profile recipe: same generator/count/scale, the
    group id folded into the seed.  Shared by :class:`MultiGroupSession`
    and the cold reference replay, so bit-identity between them is by
    construction — and two groups never price the same draws."""
    from repro.runner.spec import ProfileSpec  # late: avoids an import cycle

    if isinstance(profile_spec, Mapping):
        profile_spec = ProfileSpec.from_dict(profile_spec)
    elif profile_spec is None:
        profile_spec = ProfileSpec()
    return ProfileSpec(
        generator=profile_spec.generator, count=profile_spec.count,
        scale=profile_spec.scale,
        seed=seed_from_text(f"trace-group|{group}|seed:{profile_spec.seed}"))


class SubstrateCache:
    """A bounded, thread-safe LRU of :class:`MulticastSession` keyed by
    the materialized scenario's wire form.

    Sessions are pure functions of their scenario, so handing the same
    session to every group on an unchanged substrate is reuse, not
    approximation.  The bound keeps a long handover trace (every move
    epoch is a new substrate) from pinning dead geometries.
    """

    def __init__(self, *, capacity: int = SUBSTRATE_CACHE_LIMIT,
                 registry=None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._registry = registry
        self._lock = threading.Lock()
        self._sessions: OrderedDict[str, MulticastSession] = OrderedDict()
        self.counters = {"substrate_sessions_built": 0,
                         "substrate_sessions_shared": 0}
        if registry is not None:
            self._built = registry.counter(
                "repro_trace_substrate_built_total",
                "Substrate MulticastSessions built (one per distinct "
                "materialized geometry)")
            self._shared = registry.counter(
                "repro_trace_substrate_shared_total",
                "Substrate session cache hits (a group reusing another "
                "group's artifacts)")
        else:
            self._built = self._shared = None

    def session(self, scenario: ScenarioSpec) -> MulticastSession:
        key = scenario.to_json()
        with self._lock:
            found = self._sessions.get(key)
            if found is not None:
                self._sessions.move_to_end(key)
                self.counters["substrate_sessions_shared"] += 1
                if self._shared is not None:
                    self._shared.inc()
                return found
            session = MulticastSession(scenario, registry=self._registry)
            self._sessions[key] = session
            self.counters["substrate_sessions_built"] += 1
            if self._built is not None:
                self._built.inc()
            while len(self._sessions) > self.capacity:
                self._sessions.popitem(last=False)
            return session

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)


class MultiGroupSession:
    """Concurrent per-group dynamic replay over one shared substrate.

    Accepts a :class:`MultiGroupScenarioSpec`, its wire mapping, or a
    :class:`~repro.traces.format.Trace`.  Per-group
    :class:`DynamicSession`\\ s are created lazily (a sharded service
    only pays for the groups it is routed), all wired to one
    :class:`SubstrateCache` through the ``session_factory`` hook.
    """

    def __init__(self, spec, *, registry=None,
                 substrate_capacity: int = SUBSTRATE_CACHE_LIMIT) -> None:
        to_spec = getattr(spec, "to_spec", None)
        if to_spec is not None:  # a Trace
            spec = to_spec()
        elif isinstance(spec, Mapping):
            spec = MultiGroupScenarioSpec.from_dict(spec)
        if not isinstance(spec, MultiGroupScenarioSpec):
            raise TypeError(
                "spec must be a MultiGroupScenarioSpec, Trace, or mapping, "
                f"got {type(spec).__name__}")
        self.spec = spec
        self._registry = registry
        self.substrate = SubstrateCache(capacity=substrate_capacity,
                                        registry=registry)
        self._lock = threading.Lock()
        self._groups: dict[str, DynamicSession] = {}
        if registry is not None:
            self._epoch_metric = registry.counter(
                "repro_trace_group_epochs_total",
                "Epoch pricings served per trace group", labels=("group",))
        else:
            self._epoch_metric = None

    # -- views ---------------------------------------------------------------
    @property
    def group_ids(self) -> tuple:
        return self.spec.group_ids

    @property
    def n_epochs(self) -> int:
        return self.spec.n_epochs

    def group_session(self, group: str) -> DynamicSession:
        """The group's incremental :class:`DynamicSession` (lazy, shared
        substrate)."""
        found = self._groups.get(group)
        if found is not None:
            return found
        spec = self.spec.group_spec(group)  # raises KeyError on unknown group
        with self._lock:
            found = self._groups.get(group)
            if found is None:
                found = DynamicSession(spec, registry=self._registry,
                                       session_factory=self.substrate.session)
                self._groups[group] = found
            return found

    # -- pricing -------------------------------------------------------------
    def run_epoch(self, group: str, epoch: int,
                  mechanism: str | MechanismSpec, profiles) -> list:
        """Price ``profiles`` on one ``(group, epoch)`` — bit-identical
        to a cold single-group session built from
        ``spec.group_spec(group).materialize(epoch)``."""
        results = self.group_session(group).run_epoch(epoch, mechanism,
                                                      profiles)
        if self._epoch_metric is not None:
            self._epoch_metric.labels(group=group).inc()
        return results

    def epoch_row(self, group: str, epoch: int,
                  mechanism: str | MechanismSpec, profile_spec=None, *,
                  audit: bool = False) -> dict:
        """One group's epoch rendered as a replay row (wire shape of
        :func:`~repro.dynamic.session.epoch_payload`, plus ``group``)."""
        row = epoch_payload(self.group_session(group), epoch, mechanism,
                            group_profile_spec(profile_spec, group),
                            audit=audit)
        row["group"] = group
        if self._epoch_metric is not None:
            self._epoch_metric.labels(group=group).inc()
        return row

    def replay(self, mechanism: str | MechanismSpec, profiles=None, *,
               audit: bool = False, epoch_order=None) -> dict:
        """Replay every ``(group, epoch)`` cell and return the rows per
        group, each group's list ordered by epoch.

        Default execution order is lockstep — epoch-major, group-minor —
        so all groups share each substrate while it is hot.
        ``epoch_order`` overrides it with explicit ``(group, epoch)``
        pairs (every cell exactly once); row *content* is independent of
        the order (property-tested), only counters move.
        """
        cells = [(group, epoch) for epoch in range(self.n_epochs)
                 for group in self.group_ids]
        if epoch_order is not None:
            epoch_order = [(str(group), int(epoch))
                           for group, epoch in epoch_order]
            if sorted(epoch_order) != sorted(cells):
                raise ValueError(
                    "epoch_order must visit every (group, epoch) cell "
                    "exactly once")
            cells = epoch_order
        rows: dict[str, dict[int, dict]] = {g: {} for g in self.group_ids}
        for group, epoch in cells:
            rows[group][epoch] = self.epoch_row(group, epoch, mechanism,
                                                profiles, audit=audit)
        return {group: [by_epoch[epoch] for epoch in range(self.n_epochs)]
                for group, by_epoch in rows.items()}

    def counters(self) -> dict:
        """Substrate sharing totals plus each group's reuse counters."""
        out = dict(self.substrate.counters)
        out["substrate_sessions_live"] = len(self.substrate)
        out["groups"] = {group: dict(session.counters)
                         for group, session in sorted(self._groups.items())}
        return out

    def __repr__(self) -> str:
        return (f"MultiGroupSession(groups={len(self.group_ids)}, "
                f"epochs={self.n_epochs}, "
                f"substrates={len(self.substrate)})")


def replay_trace(spec, mechanism: str | MechanismSpec, profiles=None, *,
                 audit: bool = False, registry=None,
                 epoch_order=None) -> dict:
    """Replay a trace (or multi-group spec) end to end: per-group rows in
    epoch order plus the session's shared-artifact counters."""
    session = MultiGroupSession(spec, registry=registry)
    rows = session.replay(mechanism, profiles, audit=audit,
                          epoch_order=epoch_order)
    return {"rows": rows, "counters": session.counters()}


def check_trace_replay(spec, mechanism: str | MechanismSpec,
                       profiles=None, *, audit: bool = False) -> dict:
    """Compare shared-substrate replay against independent cold per-group
    sessions, row by row.

    Returns ``{"identical": bool, "mismatches": [(group, epoch), ...],
    "counters": ...}`` — the CLI's ``--check`` exits nonzero on any
    mismatch.  The cold side rebuilds everything per epoch per group
    (``incremental=False``, no substrate cache), the strongest reference
    the dynamic layer offers.
    """
    session = MultiGroupSession(spec)
    shared = session.replay(mechanism, profiles, audit=audit)
    mismatches = []
    for group in session.group_ids:
        cold = DynamicSession(session.spec.group_spec(group),
                              incremental=False)
        spec_g = group_profile_spec(profiles, group)
        for epoch in range(session.n_epochs):
            row = epoch_payload(cold, epoch, mechanism, spec_g, audit=audit)
            row["group"] = group
            if row != shared[group][epoch]:
                mismatches.append((group, epoch))
    return {"identical": not mismatches, "mismatches": mismatches,
            "rows": shared, "counters": session.counters()}
