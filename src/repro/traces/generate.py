"""Deterministic IGMP-like synthetic trace generator.

Models the empower-runtime multicast world: ``aps`` access points on a
``side × side`` field, ``n`` stations each parked near one AP, ``groups``
IGMP groups each station may subscribe to.  Epoch 0 carves each group's
initial membership (every station is a member with probability
``member_rate``); each later epoch draws per-group joins/leaves and
substrate-wide RSSI handovers — a handed-over station re-parks near a
*different* AP, which moves it for every group at once.

Everything is a pure function of the keyword arguments: every rng is
seeded by :func:`~repro.api.spec.seed_from_text` over an identity string
naming the full parameterisation plus the stream being drawn, agents are
visited in sorted order, and groups in id order — the same arguments
always produce the byte-identical trace file.
"""

from __future__ import annotations

import numpy as np

from repro.api.spec import ScenarioSpec, seed_from_text
from repro.traces.format import Trace, TraceEvent


def _check_rate(name: str, value: float) -> float:
    value = float(value)
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return value


def _park(rng: np.random.Generator, ap: np.ndarray, side: float,
          jitter: float) -> tuple:
    """A position near ``ap``: gaussian jitter, clipped to the field."""
    position = np.clip(ap + rng.normal(0.0, jitter, size=ap.shape), 0.0, side)
    return tuple(float(x) for x in position)


def generate_trace(*, n: int, groups: int = 3, epochs: int = 4, seed: int = 0,
                   alpha: float = 2.0, side: float = 10.0, aps: int = 4,
                   member_rate: float = 0.7, join_rate: float = 0.2,
                   leave_rate: float = 0.2, handover_rate: float = 0.1,
                   source: int = 0, tree: str = "spt") -> Trace:
    """Generate a validated multi-group handover trace.

    The substrate is a ``kind='points'`` scenario (explicit AP-clustered
    layout), so the trace file is self-contained: no layout family or
    seed needs to survive beside it.
    """
    n = int(n)
    groups = int(groups)
    epochs = int(epochs)
    aps = int(aps)
    if n < 2:
        raise ValueError(f"n must be >= 2 (a source and an agent), got {n}")
    if groups < 1:
        raise ValueError(f"groups must be >= 1, got {groups}")
    if epochs < 1:
        raise ValueError(f"epochs must be >= 1, got {epochs}")
    if aps < 1:
        raise ValueError(f"aps must be >= 1, got {aps}")
    member_rate = _check_rate("member_rate", member_rate)
    join_rate = _check_rate("join_rate", join_rate)
    leave_rate = _check_rate("leave_rate", leave_rate)
    handover_rate = _check_rate("handover_rate", handover_rate)
    side = float(side)
    if side <= 0:
        raise ValueError(f"side must be > 0, got {side}")

    identity = (f"trace|n:{n}|groups:{groups}|epochs:{epochs}|seed:{int(seed)}"
                f"|alpha:{float(alpha):g}|side:{side:g}|aps:{aps}"
                f"|member:{member_rate:g}|join:{join_rate:g}"
                f"|leave:{leave_rate:g}|handover:{handover_rate:g}"
                f"|source:{int(source)}|tree:{tree}")
    jitter = side / (2.0 * max(aps, 2))

    # -- substrate layout: APs, then stations parked near one ----------------
    rng = np.random.default_rng(seed_from_text(f"{identity}|layout"))
    ap_positions = rng.uniform(0.0, side, size=(aps, 2))
    home_ap = rng.integers(0, aps, size=n)
    points = tuple(_park(rng, ap_positions[home_ap[station]], side, jitter)
                   for station in range(n))
    scenario = ScenarioSpec(kind="points", points=points, alpha=float(alpha),
                            source=int(source), tree=tree)
    agents = scenario.agents()
    group_ids = tuple(f"g{index}" for index in range(groups))

    events: list[TraceEvent] = []

    # -- epoch 0: carve each group's initial membership ----------------------
    active: dict[str, set[int]] = {}
    for gid in group_ids:
        rng = np.random.default_rng(seed_from_text(f"{identity}|member|{gid}"))
        members = {a for a in agents if rng.uniform() < member_rate}
        if not members:
            # An empty group prices nothing forever; keep one seeded member.
            members = {agents[int(rng.integers(0, len(agents)))]}
        active[gid] = members
        events.extend(TraceEvent(t=0, op="leave", agent=agent, group=gid)
                      for agent in sorted(set(agents) - members))

    # -- later epochs: per-group churn + substrate handovers -----------------
    current_ap = {station: int(home_ap[station]) for station in range(n)}
    for t in range(1, epochs):
        for gid in group_ids:
            rng = np.random.default_rng(
                seed_from_text(f"{identity}|churn|{gid}|t:{t}"))
            for agent in agents:
                if agent in active[gid]:
                    if rng.uniform() < leave_rate:
                        active[gid].discard(agent)
                        events.append(TraceEvent(t=t, op="leave", agent=agent,
                                                 group=gid))
                elif rng.uniform() < join_rate:
                    active[gid].add(agent)
                    events.append(TraceEvent(t=t, op="join", agent=agent,
                                             group=gid))
        if aps < 2:
            continue  # nowhere to hand over to
        rng = np.random.default_rng(
            seed_from_text(f"{identity}|handover|t:{t}"))
        for agent in agents:
            if rng.uniform() >= handover_rate:
                continue
            # RSSI handover: re-park near a different AP.
            offset = int(rng.integers(1, aps))
            target = (current_ap[agent] + offset) % aps
            current_ap[agent] = target
            events.append(TraceEvent(
                t=t, op="move", agent=agent,
                position=_park(rng, ap_positions[target], side, jitter)))

    return Trace(scenario=scenario, epochs=epochs, groups=group_ids,
                 events=tuple(events))
