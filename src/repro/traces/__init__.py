"""Multi-group trace-driven workloads over one shared substrate.

The package bridges the paper's one-group-at-a-time pricing and the
IGMP reality of wireless multicast (ROADMAP item 3): a frozen JSONL
trace format (:mod:`repro.traces.format`), a deterministic synthetic
generator with RSSI-style handovers (:mod:`repro.traces.generate`),
explicit-event scenario specs (:mod:`repro.traces.spec`), and the
substrate-sharing :class:`MultiGroupSession`
(:mod:`repro.traces.session`).
"""

from repro.traces.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    Trace,
    TraceError,
    TraceEvent,
)
from repro.traces.generate import generate_trace
from repro.traces.session import (
    MultiGroupSession,
    SubstrateCache,
    check_trace_replay,
    group_profile_spec,
    replay_trace,
)
from repro.traces.spec import MultiGroupScenarioSpec, TraceScenarioSpec

__all__ = [
    "FORMAT_NAME",
    "FORMAT_VERSION",
    "MultiGroupScenarioSpec",
    "MultiGroupSession",
    "SubstrateCache",
    "Trace",
    "TraceError",
    "TraceEvent",
    "TraceScenarioSpec",
    "check_trace_replay",
    "generate_trace",
    "group_profile_spec",
    "replay_trace",
]
