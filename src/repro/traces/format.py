"""The frozen JSONL trace format: IGMP-style events over one substrate.

A *trace* is a substrate scenario plus a time-ordered event stream —
``{"t": epoch, "op": "join"|"leave"|"move", "agent": station,
"group": id, "position": [...]}`` — one JSON object per line, preceded
by a single header line naming the format version, the substrate
scenario, the epoch horizon and the group ids:

    {"epochs": 4, "format": "repro-trace", "groups": ["g0", ...],
     "scenario": {...}, "version": 1}
    {"agent": 3, "group": "g0", "op": "leave", "t": 0}
    {"agent": 5, "op": "move", "position": [1.5, 2.0], "t": 1}
    ...

Semantics mirror the IGMP view of wireless multicast: ``join``/``leave``
change one group's membership (the event carries ``group``); ``move`` is
a handover — the *station* changes position, so it carries no group and
affects every group's geometry at once.  Epoch 0 is the base state (all
stations in all groups, base layout); its ``leave`` events carve each
group's initial membership, so membership never needs a separate wire
shape.  Moves at epoch 0 are invalid — the base layout *is* epoch 0.

Serialization is canonical: events sort by ``(t, op-order, group,
agent)`` with join < leave < move, objects are dumped with sorted keys,
so ``Trace.from_jsonl(trace.to_jsonl()) == trace`` and byte-equal files
mean equal traces.  :meth:`Trace.to_spec` renders the whole trace as a
:class:`~repro.traces.spec.MultiGroupScenarioSpec` — the wire form the
service layer prices — and construction validates through it, so an
invalid stream (double joins, unknown agents, epoch-0 moves) never
round-trips quietly.
"""

from __future__ import annotations

import json
from collections.abc import Mapping, Sequence
from dataclasses import dataclass
from pathlib import Path

from repro.api.spec import ScenarioSpec
from repro.traces.spec import MultiGroupScenarioSpec

FORMAT_NAME = "repro-trace"
FORMAT_VERSION = 1
OPS = ("join", "leave", "move")
_OP_ORDER = {op: index for index, op in enumerate(OPS)}


class TraceError(ValueError):
    """A malformed trace stream (header, event shape, or semantics)."""


@dataclass(frozen=True, order=False)
class TraceEvent:
    """One line of a trace stream."""

    t: int
    op: str
    agent: int
    group: str | None = None
    position: tuple | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "t", int(self.t))
        object.__setattr__(self, "agent", int(self.agent))
        if self.t < 0:
            raise TraceError(f"event t must be >= 0, got {self.t}")
        if self.op not in OPS:
            raise TraceError(f"unknown op {self.op!r} (expected one of {OPS})")
        if self.group is not None:
            object.__setattr__(self, "group", str(self.group))
        if self.position is not None:
            object.__setattr__(
                self, "position", tuple(float(x) for x in self.position))
        if self.op == "move":
            if self.group is not None:
                raise TraceError(
                    "move events are substrate-wide handovers and carry no "
                    f"group (got group={self.group!r})")
            if self.position is None:
                raise TraceError("move events need a position")
            if self.t == 0:
                raise TraceError(
                    "moves at t=0 are invalid: the base layout is epoch 0")
        else:
            if self.group is None:
                raise TraceError(f"{self.op} events need a group")
            if self.position is not None:
                raise TraceError(f"{self.op} events carry no position")

    @property
    def sort_key(self) -> tuple:
        return (self.t, _OP_ORDER[self.op], self.group or "", self.agent)

    def to_dict(self) -> dict:
        out = {"t": self.t, "op": self.op, "agent": self.agent}
        if self.group is not None:
            out["group"] = self.group
        if self.position is not None:
            out["position"] = list(self.position)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "TraceEvent":
        if not isinstance(data, Mapping):
            raise TraceError(f"event must be an object, got {type(data).__name__}")
        stray = sorted(set(data) - {"t", "op", "agent", "group", "position"})
        if stray:
            raise TraceError(f"unknown event fields {stray}")
        for name in ("t", "op", "agent"):
            if name not in data:
                raise TraceError(f"event is missing {name!r}")
        return cls(t=data["t"], op=data["op"], agent=data["agent"],
                   group=data.get("group"), position=data.get("position"))


@dataclass(frozen=True)
class Trace:
    """A validated trace: substrate scenario + canonical event stream.

    ``scenario`` is the static substrate (a plain :class:`ScenarioSpec`;
    dynamic subclasses are rejected — the trace *is* the dynamics),
    ``epochs`` the horizon, ``groups`` the sorted group ids, ``events``
    the canonically-sorted event tuple.  Construction validates the
    stream end to end by rendering :meth:`to_spec` (cached), so every
    `Trace` in hand is replayable.
    """

    scenario: ScenarioSpec
    epochs: int
    groups: tuple
    events: tuple

    def __post_init__(self) -> None:
        scenario = self.scenario
        if isinstance(scenario, Mapping):
            scenario = ScenarioSpec.from_dict(scenario)
        if type(scenario) is not ScenarioSpec:
            raise TraceError(
                "trace substrate must be a static ScenarioSpec, got "
                f"{type(scenario).__name__} (the trace carries the dynamics)")
        object.__setattr__(self, "scenario", scenario)
        object.__setattr__(self, "epochs", int(self.epochs))
        if self.epochs < 1:
            raise TraceError(f"epochs must be >= 1, got {self.epochs}")
        groups = tuple(str(g) for g in self.groups)
        if not groups:
            raise TraceError("a trace needs at least one group")
        if len(set(groups)) != len(groups):
            raise TraceError("group ids must be unique")
        object.__setattr__(self, "groups", tuple(sorted(groups)))
        events = tuple(e if isinstance(e, TraceEvent) else TraceEvent.from_dict(e)
                       for e in self.events)
        for event in events:
            if event.t >= self.epochs:
                raise TraceError(
                    f"event at t={event.t} exceeds the {self.epochs}-epoch "
                    "horizon")
            if event.group is not None and event.group not in self.groups:
                raise TraceError(
                    f"event group {event.group!r} is not declared in the "
                    f"header (groups: {list(self.groups)})")
        object.__setattr__(self, "events",
                           tuple(sorted(events, key=lambda e: e.sort_key)))
        object.__setattr__(self, "_spec", None)
        self.to_spec()  # full semantic validation (membership, geometry)

    # -- views ---------------------------------------------------------------
    def group_events(self, group: str) -> tuple:
        """The membership events of one group, per epoch."""
        out = [[] for _ in range(self.epochs)]
        for event in self.events:
            if event.group == group:
                out[event.t].append(event)
        return tuple(tuple(epoch) for epoch in out)

    def move_events(self) -> tuple:
        """The substrate-wide handover events, per epoch."""
        out = [[] for _ in range(self.epochs)]
        for event in self.events:
            if event.op == "move":
                out[event.t].append(event)
        return tuple(tuple(epoch) for epoch in out)

    def event_counts(self) -> dict:
        counts = {op: 0 for op in OPS}
        for event in self.events:
            counts[event.op] += 1
        return counts

    def to_spec(self) -> MultiGroupScenarioSpec:
        """The whole trace as the multi-group wire scenario (cached)."""
        if self._spec is not None:
            return self._spec
        base = self.scenario.to_dict()
        try:
            spec = MultiGroupScenarioSpec(
                **base,
                groups={
                    gid: [[{"kind": e.op, "agent": e.agent} for e in epoch]
                          for epoch in self.group_events(gid)]
                    for gid in self.groups},
                moves=[[{"kind": "move", "agent": e.agent,
                         "position": list(e.position)} for e in epoch]
                       for epoch in self.move_events()],
                epochs=self.epochs)
        except ValueError as exc:
            raise TraceError(f"invalid trace semantics: {exc}") from exc
        object.__setattr__(self, "_spec", spec)
        return spec

    # -- JSONL ---------------------------------------------------------------
    def header(self) -> dict:
        return {"format": FORMAT_NAME, "version": FORMAT_VERSION,
                "scenario": self.scenario.to_dict(), "epochs": self.epochs,
                "groups": list(self.groups)}

    def to_jsonl(self) -> str:
        lines = [json.dumps(self.header(), sort_keys=True)]
        lines.extend(json.dumps(event.to_dict(), sort_keys=True)
                     for event in self.events)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "Trace":
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise TraceError("empty trace stream")
        try:
            parsed = [json.loads(line) for line in lines]
        except json.JSONDecodeError as exc:
            raise TraceError(f"trace line is not JSON: {exc}") from exc
        header = parsed[0]
        if not isinstance(header, Mapping):
            raise TraceError("trace header must be a JSON object")
        if header.get("format") != FORMAT_NAME:
            raise TraceError(
                f"not a {FORMAT_NAME} stream (format={header.get('format')!r})")
        if header.get("version") != FORMAT_VERSION:
            raise TraceError(
                f"unsupported trace version {header.get('version')!r} "
                f"(this reader speaks version {FORMAT_VERSION})")
        missing = sorted({"scenario", "epochs", "groups"} - set(header))
        if missing:
            raise TraceError(f"trace header is missing {missing}")
        groups = header["groups"]
        if not isinstance(groups, Sequence) or isinstance(groups, (str, bytes)):
            raise TraceError("trace header groups must be a list")
        try:
            scenario = ScenarioSpec.from_dict(header["scenario"])
        except (TypeError, ValueError) as exc:
            raise TraceError(f"invalid trace scenario: {exc}") from exc
        return cls(scenario=scenario, epochs=header["epochs"],
                   groups=tuple(groups),
                   events=tuple(TraceEvent.from_dict(line)
                                for line in parsed[1:]))

    def write(self, path) -> Path:
        path = Path(path)
        path.write_text(self.to_jsonl(), encoding="utf-8")
        return path

    @classmethod
    def read(cls, path) -> "Trace":
        return cls.from_jsonl(Path(path).read_text(encoding="utf-8"))
