"""Explicit-event dynamic scenarios: one group's trace, and many groups'.

The seed-derived churn of :mod:`repro.dynamic.spec` fabricates its event
history from rates; a *trace* states it.  Two specs bridge the gap:

* :class:`TraceScenarioSpec` — a :class:`~repro.dynamic.spec.DynamicScenarioSpec`
  whose per-epoch events are **explicit** (carried on the wire) instead of
  derived from a churn seed.  Everything downstream — epoch states,
  materialization, :class:`~repro.dynamic.session.DynamicSession` replay —
  works unchanged, because only :meth:`epoch_states` is overridden.
* :class:`MultiGroupScenarioSpec` — a :class:`~repro.api.spec.ScenarioSpec`
  plus **N concurrent groups** over one substrate: per-group join/leave
  histories and substrate-wide move events (an RSSI handover moves the
  *station*, so every group sees the same geometry at every epoch).
  :meth:`group_spec` renders any group as a `TraceScenarioSpec`, so the
  multi-group wire form materializes per group exactly like a dynamic
  scenario would — the compatibility the cold-replay check relies on.

Both specs stay frozen, JSON-round-trippable descriptions; all event
lists are normalized to tuples of :class:`~repro.dynamic.spec.EpochEvent`
at construction.  Epoch 0 is the base state (all agents active) with the
epoch-0 membership events applied — how a trace carves out each group's
initial members (``leave`` at ``t=0``) without a special wire shape.
Moves at epoch 0 are rejected: the base layout *is* epoch 0's geometry.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass, fields

from repro.api.spec import ScenarioSpec
from repro.dynamic.spec import ChurnSpec, DynamicScenarioSpec, EpochEvent, EpochState

MEMBERSHIP_KINDS = ("join", "leave")


def _as_event(raw, *, where: str) -> EpochEvent:
    if isinstance(raw, EpochEvent):
        return raw
    if not isinstance(raw, Mapping):
        raise ValueError(f"{where}: event must be a mapping or EpochEvent, "
                         f"got {type(raw).__name__}")
    stray = sorted(set(raw) - {"kind", "agent", "position"})
    if stray:
        raise ValueError(f"{where}: unknown event fields {stray}")
    kind = raw.get("kind")
    if kind not in ("join", "leave", "move"):
        raise ValueError(f"{where}: unknown event kind {kind!r}")
    position = raw.get("position")
    if position is not None:
        position = tuple(float(x) for x in position)
    return EpochEvent(kind=str(kind), agent=int(raw["agent"]), position=position)


def _as_epoch_events(raw, *, what: str) -> tuple:
    """Normalize a per-epoch event list-of-lists into nested tuples."""
    if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
        raise ValueError(f"{what} must be a list of per-epoch event lists, "
                         f"got {type(raw).__name__}")
    out = []
    for epoch, events in enumerate(raw):
        if not isinstance(events, Sequence) or isinstance(events, (str, bytes)):
            raise ValueError(f"{what}[{epoch}] must be a list of events")
        out.append(tuple(_as_event(e, where=f"{what}[{epoch}]")
                         for e in events))
    return tuple(out)


@dataclass(frozen=True)
class TraceScenarioSpec(DynamicScenarioSpec):
    """A dynamic scenario whose epoch history is stated, not derived.

    ``events[e]`` is epoch ``e``'s event delta (membership events first,
    then moves — the order they are applied in).  ``events[0]`` may carry
    membership events (initial-member carving) but never moves.  ``group``
    optionally names which trace group this spec renders (informational:
    it rides the wire form, so two groups of one trace never collide in a
    session store, but it changes no geometry or membership semantics).

    ``churn`` is inert here — it only carries the epoch count (all rates
    must be zero); omit it and it is derived as ``ChurnSpec(epochs=len(events))``.
    """

    group: str | None = None
    events: tuple | None = None

    def __post_init__(self) -> None:
        if self.events is None:
            raise ValueError("TraceScenarioSpec requires explicit events "
                             "(use DynamicScenarioSpec for seed-derived churn)")
        events = _as_epoch_events(self.events, what="events")
        if not events:
            raise ValueError("events must cover at least one epoch")
        object.__setattr__(self, "events", events)
        if self.group is not None:
            object.__setattr__(self, "group", str(self.group))
        if self.churn is None:
            object.__setattr__(self, "churn", ChurnSpec(epochs=len(events)))
        super().__post_init__()
        churn = self.churn
        if (churn.join_rate, churn.leave_rate, churn.move_rate) != (0.0, 0.0, 0.0):
            raise ValueError(
                "trace scenarios carry explicit events; churn rates must be 0 "
                f"(got join={churn.join_rate}, leave={churn.leave_rate}, "
                f"move={churn.move_rate})")
        if churn.epochs != len(events):
            raise ValueError(
                f"churn.epochs={churn.epochs} contradicts {len(events)} "
                "epochs of events")
        self._validate_events()

    def _validate_events(self) -> None:
        agents = set(self.agents())
        active = set(agents)
        dim = self.dim
        for epoch, epoch_events in enumerate(self.events):
            seen_membership: set[int] = set()
            seen_moves: set[int] = set()
            past_membership = False
            for event in epoch_events:
                where = f"events[{epoch}]"
                if event.agent not in agents:
                    raise ValueError(
                        f"{where}: agent {event.agent} is not a priceable "
                        f"agent of this scenario")
                if event.kind == "move":
                    past_membership = True
                    if epoch == 0:
                        raise ValueError(
                            "events[0] cannot move stations: the base layout "
                            "is epoch 0's geometry")
                    if self.kind == "matrix":
                        raise ValueError(
                            "matrix scenarios have no geometry: move events "
                            "are not allowed")
                    if event.position is None:
                        raise ValueError(f"{where}: move events need a position")
                    if dim is not None and len(event.position) != dim:
                        raise ValueError(
                            f"{where}: move position has {len(event.position)} "
                            f"coordinates, scenario is {dim}-dimensional")
                    if event.agent in seen_moves:
                        raise ValueError(
                            f"{where}: agent {event.agent} moves twice")
                    seen_moves.add(event.agent)
                    continue
                if past_membership:
                    raise ValueError(
                        f"{where}: membership events must precede moves")
                if event.position is not None:
                    raise ValueError(
                        f"{where}: {event.kind} events carry no position")
                if event.agent in seen_membership:
                    raise ValueError(
                        f"{where}: agent {event.agent} has two membership "
                        "events in one epoch")
                seen_membership.add(event.agent)
                if event.kind == "join":
                    if event.agent in active:
                        raise ValueError(
                            f"{where}: agent {event.agent} joins but is "
                            "already active")
                    active.add(event.agent)
                else:
                    if event.agent not in active:
                        raise ValueError(
                            f"{where}: agent {event.agent} leaves but is "
                            "not active")
                    active.discard(event.agent)

    # -- wire format ---------------------------------------------------------
    def to_dict(self) -> dict:
        out = super().to_dict()
        # fields(self) iteration in the base emits the raw tuples; replace
        # them with their JSON-clean wire shape.
        out["events"] = [[event.to_dict() for event in epoch_events]
                         for epoch_events in self.events]
        if self.group is None:
            out.pop("group", None)
        return out

    def base_scenario(self) -> ScenarioSpec:
        data = ScenarioSpec.to_dict(self)
        for name in ("churn", "group", "events"):
            data.pop(name, None)
        return ScenarioSpec.from_dict(data)

    # -- explicit epoch history ----------------------------------------------
    def epoch_states(self) -> tuple:
        """Every epoch's :class:`EpochState`, derived once from the
        explicit event lists (validated at construction, so application
        here cannot fail)."""
        if self._states is not None:
            return self._states
        active = set(self.agents())
        points = self._base_points()
        states = []
        for epoch, epoch_events in enumerate(self.events):
            moved = False
            mutable = None
            for event in epoch_events:
                if event.kind == "join":
                    active.add(event.agent)
                elif event.kind == "leave":
                    active.discard(event.agent)
                else:
                    if mutable is None:
                        mutable = [list(row) for row in points]
                    mutable[event.agent] = list(event.position)
                    moved = True
            if moved:
                points = tuple(tuple(float(x) for x in row) for row in mutable)
            states.append(EpochState(epoch=epoch, active=tuple(sorted(active)),
                                     points=points, events=tuple(epoch_events)))
        object.__setattr__(self, "_states", tuple(states))
        return self._states


@dataclass(frozen=True)
class MultiGroupScenarioSpec(ScenarioSpec):
    """One substrate, N concurrent multicast groups.

    ``groups`` maps each group id to its per-epoch **membership** event
    lists (join/leave only); ``moves`` is the substrate-wide per-epoch
    move list every group shares (RSSI handovers move stations, not
    memberships).  All groups and ``moves`` must span the same number of
    epochs; ``epochs`` may restate it on the wire (validated) or be
    omitted (derived).

    ``group_spec(gid)`` renders one group as a :class:`TraceScenarioSpec`
    — membership events first, then the epoch's moves — which is exactly
    the spec a cold per-group :class:`~repro.dynamic.session.DynamicSession`
    replays; :class:`~repro.traces.session.MultiGroupSession` must (and
    does) reproduce those rows bit-for-bit while sharing substrate
    artifacts across groups.
    """

    groups: tuple | None = None
    moves: tuple | None = None
    epochs: int | None = None

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.receivers is not None:
            raise ValueError(
                "multi-group scenarios model membership through group "
                "events; the static receivers field is not supported")
        raw_groups = self.groups
        if isinstance(raw_groups, Mapping):
            raw_groups = tuple(sorted(raw_groups.items()))
        if not isinstance(raw_groups, Sequence) or not raw_groups:
            raise ValueError("groups must be a non-empty {group: epoch event "
                             "lists} mapping")
        normalized = []
        for item in raw_groups:
            if not isinstance(item, Sequence) or len(item) != 2:
                raise ValueError("groups must map group ids to per-epoch "
                                 "event lists")
            gid, events = item
            gid = str(gid)
            events = _as_epoch_events(events, what=f"groups[{gid!r}]")
            for epoch, epoch_events in enumerate(events):
                for event in epoch_events:
                    if event.kind not in MEMBERSHIP_KINDS:
                        raise ValueError(
                            f"groups[{gid!r}][{epoch}]: group event lists "
                            f"carry membership only, got {event.kind!r} "
                            "(moves are substrate-wide: use 'moves')")
            normalized.append((gid, events))
        normalized.sort()
        if len({gid for gid, _ in normalized}) != len(normalized):
            raise ValueError("group ids must be unique")
        lengths = {len(events) for _, events in normalized}
        if len(lengths) != 1:
            raise ValueError(
                f"every group must span the same number of epochs, got "
                f"lengths {sorted(lengths)}")
        (n_epochs,) = lengths
        if n_epochs < 1:
            raise ValueError("groups must cover at least one epoch")

        moves = self.moves
        if moves is None:
            moves = tuple(() for _ in range(n_epochs))
        else:
            moves = _as_epoch_events(moves, what="moves")
            if len(moves) != n_epochs:
                raise ValueError(
                    f"moves spans {len(moves)} epochs, groups span {n_epochs}")
            for epoch, epoch_events in enumerate(moves):
                for event in epoch_events:
                    if event.kind != "move":
                        raise ValueError(
                            f"moves[{epoch}]: only move events belong here, "
                            f"got {event.kind!r}")
        if self.epochs is not None and int(self.epochs) != n_epochs:
            raise ValueError(
                f"epochs={self.epochs} contradicts {n_epochs} epochs of "
                "group events")
        object.__setattr__(self, "groups", tuple(normalized))
        object.__setattr__(self, "moves", moves)
        object.__setattr__(self, "epochs", n_epochs)
        object.__setattr__(self, "_group_specs", {})
        # Validate every group eagerly (membership consistency, move
        # positions, matrix rules) by rendering its TraceScenarioSpec —
        # the renders are cached, so this costs nothing extra later.
        for gid in self.group_ids:
            self.group_spec(gid)

    # -- derived views -------------------------------------------------------
    @property
    def group_ids(self) -> tuple:
        return tuple(gid for gid, _ in self.groups)

    @property
    def n_epochs(self) -> int:
        return self.epochs

    def group_events(self, group: str) -> tuple:
        for gid, events in self.groups:
            if gid == group:
                return events
        raise KeyError(f"unknown group {group!r} "
                       f"(groups: {list(self.group_ids)})")

    def group_spec(self, group: str) -> TraceScenarioSpec:
        """One group rendered as a standalone trace scenario (cached):
        its membership events merged with the shared substrate moves."""
        found = self._group_specs.get(group)
        if found is not None:
            return found
        membership = self.group_events(group)
        merged = tuple(tuple(membership[epoch]) + tuple(self.moves[epoch])
                       for epoch in range(self.epochs))
        base = ScenarioSpec.to_dict(self)
        for name in ("groups", "moves", "epochs"):
            base.pop(name, None)
        spec = TraceScenarioSpec(**base, group=group, events=merged)
        self._group_specs[group] = spec
        return spec

    # -- wire format ---------------------------------------------------------
    def to_dict(self) -> dict:
        out = super().to_dict()
        out["groups"] = {
            gid: [[event.to_dict() for event in epoch_events]
                  for epoch_events in events]
            for gid, events in self.groups}
        out["moves"] = [[event.to_dict() for event in epoch_events]
                        for epoch_events in self.moves]
        out["epochs"] = self.epochs
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "MultiGroupScenarioSpec":
        known = {f.name for f in fields(cls)}
        stray = sorted(set(data) - known)
        if stray:
            raise ValueError(f"unknown MultiGroupScenarioSpec fields: {stray}")
        return cls(**dict(data))
