"""Point sets in d-dimensional Euclidean space.

:class:`PointSet` is a thin numpy wrapper giving vectorised pairwise
distances; the module-level generators build the layouts used by the
experiments (uniform cubes, lines for d=1, grids, circles, clusters, and the
pentagon construction of the paper's Fig. 2).
"""

from __future__ import annotations

import numpy as np

from repro.graphs.random_graphs import as_rng


class PointSet:
    """Immutable array of ``n`` points in ``R^d``."""

    def __init__(self, coords: np.ndarray | list) -> None:
        coords = np.asarray(coords, dtype=float)
        if coords.ndim == 1:
            coords = coords[:, None]
        if coords.ndim != 2:
            raise ValueError(f"coords must be (n, d), got shape {coords.shape}")
        self._coords = coords.copy()
        self._coords.setflags(write=False)

    @property
    def coords(self) -> np.ndarray:
        return self._coords

    @property
    def n(self) -> int:
        return self._coords.shape[0]

    @property
    def dim(self) -> int:
        return self._coords.shape[1]

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, i: int) -> np.ndarray:
        return self._coords[i]

    def distance(self, i: int, j: int) -> float:
        return float(np.linalg.norm(self._coords[i] - self._coords[j]))

    def distance_matrix(self) -> np.ndarray:
        """Full pairwise Euclidean distance matrix (vectorised)."""
        diff = self._coords[:, None, :] - self._coords[None, :, :]
        return np.sqrt(np.einsum("ijk,ijk->ij", diff, diff))

    def power_matrix(self, alpha: float) -> np.ndarray:
        """``dist ** alpha`` transmission-cost matrix (zero diagonal)."""
        if alpha < 1:
            raise ValueError(f"distance-power gradient alpha must be >= 1, got {alpha}")
        return self.distance_matrix() ** alpha

    def translated(self, offset: np.ndarray | list) -> "PointSet":
        return PointSet(self._coords + np.asarray(offset, dtype=float))

    def concatenated(self, other: "PointSet") -> "PointSet":
        if other.dim != self.dim:
            raise ValueError("dimension mismatch")
        return PointSet(np.vstack([self._coords, other._coords]))


# ---------------------------------------------------------------------------
# Generators
# ---------------------------------------------------------------------------

def uniform_points(n: int, dim: int = 2, *, side: float = 10.0,
                   rng: int | np.random.Generator | None = None) -> PointSet:
    """``n`` points uniform in ``[0, side]^dim``."""
    rng = as_rng(rng)
    return PointSet(rng.uniform(0.0, side, size=(n, dim)))


def line_points(n: int, *, length: float = 10.0, jitter: bool = True,
                rng: int | np.random.Generator | None = None) -> PointSet:
    """``n`` points on a line (d = 1), sorted by coordinate."""
    rng = as_rng(rng)
    xs = rng.uniform(0.0, length, size=n) if jitter else np.linspace(0.0, length, n)
    return PointSet(np.sort(xs)[:, None])


def grid_points(rows: int, cols: int, *, spacing: float = 1.0) -> PointSet:
    """A regular ``rows x cols`` grid in the plane."""
    ys, xs = np.mgrid[0:rows, 0:cols]
    coords = np.stack([xs.ravel() * spacing, ys.ravel() * spacing], axis=1)
    return PointSet(coords.astype(float))


def circle_points(n: int, *, radius: float = 1.0, center: tuple[float, float] = (0.0, 0.0),
                  phase: float = 0.0) -> PointSet:
    """``n`` points equally spaced on a circle (regular n-gon corners)."""
    angles = phase + 2.0 * np.pi * np.arange(n) / n
    coords = np.stack([center[0] + radius * np.cos(angles),
                       center[1] + radius * np.sin(angles)], axis=1)
    return PointSet(coords)


def clustered_points(n_clusters: int, per_cluster: int, *, side: float = 10.0,
                     spread: float = 0.5,
                     rng: int | np.random.Generator | None = None) -> PointSet:
    """Gaussian clusters — the "users in buildings" style layout."""
    rng = as_rng(rng)
    centers = rng.uniform(0.0, side, size=(n_clusters, 2))
    coords = np.vstack([
        centers[c] + rng.normal(0.0, spread, size=(per_cluster, 2))
        for c in range(n_clusters)
    ])
    return PointSet(coords)


def pentagon_layout(m: float = 10.0, spacing: float = 1.0) -> dict:
    """The Fig. 2 construction (Lemma 3.3 empty-core instance).

    Five *external* stations on the corners of a radius-``m`` pentagon
    centred at the source, five *internal* stations on a radius-``m/2``
    pentagon rotated so that each internal station is equidistant from the
    two closest external ones, and chains of *crossing* stations at distance
    ``spacing`` along (a) the five source->external spokes (which pass
    through nothing else) and (b) the internal->external connections.  The
    source sits at the origin.

    Returns a dict with keys ``source`` (index), ``external`` (list of 5
    indices), ``internal`` (list of 5 indices), ``points``
    (:class:`PointSet`) and ``chains`` — each chain is the full station
    index sequence endpoint..endpoint along one dotted line, so callers can
    rebuild the unit-hop connectivity exactly.
    """
    coords: list[np.ndarray] = [np.zeros(2)]
    source = 0
    chains: list[list[int]] = []

    ext_angles = 2.0 * np.pi * np.arange(5) / 5
    int_angles = ext_angles + np.pi / 5  # rotated by 36 degrees
    external_xy = np.stack([m * np.cos(ext_angles), m * np.sin(ext_angles)], axis=1)
    internal_xy = np.stack([(m / 2) * np.cos(int_angles), (m / 2) * np.sin(int_angles)], axis=1)

    external: list[int] = []
    for xy in external_xy:
        coords.append(xy)
        external.append(len(coords) - 1)
    internal: list[int] = []
    for xy in internal_xy:
        coords.append(xy)
        internal.append(len(coords) - 1)

    def chain(a_idx: int, b_idx: int) -> None:
        """Crossing stations every ``spacing`` strictly between endpoints."""
        a, b = coords[a_idx], coords[b_idx]
        dist = float(np.linalg.norm(b - a))
        n_seg = max(1, int(round(dist / spacing)))
        indices = [a_idx]
        for step in range(1, n_seg):
            coords.append(a + (b - a) * (step / n_seg))
            indices.append(len(coords) - 1)
        indices.append(b_idx)
        chains.append(indices)

    # Source -> each external and each internal station (the ten spokes).
    for e in external:
        chain(source, e)
    for i in internal:
        chain(source, i)
    # Each internal station -> its two closest external stations.
    for idx, i in enumerate(internal):
        dists = np.linalg.norm(external_xy - internal_xy[idx], axis=1)
        for j in np.argsort(dists)[:2]:
            chain(i, external[int(j)])

    return {
        "source": source,
        "external": external,
        "internal": internal,
        "points": PointSet(np.array(coords)),
        "chains": chains,
    }
