"""Named point-layout families for scenario generation.

The experiments in the source paper (and the related min-cost multicast /
minimum-energy multicasting literature it cites) evaluate on *diverse*
topology families, not just uniform boxes: users clump into buildings,
sit on street grids, line a ring road, or thin out with distance from a
base station.  This module gives each family a wire name so a
:class:`~repro.api.spec.ScenarioSpec` (and the sweep grids built on it)
can address them declaratively:

* ``"uniform"`` — i.i.d. uniform in ``[0, side]^dim`` (the historical
  ``ScenarioSpec.from_random`` layout, bit-identical to it);
* ``"cluster"`` — Gaussian blobs around ``~sqrt(n)`` uniform centers
  ("users in buildings");
* ``"grid"`` — a near-square lattice with per-point jitter ("street
  grid" / structured sensor deployments);
* ``"ring"`` — stations on a circle with radial jitter (``dim >= 2``) or
  an evenly-spaced jittered corridor (``dim == 1``);
* ``"radial"`` — power-law radial density: direction uniform, distance
  from the center ``(side/2) * u**RADIAL_EXPONENT``, concentrating
  stations near the middle the way user density decays away from a base
  station.

Every generator is a pure function of ``(n, dim, side, seed)`` — the same
arguments always reproduce the same :class:`PointSet`, on any platform
numpy supports, which is what makes sweep work items replayable across
process boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.points import PointSet
from repro.graphs.random_graphs import as_rng

LAYOUT_FAMILIES = ("uniform", "cluster", "grid", "ring", "radial")

RADIAL_EXPONENT = 1.5  # u**1.5: density highest near the center station


def _uniform(n: int, dim: int, side: float, rng: np.random.Generator) -> np.ndarray:
    return rng.uniform(0.0, side, size=(n, dim))


def _cluster(n: int, dim: int, side: float, rng: np.random.Generator) -> np.ndarray:
    """Gaussian blobs: ``~sqrt(n)`` centers, points assigned round-robin."""
    k = max(1, int(round(n**0.5)))
    centers = rng.uniform(0.0, side, size=(k, dim))
    spread = side / (4.0 * k)
    offsets = rng.normal(0.0, spread, size=(n, dim))
    assignment = np.arange(n) % k
    return np.clip(centers[assignment] + offsets, 0.0, side)


def _grid(n: int, dim: int, side: float, rng: np.random.Generator) -> np.ndarray:
    """The first ``n`` cells of the smallest ``m^dim`` lattice covering the
    box, each point jittered within its cell."""
    m = 1
    while m**dim < n:
        m += 1
    spacing = side / m
    cells = np.stack(
        np.meshgrid(*[np.arange(m)] * dim, indexing="ij"), axis=-1
    ).reshape(-1, dim)[:n]
    centers = (cells + 0.5) * spacing
    jitter = rng.uniform(-spacing / 4.0, spacing / 4.0, size=(n, dim))
    return centers + jitter


def _ring(n: int, dim: int, side: float, rng: np.random.Generator) -> np.ndarray:
    """A ring of radius ``0.4 * side`` with radial jitter; for ``dim == 1``
    an evenly-spaced corridor with jitter (a ring needs two dimensions)."""
    if dim == 1:
        spacing = side / n
        base = (np.arange(n) + 0.5) * spacing
        jitter = rng.uniform(-spacing / 4.0, spacing / 4.0, size=n)
        return (base + jitter)[:, None]
    center = side / 2.0
    angles = 2.0 * np.pi * np.arange(n) / n + rng.uniform(
        -np.pi / (2.0 * n), np.pi / (2.0 * n), size=n
    )
    radius = 0.4 * side * (1.0 + rng.uniform(-0.1, 0.1, size=n))
    coords = np.full((n, dim), center)
    coords[:, 0] += radius * np.cos(angles)
    coords[:, 1] += radius * np.sin(angles)
    if dim > 2:
        coords[:, 2:] += rng.normal(0.0, side / 40.0, size=(n, dim - 2))
    return np.clip(coords, 0.0, side)


def _radial(n: int, dim: int, side: float, rng: np.random.Generator) -> np.ndarray:
    """Power-law radial density around the box center: uniform directions,
    distance ``(side/2) * u**RADIAL_EXPONENT`` for ``u ~ U[0, 1]``."""
    u = rng.uniform(0.0, 1.0, size=n)
    distance = (side / 2.0) * u**RADIAL_EXPONENT
    directions = rng.normal(0.0, 1.0, size=(n, dim))
    norms = np.linalg.norm(directions, axis=1)
    norms[norms < 1e-12] = 1.0  # a numerically-zero draw keeps a unit-ish norm
    directions /= norms[:, None]
    coords = side / 2.0 + distance[:, None] * directions
    return np.clip(coords, 0.0, side)


_GENERATORS = {
    "uniform": _uniform,
    "cluster": _cluster,
    "grid": _grid,
    "ring": _ring,
    "radial": _radial,
}


def layout_points(
    family: str,
    n: int,
    dim: int = 2,
    *,
    side: float = 10.0,
    seed: int | np.random.Generator | None = 0,
) -> PointSet:
    """``n`` points of layout ``family`` in ``[0, side]^dim``, seeded.

    ``family`` must be one of :data:`LAYOUT_FAMILIES`.  With
    ``family="uniform"`` this reproduces
    :func:`repro.geometry.points.uniform_points` bit-for-bit, so existing
    random scenarios keep their exact cost matrices.
    """
    generator = _GENERATORS.get(family)
    if generator is None:
        raise ValueError(
            f"unknown layout family {family!r} (want one of {LAYOUT_FAMILIES})"
        )
    if n < 1 or dim < 1:
        raise ValueError(f"need n >= 1 and dim >= 1, got n={n}, dim={dim}")
    if side <= 0:
        raise ValueError(f"side must be positive, got {side}")
    return PointSet(generator(n, dim, float(side), as_rng(seed)))
