"""Euclidean point substrate for the paper's section 3 (Euclidean wireless
networks, power attenuation ``c(x, y) = dist(x, y) ** alpha``)."""

from repro.geometry.layouts import LAYOUT_FAMILIES, layout_points
from repro.geometry.points import (
    PointSet,
    circle_points,
    clustered_points,
    grid_points,
    line_points,
    pentagon_layout,
    uniform_points,
)

__all__ = [
    "LAYOUT_FAMILIES",
    "PointSet",
    "circle_points",
    "clustered_points",
    "grid_points",
    "layout_points",
    "line_points",
    "pentagon_layout",
    "uniform_points",
]
