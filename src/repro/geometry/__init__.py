"""Euclidean point substrate for the paper's section 3 (Euclidean wireless
networks, power attenuation ``c(x, y) = dist(x, y) ** alpha``)."""

from repro.geometry.points import (
    PointSet,
    circle_points,
    clustered_points,
    grid_points,
    line_points,
    pentagon_layout,
    uniform_points,
)

__all__ = [
    "PointSet",
    "circle_points",
    "clustered_points",
    "grid_points",
    "line_points",
    "pentagon_layout",
    "uniform_points",
]
