"""Graph-algorithm substrate used by every higher layer of :mod:`repro`.

Everything here is implemented from scratch (no networkx inside the
library); the test-suite cross-checks the implementations against networkx
where an oracle exists.

The algorithm entry points (``dijkstra``, ``all_pairs_dijkstra``,
``prim_mst``, ``metric_closure``, and everything built on them) accept any
:class:`~repro.engine.backend.GraphBackend` — the adjacency-map containers
below for arbitrary hashable nodes, or the array-backed
:class:`~repro.engine.dense.DenseGraph` / ``CSRGraph`` for integer-labelled
graphs, which dispatch to vectorised kernels.

Modules
-------
adjacency
    Lightweight undirected/directed adjacency-map graphs.
disjoint_set
    Union-find with union by size and path compression.
addressable_heap
    Binary heap with ``decrease`` (decrease-key) used by Dijkstra/Prim.
traversal
    BFS/DFS orders, parents, numbering, connected components.
shortest_paths
    Edge-weighted Dijkstra (single-source / all-pairs) and path recovery.
node_weighted
    Node-weighted shortest paths (cost = sum of node weights on the path,
    excluding the source), the metric used by node-weighted Steiner.
mst
    Kruskal (with a merge-event trace used by the Jain-Vazirani cost
    shares), Prim and Boruvka minimum spanning trees.
arborescence
    Chu-Liu/Edmonds minimum spanning arborescence.
steiner
    Metric closure, the Kou-Markowsky-Berman 2-approximate Steiner tree and
    the exact Dreyfus-Wagner dynamic program.
nwst
    Node-weighted Steiner trees: Klein-Ravi spiders, Guha-Khuller
    branch-spiders, the greedy ratio algorithm used by the paper's NWST
    mechanism, and an exact oracle.
random_graphs
    Seeded random instance generators for tests and experiment suites.
"""

from repro.graphs.adjacency import DiGraph, Graph
from repro.graphs.addressable_heap import AddressableHeap
from repro.graphs.arborescence import minimum_arborescence
from repro.graphs.disjoint_set import DisjointSet
from repro.graphs.mst import MergeEvent, kruskal_complete, kruskal_mst, prim_mst
from repro.graphs.node_weighted import node_weighted_arc_matrix, node_weighted_dijkstra
from repro.graphs.nwst import (
    GreedySpiderSolver,
    Spider,
    exact_node_weighted_steiner,
    find_min_ratio_spider,
)
from repro.graphs.shortest_paths import all_pairs_dijkstra, dijkstra, reconstruct_path
from repro.graphs.steiner import dreyfus_wagner, kmb_steiner_tree, metric_closure
from repro.graphs.traversal import (
    bfs_numbering,
    bfs_order,
    bfs_parents,
    connected_components,
    is_connected,
)

__all__ = [
    "AddressableHeap",
    "DiGraph",
    "DisjointSet",
    "Graph",
    "GreedySpiderSolver",
    "MergeEvent",
    "Spider",
    "all_pairs_dijkstra",
    "bfs_numbering",
    "bfs_order",
    "bfs_parents",
    "connected_components",
    "dijkstra",
    "dreyfus_wagner",
    "exact_node_weighted_steiner",
    "find_min_ratio_spider",
    "is_connected",
    "kmb_steiner_tree",
    "kruskal_complete",
    "kruskal_mst",
    "metric_closure",
    "minimum_arborescence",
    "node_weighted_arc_matrix",
    "node_weighted_dijkstra",
    "prim_mst",
    "reconstruct_path",
]
