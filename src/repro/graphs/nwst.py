"""Node-weighted Steiner trees (NWST): the substrate of paper section 2.2.

The paper's NWST cost-sharing mechanism is built on the Guha-Khuller greedy:
repeatedly pick the minimum-*ratio* "3+ branch-spider", shrink it into a new
terminal, and finally connect the last two terminals optimally.  This module
provides:

* :class:`Spider` — a candidate (branch-)spider with its covered terminals,
  node set, cost and ratio;
* :func:`find_min_ratio_spider` — exact minimum-ratio search over all
  centers, supporting both classic Klein-Ravi spiders (single-terminal legs)
  and Guha-Khuller branch-spiders (legs may be 2-terminal branches through a
  junction node), via a subset DP over the terminals;
* :class:`NWSTState` — a contractible working copy of an instance
  (shrinking spiders into zero-weight meta-terminals, tracking which
  *original* nodes have been bought and which original terminals each
  meta-terminal contains), shared by the plain algorithm and the mechanism;
* :class:`GreedySpiderSolver` — the plain approximation algorithm ``AST``
  (no utilities), achieving 1.5 ln k with branch-spiders;
* :func:`exact_node_weighted_steiner` — exact oracle (node-weighted
  Dreyfus-Wagner), exponential in the number of terminals.

Conventions: node weights are non-negative; terminal weights are typically 0
(the paper's WLOG normalisation), but nothing here requires it.  Leg costs
computed through shared intermediate nodes are *upper bounds* (standard in
these greedy analyses); the bought node set is the union, whose true weight
never exceeds the charged cost.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.engine.dense import batched_dijkstra
from repro.graphs.adjacency import Graph
from repro.graphs.node_weighted import node_weighted_arc_matrix, node_weighted_dijkstra
from repro.graphs.shortest_paths import reconstruct_path

Node = Hashable

_INF = float("inf")

# ``distance_mode='auto'`` switches to terminal-sourced distance columns at
# this node count.  Below it the full all-sources sweep is cheap and keeps
# the historical bit-exact floats; above it the k reverse-graph Dijkstras
# win asymptotically (O(k n^2) vs O(n^3) dense work) and the possible
# last-ulp differences (reversed summation order along each path) are an
# accepted trade at that scale.
TERMINAL_COLUMNS_MIN_NODES = 192


@dataclass(frozen=True)
class Spider:
    """A candidate (branch-)spider in the *current* (possibly contracted) graph.

    ``n_countable`` is the number of covered terminals that participate in
    cost sharing (paper section 2.2.3 excludes the source terminal from the
    ratio); it defaults to all of them.
    """

    center: Node
    terminals: frozenset
    nodes: frozenset  # every current-graph node the spider buys (incl. center, paths)
    cost: float  # w(center) + sum of leg costs (an upper bound if legs overlap)
    n_countable: int = -1  # -1 sentinel: all terminals countable

    def __post_init__(self) -> None:
        if self.n_countable < 0:
            object.__setattr__(self, "n_countable", len(self.terminals))

    @property
    def ratio(self) -> float:
        return self.cost / self.n_countable


def find_min_ratio_spider(
    graph: Graph,
    weights: Mapping[Node, float],
    terminals: Iterable[Node],
    *,
    min_terminals: int = 3,
    mode: str = "branch",
    max_dp_terminals: int = 16,
    counts: Mapping[Node, int] | None = None,
    distance_mode: str = "auto",
) -> Spider | None:
    """Exact minimum-ratio spider over all centers.

    ``mode='classic'`` restricts to Klein-Ravi spiders (every leg reaches one
    terminal); ``mode='branch'`` additionally allows Guha-Khuller 2-terminal
    branches (leg = path to a junction plus two junction-to-terminal paths).
    Ratio ties are broken deterministically (smaller cost, then repr of the
    center) so that mechanism re-runs are reproducible — the strategyproofness
    argument (Thm 2.3) needs the selection to be utility-independent.

    ``counts`` (0/1 per terminal, default all 1) implements the paper's
    section 2.2.3 modification: the ratio divides by the number of
    *countable* covered terminals, and a spider must cover at least one.
    The structural "3+" requirement stays on the total covered terminals.

    ``distance_mode`` picks how the terminal distance columns ``T[v, t]``
    are computed.  ``'full'``: one all-sources lockstep sweep (the
    historical path; also yields the full ``D`` the branch subset DP
    needs).  ``'terminal'``: ``k`` reverse-graph Dijkstras sourced at the
    terminals — O(k) instead of O(n) sweeps, the n=10^3..10^4 scaling
    path; incompatible with the branch DP (which reads whole ``D`` rows)
    and *not* guaranteed bit-identical to ``'full'`` (per-path sums
    accumulate in the opposite order).  ``'auto'`` (default): terminal
    columns whenever the branch DP is not engaged and the graph has at
    least :data:`TERMINAL_COLUMNS_MIN_NODES` nodes, else full.

    Returns ``None`` when no spider covering ``min_terminals`` terminals
    exists (e.g. fewer terminals remain).
    """
    if mode not in ("classic", "branch"):
        raise ValueError(f"unknown spider mode: {mode!r}")
    if distance_mode not in ("full", "terminal", "auto"):
        raise ValueError(f"unknown distance mode: {distance_mode!r}")
    term_list = list(dict.fromkeys(terminals))
    k = len(term_list)
    if k < min_terminals:
        return None
    if mode == "branch" and k > max_dp_terminals:
        mode = "classic"  # subset DP would be too large; classic stays exact for KR spiders
    count_of = [1 if counts is None else int(counts.get(t, 1)) for t in term_list]
    countable_mask = 0
    for i, c in enumerate(count_of):
        if c > 0:
            countable_mask |= 1 << i

    # All-sources node-weighted distances in one lockstep sweep (distances
    # exclude the source's own weight): D[a, b] = dist node a -> node b,
    # T = D restricted to terminal columns (profiling: the junction
    # enumeration is the hot path of the whole NWST pipeline).  Identical
    # floats to per-node heap Dijkstras, at a fraction of the cost.
    node_list = graph.nodes()
    node_index = {u: a for a, u in enumerate(node_list)}
    n_nodes = len(node_list)
    term_cols = [node_index[t] for t in term_list]
    needs_full = mode == "branch"  # the pair DP reads whole D rows per center
    if distance_mode == "terminal" and needs_full:
        raise ValueError(
            "distance_mode='terminal' cannot serve the branch subset DP "
            "(it needs all-sources distances); use mode='classic' or "
            "distance_mode='full'/'auto'")
    use_terminal = not needs_full and (
        distance_mode == "terminal"
        or (distance_mode == "auto" and n_nodes >= TERMINAL_COLUMNS_MIN_NODES))
    arc = node_weighted_arc_matrix(graph, weights, node_list)
    if use_terminal:
        # dist(v -> t) read off a Dijkstra sourced at t on the transposed
        # arc matrix: k sweeps instead of n.  D itself is never needed —
        # the classic/prefix paths only consume terminal columns.
        D = None
        T = (batched_dijkstra(np.ascontiguousarray(arc.T), term_cols).T
             if k else np.zeros((n_nodes, 0)))
    else:
        D = batched_dijkstra(arc)
        T = D[:, term_cols] if k else np.zeros((n_nodes, 0))

    # Predecessor maps are only needed to walk the *winning* spider's legs;
    # recover them lazily with the deterministic dict Dijkstra.
    parent_cache: dict[Node, dict[Node, Node | None]] = {}

    def parent_map(src: Node) -> dict[Node, Node | None]:
        if src not in parent_cache:
            parent_cache[src] = node_weighted_dijkstra(graph, weights, src)[1]
        return parent_cache[src]

    best: tuple[float, float, str] | None = None  # (ratio, cost, center repr)
    best_payload: tuple[Node, tuple[int, ...], dict] | None = None

    use_prefix = k > max_dp_terminals  # classic fallback without the 2^k DP
    for center in node_list:
        wv = float(weights.get(center, 0.0))
        leg = [float(x) for x in T[node_index[center]]]
        if sum(1 for c in leg if c < _INF) < min_terminals:
            continue

        if use_prefix:
            # Classic Klein-Ravi prefix search (exact when all counts are 1):
            # the best j-terminal spider takes the j cheapest legs.
            order = sorted(range(k), key=lambda i: leg[i])
            prefix_cost = wv
            covered_bits = 0
            for rank, i in enumerate(order, start=1):
                if leg[i] == _INF:
                    break
                prefix_cost += leg[i]
                covered_bits |= 1 << i
                cnt = (covered_bits & countable_mask).bit_count()
                if rank < min_terminals or cnt == 0:
                    continue
                ratio = prefix_cost / cnt
                key = (ratio, prefix_cost, repr(center))
                if best is None or key < best:
                    best = key
                    covered = tuple(sorted(order[:rank]))
                    best_payload = (center, covered,
                                    {"prefix": True, "pair_junction": {}})
            continue

        pair_matrix: np.ndarray | None = None
        if mode == "branch":
            # Best two-terminal branch through any junction u:
            #   D[v, u] (w(u) counted once) + T[u, i] + T[u, j],
            # vectorised as k min-plus column reductions over the junction
            # axis.  Junction identities are recomputed lazily for the
            # winning spider only.
            P = D[node_index[center]][:, None] + T  # (n_nodes, k)
            pair_matrix = np.empty((k, k))
            for i in range(k):
                pair_matrix[i] = np.min(P[:, i : i + 1] + T, axis=0)

        # Subset DP: f[S] = min leg cost exactly covering terminal set S,
        # choice[S] records how the lowest bit of S is covered.
        size = 1 << k
        f = [_INF] * size
        choice: list[tuple | None] = [None] * size
        f[0] = 0.0
        for S in range(1, size):
            i = (S & -S).bit_length() - 1
            rest = S ^ (1 << i)
            c = f[rest] + leg[i]
            ch: tuple | None = ("single", i)
            if pair_matrix is not None:
                R = rest
                while R:
                    j = (R & -R).bit_length() - 1
                    R ^= 1 << j
                    pc = pair_matrix[i, j]
                    if pc < _INF:
                        cand = f[rest ^ (1 << j)] + pc
                        if cand < c:
                            c, ch = cand, ("pair", i, j)
            f[S] = c
            choice[S] = ch

        for S in range(1, size):
            nt = S.bit_count()
            cnt = (S & countable_mask).bit_count()
            if nt < min_terminals or cnt == 0 or f[S] == _INF:
                continue
            cost = wv + f[S]
            ratio = cost / cnt
            key = (ratio, cost, repr(center))
            if best is None or key < best:
                best = key
                covered = tuple(i for i in range(k) if S >> i & 1)
                best_payload = (center, covered, {"choice": choice, "S": S})

    if best_payload is None:
        return None

    center, covered, info = best_payload
    # Reconstruct the bought node set by walking the chosen legs.
    nodes: set[Node] = {center}
    if info.get("prefix"):
        for i in covered:
            nodes.update(reconstruct_path(parent_map(center), term_list[i]))
    else:
        S = info["S"]
        choice = info["choice"]
        # Pair legs exist only in branch mode, where D was materialised.
        c_row = D[node_index[center]] if D is not None else None
        while S:
            ch = choice[S]
            assert ch is not None
            if ch[0] == "single":
                i = ch[1]
                nodes.update(reconstruct_path(parent_map(center), term_list[i]))
                S ^= 1 << i
            else:
                _, i, j = ch
                # Lazy junction recovery: argmin over u of
                # D[center, u] + T[u, i] + T[u, j].
                u = node_list[int(np.argmin(c_row + T[:, i] + T[:, j]))]
                nodes.update(reconstruct_path(parent_map(center), u))
                nodes.update(reconstruct_path(parent_map(u), term_list[i]))
                nodes.update(reconstruct_path(parent_map(u), term_list[j]))
                S ^= (1 << i) | (1 << j)

    terminals_cov = frozenset(term_list[i] for i in covered)
    n_countable = sum(count_of[i] > 0 for i in covered)
    return Spider(center=center, terminals=terminals_cov, nodes=frozenset(nodes),
                  cost=best[1], n_countable=n_countable)


class NWSTState:
    """A contractible NWST working instance.

    Shrinking a spider removes its nodes from the working graph, inserts a
    fresh zero-weight *meta-terminal* adjacent to every outside neighbour of
    the removed set, and records (a) which original terminals the new
    terminal contains and (b) which original nodes have been bought.
    """

    def __init__(self, graph: Graph, weights: Mapping[Node, float],
                 terminals: Iterable[Node]) -> None:
        self.original_graph = graph
        self.original_weights = dict(weights)
        self.graph = graph.copy()
        self.weights: dict[Node, float] = dict(weights)
        self.terminals: set[Node] = set(terminals)
        missing = [t for t in self.terminals if t not in self.graph]
        if missing:
            raise ValueError(f"terminals not in graph: {missing!r}")
        self.members: dict[Node, frozenset] = {t: frozenset([t]) for t in self.terminals}
        self.bought: set[Node] = set(self.terminals)
        self._meta_counter = 0

    # -- queries -----------------------------------------------------------
    @property
    def n_terminals(self) -> int:
        return len(self.terminals)

    def member_terminals(self, terminal: Node) -> frozenset:
        """Original terminals contained in a (possibly meta) terminal."""
        return self.members[terminal]

    def bought_weight(self) -> float:
        """True total weight of the bought original nodes."""
        return sum(self.original_weights.get(x, 0.0) for x in self.bought)

    def solution_is_connected(self) -> bool:
        """Bought original nodes induce a connected subgraph (when one
        terminal remains, this certifies feasibility)."""
        from repro.graphs.traversal import is_connected

        return is_connected(self.original_graph.subgraph(self.bought))

    # -- operations ----------------------------------------------------------
    def min_ratio_spider(
        self,
        *,
        min_terminals: int = 3,
        mode: str = "branch",
        counts: Mapping[Node, int] | None = None,
        distance_mode: str = "auto",
    ) -> Spider | None:
        return find_min_ratio_spider(self.graph, self.weights, self.terminals,
                                     min_terminals=min_terminals, mode=mode,
                                     counts=counts, distance_mode=distance_mode)

    def contract_spider(self, spider: Spider) -> Node:
        """Shrink ``spider`` into a fresh meta-terminal; returns its id."""
        meta = ("meta", self._meta_counter)
        self._meta_counter += 1
        removed = set(spider.nodes)
        # Buy original nodes (meta path nodes were bought at their creation).
        for x in removed:
            if not self._is_meta(x):
                self.bought.add(x)
        # Absorb every terminal the spider touches: the covered ones, plus
        # any terminal a leg merely passes through (it gets connected for
        # free and must survive inside the new meta-terminal).
        absorbed = set(spider.terminals) | (removed & self.terminals)
        new_members: set[Node] = set()
        for t in absorbed:
            new_members.update(self.members.pop(t))
        self.graph.add_node(meta)
        self.weights[meta] = 0.0
        for x in removed:
            if x not in self.graph:
                continue
            for z, _ in list(self.graph.neighbors(x)):
                if z not in removed and z != meta:
                    self.graph.add_edge(meta, z, 1.0)
        for x in removed:
            if x in self.graph:
                self.graph.remove_node(x)
        self.terminals -= absorbed
        self.terminals.add(meta)
        self.members[meta] = frozenset(new_members)
        return meta

    def optimal_pair_connection(self, t1: Node, t2: Node) -> tuple[list[Node], float]:
        """Cheapest node-weighted path between two terminals (endpoint
        weights included — they are 0 for terminals/meta-terminals)."""
        dist, parent = node_weighted_dijkstra(self.graph, self.weights, t1, targets=[t2])
        if t2 not in dist:
            raise ValueError(f"terminals {t1!r} and {t2!r} are disconnected")
        path = reconstruct_path(parent, t2)
        return path, dist[t2] + self.weights.get(t1, 0.0)

    def connect_pair(self, t1: Node, t2: Node) -> tuple[Node, float]:
        """Buy the cheapest path between the two terminals and merge them.

        Returns the merged meta-terminal and the path cost.
        """
        path, cost = self.optimal_pair_connection(t1, t2)
        spider = Spider(center=t1, terminals=frozenset((t1, t2)),
                        nodes=frozenset(path), cost=cost)
        return self.contract_spider(spider), cost

    def _is_meta(self, node: Node) -> bool:
        return isinstance(node, tuple) and len(node) == 2 and node[0] == "meta"


@dataclass
class NWSTSolution:
    """Result of the greedy NWST algorithm."""

    cost: float  # true weight of the bought node set
    charged: float  # sum of spider costs + final connection (>= cost)
    nodes: frozenset
    spiders: list[Spider] = field(default_factory=list)


class GreedySpiderSolver:
    """The plain approximation algorithm ``AST`` (paper section 2.2.1).

    Repeatedly shrinks the minimum-ratio 3+ (branch-)spider until at most
    two terminals remain, then connects them optimally.  With
    ``mode='branch'`` this is the Guha-Khuller 1.5 ln k algorithm; with
    ``mode='classic'`` the Klein-Ravi 2 ln k variant.
    """

    def __init__(self, mode: str = "branch", min_terminals: int = 3,
                 distance_mode: str = "auto") -> None:
        self.mode = mode
        self.min_terminals = min_terminals
        self.distance_mode = distance_mode

    def solve(self, graph: Graph, weights: Mapping[Node, float],
              terminals: Sequence[Node]) -> NWSTSolution:
        state = NWSTState(graph, weights, terminals)
        spiders: list[Spider] = []
        charged = 0.0
        while state.n_terminals > 2:
            spider = state.min_ratio_spider(min_terminals=self.min_terminals, mode=self.mode,
                                            distance_mode=self.distance_mode)
            if spider is None:
                break
            spiders.append(spider)
            charged += spider.cost
            state.contract_spider(spider)
        if state.n_terminals == 2:
            t1, t2 = sorted(state.terminals, key=repr)
            _, cost = state.connect_pair(t1, t2)
            charged += cost
        return NWSTSolution(cost=state.bought_weight(), charged=charged,
                            nodes=frozenset(state.bought), spiders=spiders)


def exact_node_weighted_steiner(
    graph: Graph, weights: Mapping[Node, float], terminals: Sequence[Node]
) -> float:
    """Exact minimum node-weighted Steiner tree cost (node-weighted
    Dreyfus-Wagner).  Exponential in ``len(terminals)``; an oracle for tests
    and experiments.

    The cost counts the weights of *all* tree nodes, terminals included.
    """
    terminals = list(dict.fromkeys(terminals))
    k = len(terminals)
    if k == 0:
        return 0.0
    if k == 1:
        return float(weights.get(terminals[0], 0.0))

    nodes = graph.nodes()
    index = {v: i for i, v in enumerate(nodes)}
    # Node-weighted distance from every node (source weight excluded).
    nwdist: dict[Node, dict[Node, float]] = {
        v: node_weighted_dijkstra(graph, weights, v)[0] for v in nodes
    }

    t0 = terminals[-1]
    base = terminals[:-1]
    m = len(base)
    size = 1 << m
    # g[mask][v]: min weight of a tree spanning {base[i] : i in mask} + v,
    # excluding w(v).
    g = [[_INF] * len(nodes) for _ in range(size)]
    for i, t in enumerate(base):
        row = g[1 << i]
        for v in nodes:
            row[index[v]] = nwdist[v].get(t, _INF)

    for mask in range(1, size):
        if mask & (mask - 1) == 0:
            continue
        row = g[mask]
        low = mask & (-mask)
        sub = (mask - 1) & mask
        while sub:
            if sub & low:
                other = mask ^ sub
                rs, ro = g[sub], g[other]
                for vi in range(len(nodes)):
                    cand = rs[vi] + ro[vi]
                    if cand < row[vi]:
                        row[vi] = cand
            sub = (sub - 1) & mask
        snapshot = list(row)
        for ui, u in enumerate(nodes):
            su = snapshot[ui]
            if su == _INF:
                continue
            # g excludes w(u); walking v->u adds w(u) exactly once.
            for v, dvu in nwdist.items():
                duv = dvu.get(u, _INF)
                if duv == _INF:
                    continue
                vi = index[v]
                cand = su + duv
                if cand < row[vi]:
                    row[vi] = cand

    result = g[size - 1][index[t0]]
    if result == _INF:
        raise ValueError("terminals are not connected")
    return result + float(weights.get(t0, 0.0))
