"""Lightweight adjacency-map graph containers.

These are deliberately small: the algorithms in :mod:`repro.graphs` only
need neighbour iteration, edge weights and node bookkeeping.  Nodes may be
any hashable object; edge data is a single float weight by default but any
mapping of attributes is accepted.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator
from typing import Any

Node = Hashable


class Graph:
    """Undirected graph with at most one edge per node pair.

    Parallel edges collapse to the cheapest weight on insertion, which is
    the behaviour every algorithm in this package wants (all of them are
    shortest/lightest-structure computations).
    """

    directed = False

    def __init__(self) -> None:
        self._adj: dict[Node, dict[Node, float]] = {}

    # -- construction -----------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Insert ``node`` (idempotent)."""
        self._adj.setdefault(node, {})

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Insert edge ``{u, v}``; keeps the minimum weight on duplicates."""
        if u == v:
            raise ValueError(f"self-loops are not supported (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        current = self._adj[u].get(v)
        if current is None or weight < current:
            self._adj[u][v] = weight
            self._adj[v][u] = weight

    def remove_node(self, node: Node) -> None:
        """Delete ``node`` and every incident edge."""
        for neighbour in list(self._adj[node]):
            del self._adj[neighbour][node]
        del self._adj[node]

    def remove_edge(self, u: Node, v: Node) -> None:
        del self._adj[u][v]
        del self._adj[v][u]

    # -- queries ----------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __len__(self) -> int:
        return len(self._adj)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def nodes(self) -> list[Node]:
        return list(self._adj)

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def weight(self, u: Node, v: Node) -> float:
        return self._adj[u][v]

    def neighbors(self, node: Node) -> Iterator[tuple[Node, float]]:
        """Yield ``(neighbour, weight)`` pairs."""
        return iter(self._adj[node].items())

    def degree(self, node: Node) -> int:
        return len(self._adj[node])

    def edges(self) -> Iterator[tuple[Node, Node, float]]:
        """Yield each undirected edge exactly once as ``(u, v, w)``."""
        seen: set[frozenset[Any]] = set()
        for u, nbrs in self._adj.items():
            for v, w in nbrs.items():
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    yield u, v, w

    def number_of_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def total_weight(self) -> float:
        return sum(w for _, _, w in self.edges())

    # -- derived graphs ---------------------------------------------------
    def copy(self) -> "Graph":
        g = Graph()
        g._adj = {u: dict(nbrs) for u, nbrs in self._adj.items()}
        return g

    def subgraph(self, nodes: Iterable[Node]) -> "Graph":
        """Induced subgraph on ``nodes``."""
        keep = set(nodes)
        g = Graph()
        for node in keep:
            if node in self._adj:
                g.add_node(node)
        for u in keep:
            if u not in self._adj:
                continue
            for v, w in self._adj[u].items():
                if v in keep:
                    g.add_edge(u, v, w)
        return g


class DiGraph:
    """Directed graph with at most one arc per ordered node pair."""

    directed = True

    def __init__(self) -> None:
        self._succ: dict[Node, dict[Node, float]] = {}
        self._pred: dict[Node, dict[Node, float]] = {}

    # -- construction -----------------------------------------------------
    def add_node(self, node: Node) -> None:
        self._succ.setdefault(node, {})
        self._pred.setdefault(node, {})

    def add_nodes(self, nodes: Iterable[Node]) -> None:
        for node in nodes:
            self.add_node(node)

    def add_edge(self, u: Node, v: Node, weight: float = 1.0) -> None:
        """Insert arc ``u -> v``; keeps the minimum weight on duplicates."""
        if u == v:
            raise ValueError(f"self-loops are not supported (node {u!r})")
        self.add_node(u)
        self.add_node(v)
        current = self._succ[u].get(v)
        if current is None or weight < current:
            self._succ[u][v] = weight
            self._pred[v][u] = weight

    def remove_edge(self, u: Node, v: Node) -> None:
        del self._succ[u][v]
        del self._pred[v][u]

    def remove_node(self, node: Node) -> None:
        for v in list(self._succ[node]):
            del self._pred[v][node]
        for u in list(self._pred[node]):
            del self._succ[u][node]
        del self._succ[node]
        del self._pred[node]

    # -- queries ----------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._succ

    def __len__(self) -> int:
        return len(self._succ)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._succ)

    def nodes(self) -> list[Node]:
        return list(self._succ)

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._succ and v in self._succ[u]

    def weight(self, u: Node, v: Node) -> float:
        return self._succ[u][v]

    def successors(self, node: Node) -> Iterator[tuple[Node, float]]:
        return iter(self._succ[node].items())

    def predecessors(self, node: Node) -> Iterator[tuple[Node, float]]:
        return iter(self._pred[node].items())

    def out_degree(self, node: Node) -> int:
        return len(self._succ[node])

    def in_degree(self, node: Node) -> int:
        return len(self._pred[node])

    def edges(self) -> Iterator[tuple[Node, Node, float]]:
        for u, nbrs in self._succ.items():
            for v, w in nbrs.items():
                yield u, v, w

    def number_of_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._succ.values())

    def total_weight(self) -> float:
        return sum(w for _, _, w in self.edges())

    def copy(self) -> "DiGraph":
        g = DiGraph()
        g._succ = {u: dict(nbrs) for u, nbrs in self._succ.items()}
        g._pred = {u: dict(nbrs) for u, nbrs in self._pred.items()}
        return g

    def to_undirected(self) -> Graph:
        """Forget orientations (used for weak-connectivity checks)."""
        g = Graph()
        g.add_nodes(self.nodes())
        for u, v, w in self.edges():
            g.add_edge(u, v, w)
        return g
