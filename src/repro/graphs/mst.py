"""Minimum spanning trees: Kruskal (with merge trace), Prim, Boruvka.

The Kruskal *merge trace* — the sequence of (weight, components-merged)
events — is the backbone of the Jain-Vazirani cross-monotonic cost shares
(:mod:`repro.core.jv_steiner`): interpreting edge weight as time, every
component not containing the source accrues cost at unit rate between merge
events, and ``sum of accruals == MST weight`` exactly.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Iterable, Sequence
from dataclasses import dataclass

from repro.graphs.addressable_heap import AddressableHeap
from repro.graphs.adjacency import Graph
from repro.graphs.disjoint_set import DisjointSet

Node = Hashable


@dataclass(frozen=True)
class MergeEvent:
    """One Kruskal merge: at time ``weight`` the components of ``u`` and ``v``
    (snapshotted as frozensets *before* the merge) become one."""

    weight: float
    u: Node
    v: Node
    component_u: frozenset
    component_v: frozenset


def kruskal_mst(
    graph: Graph, *, trace: bool = False
) -> tuple[list[tuple[Node, Node, float]], list[MergeEvent]]:
    """Kruskal's algorithm.

    Returns ``(edges, events)``; ``events`` is empty unless ``trace=True``.
    If the graph is disconnected the result is a minimum spanning forest.
    Ties are broken by the (u, v) representation order for determinism.
    """
    edges = sorted(graph.edges(), key=lambda e: (e[2], _sort_key(e[0]), _sort_key(e[1])))
    dsu = DisjointSet(graph.nodes())
    tree: list[tuple[Node, Node, float]] = []
    events: list[MergeEvent] = []
    for u, v, w in edges:
        if dsu.connected(u, v):
            continue
        if trace:
            events.append(
                MergeEvent(w, u, v, frozenset(dsu.members(u)), frozenset(dsu.members(v)))
            )
        dsu.union(u, v)
        tree.append((u, v, w))
        if dsu.n_components == 1:
            break
    return tree, events


def kruskal_complete(
    points: Sequence[Node],
    weight: Callable[[Node, Node], float],
    *,
    trace: bool = False,
) -> tuple[list[tuple[Node, Node, float]], list[MergeEvent]]:
    """Kruskal on the complete graph over ``points`` with ``weight(u, v)``.

    This is the form used on metric closures (JV shares, KMB Steiner step 2)
    where materialising a :class:`Graph` would be wasteful.
    """
    g = Graph()
    g.add_nodes(points)
    pts = list(points)
    for i, u in enumerate(pts):
        for v in pts[i + 1 :]:
            g.add_edge(u, v, weight(u, v))
    return kruskal_mst(g, trace=trace)


def prim_mst(graph: Graph, root: Node | None = None) -> list[tuple[Node, Node, float]]:
    """Prim's algorithm from ``root`` (default: an arbitrary node).

    Only the component containing ``root`` is spanned; a disconnected graph
    therefore yields the MST of that component.
    Edges are returned as ``(parent, child, w)`` in attachment order.
    Array-backed graphs (:class:`~repro.engine.dense.ArrayGraph`) run the
    vectorised masked-min kernel; the tree can differ from the heap path
    only on exact weight ties (same total weight either way).
    """
    if len(graph) == 0:
        return []
    if root is None:
        root = next(iter(graph))
    from repro.engine.dense import ArrayGraph

    if isinstance(graph, ArrayGraph):
        return graph.prim_arrays(int(root))
    in_tree = {root}
    attach: dict[Node, Node] = {}
    heap = AddressableHeap()
    for v, w in graph.neighbors(root):
        heap.push(v, w)
        attach[v] = root
    tree: list[tuple[Node, Node, float]] = []
    while heap:
        u, w = heap.pop()
        in_tree.add(u)
        tree.append((attach[u], u, w))
        for v, wv in graph.neighbors(u):
            if v in in_tree:
                continue
            if heap.push_or_decrease(v, wv):
                attach[v] = u
    return tree


def boruvka_mst(graph: Graph) -> list[tuple[Node, Node, float]]:
    """Boruvka's algorithm (assumes distinct-enough weights; ties broken by
    node representation to stay safe on equal weights)."""
    dsu = DisjointSet(graph.nodes())
    tree: list[tuple[Node, Node, float]] = []
    n = len(graph)
    if n == 0:
        return []
    while dsu.n_components > 1:
        cheapest: dict[Node, tuple[float, tuple, Node, Node]] = {}
        for u, v, w in graph.edges():
            ru, rv = dsu.find(u), dsu.find(v)
            if ru == rv:
                continue
            key = (w, (_sort_key(u), _sort_key(v)))
            for r in (ru, rv):
                if r not in cheapest or (key < (cheapest[r][0], cheapest[r][1])):
                    cheapest[r] = (w, key[1], u, v)
        if not cheapest:
            break  # disconnected graph: forest is complete
        merged_any = False
        for w, _, u, v in cheapest.values():
            if dsu.union(u, v):
                tree.append((u, v, w))
                merged_any = True
        if not merged_any:
            break
    return tree


def mst_weight(edges: Iterable[tuple[Node, Node, float]]) -> float:
    return sum(w for _, _, w in edges)


def _sort_key(node: Node) -> str:
    return repr(node)
