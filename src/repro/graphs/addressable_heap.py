"""Addressable binary min-heap with ``decrease`` (decrease-key).

``heapq`` cannot decrease priorities in place, so Dijkstra/Prim either pay
for lazy deletion or use a heap that tracks item positions.  This is the
classic array binary heap plus a ``key -> index`` map; all operations are
O(log n) and keys must be hashable and unique.
"""

from __future__ import annotations

from collections.abc import Hashable

Key = Hashable


class AddressableHeap:
    """Binary min-heap keyed by unique hashable items."""

    def __init__(self) -> None:
        self._items: list[tuple[float, Key]] = []
        self._pos: dict[Key, int] = {}

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: Key) -> bool:
        return key in self._pos

    def __bool__(self) -> bool:
        return bool(self._items)

    def priority(self, key: Key) -> float:
        return self._items[self._pos[key]][0]

    def push(self, key: Key, priority: float) -> None:
        """Insert a new key. Raises if the key is already present."""
        if key in self._pos:
            raise KeyError(f"key already in heap: {key!r}")
        self._items.append((priority, key))
        self._pos[key] = len(self._items) - 1
        self._sift_up(len(self._items) - 1)

    def decrease(self, key: Key, priority: float) -> None:
        """Lower ``key``'s priority. Raises if it would increase."""
        index = self._pos[key]
        current = self._items[index][0]
        if priority > current:
            raise ValueError(f"cannot increase priority of {key!r} ({current} -> {priority})")
        self._items[index] = (priority, key)
        self._sift_up(index)

    def push_or_decrease(self, key: Key, priority: float) -> bool:
        """Insert, or lower the priority if cheaper; returns True on change."""
        if key not in self._pos:
            self.push(key, priority)
            return True
        if priority < self._items[self._pos[key]][0]:
            self.decrease(key, priority)
            return True
        return False

    def peek(self) -> tuple[Key, float]:
        priority, key = self._items[0]
        return key, priority

    def pop(self) -> tuple[Key, float]:
        """Remove and return the ``(key, priority)`` with minimum priority."""
        priority, key = self._items[0]
        last = self._items.pop()
        del self._pos[key]
        if self._items:
            self._items[0] = last
            self._pos[last[1]] = 0
            self._sift_down(0)
        return key, priority

    # -- internals ---------------------------------------------------------
    def _sift_up(self, index: int) -> None:
        item = self._items[index]
        while index > 0:
            parent = (index - 1) >> 1
            if self._items[parent][0] <= item[0]:
                break
            self._items[index] = self._items[parent]
            self._pos[self._items[index][1]] = index
            index = parent
        self._items[index] = item
        self._pos[item[1]] = index

    def _sift_down(self, index: int) -> None:
        item = self._items[index]
        n = len(self._items)
        while True:
            child = 2 * index + 1
            if child >= n:
                break
            if child + 1 < n and self._items[child + 1][0] < self._items[child][0]:
                child += 1
            if self._items[child][0] >= item[0]:
                break
            self._items[index] = self._items[child]
            self._pos[self._items[index][1]] = index
            index = child
        self._items[index] = item
        self._pos[item[1]] = index
