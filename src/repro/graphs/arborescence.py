"""Chu-Liu/Edmonds minimum spanning arborescence.

A directed multicast tree is an arborescence rooted at the source; Edmonds'
branching algorithm is also the primal-dual engine behind the Jain-Vazirani
cost-share construction cited by the paper (their [16], [29]).  We implement
the classic recursive contraction algorithm; the test-suite checks it
against networkx's ``minimum_spanning_arborescence``.
"""

from __future__ import annotations

from collections.abc import Hashable

from repro.graphs.adjacency import DiGraph

Node = Hashable

# Internal arc representation: (tail, head, reduced_weight, original_index).
_Arc = tuple[Node, Node, float, int]


def minimum_arborescence(graph: DiGraph, root: Node) -> list[tuple[Node, Node, float]]:
    """Minimum-weight spanning arborescence of ``graph`` rooted at ``root``.

    Every node must be reachable from ``root``, otherwise ``ValueError`` is
    raised.  Returns arcs as ``(parent, child, weight)`` using the original
    weights.
    """
    if root not in graph:
        raise ValueError(f"root {root!r} not in graph")
    nodes = list(graph.nodes())
    original = list(graph.edges())
    arcs: list[_Arc] = [(u, v, w, i) for i, (u, v, w) in enumerate(original)]
    chosen = _edmonds(nodes, arcs, root)
    return [original[i] for i in sorted(chosen)]


def arborescence_weight(arcs: list[tuple[Node, Node, float]]) -> float:
    return sum(w for _, _, w in arcs)


def _edmonds(nodes: list[Node], arcs: list[_Arc], root: Node) -> list[int]:
    """Recursive Chu-Liu/Edmonds; returns original-arc indices of the answer."""
    best_in: dict[Node, _Arc] = {}
    for arc in arcs:
        u, v, w, _ = arc
        if v == root or u == v:
            continue
        cur = best_in.get(v)
        if cur is None or w < cur[2]:
            best_in[v] = arc
    for v in nodes:
        if v != root and v not in best_in:
            raise ValueError(f"node {v!r} unreachable from root {root!r}")

    cycle = _find_cycle(nodes, best_in, root)
    if cycle is None:
        return [a[3] for a in best_in.values()]

    cycle_set = set(cycle)
    super_node: Node = ("__contracted__", min(repr(c) for c in cycle_set))
    cycle_in_weight = {v: best_in[v][2] for v in cycle_set}

    new_arcs: list[_Arc] = []
    for u, v, w, idx in arcs:
        if u in cycle_set and v in cycle_set:
            continue
        nu = super_node if u in cycle_set else u
        nv = super_node if v in cycle_set else v
        nw = w - cycle_in_weight[v] if v in cycle_set else w
        new_arcs.append((nu, nv, nw, idx))

    new_nodes = [n for n in nodes if n not in cycle_set] + [super_node]
    chosen = _edmonds(new_nodes, new_arcs, root)

    # Expand the contraction: the arc entering the cycle replaces the cycle's
    # own incoming arc at its entry node; every other cycle arc survives.
    head_of = {idx: v for u, v, w, idx in arcs}
    entering: Node | None = None
    for idx in chosen:
        head = head_of.get(idx)
        if head in cycle_set:
            entering = head
            break
    assert entering is not None, "contracted cycle must be entered exactly once"
    result = list(chosen)
    for v in cycle_set:
        if v != entering:
            result.append(best_in[v][3])
    return result


def _find_cycle(
    nodes: list[Node], best_in: dict[Node, _Arc], root: Node
) -> list[Node] | None:
    """A cycle in the functional graph ``v -> best_in parent``, or ``None``."""
    color: dict[Node, int] = {}  # 0/absent = white, 1 = on path, 2 = done
    for start in nodes:
        if start == root or color.get(start) == 2:
            continue
        path: list[Node] = []
        v: Node | None = start
        while v is not None and v != root and color.get(v, 0) == 0:
            color[v] = 1
            path.append(v)
            v = best_in[v][0] if v in best_in else None
        if v is not None and color.get(v) == 1:
            cycle = path[path.index(v):]
            for node in path:
                color[node] = 2
            return cycle
        for node in path:
            color[node] = 2
    return None
