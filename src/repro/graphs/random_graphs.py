"""Seeded random instance generators for tests and experiment suites.

All generators take a :class:`numpy.random.Generator` (or an int seed) so
every experiment in EXPERIMENTS.md is exactly reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.adjacency import Graph


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise ``seed`` into a numpy Generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def random_cost_matrix(
    n: int,
    rng: int | np.random.Generator | None = None,
    *,
    low: float = 1.0,
    high: float = 10.0,
    metric: bool = False,
) -> np.ndarray:
    """Symmetric cost matrix with zero diagonal.

    With ``metric=True`` the matrix is shortest-path closed, so it satisfies
    the triangle inequality (costs in wireless networks need not be metric —
    the general symmetric experiments use ``metric=False``).
    """
    rng = as_rng(rng)
    raw = rng.uniform(low, high, size=(n, n))
    sym = np.triu(raw, 1)
    sym = sym + sym.T
    np.fill_diagonal(sym, 0.0)
    if metric:
        # Floyd-Warshall closure.
        for k in range(n):
            sym = np.minimum(sym, sym[:, k : k + 1] + sym[k : k + 1, :])
        np.fill_diagonal(sym, 0.0)
    return sym


def random_connected_graph(
    n: int,
    rng: int | np.random.Generator | None = None,
    *,
    extra_edge_prob: float = 0.25,
    low: float = 1.0,
    high: float = 10.0,
) -> Graph:
    """Connected random graph: a random spanning tree plus extra edges."""
    rng = as_rng(rng)
    g = Graph()
    g.add_nodes(range(n))
    order = [int(x) for x in rng.permutation(n)]
    for i in range(1, n):
        j = int(rng.integers(0, i))
        g.add_edge(order[i], order[j], float(rng.uniform(low, high)))
    for u in range(n):
        for v in range(u + 1, n):
            if not g.has_edge(u, v) and rng.random() < extra_edge_prob:
                g.add_edge(u, v, float(rng.uniform(low, high)))
    return g


def random_node_weighted_instance(
    n: int,
    n_terminals: int,
    rng: int | np.random.Generator | None = None,
    *,
    extra_edge_prob: float = 0.3,
    weight_low: float = 0.5,
    weight_high: float = 5.0,
    terminal_degree: int = 2,
) -> tuple[Graph, dict[int, float], list[int]]:
    """A connected node-weighted instance with zero-weight terminals.

    Returns ``(graph, weights, terminals)``.  Terminals follow the paper's
    normalisation: weight 0, and they attach only to weighted relay nodes
    (each to ``terminal_degree`` of them) — so connecting terminals always
    costs something and the spider machinery is actually exercised.
    """
    if n_terminals >= n:
        raise ValueError("need at least one non-terminal relay node")
    rng = as_rng(rng)
    n_relays = n - n_terminals
    relays = random_connected_graph(n_relays, rng, extra_edge_prob=extra_edge_prob)
    g = Graph()
    g.add_nodes(range(n))
    for u, v, w in relays.edges():
        g.add_edge(u, v, w)
    terminals = list(range(n_relays, n))
    for t in terminals:
        degree = min(n_relays, max(1, terminal_degree))
        for hub in rng.choice(n_relays, size=degree, replace=False):
            g.add_edge(t, int(hub), float(rng.uniform(1.0, 10.0)))
    weights = {v: float(rng.uniform(weight_low, weight_high)) for v in range(n_relays)}
    for t in terminals:
        weights[t] = 0.0
    return g, weights, terminals
