"""Mehlhorn's 2-approximate Steiner tree from one multi-source Dijkstra.

The KMB pipeline (:func:`repro.graphs.steiner.kmb_steiner_tree`) prices the
full terminal metric closure — ``k`` shortest-path trees plus an ``O(k^2)``
complete graph — before it ever builds a tree.  Mehlhorn's observation
[Inf. Process. Lett. 27 (1988)] is that one *multi-source* Dijkstra pass
suffices: grow all terminals' shortest-path regions at once (a Voronoi
partition of the graph), then connect the regions through an *auxiliary
terminal graph* with one edge per region-adjacent terminal pair

    w'(s(u), s(v)) = min over bridges (u, v):  d(u) + w(u, v) + d(v),

where ``s(x)`` is the terminal owning ``x`` and ``d(x)`` its distance.
Every auxiliary edge is realisable as a walk in the original graph, and the
auxiliary MST weighs no more than the closure MST, so expanding it and
pruning yields the same 2(1-1/k) guarantee at ``O(m + n log n)`` cost —
the kernel that makes n=10^3..10^4 Steiner instances routine.

The auxiliary metric is also the substrate of the ``*-approx`` mechanism
family (:mod:`repro.core.approx_mechanisms`): its sparse edge list feeds
the moat process directly, no closure matrix required.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.engine.backend import as_array_backend
from repro.engine.dense import ArrayGraph, DenseGraph
from repro.graphs.adjacency import Graph
from repro.graphs.disjoint_set import DisjointSet
from repro.graphs.mst import prim_mst
from repro.graphs.steiner import SteinerTree


@dataclass(frozen=True)
class AuxiliaryMetric:
    """The Voronoi partition and auxiliary terminal graph of one
    multi-source pass.

    ``edges[e] = (a, b, w)`` are *indices into* ``terminals`` with
    ``a < b``; ``bridges[e] = (u, v)`` is the graph edge realising the
    auxiliary edge (the walk is ``terminals[a] -> .. -> u -> v -> .. ->
    terminals[b]`` along Voronoi parent chains).  ``dist`` / ``nearest`` /
    ``parent`` are the per-node multi-source Dijkstra fields.
    """

    terminals: tuple[int, ...]
    edges: tuple[tuple[int, int, float], ...]
    bridges: tuple[tuple[int, int], ...]
    dist: np.ndarray
    nearest: np.ndarray
    parent: np.ndarray

    @property
    def k(self) -> int:
        return len(self.terminals)

    def spanning_mst(self) -> tuple[list[int], float]:
        """Kruskal MST of the auxiliary graph as ``(edge_ids, total)`` —
        ids index into ``edges`` / ``bridges``, accumulated in acceptance
        order.  Raises if the terminals are disconnected.  Tie-breaking
        matches :func:`repro.graphs.mst.kruskal_mst`
        (``(w, repr(u), repr(v))`` on the terminal labels)."""
        order = sorted(
            range(len(self.edges)),
            key=lambda e: (
                self.edges[e][2],
                repr(self.terminals[self.edges[e][0]]),
                repr(self.terminals[self.edges[e][1]]),
            ),
        )
        dsu = DisjointSet(range(self.k))
        total = 0.0
        accepted: list[int] = []
        for e in order:
            a, b, w = self.edges[e]
            if dsu.union(a, b):
                accepted.append(e)
                total += w
                if dsu.n_components == 1:
                    break
        if len(accepted) != self.k - 1:
            raise ValueError("terminals are disconnected")
        return accepted, total


def mehlhorn_aux_metric(
    graph: Graph | ArrayGraph, terminals: Sequence[int], *,
    backend: str = "auto",
) -> AuxiliaryMetric:
    """One multi-source Dijkstra pass + the auxiliary terminal graph.

    ``graph`` must be array-coercible (integer labels ``0..n-1``); dense
    backends extract all bridge candidates in one vectorised pass, sparse
    backends stream the edge list once.  ``backend`` forces the coerced
    representation (``'dense'``/``'csr'``; default ``'auto'`` densifies
    small or dense graphs and keeps large sparse ones on CSR).
    """
    arr = as_array_backend(graph, prefer=backend)
    if arr is None:
        raise ValueError(
            "mehlhorn kernels need integer station labels 0..n-1; "
            "relabel the graph or use kmb_steiner_tree"
        )
    terminals = [int(t) for t in dict.fromkeys(int(t) for t in terminals)]
    dist, nearest, parent = arr.multi_source_arrays(terminals)
    pos = {t: i for i, t in enumerate(terminals)}
    if isinstance(arr, DenseGraph):
        edges, bridges = _aux_edges_dense(arr.matrix, dist, nearest, pos)
    else:
        edges, bridges = _aux_edges_stream(arr, dist, nearest, pos)
    return AuxiliaryMetric(
        tuple(terminals), tuple(edges), tuple(bridges), dist, nearest, parent
    )


def _aux_edges_dense(w, dist, nearest, pos):
    """All bridge candidates ``d(u) + w(u, v) + d(v)`` in one array pass,
    reduced to the minimum per unordered region pair (ties keep the
    row-major-first bridge — deterministic)."""
    reached = nearest >= 0
    cross = (
        np.isfinite(w)
        & (nearest[:, None] != nearest[None, :])
        & reached[:, None]
        & reached[None, :]
    )
    iu, iv = np.nonzero(np.triu(cross, 1) | np.triu(cross.T, 1))
    if len(iu) == 0:
        return [], []
    wts = dist[iu] + w[iu, iv] + dist[iv]
    su = np.fromiter((pos[int(s)] for s in nearest[iu]), dtype=np.int64, count=len(iu))
    sv = np.fromiter((pos[int(s)] for s in nearest[iv]), dtype=np.int64, count=len(iv))
    lo, hi = np.minimum(su, sv), np.maximum(su, sv)
    key = lo * len(pos) + hi
    order = np.lexsort((wts, key))  # by region pair, then weight (stable)
    keep = np.ones(len(order), dtype=bool)
    keep[1:] = key[order[1:]] != key[order[:-1]]
    sel = order[keep]
    edges = [(int(lo[e]), int(hi[e]), float(wts[e])) for e in sel]
    bridges = [(int(iu[e]), int(iv[e])) for e in sel]
    return edges, bridges


def _aux_edges_stream(arr, dist, nearest, pos):
    """Streaming variant for sparse backends: one pass over the edge list,
    keeping the strictly-cheapest bridge per region pair (iteration order
    of ``edges()`` is deterministic, so ties are too)."""
    best: dict[tuple[int, int], tuple[float, int, int]] = {}
    for u, v, wuv in arr.edges():
        su, sv = int(nearest[u]), int(nearest[v])
        if su == sv or su < 0 or sv < 0:
            continue
        a, b = pos[su], pos[sv]
        if a > b:
            a, b = b, a
        cand = float(dist[u]) + float(wuv) + float(dist[v])
        cur = best.get((a, b))
        if cur is None or cand < cur[0]:
            best[(a, b)] = (cand, int(u), int(v))
    edges = []
    bridges = []
    for (a, b), (wab, u, v) in sorted(best.items()):
        edges.append((a, b, wab))
        bridges.append((u, v))
    return edges, bridges


def mehlhorn_steiner_tree(
    graph: Graph | ArrayGraph, terminals: Sequence[int], *,
    backend: str = "auto",
) -> SteinerTree:
    """Mehlhorn's 2(1-1/k)-approximate minimum Steiner tree.

    Steps: multi-source Voronoi pass; MST of the auxiliary terminal graph;
    expand each auxiliary edge into its witness walk (parent chains + the
    bridge edge); MST of the expanded subgraph; prune non-terminal leaves.
    Same :class:`~repro.graphs.steiner.SteinerTree` contract (and edge
    ordering) as :func:`~repro.graphs.steiner.kmb_steiner_tree`.
    """
    terminals = list(dict.fromkeys(int(t) for t in terminals))
    if not terminals:
        return SteinerTree((), 0.0, frozenset())
    if len(terminals) == 1:
        return SteinerTree((), 0.0, frozenset(terminals))
    aux = mehlhorn_aux_metric(graph, terminals, backend=backend)
    mst_ids, _ = aux.spanning_mst()  # raises when terminals are disconnected
    arr = as_array_backend(graph, prefer=backend)

    expanded = Graph()
    expanded.add_nodes(terminals)
    for e in mst_ids:
        u, v = aux.bridges[e]
        expanded.add_edge(u, v, arr.weight(u, v))
        for x in (u, v):
            while aux.parent[x] >= 0:
                p = int(aux.parent[x])
                expanded.add_edge(p, x, arr.weight(p, x))
                x = p

    tree_edges = prim_mst(expanded, root=terminals[0])
    tree = Graph()
    tree.add_nodes(expanded.nodes())
    for a, b, w in tree_edges:
        tree.add_edge(a, b, w)

    terminal_set = set(terminals)
    changed = True
    while changed:
        changed = False
        for node in list(tree.nodes()):
            if node not in terminal_set and tree.degree(node) <= 1:
                tree.remove_node(node)
                changed = True

    edges = tuple(sorted(tree.edges(), key=lambda e: (repr(e[0]), repr(e[1]))))
    return SteinerTree(edges, sum(w for _, _, w in edges), frozenset(tree.nodes()))
