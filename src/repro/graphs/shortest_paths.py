"""Edge-weighted shortest paths (Dijkstra) and path reconstruction.

Used for shortest-path universal trees (section 2.1 of the paper), the
metric closure behind the KMB Steiner approximation and the Jain-Vazirani
cost shares, and as a building block of the node-weighted variant in
:mod:`repro.graphs.node_weighted`.

Every entry point accepts any :class:`~repro.engine.backend.GraphBackend`:
adjacency-map graphs run the addressable-heap implementation, array graphs
(:class:`~repro.engine.dense.DenseGraph` / ``CSRGraph``) dispatch to their
vectorised masked-min kernels.  Distances are identical either way; parent
pointers can differ only on exact distance ties.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.engine.backend import out_neighbors as _out_neighbors
from repro.engine.dense import ArrayGraph
from repro.graphs.addressable_heap import AddressableHeap
from repro.graphs.adjacency import DiGraph, Graph

Node = Hashable


def dijkstra(
    graph: Graph | DiGraph | ArrayGraph,
    source: Node,
    targets: Iterable[Node] | None = None,
) -> tuple[dict[Node, float], dict[Node, Node | None]]:
    """Single-source shortest paths with non-negative edge weights.

    Parameters
    ----------
    graph:
        Undirected or directed graph (dict- or array-backed).
    source:
        Start node.
    targets:
        Optional early-exit set: the search stops once every target has
        been settled.  Only settled nodes appear in the result — ``dist``
        and ``parent`` always have exactly the same keys, so an unsettled
        node can never be silently path-reconstructed through provisional
        predecessors.

    Returns
    -------
    (dist, parent):
        ``dist[v]`` is the shortest distance from ``source``;
        ``parent[v]`` the predecessor on one shortest path (``None`` at the
        source).
    """
    if isinstance(graph, ArrayGraph):
        return _dijkstra_array(graph, source, targets)
    remaining = set(targets) if targets is not None else None
    dist: dict[Node, float] = {}
    parent: dict[Node, Node | None] = {source: None}
    heap = AddressableHeap()
    heap.push(source, 0.0)
    while heap:
        u, d = heap.pop()
        dist[u] = d
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, w in _out_neighbors(graph, u):
            if w < 0:
                raise ValueError(f"negative edge weight on ({u!r}, {v!r}): {w}")
            if v in dist:
                continue
            if heap.push_or_decrease(v, d + w):
                parent[v] = u
    if remaining is not None:
        # Early exit leaves provisional parent entries for nodes that were
        # relaxed but never settled; drop them so dist/parent agree.
        parent = {v: p for v, p in parent.items() if v in dist}
    return dist, parent


def _dijkstra_array(
    graph: ArrayGraph, source: Node, targets: Iterable[Node] | None
) -> tuple[dict[Node, float], dict[Node, Node | None]]:
    dist_arr, parent_arr, order = graph.dijkstra_arrays(int(source), targets)
    dist: dict[Node, float] = {}
    parent: dict[Node, Node | None] = {}
    for u in order:
        u = int(u)
        dist[u] = float(dist_arr[u])
        p = int(parent_arr[u])
        parent[u] = p if p >= 0 else None
    return dist, parent


def dijkstra_distances(graph: Graph | DiGraph | ArrayGraph, source: Node) -> dict[Node, float]:
    return dijkstra(graph, source)[0]


def all_pairs_dijkstra(graph: Graph | DiGraph | ArrayGraph) -> dict[Node, dict[Node, float]]:
    """All-pairs shortest distances (one Dijkstra per node; array graphs
    run every source in lockstep through one vectorised sweep)."""
    if isinstance(graph, ArrayGraph) and hasattr(graph, "all_pairs_arrays"):
        import numpy as np

        d = graph.all_pairs_arrays()
        return {
            int(u): {int(v): float(d[u, v]) for v in np.flatnonzero(np.isfinite(d[u]))}
            for u in range(graph.n)
        }
    return {u: dijkstra(graph, u)[0] for u in graph.nodes()}


def reconstruct_path(parent: dict[Node, Node | None], target: Node) -> list[Node]:
    """Path from the Dijkstra source to ``target`` (inclusive)."""
    if target not in parent:
        raise KeyError(f"target {target!r} unreachable (not in parent map)")
    path = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def shortest_path(
    graph: Graph | DiGraph | ArrayGraph, source: Node, target: Node
) -> tuple[list[Node], float]:
    """Convenience wrapper: one shortest path and its length."""
    dist, parent = dijkstra(graph, source, targets=[target])
    if target not in dist:
        raise ValueError(f"no path from {source!r} to {target!r}")
    return reconstruct_path(parent, target), dist[target]
