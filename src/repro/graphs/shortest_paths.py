"""Edge-weighted shortest paths (Dijkstra) and path reconstruction.

Used for shortest-path universal trees (section 2.1 of the paper), the
metric closure behind the KMB Steiner approximation and the Jain-Vazirani
cost shares, and as a building block of the node-weighted variant in
:mod:`repro.graphs.node_weighted`.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable

from repro.graphs.addressable_heap import AddressableHeap
from repro.graphs.adjacency import DiGraph, Graph

Node = Hashable


def dijkstra(
    graph: Graph | DiGraph,
    source: Node,
    targets: Iterable[Node] | None = None,
) -> tuple[dict[Node, float], dict[Node, Node | None]]:
    """Single-source shortest paths with non-negative edge weights.

    Parameters
    ----------
    graph:
        Undirected or directed graph.
    source:
        Start node.
    targets:
        Optional early-exit set: the search stops once every target has been
        settled. Distances of unsettled nodes are absent from the result.

    Returns
    -------
    (dist, parent):
        ``dist[v]`` is the shortest distance from ``source``;
        ``parent[v]`` the predecessor on one shortest path (``None`` at the
        source).
    """
    remaining = set(targets) if targets is not None else None
    dist: dict[Node, float] = {}
    parent: dict[Node, Node | None] = {source: None}
    heap = AddressableHeap()
    heap.push(source, 0.0)
    while heap:
        u, d = heap.pop()
        dist[u] = d
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, w in _out_neighbors(graph, u):
            if w < 0:
                raise ValueError(f"negative edge weight on ({u!r}, {v!r}): {w}")
            if v in dist:
                continue
            if heap.push_or_decrease(v, d + w):
                parent[v] = u
    return dist, parent


def dijkstra_distances(graph: Graph | DiGraph, source: Node) -> dict[Node, float]:
    return dijkstra(graph, source)[0]


def all_pairs_dijkstra(graph: Graph | DiGraph) -> dict[Node, dict[Node, float]]:
    """All-pairs shortest distances (one Dijkstra per node)."""
    return {u: dijkstra(graph, u)[0] for u in graph.nodes()}


def reconstruct_path(parent: dict[Node, Node | None], target: Node) -> list[Node]:
    """Path from the Dijkstra source to ``target`` (inclusive)."""
    if target not in parent:
        raise KeyError(f"target {target!r} unreachable (not in parent map)")
    path = [target]
    while parent[path[-1]] is not None:
        path.append(parent[path[-1]])
    path.reverse()
    return path


def shortest_path(graph: Graph | DiGraph, source: Node, target: Node) -> tuple[list[Node], float]:
    """Convenience wrapper: one shortest path and its length."""
    dist, parent = dijkstra(graph, source, targets=[target])
    if target not in dist:
        raise ValueError(f"no path from {source!r} to {target!r}")
    return reconstruct_path(parent, target), dist[target]


def _out_neighbors(graph: Graph | DiGraph, node: Node):
    if graph.directed:
        return graph.successors(node)  # type: ignore[union-attr]
    return graph.neighbors(node)  # type: ignore[union-attr]
