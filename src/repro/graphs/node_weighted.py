"""Node-weighted shortest paths.

In the node-weighted Steiner tree problem (NWST) the cost of a tree is the
sum of the *node* weights it uses.  The natural path metric is therefore

    d(a, b) = min over paths P from a to b of  sum_{x in P, x != a} w(x)

i.e. every node on the path pays its weight except the *source* endpoint
(whose weight is accounted for once by whoever includes it: the spider
center in Klein-Ravi/Guha-Khuller, or the previous path segment).  With all
terminals having weight 0 (the paper's WLOG normalisation) this metric makes
path costs compose additively: the cost of walking a -> m -> b is
``d(a, m) + d(m, b)`` with ``w(m)`` counted exactly once.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Mapping

from repro.graphs.addressable_heap import AddressableHeap
from repro.graphs.adjacency import Graph

Node = Hashable


def node_weighted_dijkstra(
    graph: Graph,
    weights: Mapping[Node, float],
    source: Node,
    targets: Iterable[Node] | None = None,
) -> tuple[dict[Node, float], dict[Node, Node | None]]:
    """Shortest node-weighted paths from ``source``.

    ``dist[v]`` is the minimum total weight of the nodes on a path from
    ``source`` to ``v``, *excluding* ``w(source)`` but including ``w(v)``.
    Weights must be non-negative.

    With ``targets`` the search stops once every target is settled; as in
    :func:`repro.graphs.shortest_paths.dijkstra`, only settled nodes appear
    in the result (``dist`` and ``parent`` share their key set).
    """
    dist: dict[Node, float] = {}
    parent: dict[Node, Node | None] = {source: None}
    remaining = set(targets) if targets is not None else None
    heap = AddressableHeap()
    heap.push(source, 0.0)
    while heap:
        u, d = heap.pop()
        dist[u] = d
        if remaining is not None:
            remaining.discard(u)
            if not remaining:
                break
        for v, _ in graph.neighbors(u):
            if v in dist:
                continue
            wv = weights.get(v, 0.0)
            if wv < 0:
                raise ValueError(f"negative node weight on {v!r}: {wv}")
            if heap.push_or_decrease(v, d + wv):
                parent[v] = u
    if remaining is not None:
        parent = {v: p for v, p in parent.items() if v in dist}
    return dist, parent


def node_weighted_path_cost(weights: Mapping[Node, float], path: list[Node]) -> float:
    """Cost of a concrete path under the source-excluded node metric."""
    return sum(weights.get(x, 0.0) for x in path[1:])


def all_sources_node_weighted(
    graph: Graph, weights: Mapping[Node, float]
) -> dict[Node, dict[Node, float]]:
    """Node-weighted distances from every node (n Dijkstra runs)."""
    return {u: node_weighted_dijkstra(graph, weights, u)[0] for u in graph.nodes()}


def node_weighted_arc_matrix(graph: Graph, weights: Mapping[Node, float],
                             node_list: list[Node]):
    """The node-weighted metric as a dense arc-weight matrix over
    ``node_list``: ``A[a, b] = w(node_list[b])`` when the edge exists,
    ``inf`` otherwise — walking ``a -> b`` pays the weight of ``b``.

    Feeding this to :func:`repro.engine.dense.batched_dijkstra` yields the
    all-sources node-weighted distance matrix in one vectorised sweep
    (identical floats to per-source :func:`node_weighted_dijkstra`).
    """
    import numpy as np

    index = {u: a for a, u in enumerate(node_list)}
    n = len(node_list)
    wvec = np.empty(n)
    for u, a in index.items():
        wu = float(weights.get(u, 0.0))
        if wu < 0:
            raise ValueError(f"negative node weight on {u!r}: {wu}")
        wvec[a] = wu
    arcs = np.full((n, n), np.inf)
    for u in node_list:
        a = index[u]
        for v, _ in graph.neighbors(u):
            b = index[v]
            arcs[a, b] = wvec[b]
    return arcs
