"""Union-find (disjoint-set forest) with union by size and path compression.

Besides the classic operations, :meth:`DisjointSet.members` exposes the
current component of an element; the Jain-Vazirani moat process
(:mod:`repro.core.jv_steiner`) relies on it to split a component's growth
among its members.
"""

from __future__ import annotations

from collections.abc import Hashable, Iterable, Iterator

Element = Hashable


class DisjointSet:
    """Disjoint-set forest over an arbitrary (growable) universe."""

    def __init__(self, elements: Iterable[Element] = ()) -> None:
        self._parent: dict[Element, Element] = {}
        self._size: dict[Element, int] = {}
        self._members: dict[Element, list[Element]] = {}
        self._n_components = 0
        for element in elements:
            self.add(element)

    def add(self, element: Element) -> None:
        """Insert ``element`` as a singleton component (idempotent)."""
        if element in self._parent:
            return
        self._parent[element] = element
        self._size[element] = 1
        self._members[element] = [element]
        self._n_components += 1

    def __contains__(self, element: Element) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        """Number of elements (not components)."""
        return len(self._parent)

    @property
    def n_components(self) -> int:
        return self._n_components

    def find(self, element: Element) -> Element:
        """Return the canonical representative of ``element``'s component."""
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def connected(self, a: Element, b: Element) -> bool:
        return self.find(a) == self.find(b)

    def union(self, a: Element, b: Element) -> bool:
        """Merge the components of ``a`` and ``b``.

        Returns ``True`` if a merge happened (they were distinct).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self._size[ra] < self._size[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._size[ra] += self._size[rb]
        self._members[ra].extend(self._members.pop(rb))
        del self._size[rb]
        self._n_components -= 1
        return True

    def component_size(self, element: Element) -> int:
        return self._size[self.find(element)]

    def members(self, element: Element) -> list[Element]:
        """All elements in ``element``'s component (shared list: do not mutate)."""
        return self._members[self.find(element)]

    def components(self) -> Iterator[list[Element]]:
        """Iterate over the current components as member lists."""
        return iter(self._members.values())
