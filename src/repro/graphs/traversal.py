"""Graph traversals: BFS orders/parents/numbering, DFS, components.

The BFS numbering is exactly what the Caragiannis et al. MEMT->NWST
back-mapping (paper section 2.2.1) uses to orient an undirected Steiner tree
into a directed multicast tree rooted at the source.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable

from repro.engine.backend import out_neighbors as _out_neighbors
from repro.graphs.adjacency import DiGraph, Graph

Node = Hashable


def bfs_order(graph: Graph | DiGraph, source: Node) -> list[Node]:
    """Nodes reachable from ``source`` in breadth-first order."""
    seen = {source}
    order = [source]
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v, _ in _out_neighbors(graph, u):
            if v not in seen:
                seen.add(v)
                order.append(v)
                queue.append(v)
    return order


def bfs_parents(graph: Graph | DiGraph, source: Node) -> dict[Node, Node | None]:
    """BFS tree as a ``child -> parent`` map (source maps to ``None``)."""
    parents: dict[Node, Node | None] = {source: None}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v, _ in _out_neighbors(graph, u):
            if v not in parents:
                parents[v] = u
                queue.append(v)
    return parents


def bfs_numbering(graph: Graph | DiGraph, source: Node) -> dict[Node, int]:
    """``node -> visit index`` in BFS order from ``source``."""
    return {node: i for i, node in enumerate(bfs_order(graph, source))}


def dfs_order(graph: Graph | DiGraph, source: Node) -> list[Node]:
    """Nodes reachable from ``source`` in (iterative, preorder) DFS order."""
    seen: set[Node] = set()
    order: list[Node] = []
    stack = [source]
    while stack:
        u = stack.pop()
        if u in seen:
            continue
        seen.add(u)
        order.append(u)
        neighbours = [v for v, _ in _out_neighbors(graph, u) if v not in seen]
        # Reverse so that iteration order matches recursive DFS.
        stack.extend(reversed(neighbours))
    return order


def connected_components(graph: Graph) -> list[set[Node]]:
    """Connected components of an undirected graph."""
    remaining = set(graph.nodes())
    components = []
    while remaining:
        start = next(iter(remaining))
        component = set(bfs_order(graph, start))
        components.append(component)
        remaining -= component
    return components


def weakly_connected_components(graph: DiGraph) -> list[set[Node]]:
    return connected_components(graph.to_undirected())


def is_connected(graph: Graph, nodes: Iterable[Node] | None = None) -> bool:
    """True iff the (sub)graph induced on ``nodes`` (default: all) is connected."""
    sub = graph if nodes is None else graph.subgraph(nodes)
    n = len(sub)
    if n == 0:
        return True
    start = next(iter(sub))
    return len(bfs_order(sub, start)) == n


def reachable_set(graph: Graph | DiGraph, source: Node) -> set[Node]:
    return set(bfs_order(graph, source))
