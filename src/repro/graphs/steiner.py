"""Edge-weighted Steiner trees.

Three tools the paper's section 3.2 machinery needs:

* :func:`metric_closure` — shortest-path distances (and paths) between the
  terminals, the space in which both the KMB approximation and the
  Jain-Vazirani cost shares live;
* :func:`kmb_steiner_tree` — the classic Kou-Markowsky-Berman
  2(1-1/k)-approximation [34 in the paper];
* :func:`dreyfus_wagner` — the exact O(3^k n) dynamic program, used as the
  optimum oracle when validating the approximation and budget-balance
  factors.
"""

from __future__ import annotations

from collections.abc import Hashable, Sequence
from dataclasses import dataclass

from repro.engine.backend import as_array_backend
from repro.engine.dense import ArrayGraph, batched_dijkstra
from repro.graphs.adjacency import Graph
from repro.graphs.mst import kruskal_complete, prim_mst
from repro.graphs.shortest_paths import all_pairs_dijkstra, dijkstra, reconstruct_path

Node = Hashable


def _all_pairs_fast(graph: Graph | ArrayGraph) -> dict[Node, dict[Node, float]]:
    """All-pairs distances, coerced onto the array backend when the node
    labels allow it (``0..n-1`` ints).  Distance-only consumers — the
    Dreyfus-Wagner programs below — get identical floats either way, so
    the coercion is pure speedup with no tie sensitivity."""
    arr = as_array_backend(graph, prefer="auto")
    return all_pairs_dijkstra(graph if arr is None else arr)


@dataclass(frozen=True)
class MetricClosure:
    """Terminal-to-terminal shortest distances and one witness path each."""

    distance: dict[Node, dict[Node, float]]
    path: dict[tuple[Node, Node], list[Node]]

    def dist(self, u: Node, v: Node) -> float:
        return 0.0 if u == v else self.distance[u][v]


def metric_closure(graph: Graph | ArrayGraph, terminals: Sequence[Node]) -> MetricClosure:
    """Shortest-path closure restricted to ``terminals``.

    Array-backed graphs run every terminal's Dijkstra in one lockstep
    sweep (:func:`repro.engine.dense.batched_dijkstra`); dict graphs run
    one early-exit heap Dijkstra per terminal.  Distances agree exactly;
    witness paths may differ only between equally-short alternatives.
    """
    terminals = list(terminals)
    if isinstance(graph, ArrayGraph) and hasattr(graph, "matrix"):
        return _metric_closure_dense(graph, terminals)
    distance: dict[Node, dict[Node, float]] = {}
    paths: dict[tuple[Node, Node], list[Node]] = {}
    targets = set(terminals)
    for t in terminals:
        dist, parent = dijkstra(graph, t, targets=targets)
        row = {}
        for other in terminals:
            if other == t:
                continue
            if other not in dist:
                raise ValueError(f"terminals {t!r} and {other!r} are disconnected")
            row[other] = dist[other]
            paths[(t, other)] = reconstruct_path(parent, other)
        distance[t] = row
    return MetricClosure(distance, paths)


def _metric_closure_dense(graph: ArrayGraph, terminals: list[Node]) -> MetricClosure:
    import numpy as np

    term_idx = [int(t) for t in terminals]
    dist_mat, parent_mat = batched_dijkstra(graph.matrix, term_idx, return_parents=True)
    distance: dict[Node, dict[Node, float]] = {}
    paths: dict[tuple[Node, Node], list[Node]] = {}
    for a, t in enumerate(terminals):
        row = {}
        parents = parent_mat[a]
        for other in terminals:
            if other == t:
                continue
            d = dist_mat[a, int(other)]
            if not np.isfinite(d):
                raise ValueError(f"terminals {t!r} and {other!r} are disconnected")
            row[other] = float(d)
            path = [int(other)]
            while path[-1] != int(t):
                path.append(int(parents[path[-1]]))
            path.reverse()
            paths[(t, other)] = path
        distance[t] = row
    return MetricClosure(distance, paths)


@dataclass(frozen=True)
class SteinerTree:
    """A Steiner tree as an explicit edge set over the original graph."""

    edges: tuple[tuple[Node, Node, float], ...]
    cost: float
    nodes: frozenset

    def as_graph(self) -> Graph:
        g = Graph()
        g.add_nodes(self.nodes)
        for u, v, w in self.edges:
            g.add_edge(u, v, w)
        return g


def kmb_steiner_tree(graph: Graph, terminals: Sequence[Node]) -> SteinerTree:
    """Kou-Markowsky-Berman 2-approximate minimum Steiner tree.

    Steps: MST of the metric closure; expand closure edges into shortest
    paths; MST of the expanded subgraph; prune non-terminal leaves.
    """
    terminals = list(dict.fromkeys(terminals))
    if not terminals:
        return SteinerTree((), 0.0, frozenset())
    if len(terminals) == 1:
        return SteinerTree((), 0.0, frozenset(terminals))
    closure = metric_closure(graph, terminals)
    closure_mst, _ = kruskal_complete(terminals, closure.dist)

    expanded = Graph()
    expanded.add_nodes(terminals)
    for u, v, _ in closure_mst:
        path = closure.path[(u, v)]
        for a, b in zip(path, path[1:]):
            expanded.add_edge(a, b, graph.weight(a, b))

    tree_edges = prim_mst(expanded, root=terminals[0])
    tree = Graph()
    tree.add_nodes(expanded.nodes())
    for a, b, w in tree_edges:
        tree.add_edge(a, b, w)

    # Prune non-terminal leaves until fixpoint.
    terminal_set = set(terminals)
    changed = True
    while changed:
        changed = False
        for node in list(tree.nodes()):
            if node not in terminal_set and tree.degree(node) <= 1:
                tree.remove_node(node)
                changed = True

    edges = tuple(sorted(tree.edges(), key=lambda e: (repr(e[0]), repr(e[1]))))
    return SteinerTree(edges, sum(w for _, _, w in edges), frozenset(tree.nodes()))


def dreyfus_wagner(graph: Graph, terminals: Sequence[Node]) -> float:
    """Exact minimum Steiner tree cost (Dreyfus-Wagner dynamic program).

    Exponential in ``len(terminals)`` — intended as a small-instance oracle.
    """
    terminals = list(dict.fromkeys(terminals))
    k = len(terminals)
    if k <= 1:
        return 0.0
    if k == 2:
        apsp = _all_pairs_fast(graph)
        return apsp[terminals[0]].get(terminals[1], float("inf"))
    table, index = _dreyfus_wagner_table(graph, terminals[:-1])
    return table[(1 << (k - 1)) - 1][index[terminals[-1]]]


def steiner_costs_all_subsets(
    graph: Graph, terminals: Sequence[Node], root: Node
) -> dict[frozenset, float]:
    """Exact Steiner cost of ``{root} + Q`` for *every* subset ``Q`` of
    ``terminals`` from a single Dreyfus-Wagner table.

    This is the ``C*`` oracle of the Fig. 2 (empty core) experiment: one DP
    run prices all 2^k coalitions.
    """
    terminals = list(dict.fromkeys(terminals))
    if root in terminals:
        raise ValueError("root must not be a terminal")
    table, index = _dreyfus_wagner_table(graph, terminals)
    root_i = index[root]
    out: dict[frozenset, float] = {frozenset(): 0.0}
    for mask in range(1, 1 << len(terminals)):
        Q = frozenset(t for i, t in enumerate(terminals) if mask >> i & 1)
        out[Q] = table[mask][root_i]
    return out


def _dreyfus_wagner_table(
    graph: Graph, base: Sequence[Node]
) -> tuple[list[list[float]], dict[Node, int]]:
    """The DW table ``S[mask][v]`` = min cost tree spanning ``base[mask] + v``."""
    nodes = graph.nodes()
    index = {v: i for i, v in enumerate(nodes)}
    apsp = _all_pairs_fast(graph)
    inf = float("inf")

    def d(u: Node, v: Node) -> float:
        return apsp[u].get(v, inf)

    m = len(base)
    S = [[inf] * len(nodes) for _ in range(1 << m)]
    S[0] = [0.0] * len(nodes)
    for i, t in enumerate(base):
        row = S[1 << i]
        for v in nodes:
            row[index[v]] = d(t, v)

    for mask in range(1, 1 << m):
        if mask & (mask - 1) == 0:
            continue  # singletons already initialised
        row = S[mask]
        # Merge step: split the terminal set at v.
        low = mask & (-mask)
        sub = (mask - 1) & mask
        while sub:
            if sub & low:  # canonical split: the low bit stays in `sub`
                other = mask ^ sub
                rs, ro = S[sub], S[other]
                for vi in range(len(nodes)):
                    cand = rs[vi] + ro[vi]
                    if cand < row[vi]:
                        row[vi] = cand
            sub = (sub - 1) & mask
        # Relax step: move the attachment point along shortest paths.
        # (Dense relaxation via the all-pairs matrix.)
        snapshot = list(row)
        for ui, u in enumerate(nodes):
            su = snapshot[ui]
            if su == inf:
                continue
            du = apsp[u]
            for v, duv in du.items():
                vi = index[v]
                cand = su + duv
                if cand < row[vi]:
                    row[vi] = cand

    return S, index
