"""Optimal mechanisms for Euclidean networks with alpha = 1 or d = 1 (§3.1).

Lemma 3.1 makes the *optimal* multicast cost ``C*`` polynomial to compute
and submodular in both cases, so the Shapley value yields an optimally
budget-balanced (1-BB) group-strategyproof mechanism and the marginal-cost
mechanism an efficient one — and both are computable in polynomial time
(Thm 3.2), which this module implements:

* ``alpha = 1``: ``C*(R) = max dist(s, x_i)`` — a *max game*.  Its Shapley
  value has the classic airport-game closed form over sorted distances, and
  the largest efficient set is one of the n nested balls around the source.
* ``d = 1``: ``C*(R)`` depends only on the extremes ``(f_R, l_R)`` of
  ``R + {s}`` on the line.  The Shapley value is computed exactly in
  polynomial time by counting, for every subset size, the distribution of
  the extremes (binomial counting — no 2^k enumeration), and the largest
  efficient set is one of the O(n^2) intervals around the source.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.api.registry import register_mechanism
from repro.mechanism.base import Agent, CostSharingMechanism, MechanismResult, Profile
from repro.mechanism.moulin_shenker import moulin_shenker
from repro.mechanism.vcg import MarginalCostMechanism
from repro.wireless.alpha_one import optimal_alpha_one_power
from repro.wireless.cost_graph import EuclideanCostGraph
from repro.wireless.line import line_all_interval_costs, optimal_line_multicast


def _case(network: EuclideanCostGraph) -> str:
    if network.alpha == 1:
        return "alpha1"
    if network.dim == 1:
        return "line"
    raise ValueError(
        "optimal Euclidean mechanisms require alpha = 1 or d = 1 "
        f"(got alpha={network.alpha}, d={network.dim}); the general case is "
        "NP-hard (Lemma 3.3) — use EuclideanJVMechanism instead"
    )


def euclidean_optimal_cost_function(network: EuclideanCostGraph, source: int):
    """``C*(R)`` as a plain callable over frozensets (poly-time cases only)."""
    case = _case(network)
    if case == "alpha1":
        dist = np.array([network.distance(source, i) for i in range(network.n)])

        def cost(R: frozenset) -> float:
            R = set(R) - {source}
            return float(max((dist[i] for i in R), default=0.0))

        return cost

    coords = network.points.coords.ravel()
    table = line_all_interval_costs(coords, network.alpha, source)

    def cost(R: frozenset) -> float:
        R = set(R) - {source}
        if not R:
            return 0.0
        f = min(R, key=lambda i: (coords[i], i))
        l = max(R, key=lambda i: (coords[i], i))
        return table[(f, l)]

    return cost


# ---------------------------------------------------------------------------
# Closed-form Shapley shares
# ---------------------------------------------------------------------------

def max_game_shapley(values: dict[Agent, float]) -> dict[Agent, float]:
    """Shapley shares of the game ``C(R) = max_i a_i`` (airport game).

    Sorting ``a_(1) <= ... <= a_(k)``, the increment ``a_(i) - a_(i-1)`` is
    shared equally by the ``k - i + 1`` agents with rank >= i.
    """
    order = sorted(values, key=lambda i: (values[i], i))
    shares = {i: 0.0 for i in order}
    prev = 0.0
    k = len(order)
    for rank, i in enumerate(order):
        increment = values[i] - prev
        prev = values[i]
        if increment <= 0:
            continue
        per_head = increment / (k - rank)
        for j in order[rank:]:
            shares[j] += per_head
    return shares


def line_shapley_shares(
    coords: Sequence[float] | np.ndarray,
    alpha: float,
    source: int,
    receivers: Iterable[Agent],
) -> dict[Agent, float]:
    """Exact Shapley shares of the d = 1 optimal cost ``C*`` in polynomial
    time.

    ``C*(Q)`` depends only on the extreme positions of ``Q + {s}``, so the
    Shapley expectation over arrival orders reduces to the distribution of
    the extremes of a random prefix: for agent ``i`` and prefix size ``q``,
    the number of prefixes with extremes ``(f, l)`` is a product of
    binomials over the points strictly inside the interval.  O(k^3 + k^2)
    cost evaluations instead of 2^k.
    """
    xs = np.asarray(coords, dtype=float).ravel()
    R = sorted(set(receivers) - {source})
    k = len(R)
    if k == 0:
        return {}

    table = line_all_interval_costs(xs, alpha, source)

    def interval_cost(f: int, l: int) -> float:
        """C* of any set whose extremes (with s) are stations f and l."""
        a, b = sorted((f, l), key=lambda i: (xs[i], i))
        return table[(a, b)]

    fact = [math.factorial(x) for x in range(k + 1)]
    weight = [fact[q] * fact[k - q - 1] / fact[k] for q in range(k)]

    # inside[f][l]: number of receivers strictly between positions of f and l.
    pos = {i: xs[i] for i in R}
    sorted_R = sorted(R, key=lambda i: (pos[i], i))
    index_of = {i: t for t, i in enumerate(sorted_R)}

    def n_between(a: int, b: int) -> int:
        # receivers strictly between a and b in the sorted order
        ia, ib = index_of[a], index_of[b]
        if ia > ib:
            ia, ib = ib, ia
        return max(0, ib - ia - 1)

    shares = {i: 0.0 for i in R}
    for i in R:
        others = [j for j in sorted_R if j != i]
        # q = 0: marginal over the empty prefix.
        shares[i] += weight[0] * interval_cost(i, i)
        for q in range(1, k):
            wq = weight[q]
            if wq == 0.0:
                continue
            # Enumerate the prefix extremes (f, l) among the others.
            for a_idx, f in enumerate(others):
                # f == l: prefix of size 1.
                if q == 1:
                    base = interval_cost(f, f)
                    marg = interval_cost(min(f, i, key=lambda z: xs[z]),
                                         max(f, i, key=lambda z: xs[z])) - base
                    shares[i] += wq * marg
                    continue
                for l in others[a_idx + 1 :]:
                    inner = n_between(f, l) - (1 if xs[f] < xs[i] < xs[l] else 0)
                    need = q - 2
                    if need < 0 or inner < need:
                        continue
                    count = math.comb(inner, need)
                    if count == 0:
                        continue
                    base = interval_cost(f, l)
                    new_f = f if xs[f] <= xs[i] else i
                    new_l = l if xs[l] >= xs[i] else i
                    marg = interval_cost(new_f, new_l) - base
                    shares[i] += wq * count * marg
    return shares


# ---------------------------------------------------------------------------
# Mechanisms
# ---------------------------------------------------------------------------

class EuclideanShapleyMechanism(CostSharingMechanism):
    """Shapley value over the optimal cost ``C*``: 1-BB (optimally budget
    balanced), group strategyproof, NPT/VP/CS, polynomial (Thm 3.2)."""

    def __init__(self, network: EuclideanCostGraph, source: int) -> None:
        self.network = network
        self.source = source
        self.case = _case(network)
        self.agents = [i for i in range(network.n) if i != source]
        if self.case == "alpha1":
            self._dist = {i: network.distance(source, i) for i in self.agents}

    def _shares(self, R: frozenset) -> dict[Agent, float]:
        if not R:
            return {}
        if self.case == "alpha1":
            return max_game_shapley({i: self._dist[i] for i in R})
        return line_shapley_shares(
            self.network.points.coords.ravel(), self.network.alpha, self.source, R
        )

    def _build(self, R: frozenset):
        if self.case == "alpha1":
            cost, power = optimal_alpha_one_power(self.network, self.source, R)
        else:
            cost, power = optimal_line_multicast(
                self.network.points.coords.ravel(), self.network.alpha, self.source, R
            )
        return cost, power

    def run(self, profile: Profile, *, method=None) -> MechanismResult:
        """Run the mechanism; ``method`` optionally substitutes a memoised
        wrapper of the closed-form Shapley shares (see
        :class:`repro.engine.batch.MethodCache`)."""
        u = self.validate_profile(profile)
        xi = self._shares if method is None else method
        return moulin_shenker(self.agents, xi, u, build=self._build)


class EuclideanMCMechanism(MarginalCostMechanism):
    """Marginal-cost mechanism over ``C*``: efficient, strategyproof,
    polynomial (Thm 3.2).  The largest efficient set is found over the
    nested candidate family (balls for alpha = 1, intervals for d = 1)."""

    def __init__(self, network: EuclideanCostGraph, source: int) -> None:
        self.network = network
        self.source = source
        self.case = _case(network)
        agents = [i for i in range(network.n) if i != source]
        cost_fn = euclidean_optimal_cost_function(network, source)

        if self.case == "alpha1":
            dist = {i: network.distance(source, i) for i in agents}
            order = sorted(agents, key=lambda i: (dist[i], i))

            def solver(profile: dict[Agent, float]) -> tuple[float, frozenset]:
                best = (0.0, frozenset())
                total = 0.0
                for j, i in enumerate(order):
                    total += profile[i]
                    nw = total - dist[i]
                    members = frozenset(order[: j + 1])
                    if nw > best[0] + 1e-12 or (
                        abs(nw - best[0]) <= 1e-12 and len(members) > len(best[1])
                    ):
                        best = (nw, members)
                return best

        else:
            xs = network.points.coords.ravel()
            order = sorted(agents, key=lambda i: (xs[i], i))

            def solver(profile: dict[Agent, float]) -> tuple[float, frozenset]:
                best = (0.0, frozenset())
                # Every candidate is a contiguous interval of stations
                # containing the source (relays ride for free).
                for a in range(len(order)):
                    for b in range(a, len(order)):
                        f, l = order[a], order[b]
                        lo, hi = min(xs[f], xs[self.source]), max(xs[l], xs[self.source])
                        members = frozenset(
                            i for i in agents if lo - 1e-12 <= xs[i] <= hi + 1e-12
                        )
                        nw = sum(profile[i] for i in members) - cost_fn(frozenset((f, l)))
                        if nw > best[0] + 1e-12 or (
                            abs(nw - best[0]) <= 1e-12 and len(members) > len(best[1])
                        ):
                            best = (nw, members)
                return best

        super().__init__(agents, solver, cost_fn)

    def run(self, profile: Profile) -> MechanismResult:
        result = super().run(profile)
        if self.case == "alpha1":
            _, power = optimal_alpha_one_power(self.network, self.source, result.receivers)
        else:
            _, power = optimal_line_multicast(
                self.network.points.coords.ravel(),
                self.network.alpha,
                self.source,
                result.receivers,
            )
        return MechanismResult(
            receivers=result.receivers,
            shares=result.shares,
            cost=result.cost,
            power=power,
            extra=result.extra,
        )


# -- registry wiring (repro.api) --------------------------------------------

def _euclidean_network(session) -> EuclideanCostGraph:
    network = session.network
    if not isinstance(network, EuclideanCostGraph):
        raise ValueError(
            "the optimal Euclidean mechanisms need a Euclidean scenario "
            f"(kind 'points' or 'random' with alpha), got {session.scenario.kind!r}"
        )
    if session.scenario.receivers is not None:
        raise ValueError(
            "the optimal Euclidean mechanisms price every non-source "
            "station; scenarios with an explicit receivers subset are not "
            "supported (drop receivers or pick a restrictable mechanism)"
        )
    return network


register_mechanism(
    "euclid-shapley",
    lambda session: EuclideanShapleyMechanism(_euclidean_network(session), session.source),
    method_of=lambda mech: mech._shares,
    summary="§3.1 Shapley mechanism over exact C* (1-BB, GSP; alpha=1 or d=1)",
)
register_mechanism(
    "euclid-mc",
    lambda session: EuclideanMCMechanism(_euclidean_network(session), session.source),
    summary="§3.1 marginal-cost mechanism over exact C* (efficient, SP; alpha=1 or d=1)",
    guarantees=("npt", "vp"),  # MC runs deficits: no cost recovery (§3.1)
)
