"""The 3 ln(k+1)-BB strategyproof wireless multicast mechanism (§2.2.3).

Pipeline per outer round (restarted whenever an agent is dropped):

1. reduce the wireless instance restricted to the still-active receivers to
   NWST (:mod:`repro.core.memt_reduction`);
2. run the NWST mechanism (:mod:`repro.core.nwst_mechanism`) with the
   source's input node *protected* (connected, never charged, never
   dropped) — this shares the cost of a weakly connected multicast tree and
   may itself drop agents (its own internal restarts);
3. orient the bought NWST solution from the source (BFS) into a power
   assignment ``pi``; stations needing more power than the NWST phase paid
   for (``pi > pi'``) have their full ``pi(x_i)`` shared equally among the
   receivers downstream of the transmission — walking stations in backward
   BFS order.  Any receiver that cannot afford its slice is dropped and the
   whole pipeline restarts.

Cost recovery holds because the extra charges cover every arc the NWST
weights did not; competitiveness is ``2 * 1.5 ln k = 3 ln(k+1)`` against the
optimum ``C*`` (any multicast assignment is a feasible NWST solution of the
same cost).  Strategyproofness is inherited: all charges are independent of
the payer's own report, which only determines membership.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.api.registry import register_mechanism
from repro.core.memt_reduction import memt_to_nwst, nwst_solution_to_power
from repro.core.nwst_mechanism import NWSTMechanism
from repro.mechanism.base import Agent, CostSharingMechanism, MechanismResult, Profile
from repro.wireless.cost_graph import CostGraph

_EPS = 1e-9


class WirelessMulticastMechanism(CostSharingMechanism):
    """The paper's cost-sharing mechanism for symmetric wireless networks.

    Parameters
    ----------
    network, source:
        The symmetric wireless instance.
    receivers:
        The potential receivers (default: every station but the source).
    mode:
        Spider flavour forwarded to the inner NWST mechanism.
    """

    def __init__(
        self,
        network: CostGraph,
        source: int,
        receivers: Sequence[Agent] | None = None,
        *,
        mode: str = "branch",
    ) -> None:
        self.network = network
        self.source = source
        if receivers is None:
            receivers = [i for i in range(network.n) if i != source]
        if source in receivers:
            raise ValueError("the source cannot be a receiver")
        self.agents = list(dict.fromkeys(receivers))
        self.mode = mode

    def run(self, profile: Profile) -> MechanismResult:
        u = self.validate_profile(profile)
        active: set[Agent] = set(self.agents)
        n_outer = 0
        while True:
            n_outer += 1
            if not active:
                return MechanismResult(
                    receivers=frozenset(), shares={}, cost=0.0,
                    extra={"n_outer_rounds": n_outer},
                )
            outcome = self._round(active, u)
            if outcome["dropped"]:
                active -= outcome["dropped"]
                continue
            return MechanismResult(
                receivers=frozenset(active),
                shares=outcome["shares"],
                cost=outcome["power"].cost(),
                power=outcome["power"],
                extra={
                    "n_outer_rounds": n_outer,
                    "charged_nwst": outcome["charged_nwst"],
                    "charged_extra": outcome["charged_extra"],
                    "paid_levels": outcome["paid"],
                },
            )

    # -- one outer round -------------------------------------------------------
    def _round(self, active: set[Agent], u: dict[Agent, float]) -> dict:
        instance = memt_to_nwst(self.network, self.source, active)
        inner = NWSTMechanism(
            instance.graph,
            instance.weights,
            terminals=[instance.terminal_of[r] for r in sorted(active)],
            protected=[instance.source_terminal],
            mode=self.mode,
        )
        inner_profile = {instance.terminal_of[r]: u[r] for r in sorted(active)}
        inner_result = inner.run(inner_profile)

        surviving = {r for r in active if instance.terminal_of[r] in inner_result.receivers}
        if surviving != active:
            return {"dropped": active - surviving}
        if not surviving:
            return {"dropped": active}

        shares = {r: inner_result.shares[instance.terminal_of[r]] for r in active}
        bought = inner_result.extra["bought_nodes"]
        oriented = nwst_solution_to_power(
            self.network, instance, bought, self.source, active
        )

        charged_extra = 0.0
        pi = oriented.power
        for i in oriented.backward_order:
            if pi[i] <= oriented.paid[i] + _EPS:
                continue
            served = sorted(oriented.downstream.get(i, set()) & active)
            if not served:  # pragma: no cover - pruning keeps only serving arcs
                continue
            slice_each = pi[i] / len(served)
            losers = {j for j in served if u[j] - shares[j] < slice_each - _EPS}
            if losers:
                return {"dropped": losers}
            for j in served:
                shares[j] += slice_each
            charged_extra += pi[i]

        return {
            "dropped": set(),
            "shares": shares,
            "power": pi,
            "paid": oriented.paid,
            "charged_nwst": inner_result.extra["charged"],
            "charged_extra": charged_extra,
        }


class WirelessNWSTMechanism(CostSharingMechanism):
    """The §2.2.2 NWST mechanism on the §2.2.1 reduction, addressed by
    station id.

    Runs :class:`NWSTMechanism` over ``memt_to_nwst(network, source, R)``
    with the source's input node protected, translating terminals and
    shares between station ids and reduction nodes.  This is the first
    two steps of the §2.2.3 pipeline — it prices the *weakly connected*
    multicast structure and stops before the extra-power recharging
    (:class:`WirelessMulticastMechanism` is the full mechanism).
    """

    def __init__(
        self,
        network: CostGraph,
        source: int,
        receivers: Sequence[Agent] | None = None,
        *,
        mode: str = "branch",
    ) -> None:
        self.network = network
        self.source = source
        if receivers is None:
            receivers = [i for i in range(network.n) if i != source]
        if source in receivers:
            raise ValueError("the source cannot be a receiver")
        self.agents = list(dict.fromkeys(receivers))
        self.mode = mode
        self.instance = memt_to_nwst(network, source, self.agents)
        self.inner = NWSTMechanism(
            self.instance.graph,
            self.instance.weights,
            terminals=[self.instance.terminal_of[r] for r in self.agents],
            protected=[self.instance.source_terminal],
            mode=mode,
        )

    def run(self, profile: Profile) -> MechanismResult:
        u = self.validate_profile(profile)
        inner = self.inner.run({self.instance.terminal_of[r]: u[r] for r in self.agents})
        receivers = frozenset(
            r for r in self.agents if self.instance.terminal_of[r] in inner.receivers
        )
        shares = {r: inner.shares[self.instance.terminal_of[r]] for r in receivers}
        return MechanismResult(
            receivers=receivers,
            shares=shares,
            cost=inner.cost,
            extra=dict(inner.extra),
        )


# -- registry wiring (repro.api) --------------------------------------------

def _receivers_param(session, receivers):
    """An explicit ``receivers`` param wins; otherwise the scenario's own
    ``receivers`` subset applies (``None`` = every non-source station)."""
    if receivers is not None:
        return [int(r) for r in receivers]
    if session.scenario.receivers is not None:
        return list(session.scenario.receivers)
    return None


register_mechanism(
    "wireless",
    lambda session, *, mode="branch", receivers=None: WirelessMulticastMechanism(
        session.network, session.source, _receivers_param(session, receivers), mode=mode
    ),
    summary="§2.2.3 wireless multicast mechanism (3 ln(k+1)-BB, SP)",
)
register_mechanism(
    "nwst",
    lambda session, *, mode="branch", receivers=None: WirelessNWSTMechanism(
        session.network, session.source, _receivers_param(session, receivers), mode=mode
    ),
    summary="§2.2.2 NWST mechanism on the MEMT reduction (1.5 ln k-BB, SP)",
)
