"""The minimum-spanning-tree game and the Bird allocation.

The paper's section 1.1.1 grounds its Steiner cost sharing in the classic
MST-game literature (Bird [5]; Granot-Huberman [23, 24]; Kent &
Skorin-Kapov [30, 31]).  This module implements that substrate explicitly:

* the *MST game* over a wireless network: coalition ``R`` pays the MST
  weight of the metric closure over ``R + {source}`` (exactly the quantity
  the Jain-Vazirani shares distribute);
* the **Bird allocation**: rooted at the source, every terminal pays the
  closure-MST edge connecting it to its parent.  Bird's theorem: this
  allocation is always in the core of the MST game — which our tests
  certify — yet it is *not* cross-monotonic, which is precisely why the
  paper needs the Kent/Skorin-Kapov/JV machinery instead of Bird's rule to
  get a group-strategyproof mechanism.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.jv_steiner import metric_closure_matrix
from repro.graphs.mst import kruskal_complete
from repro.mechanism.base import Agent
from repro.wireless.cost_graph import CostGraph


class MSTGame:
    """The metric-closure MST game rooted at the source."""

    def __init__(self, network: CostGraph, source: int) -> None:
        self.network = network
        self.source = source
        self.closure = metric_closure_matrix(network)

    def _dist(self, u: int, v: int) -> float:
        return float(self.closure[u, v])

    def cost(self, R: Iterable[Agent]) -> float:
        """MST weight of the metric closure over ``R + {source}``."""
        R = sorted(set(R) - {self.source})
        if not R:
            return 0.0
        tree, _ = kruskal_complete([self.source, *R], self._dist)
        return sum(w for _, _, w in tree)

    def mst_edges(self, R: Iterable[Agent]) -> list[tuple[int, int, float]]:
        R = sorted(set(R) - {self.source})
        if not R:
            return []
        tree, _ = kruskal_complete([self.source, *R], self._dist)
        return tree

    def bird_allocation(self, R: Iterable[Agent]) -> dict[Agent, float]:
        """Bird's rule: each terminal pays its parent edge in the rooted MST.

        Always a core allocation of the MST game (Bird 1976) and exactly
        budget balanced; *not* cross-monotonic in general.
        """
        R = sorted(set(R) - {self.source})
        if not R:
            return {}
        edges = self.mst_edges(R)
        # Orient the MST away from the source.
        adjacency: dict[int, list[tuple[int, float]]] = {}
        for u, v, w in edges:
            adjacency.setdefault(u, []).append((v, w))
            adjacency.setdefault(v, []).append((u, w))
        shares: dict[Agent, float] = {}
        seen = {self.source}
        stack = [self.source]
        while stack:
            x = stack.pop()
            for y, w in adjacency.get(x, []):
                if y in seen:
                    continue
                seen.add(y)
                shares[y] = w  # y pays the edge to its parent x
                stack.append(y)
        return shares
