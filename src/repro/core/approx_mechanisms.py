"""The ``*-approx`` mechanism family: Mehlhorn-metric cost sharing at scale.

The exact section 3.2 pipeline prices coalitions on the full metric
closure — an O(n^3) precomputation no n=10^3..10^4 deployment can afford
per scenario.  This family replaces the closure with the *Mehlhorn
auxiliary terminal graph* of ``{source} + R``
(:mod:`repro.graphs.mehlhorn`): one multi-source Dijkstra pass and a
sparse edge list over the terminals, O(k n) memory, no (n, n) matrix.

Two cost-sharing rules run on that auxiliary metric:

* ``jv-approx`` — the Kruskal moat process
  (:func:`repro.engine.moats.moat_shares_sparse`) over the auxiliary
  edges.  Same water-level semantics as ``jv``, but the metric itself now
  depends on ``R``, so cross-monotonicity (and with it GSP) is *not*
  claimed — the family trades that theorem for scalability, mirroring
  the heuristic playbook of the related network-coding work.
* ``bird-approx`` — the Bird rule on the auxiliary MST rooted at the
  source: each terminal pays its parent edge.  The standalone-tree
  analogue of the paper's tree mechanisms.

Both charge exactly the auxiliary-MST weight in total, and both report
the *built Mehlhorn tree's edge cost* as ``result.cost``.  That makes the
audited guarantees provable, not just empirical:

* cost recovery — the built tree expands (then prunes) the auxiliary
  MST, so ``cost <= aux MST weight = total charged``;
* 2-budget-balance — ``aux MST <= 2 OPT`` (Mehlhorn) and ``cost >= OPT``
  (the built tree spans the terminals), so
  ``charged / cost <= 2 OPT / OPT = 2``.  Declared as ``bb_factor=2.0``
  in the registry, which the sweep audit enforces per profile.

The wireless power assignment of the built tree (the paper's Steiner
heuristic; its max-based cost can sit far *below* the edge total) rides
along as the result artifact with its cost in ``extra``.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.api.registry import register_mechanism
from repro.engine.moats import moat_shares_sparse
from repro.graphs.mehlhorn import AuxiliaryMetric, mehlhorn_aux_metric
from repro.graphs.steiner import SteinerTree
from repro.mechanism.base import Agent, CostSharingMechanism, MechanismResult, Profile
from repro.mechanism.moulin_shenker import moulin_shenker
from repro.wireless.cost_graph import CostGraph
from repro.wireless.multicast import steiner_heuristic_power


class MehlhornApproxMechanism(CostSharingMechanism):
    """Shared driver of the ``*-approx`` family.

    Subclasses pick the sharing rule on the auxiliary metric via
    :meth:`_aux_shares`.  ``agents`` restricts the potential receivers
    (default: every non-source station).
    """

    def __init__(self, network: CostGraph, source: int,
                 agents: Sequence[Agent] | None = None) -> None:
        self.network = network
        self.source = source
        if agents is None:
            self.agents = [i for i in range(network.n) if i != source]
        else:
            self.agents = sorted(set(agents) - {source})

    # -- the auxiliary metric of one coalition ------------------------------
    def _aux(self, members: list[int]) -> AuxiliaryMetric:
        return mehlhorn_aux_metric(self.network.as_dense(),
                                   [self.source, *members])

    def _aux_shares(self, members: list[int],
                    aux: AuxiliaryMetric) -> dict[Agent, float]:
        raise NotImplementedError

    def shares(self, R: frozenset) -> dict[Agent, float]:
        """``xi(R, .)`` on the auxiliary metric of ``{source} + R``.

        Totals the auxiliary MST weight exactly (both rules are spanning
        processes).  Unlike ``jv``, the metric is rebuilt per coalition,
        so this family is *not* cross-monotonic.
        """
        members = sorted(set(R) - {self.source})
        if not members:
            return {}
        return self._aux_shares(members, self._aux(members))

    def _build(self, R: frozenset) -> tuple[float, object]:
        members = sorted(set(R) - {self.source})
        if not members:
            from repro.wireless.power import PowerAssignment

            return 0.0, PowerAssignment.zeros(self.network.n)
        tree = self._tree(members)
        power = steiner_heuristic_power(
            self.network, [(u, v) for u, v, _ in tree.edges], self.source)
        return tree.cost, power

    def _tree(self, members: list[int]) -> SteinerTree:
        from repro.graphs.mehlhorn import mehlhorn_steiner_tree

        return mehlhorn_steiner_tree(self.network.as_dense(),
                                     [self.source, *members])

    def run(self, profile: Profile, *, method=None) -> MechanismResult:
        """Moulin-Shenker driver over the approximate shares.

        ``result.cost`` is the built Mehlhorn tree's edge cost (the
        quantity the 2x budget-balance bound is proven against); the
        wireless power assignment is the artifact, its max-based cost in
        ``extra["power_cost"]``.
        """
        u = self.validate_profile(profile)
        xi = self.shares if method is None else method
        result = moulin_shenker(self.agents, xi, u, build=self._build)
        result.extra["power_cost"] = (
            result.power.cost() if result.power is not None else 0.0)
        return result


class JVApproxMechanism(MehlhornApproxMechanism):
    """``jv-approx``: the Kruskal moat process on the auxiliary metric."""

    def _aux_shares(self, members, aux):
        # Auxiliary terminal order is [source, *members] by construction,
        # so the edge index pairs line up with the moat kernel's pts.
        return moat_shares_sparse(self.source, members, aux.edges)


class BirdApproxMechanism(MehlhornApproxMechanism):
    """``bird-approx``: Bird's rule on the source-rooted auxiliary MST —
    each terminal pays the edge connecting it toward the source."""

    def _aux_shares(self, members, aux):
        ids, _ = aux.spanning_mst()
        adj: dict[int, list[tuple[int, float]]] = {i: [] for i in range(aux.k)}
        for e in ids:
            a, b, w = aux.edges[e]
            adj[a].append((b, w))
            adj[b].append((a, w))
        shares = {}
        stack = [0]  # index 0 is the source terminal
        seen = {0}
        while stack:
            x = stack.pop()
            for y, w in adj[x]:
                if y not in seen:
                    seen.add(y)
                    shares[aux.terminals[y]] = w
                    stack.append(y)
        return shares


# -- registry wiring (repro.api) --------------------------------------------

def _approx_agents(session):
    receivers = session.scenario.receivers
    return None if receivers is None else session.agents()


register_mechanism(
    "jv-approx",
    lambda session: JVApproxMechanism(session.network, session.source,
                                      agents=_approx_agents(session)),
    method_of=lambda mech: mech.shares,
    summary="moat shares on the Mehlhorn auxiliary metric (2-BB vs built tree; "
            "scalable, not cross-monotonic)",
    bb_factor=2.0,
)
register_mechanism(
    "bird-approx",
    lambda session: BirdApproxMechanism(session.network, session.source,
                                        agents=_approx_agents(session)),
    method_of=lambda mech: mech.shares,
    summary="Bird rule on the Mehlhorn auxiliary MST (2-BB vs built tree; "
            "scalable, not cross-monotonic)",
    bb_factor=2.0,
)
