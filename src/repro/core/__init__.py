"""The paper's mechanisms (its primary contribution).

=====================================  =========================================
Module                                 Paper result
=====================================  =========================================
``universal_tree_mechanisms``          §2.1: Shapley value mechanism (BB, group
                                       strategyproof) and marginal-cost
                                       mechanism (efficient, strategyproof) on
                                       power assignments induced by a fixed
                                       universal spanning tree (Lemma 2.1).
``nwst_mechanism``                     §2.2.2: the 1.5 ln k-BB strategyproof
                                       mechanism for non-cooperative
                                       node-weighted Steiner tree (Thms 2.2/2.3).
``memt_reduction``                     §2.2.1: Caragiannis et al. reduction
                                       MEMT -> NWST and its BFS back-mapping.
``memt_mechanism``                     §2.2.3: the 3 ln(k+1)-BB strategyproof
                                       mechanism for multicast in symmetric
                                       wireless networks.
``euclidean_optimal``                  §3.1: 1-BB Shapley and efficient MC
                                       mechanisms for alpha = 1 or d = 1
                                       (Lemma 3.1, Thm 3.2).
``jv_steiner``                         §3.2 machinery: the Jain-Vazirani family
                                       of 2-BB cross-monotonic Steiner cost
                                       shares (Kruskal moat formulation).
``euclidean_bb``                       §3.2: the 2(3^d - 1)-BB (12-BB for d=2)
                                       group-strategyproof Euclidean mechanism
                                       (Thms 3.6/3.7).
=====================================  =========================================
"""

from repro.core.approx_mechanisms import (
    BirdApproxMechanism,
    JVApproxMechanism,
    MehlhornApproxMechanism,
)
from repro.core.distributed_tree import DistributedTreeNetWorth
from repro.core.euclidean_bb import EuclideanJVMechanism
from repro.core.euclidean_optimal import (
    EuclideanMCMechanism,
    EuclideanShapleyMechanism,
    euclidean_optimal_cost_function,
)
from repro.core.exact_mechanisms import ExactMCMechanism, ExactShapleyMechanism
from repro.core.jv_steiner import JVSteinerShares
from repro.core.mst_game import MSTGame
from repro.core.memt_mechanism import WirelessMulticastMechanism, WirelessNWSTMechanism
from repro.core.memt_reduction import NWSTInstance, memt_to_nwst, nwst_solution_to_power
from repro.core.nwst_mechanism import NWSTMechanism
from repro.core.universal_tree_mechanisms import (
    UniversalTreeMCMechanism,
    UniversalTreeShapleyMechanism,
    tree_efficient_set,
    universal_tree_shapley_shares,
)

__all__ = [
    "BirdApproxMechanism",
    "DistributedTreeNetWorth",
    "EuclideanJVMechanism",
    "EuclideanMCMechanism",
    "EuclideanShapleyMechanism",
    "ExactMCMechanism",
    "ExactShapleyMechanism",
    "JVApproxMechanism",
    "JVSteinerShares",
    "MSTGame",
    "MehlhornApproxMechanism",
    "NWSTInstance",
    "NWSTMechanism",
    "UniversalTreeMCMechanism",
    "UniversalTreeShapleyMechanism",
    "WirelessMulticastMechanism",
    "WirelessNWSTMechanism",
    "euclidean_optimal_cost_function",
    "memt_to_nwst",
    "nwst_solution_to_power",
    "tree_efficient_set",
    "universal_tree_shapley_shares",
]
