"""Universal-tree mechanisms (paper section 2.1).

Lemma 2.1 makes the universal-tree cost function non-decreasing and
submodular, so two classical constructions apply:

* the **Shapley value mechanism** — group strategyproof, budget balanced,
  NPT/VP/CS.  The paper gives the Shapley value of this game a closed form
  ("water-filling"): at each station ``x`` of ``T(R)`` with children
  ``y_1..y_k`` sorted by edge cost, the power increment
  ``c(x, y_i) - c(x, y_{i-1})`` is split equally among the receivers routed
  through ``y_i .. y_k``.  :func:`universal_tree_shapley_shares` implements
  it in O(|T(R)|) on the flat :mod:`repro.engine.trees` kernel; the
  test-suite proves it equal to the exponential Eq. (4).

* the **marginal-cost (MC) mechanism** — efficient and strategyproof.
  :func:`tree_efficient_set` finds the largest efficient receiver set by a
  bottom-up tree DP (max-welfare, then max-size, both decomposable), giving
  a polynomial MC mechanism.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.api.registry import register_mechanism
from repro.engine.trees import efficient_set, water_filling_shares, water_filling_shares_many
from repro.mechanism.base import Agent, CostSharingMechanism, MechanismResult, Profile
from repro.mechanism.moulin_shenker import moulin_shenker
from repro.mechanism.vcg import MarginalCostMechanism
from repro.wireless.universal_tree import UniversalTree


def universal_tree_shapley_shares(
    tree: UniversalTree, receivers: Iterable[Agent]
) -> dict[Agent, float]:
    """Water-filling Shapley shares of ``C_T`` restricted to ``receivers``.

    Equals the Shapley value (paper Eq. (4)) of the universal-tree cost
    function — see the property tests.  Runs on the flat
    :class:`~repro.engine.trees.TreeIndex` kernel: one bottom-up counting
    sweep plus one top-down accumulation, O(|T(R)|) per call instead of the
    per-node receiver-set unions of the naive formulation.
    """
    return water_filling_shares(tree.index(), receivers)


def tree_efficient_set(
    tree: UniversalTree, profile: Mapping[Agent, float],
    agents: Iterable[Agent] | None = None,
) -> tuple[float, frozenset]:
    """``(max net worth, largest efficient receiver set)`` for the
    universal-tree cost function — bottom-up DP, polynomial.

    For each station the DP keeps the lexicographically maximal
    ``(welfare, size)`` of its subtree given the station is wired in; a
    parent then chooses which children to activate, paying the maximum
    child-edge cost among activated ones.  Maximising welfare (then size)
    decomposes because both add across children.  Runs on the iterative
    set-free kernel of :mod:`repro.engine.trees`.  ``agents`` optionally
    restricts the potential receivers (other stations stay pure relays).
    """
    return efficient_set(tree.index(), profile, agents=agents)


class UniversalTreeShapleyMechanism(CostSharingMechanism):
    """Shapley value mechanism on a universal tree: budget balanced, group
    strategyproof, NPT/VP/CS (section 2.1).

    ``agents`` optionally restricts the potential receiver set (a
    scenario's explicit ``receivers``); default: every non-source station.
    """

    def __init__(self, tree: UniversalTree,
                 agents: Iterable[Agent] | None = None) -> None:
        self.tree = tree
        self.agents = sorted(agents) if agents is not None else tree.agents()

    def _build(self, R: frozenset) -> tuple[float, object]:
        power = self.tree.power_assignment(R)
        return power.cost(), power

    def run(self, profile: Profile, *, method=None) -> MechanismResult:
        """Run the mechanism; ``method`` optionally substitutes a memoised
        wrapper of the Shapley method (see
        :class:`repro.engine.batch.MethodCache`) — same values, shared
        across profiles."""
        u = self.validate_profile(profile)

        if method is None:
            def method(R: frozenset) -> dict[Agent, float]:
                return universal_tree_shapley_shares(self.tree, R)

        return moulin_shenker(self.agents, method, u, build=self._build)

    def run_many(self, profiles: Iterable[Profile], *, method) -> list[MechanismResult]:
        """Price a profile batch with sweep-wide vectorized xi.

        All profiles' drop iterations advance in lockstep and every
        round's cold receiver sets are evaluated in one
        :func:`~repro.engine.trees.water_filling_shares_many` flat-array
        pass, deposited into the shared ``method`` cache
        (:class:`~repro.engine.batch.MethodCache`).  Results are
        bit-identical to looping :meth:`run` — the final replay runs the
        real per-profile driver over the warmed cache.
        """
        from repro.engine.batch import run_profiles_lockstep

        index = self.tree.index()

        def many(sets: list[frozenset]) -> list[dict[Agent, float]]:
            return water_filling_shares_many(index, sets)

        validated = [self.validate_profile(p) for p in profiles]
        return run_profiles_lockstep(self.agents, many, validated,
                                     method=method, build=self._build)


class UniversalTreeMCMechanism(MarginalCostMechanism):
    """Marginal-cost mechanism on a universal tree: efficient and
    strategyproof (but not group strategyproof, and may run a deficit).

    ``agents`` optionally restricts the potential receiver set; stations
    outside it stay pure relays for the efficient-set DP."""

    def __init__(self, tree: UniversalTree,
                 agents: Iterable[Agent] | None = None) -> None:
        self.tree = tree
        agent_list = sorted(agents) if agents is not None else tree.agents()
        restrict = None if agents is None else agent_list

        def solver(profile: dict[Agent, float]) -> tuple[float, frozenset]:
            return tree_efficient_set(tree, profile, agents=restrict)

        def cost_fn(R: frozenset) -> float:
            return tree.cost(R)

        super().__init__(agent_list, solver, cost_fn)

    def run(self, profile: Profile) -> MechanismResult:
        result = super().run(profile)
        power = self.tree.power_assignment(result.receivers)
        return MechanismResult(
            receivers=result.receivers,
            shares=result.shares,
            cost=result.cost,
            power=power,
            extra=result.extra,
        )


# -- registry wiring (repro.api) --------------------------------------------

def _session_agents(session):
    """The agent restriction a session's scenario implies: its explicit
    ``receivers`` subset, or ``None`` (every non-source station — the
    bit-identical legacy path)."""
    return session.agents() if session.scenario.receivers is not None else None


register_mechanism(
    "tree-shapley",
    lambda session, *, tree=None: UniversalTreeShapleyMechanism(
        session.universal_tree(tree), agents=_session_agents(session)),
    method_of=lambda mech: lambda R: universal_tree_shapley_shares(mech.tree, R),
    summary="§2.1 Shapley value mechanism on a universal tree (BB, GSP)",
)
register_mechanism(
    "tree-mc",
    lambda session, *, tree=None: UniversalTreeMCMechanism(
        session.universal_tree(tree), agents=_session_agents(session)),
    summary="§2.1 marginal-cost mechanism on a universal tree (efficient, SP)",
    guarantees=("npt", "vp"),  # MC runs deficits: no cost recovery (§2.1)
)
