"""Universal-tree mechanisms (paper section 2.1).

Lemma 2.1 makes the universal-tree cost function non-decreasing and
submodular, so two classical constructions apply:

* the **Shapley value mechanism** — group strategyproof, budget balanced,
  NPT/VP/CS.  The paper gives the Shapley value of this game a closed form
  ("water-filling"): at each station ``x`` of ``T(R)`` with children
  ``y_1..y_k`` sorted by edge cost, the power increment
  ``c(x, y_i) - c(x, y_{i-1})`` is split equally among the receivers routed
  through ``y_i .. y_k``.  :func:`universal_tree_shapley_shares` implements
  it in O(n^2); the test-suite proves it equal to the exponential Eq. (4).

* the **marginal-cost (MC) mechanism** — efficient and strategyproof.
  :func:`tree_efficient_set` finds the largest efficient receiver set by a
  bottom-up tree DP (max-welfare, then max-size, both decomposable), giving
  a polynomial MC mechanism.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.mechanism.base import Agent, CostSharingMechanism, MechanismResult, Profile
from repro.mechanism.moulin_shenker import moulin_shenker
from repro.mechanism.vcg import MarginalCostMechanism
from repro.wireless.universal_tree import UniversalTree

_EPS = 1e-12


def universal_tree_shapley_shares(
    tree: UniversalTree, receivers: Iterable[Agent]
) -> dict[Agent, float]:
    """Water-filling Shapley shares of ``C_T`` restricted to ``receivers``.

    Equals the Shapley value (paper Eq. (4)) of the universal-tree cost
    function — see the property tests.  O(|T(R)|^2).
    """
    R = set(receivers) - {tree.source}
    if not R:
        return {}
    nodes = tree.subtree_nodes(R)

    # Receivers served through each node's subtree (within T(R)).
    served: dict[Agent, set[Agent]] = {}

    def collect(x: Agent) -> set[Agent]:
        s: set[Agent] = {x} & R
        for y in tree.children[x]:
            if y in nodes:
                s |= collect(y)
        served[x] = s
        return s

    collect(tree.source)

    shares = {i: 0.0 for i in R}
    for x in nodes:
        kids = [y for y in tree.children[x] if y in nodes]
        if not kids:
            continue
        kids.sort(key=lambda y: (tree.network.cost(x, y), y))
        # Suffix receiver groups: increment i is paid by everyone routed
        # through children y_i..y_k.
        suffix: list[set[Agent]] = [set() for _ in range(len(kids) + 1)]
        for idx in range(len(kids) - 1, -1, -1):
            suffix[idx] = suffix[idx + 1] | served[kids[idx]]
        prev_cost = 0.0
        for idx, y in enumerate(kids):
            c = tree.network.cost(x, y)
            increment = c - prev_cost
            prev_cost = c
            payers = suffix[idx]
            if increment <= _EPS or not payers:
                continue
            per_head = increment / len(payers)
            for i in payers:
                shares[i] += per_head
    return shares


def tree_efficient_set(
    tree: UniversalTree, profile: Mapping[Agent, float]
) -> tuple[float, frozenset]:
    """``(max net worth, largest efficient receiver set)`` for the
    universal-tree cost function — bottom-up DP, polynomial.

    For each station the DP keeps the lexicographically maximal
    ``(welfare, size)`` of its subtree given the station is wired in; a
    parent then chooses which children to activate, paying the maximum
    child-edge cost among activated ones.  Maximising welfare (then size)
    decomposes because both add across children.
    """
    # value[v] = (welfare, size, receiver_set) given v is in T(R), counting
    # v's utility (every wired station joins R: it rides for free) and the
    # powers inside v's subtree, but not v's parent edge.
    value: dict[Agent, tuple[float, int, frozenset]] = {}

    def solve(v: Agent) -> tuple[float, int, frozenset]:
        kids = [y for y in tree.children[v]]
        kids.sort(key=lambda y: (tree.network.cost(v, y), y))
        child = {y: solve(y) for y in kids}
        best = (0.0, 0, frozenset())  # activate nothing below v
        for j, yj in enumerate(kids):
            # y_j is the most expensive activated child; cheaper ones join
            # for free exactly when their subtree value is non-negative.
            w = child[yj][0] - tree.network.cost(v, yj)
            size = child[yj][1]
            members = set(child[yj][2])
            for yi in kids[:j]:
                cw, cs, cm = child[yi]
                if cw > _EPS or (abs(cw) <= _EPS and cs > 0):
                    w += cw
                    size += cs
                    members |= cm
            cand = (w, size, frozenset(members))
            if cand[0] > best[0] + _EPS or (
                abs(cand[0] - best[0]) <= _EPS and cand[1] > best[1]
            ):
                best = cand
        if v == tree.source:
            result = best
        else:
            u_v = float(profile.get(v, 0.0))
            result = (best[0] + u_v, best[1] + 1, best[2] | {v})
        value[v] = result
        return result

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 2 * tree.network.n + 100))
    try:
        welfare, _, members = solve(tree.source)
    finally:
        sys.setrecursionlimit(old_limit)
    return welfare, members


class UniversalTreeShapleyMechanism(CostSharingMechanism):
    """Shapley value mechanism on a universal tree: budget balanced, group
    strategyproof, NPT/VP/CS (section 2.1)."""

    def __init__(self, tree: UniversalTree) -> None:
        self.tree = tree
        self.agents = tree.agents()

    def run(self, profile: Profile) -> MechanismResult:
        u = self.validate_profile(profile)

        def method(R: frozenset) -> dict[Agent, float]:
            return universal_tree_shapley_shares(self.tree, R)

        def build(R: frozenset) -> tuple[float, object]:
            power = self.tree.power_assignment(R)
            return power.cost(), power

        return moulin_shenker(self.agents, method, u, build=build)


class UniversalTreeMCMechanism(MarginalCostMechanism):
    """Marginal-cost mechanism on a universal tree: efficient and
    strategyproof (but not group strategyproof, and may run a deficit)."""

    def __init__(self, tree: UniversalTree) -> None:
        self.tree = tree

        def solver(profile: dict[Agent, float]) -> tuple[float, frozenset]:
            return tree_efficient_set(tree, profile)

        def cost_fn(R: frozenset) -> float:
            return tree.cost(R)

        super().__init__(tree.agents(), solver, cost_fn)

    def run(self, profile: Profile) -> MechanismResult:
        result = super().run(profile)
        power = self.tree.power_assignment(result.receivers)
        return MechanismResult(
            receivers=result.receivers,
            shares=result.shares,
            cost=result.cost,
            power=power,
            extra=result.extra,
        )
